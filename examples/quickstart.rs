//! Quickstart: generate a power-law graph, partition it five ways, and
//! compare two-dimensional balance and edge cuts.
//!
//! ```sh
//! cargo run --release -p bpart-bench --example quickstart
//! ```

use bpart_core::prelude::*;
use bpart_graph::{generate, stats};

fn main() {
    // A Twitter-like power-law graph at 5% scale (~5K vertices, ~180K edges).
    let graph = generate::twitter_like().generate_scaled(0.05);
    let s = stats::degree_stats(&graph);
    println!(
        "graph: {} vertices, {} edges, avg degree {:.1}, max degree {}, top-1% degree mass {:.0}%",
        s.vertices,
        s.edges,
        s.average,
        s.max,
        s.top1pct_mass * 100.0
    );
    println!();

    let schemes: Vec<Box<dyn Partitioner>> = vec![
        Box::new(ChunkV),
        Box::new(ChunkE),
        Box::new(Fennel::default()),
        Box::new(HashPartitioner::default()),
        Box::new(BPart::default()),
    ];

    println!(
        "{:>8}  {:>11} {:>11} {:>9}",
        "scheme", "vertex bias", "edge bias", "edge-cut"
    );
    for scheme in &schemes {
        let partition = scheme.partition(&graph, 8);
        let q = metrics::quality(&graph, &partition);
        println!(
            "{:>8}  {:>11.3} {:>11.3} {:>9.3}",
            scheme.name(),
            q.vertex_bias,
            q.edge_bias,
            q.cut_ratio
        );
    }
    println!();
    println!("BPart is the only scheme with both biases below 0.1 — that is the");
    println!("two-dimensional balance the paper's title promises.");
}
