//! Social-network analysis on a simulated cluster: run PageRank and
//! Connected Components over a Twitter-like graph partitioned across eight
//! simulated machines, and show how the partitioning scheme changes the
//! cluster's modelled running time while leaving the *results* untouched.
//!
//! ```sh
//! cargo run --release -p bpart-bench --example social_network_analysis
//! ```

use bpart_core::prelude::*;
use bpart_engine::{apps, IterationEngine};
use bpart_graph::generate;
use std::sync::Arc;

fn main() {
    let graph = Arc::new(generate::twitter_like().generate_scaled(0.1));
    println!(
        "twitter_like @ 10%: {} vertices, {} edges, 8 machines",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!();

    let schemes: Vec<Box<dyn Partitioner>> = vec![
        Box::new(ChunkV),
        Box::new(HashPartitioner::default()),
        Box::new(BPart::default()),
    ];

    let mut top_vertices: Option<Vec<u32>> = None;
    println!(
        "{:>8}  {:>14} {:>13} {:>13} {:>13}",
        "scheme", "PR time", "PR waiting", "CC time", "CC iterations"
    );
    for scheme in &schemes {
        let partition = Arc::new(scheme.partition(&graph, 8));
        let engine = IterationEngine::default_for(graph.clone(), partition);

        let pr = engine.run(&apps::PageRank::new(10));
        let cc = engine.run(&apps::ConnectedComponents);

        // The ten most influential accounts, by PageRank.
        let mut ranked: Vec<(u32, f64)> = pr
            .values
            .iter()
            .copied()
            .enumerate()
            .map(|(v, r)| (v as u32, r))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let top: Vec<u32> = ranked.iter().take(10).map(|&(v, _)| v).collect();
        match &top_vertices {
            None => top_vertices = Some(top),
            Some(prev) => assert_eq!(
                prev, &top,
                "partitioning must never change the analysis results"
            ),
        }

        let components = {
            let mut labels = cc.values.clone();
            labels.sort_unstable();
            labels.dedup();
            labels.len()
        };
        println!(
            "{:>8}  {:>14.0} {:>12.1}% {:>13.0} {:>9} ({} comps)",
            scheme.name(),
            pr.telemetry.total_time(),
            pr.telemetry.waiting_ratio() * 100.0,
            cc.telemetry.total_time(),
            cc.iterations,
            components,
        );
    }

    println!();
    println!(
        "top-10 accounts by PageRank (identical under every scheme): {:?}",
        top_vertices.unwrap()
    );
}
