//! Partition report: load a graph (from a SNAP-style edge-list file if a
//! path is given, else a generated LiveJournal-like graph), partition it
//! with every scheme including the offline multilevel baseline, and print
//! a full quality report plus BPart's layer trace.
//!
//! ```sh
//! cargo run --release -p bpart-bench --example partition_report [edge_list.txt] [k]
//! ```

use bpart_core::prelude::*;
use bpart_graph::{generate, io};
use bpart_multilevel::Multilevel;
use std::fs::File;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next();
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let graph = match &path {
        Some(p) => {
            let file = File::open(p).unwrap_or_else(|e| panic!("cannot open {p}: {e}"));
            let edges = io::read_edge_list(file).expect("malformed edge list");
            println!(
                "loaded {p}: {} vertices, {} edges",
                edges.num_vertices(),
                edges.num_edges()
            );
            edges.into_csr()
        }
        None => {
            println!("no input file given; generating lj_like at 10% scale");
            generate::lj_like().generate_scaled(0.1)
        }
    };

    let schemes: Vec<Box<dyn Partitioner>> = vec![
        Box::new(ChunkV),
        Box::new(ChunkE),
        Box::new(Fennel::default()),
        Box::new(HashPartitioner::default()),
        Box::new(Multilevel::default()),
        Box::new(BPart::default()),
    ];

    println!();
    println!(
        "{:>14}  {:>11} {:>11} {:>11} {:>11} {:>9}",
        "scheme", "vertex bias", "edge bias", "vertex jain", "edge jain", "edge-cut"
    );
    for scheme in &schemes {
        let partition = scheme.partition(&graph, k);
        partition.validate(&graph).expect("invalid partition");
        let q = metrics::quality(&graph, &partition);
        println!(
            "{:>14}  {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>9.3}",
            scheme.name(),
            q.vertex_bias,
            q.edge_bias,
            q.vertex_jain,
            q.edge_jain,
            q.cut_ratio
        );
    }

    println!();
    println!("BPart layer trace (k = {k}):");
    let (_, trace) = BPart::default().partition_with_trace(&graph, k);
    for t in trace {
        println!(
            "  layer {}: split remainder into {} pieces, froze {} subgraph(s), {} vertices left",
            t.layer, t.pieces, t.frozen, t.remaining_vertices
        );
    }
}
