//! DeepWalk / node2vec corpus generation on the simulated cluster:
//! produce embedding-training walk sequences from a social graph and
//! compare how much walker traffic each partitioning scheme generates.
//!
//! ```sh
//! cargo run --release -p bpart-bench --example random_walk_corpus
//! ```

use bpart_core::prelude::*;
use bpart_graph::generate;
use bpart_walker::{apps, WalkEngine, WalkStarts};
use std::sync::Arc;

fn main() {
    let graph = Arc::new(generate::friendster_like().generate_scaled(0.05));
    println!(
        "friendster_like @ 5%: {} vertices, {} edges, 8 machines",
        graph.num_vertices(),
        graph.num_edges()
    );
    let walk_length = 40;
    println!("corpus: one walk per vertex, {walk_length} steps, DeepWalk + node2vec(p=2, q=0.5)");
    println!();

    let schemes: Vec<Box<dyn Partitioner>> = vec![
        Box::new(ChunkE),
        Box::new(HashPartitioner::default()),
        Box::new(BPart::default()),
    ];

    println!(
        "{:>8}  {:>10} {:>14} {:>14} {:>12}",
        "scheme", "app", "total steps", "message walks", "modelled time"
    );
    let mut first_corpus: Option<usize> = None;
    for scheme in &schemes {
        let partition = Arc::new(scheme.partition(&graph, 8));
        for (label, app) in [
            (
                "DeepWalk",
                Box::new(apps::DeepWalk::new(walk_length)) as Box<dyn bpart_walker::WalkApp>,
            ),
            (
                "node2vec",
                Box::new(apps::Node2vec::new(2.0, 0.5, walk_length)),
            ),
        ] {
            let engine = WalkEngine::default_for(graph.clone(), partition.clone()).with_recording();
            let run = engine.run(app.as_ref(), &WalkStarts::PerVertex(1), 0xC0FFEE);
            let paths = run.paths.expect("recording enabled");
            let tokens: usize = paths.iter().map(|p| p.len()).sum();
            if label == "DeepWalk" {
                // Walk trajectories are a pure function of the seed — the
                // corpus is identical under every partitioning scheme.
                match first_corpus {
                    None => first_corpus = Some(tokens),
                    Some(t) => assert_eq!(t, tokens),
                }
            }
            println!(
                "{:>8}  {:>10} {:>14} {:>14} {:>12.0}",
                scheme.name(),
                label,
                run.total_steps,
                run.message_walks,
                run.telemetry.total_time()
            );
        }
    }

    println!();
    println!(
        "corpus size: {} tokens; identical under every scheme — only traffic and\n\
         modelled time change. Lower edge-cut (BPart) means fewer transmitted walkers.",
        first_corpus.unwrap()
    );
}
