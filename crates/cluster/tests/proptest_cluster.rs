//! Property-based tests for the BSP simulator: message conservation,
//! telemetry bounds, and exec-mode equivalence hold for arbitrary inputs.

use bpart_cluster::exec::{for_each_machine, ExecMode};
use bpart_cluster::{
    CostModel, FaultPlan, FaultState, IterationRecord, Router, Telemetry, WorkUnits,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn router_conserves_every_message(
        sends in prop::collection::vec((0u32..6, 0u32..6, 0u16..100), 0..200)
    ) {
        let mut router: Router<u16> = Router::new(6);
        for &(from, to, payload) in &sends {
            router.send(from, to, payload);
        }
        prop_assert_eq!(router.staged(), sends.len() as u64);
        let ex = router.exchange();
        prop_assert_eq!(ex.sent.iter().sum::<u64>(), sends.len() as u64);
        prop_assert_eq!(ex.received.iter().sum::<u64>(), sends.len() as u64);
        let delivered: usize = ex.inboxes.iter().map(Vec::len).sum();
        prop_assert_eq!(delivered, sends.len());
        // Per-destination counts match.
        for to in 0..6usize {
            let expect = sends.iter().filter(|&&(_, t, _)| t as usize == to).count();
            prop_assert_eq!(ex.inboxes[to].len(), expect);
        }
        // Payload multiset is preserved.
        let mut sent_payloads: Vec<u16> = sends.iter().map(|&(_, _, p)| p).collect();
        let mut got_payloads: Vec<u16> = ex.inboxes.into_iter().flatten().collect();
        sent_payloads.sort_unstable();
        got_payloads.sort_unstable();
        prop_assert_eq!(sent_payloads, got_payloads);
    }

    #[test]
    fn waiting_ratio_is_always_a_fraction(
        records in prop::collection::vec(
            prop::collection::vec(0.0f64..1000.0, 4),
            1..20
        )
    ) {
        let t = Telemetry::new();
        for compute in &records {
            t.record(IterationRecord {
                compute: compute.clone(),
                comm: vec![0.0; 4],
                sent: vec![0; 4],
                ..IterationRecord::default()
            });
        }
        let ratio = t.waiting_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio), "ratio {ratio}");
        // total time >= every machine's own compute sum
        let total = t.total_time();
        for m in 0..4 {
            let own: f64 = records.iter().map(|r| r[m]).sum();
            prop_assert!(total >= own - 1e-9);
        }
    }

    #[test]
    fn cost_model_is_monotone_in_work(
        steps in 0u64..1000, edges in 0u64..1000, verts in 0u64..1000
    ) {
        let m = CostModel::default();
        let w = WorkUnits { steps, edges_scanned: edges, vertices_updated: verts };
        let t = m.compute_time(&w);
        prop_assert!(t >= 0.0);
        let bigger = WorkUnits { steps: steps + 1, ..w };
        prop_assert!(m.compute_time(&bigger) > t);
        prop_assert!(m.comm_time(steps, edges) >= 0.0);
    }

    #[test]
    fn link_overhead_is_deterministic_and_bounded(
        seed in 0u64..1000,
        superstep in 0usize..20,
        messages in 0u64..500,
        drop_p in 0.0f64..1.0,
        dup_p in 0.0f64..1.0,
    ) {
        let plan = FaultPlan::new()
            .with_seed(seed)
            .drop_link(0, 19, 0, 1, drop_p)
            .duplicate_link(0, 19, 0, 1, dup_p);
        // Two independent states over the same plan see identical faults —
        // the engines rely on this for replay determinism and for
        // Sequential/Threaded agreement.
        let a = FaultState::new(plan.clone()).link_overhead(superstep, 0, 1, messages);
        let b = FaultState::new(plan).link_overhead(superstep, 0, 1, messages);
        prop_assert_eq!(a.dropped, b.dropped);
        prop_assert_eq!(a.duplicated, b.duplicated);
        prop_assert!(a.dropped <= messages);
        prop_assert!(a.duplicated <= messages);
    }

    #[test]
    fn exec_modes_agree_on_arbitrary_state(values in prop::collection::vec(0u64..1000, 0..16)) {
        let f = |m: u32, s: &mut u64| {
            *s = s.wrapping_mul(31).wrapping_add(m as u64);
            *s
        };
        let mut a = values.clone();
        let mut b = values.clone();
        let ra: Vec<u64> = for_each_machine(ExecMode::Sequential, &mut a, f)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let rb: Vec<u64> = for_each_machine(ExecMode::Threaded, &mut b, f)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(a, b);
    }
}
