//! Property-based round trip for the fault-plan spec syntax: any plan
//! built through the public API renders to a spec string that parses
//! back to the identical plan. This is what lets fault plans travel
//! through CLI flags, job specs, and log lines without drift.

use bpart_cluster::FaultPlan;
use proptest::prelude::*;

/// Raw clause material: `(selector, first, extra, m1, m2, x)` becomes a
/// crash / straggler / drop / dup clause (the stub proptest has no
/// `prop_oneof`, so selection happens here).
type RawClause = (u8, usize, usize, u32, u32, f64);

fn build(seed: u64, clauses: &[RawClause]) -> FaultPlan {
    let mut plan = FaultPlan::new().with_seed(seed);
    for &(which, first, extra, m1, m2, x) in clauses {
        let last = first + extra;
        plan = match which % 4 {
            0 => plan.crash(first, m1),
            1 => plan.straggler(first, last, m1, 1.0 + x * 15.0),
            2 => plan.drop_link(first, last, m1, m2, x),
            _ => plan.duplicate_link(first, last, m1, m2, x),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_then_parse_is_identity(
        seed in 0u64..u64::MAX,
        clauses in prop::collection::vec(
            (0u8..4, 0usize..30, 0usize..20, 0u32..8, 0u32..8, 0.0f64..1.0),
            0..8,
        ),
    ) {
        let plan = build(seed, &clauses);
        let spec = plan.to_string();
        let reparsed = FaultPlan::parse(&spec)
            .unwrap_or_else(|e| panic!("{spec:?} failed to parse: {e}"));
        prop_assert_eq!(&reparsed, &plan, "spec was {}", &spec);
        // And rendering is stable across the round trip.
        prop_assert_eq!(reparsed.to_string(), spec);
    }

    #[test]
    fn parse_rejects_junk_clauses(pick in 0usize..6) {
        // No bare word is a valid clause (every real clause contains
        // '@' or '='), so parse must reject rather than ignore.
        let word = ["crash", "straggle", "drop", "dup", "seed", "banana"][pick];
        prop_assert!(FaultPlan::parse(word).is_err(), "{:?} unexpectedly parsed", word);
    }
}

#[test]
fn empty_spec_is_the_empty_plan() {
    let plan = FaultPlan::parse("").unwrap();
    assert!(plan.is_empty());
    assert_eq!(plan.to_string(), "");
    assert_eq!(plan, FaultPlan::new());
}
