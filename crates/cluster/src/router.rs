//! All-to-all message routing between machines.
//!
//! During a superstep's computation phase each machine appends messages to
//! per-destination outboxes; [`Router::exchange`] then delivers everything
//! simultaneously (the BSP barrier). Delivery order is deterministic:
//! inbox contents are concatenated in sender order, preserving each
//! sender's append order.

use crate::MachineId;
use std::fmt;

/// A malformed outbox-row hand-back (see [`Router::put_rows`]): the rows
/// do not form the full `k × k` matrix the exchange indexes into. Typed
/// (rather than an `assert!`) so callers can degrade gracefully — the
/// engines surface it as a recoverable per-run failure instead of
/// aborting the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouterError {
    /// `rows.len()` did not match the machine count.
    SenderArity {
        /// Machines the router routes for.
        expected: usize,
        /// Rows actually handed back.
        got: usize,
    },
    /// One sender's row did not cover every destination.
    DestArity {
        /// The offending sender.
        sender: MachineId,
        /// Machines the router routes for.
        expected: usize,
        /// Outboxes in that sender's row.
        got: usize,
    },
}

impl fmt::Display for RouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterError::SenderArity { expected, got } => write!(
                f,
                "put_rows: need one outbox row per sender ({expected}), got {got}"
            ),
            RouterError::DestArity {
                sender,
                expected,
                got,
            } => write!(
                f,
                "put_rows: sender {sender}'s row must cover every destination \
                 ({expected}), got {got}"
            ),
        }
    }
}

impl std::error::Error for RouterError {}

/// Message buffers for a `k`-machine cluster.
#[derive(Clone, Debug)]
pub struct Router<M> {
    /// `outboxes[from][to]` — staged messages.
    outboxes: Vec<Vec<Vec<M>>>,
    /// Cumulative per-machine sent counters (across all exchanges).
    sent_total: Vec<u64>,
}

/// Per-superstep exchange outcome.
#[derive(Clone, Debug)]
pub struct Exchange<M> {
    /// Delivered messages per machine, in deterministic sender order.
    pub inboxes: Vec<Vec<M>>,
    /// Messages sent by each machine this superstep.
    pub sent: Vec<u64>,
    /// Messages received by each machine this superstep.
    pub received: Vec<u64>,
}

// Manual impl: the derive would needlessly require `M: Default`.
impl<M> Default for Exchange<M> {
    fn default() -> Self {
        Exchange {
            inboxes: Vec::new(),
            sent: Vec::new(),
            received: Vec::new(),
        }
    }
}

impl<M> Router<M> {
    /// A router for `k` machines.
    pub fn new(num_machines: usize) -> Self {
        assert!(num_machines > 0, "need at least one machine");
        Router {
            outboxes: (0..num_machines)
                .map(|_| (0..num_machines).map(|_| Vec::new()).collect())
                .collect(),
            sent_total: vec![0; num_machines],
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.outboxes.len()
    }

    /// Stages a message from `from` to `to`.
    #[inline]
    pub fn send(&mut self, from: MachineId, to: MachineId, msg: M) {
        self.outboxes[from as usize][to as usize].push(msg);
    }

    /// Gives machine `from` direct access to its outboxes (for the threaded
    /// executor, where each machine owns its own outbox row).
    pub fn outbox_row(&mut self, from: MachineId) -> &mut Vec<Vec<M>> {
        &mut self.outboxes[from as usize]
    }

    /// Takes ownership of all outbox rows, leaving the router empty; used
    /// by the threaded executor to hand each machine its own row.
    pub fn take_rows(&mut self) -> Vec<Vec<Vec<M>>> {
        let k = self.num_machines();
        std::mem::replace(
            &mut self.outboxes,
            (0..k)
                .map(|_| (0..k).map(|_| Vec::new()).collect())
                .collect(),
        )
    }

    /// Re-installs rows taken by [`take_rows`](Router::take_rows) (after
    /// machines filled them).
    ///
    /// The shape must be a full `k × k` matrix: exactly one row per
    /// sender, each row holding exactly one outbox per destination.
    /// [`exchange`](Router::exchange) indexes `outboxes[from][to]`
    /// unchecked-by-construction, so a short inner row would otherwise
    /// surface later as a confusing out-of-bounds panic (or, worse, a
    /// *long* row would silently drop the excess destinations). Both
    /// dimensions are therefore validated here, at the hand-back point
    /// where the mistake is made; on error the router's outboxes are left
    /// untouched (empty rows from the preceding `take_rows`) so the
    /// caller can abandon the superstep cleanly.
    pub fn put_rows(&mut self, rows: Vec<Vec<Vec<M>>>) -> Result<(), RouterError> {
        if rows.len() != self.num_machines() {
            return Err(RouterError::SenderArity {
                expected: self.num_machines(),
                got: rows.len(),
            });
        }
        for (from, row) in rows.iter().enumerate() {
            if row.len() != self.num_machines() {
                return Err(RouterError::DestArity {
                    sender: from as MachineId,
                    expected: self.num_machines(),
                    got: row.len(),
                });
            }
        }
        self.outboxes = rows;
        Ok(())
    }

    /// Total messages staged right now.
    pub fn staged(&self) -> u64 {
        self.outboxes.iter().flatten().map(|b| b.len() as u64).sum()
    }

    /// Staged message counts per directed link: `matrix[from][to]`.
    /// Fault injection reads this at the barrier to decide per-link
    /// drop/duplication overheads before the exchange empties the boxes.
    pub fn staged_matrix(&self) -> Vec<Vec<u64>> {
        self.outboxes
            .iter()
            .map(|row| row.iter().map(|b| b.len() as u64).collect())
            .collect()
    }

    /// Messages sent by each machine over the router's lifetime.
    pub fn sent_totals(&self) -> &[u64] {
        &self.sent_total
    }

    /// The BSP barrier: delivers all staged messages into a fresh
    /// [`Exchange`]. One-shot convenience over
    /// [`exchange_into`](Router::exchange_into).
    pub fn exchange(&mut self) -> Exchange<M> {
        let mut ex = Exchange {
            inboxes: Vec::new(),
            sent: Vec::new(),
            received: Vec::new(),
        };
        self.exchange_into(&mut ex);
        ex
    }

    /// The BSP barrier, reusing the caller's [`Exchange`] buffers.
    ///
    /// `ex` is resized to `k` machines, its inboxes cleared (capacity
    /// kept), and every outbox drained in place via [`Vec::append`] — so
    /// both sides of the barrier retain their high-water capacity across
    /// supersteps instead of reallocating each one. Delivery order is
    /// identical to [`exchange`](Router::exchange): inbox contents are
    /// concatenated in sender order, preserving each sender's append
    /// order.
    pub fn exchange_into(&mut self, ex: &mut Exchange<M>) {
        use std::sync::OnceLock;
        static MESSAGES: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
        static BYTES: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();

        let mut span = bpart_obs::span("cluster.exchange");
        let k = self.num_machines();
        ex.inboxes.resize_with(k, Vec::new);
        for inbox in &mut ex.inboxes {
            inbox.clear();
        }
        ex.sent.clear();
        ex.sent.resize(k, 0);
        ex.received.clear();
        ex.received.resize(k, 0);
        for from in 0..k {
            for to in 0..k {
                let staged = &mut self.outboxes[from][to];
                let n = staged.len() as u64;
                ex.sent[from] += n;
                ex.received[to] += n;
                ex.inboxes[to].append(staged);
            }
            self.sent_total[from] += ex.sent[from];
        }
        let delivered: u64 = ex.sent.iter().sum();
        span.attr("messages", delivered);
        MESSAGES
            .get_or_init(|| bpart_obs::metrics::counter("exchange.messages"))
            .add(delivered);
        BYTES
            .get_or_init(|| bpart_obs::metrics::counter("exchange.bytes"))
            .add(delivered * std::mem::size_of::<M>() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_delivers_in_sender_order() {
        let mut r: Router<u32> = Router::new(3);
        r.send(2, 0, 20);
        r.send(1, 0, 10);
        r.send(1, 0, 11);
        r.send(0, 0, 0); // self-message is allowed
        let ex = r.exchange();
        assert_eq!(ex.inboxes[0], vec![0, 10, 11, 20]);
        assert_eq!(ex.sent, vec![1, 2, 1]);
        assert_eq!(ex.received, vec![4, 0, 0]);
    }

    #[test]
    fn exchange_drains_the_buffers() {
        let mut r: Router<u8> = Router::new(2);
        r.send(0, 1, 1);
        assert_eq!(r.staged(), 1);
        let _ = r.exchange();
        assert_eq!(r.staged(), 0);
        let ex2 = r.exchange();
        assert!(ex2.inboxes.iter().all(|i| i.is_empty()));
    }

    #[test]
    fn sent_totals_accumulate_across_supersteps() {
        let mut r: Router<u8> = Router::new(2);
        r.send(0, 1, 1);
        r.exchange();
        r.send(0, 1, 2);
        r.send(1, 0, 3);
        r.exchange();
        assert_eq!(r.sent_totals(), &[2, 1]);
    }

    #[test]
    fn exchange_into_reuses_buffers_and_matches_exchange() {
        let mut a: Router<u32> = Router::new(3);
        let mut b: Router<u32> = Router::new(3);
        let mut ex = Exchange::default();
        for step in 0..3u32 {
            for (from, to, base) in [(2, 0, 20), (1, 0, 10), (0, 2, 5)] {
                a.send(from, to, base + step);
                b.send(from, to, base + step);
            }
            a.exchange_into(&mut ex);
            let fresh = b.exchange();
            assert_eq!(ex.inboxes, fresh.inboxes);
            assert_eq!(ex.sent, fresh.sent);
            assert_eq!(ex.received, fresh.received);
            // Both the reused inboxes and the drained outboxes keep their
            // capacity for the next superstep.
            assert!(ex.inboxes[0].capacity() >= 2);
            assert_eq!(a.staged(), 0);
        }
        assert_eq!(a.sent_totals(), b.sent_totals());
    }

    #[test]
    fn take_and_put_rows_round_trip() {
        let mut r: Router<u8> = Router::new(2);
        let mut rows = r.take_rows();
        rows[0][1].push(9);
        r.put_rows(rows).unwrap();
        let ex = r.exchange();
        assert_eq!(ex.inboxes[1], vec![9]);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_panics() {
        let _: Router<u8> = Router::new(0);
    }

    #[test]
    fn staged_matrix_counts_per_link() {
        let mut r: Router<u8> = Router::new(3);
        r.send(0, 1, 1);
        r.send(0, 1, 2);
        r.send(2, 0, 3);
        assert_eq!(
            r.staged_matrix(),
            vec![vec![0, 2, 0], vec![0, 0, 0], vec![1, 0, 0]]
        );
        let _ = r.exchange();
        assert_eq!(r.staged_matrix(), vec![vec![0; 3]; 3]);
    }

    #[test]
    fn put_rows_rejects_wrong_outer_arity() {
        let mut r: Router<u8> = Router::new(3);
        let err = r.put_rows(vec![vec![Vec::new(); 3]; 2]).unwrap_err();
        assert_eq!(
            err,
            RouterError::SenderArity {
                expected: 3,
                got: 2
            }
        );
        assert!(err.to_string().contains("one outbox row per sender"));
        // The router stays usable after the rejected hand-back.
        r.send(0, 1, 7);
        assert_eq!(r.exchange().inboxes[1], vec![7]);
    }

    #[test]
    fn put_rows_rejects_wrong_inner_arity() {
        let mut r: Router<u8> = Router::new(3);
        // Right number of rows, but sender 1's row is missing a
        // destination — exchange would index out of bounds later.
        let rows = vec![
            vec![Vec::new(), Vec::new(), Vec::new()],
            vec![Vec::new(), Vec::new()],
            vec![Vec::new(), Vec::new(), Vec::new()],
        ];
        let err = r.put_rows(rows).unwrap_err();
        assert_eq!(
            err,
            RouterError::DestArity {
                sender: 1,
                expected: 3,
                got: 2
            }
        );
        assert!(err.to_string().contains("cover every destination"));
    }

    #[test]
    fn put_rows_rejects_overlong_inner_rows() {
        let mut r: Router<u8> = Router::new(2);
        // An overlong row would silently drop the excess destinations.
        let err = r
            .put_rows(vec![vec![Vec::new(); 3], vec![Vec::new(); 2]])
            .unwrap_err();
        assert!(matches!(err, RouterError::DestArity { sender: 0, .. }));
    }
}
