//! Reusable per-machine message-staging arenas.
//!
//! A BSP superstep stages messages into per-destination buffers, ships
//! them at the barrier, and starts over. Allocating those buffers fresh
//! every superstep (the engines' original behaviour) churns the allocator
//! in proportion to message volume. A [`MessageArena`] is the bump-style
//! alternative: each machine keeps one staging row for the whole run, the
//! buffers grow to their high-water mark once, and each superstep "resets"
//! the arena by draining it — the capacity is retained, never dropped.
//!
//! Lifecycle per superstep:
//!
//! 1. compute phase — the owning machine [`push`](MessageArena::push)es
//!    messages into its arena (disjoint per machine, so the threaded
//!    executor needs no locks);
//! 2. [`take_filled`](MessageArena::take_filled) moves the row into the
//!    [`Router`](crate::Router) (one pointer move per destination);
//! 3. [`Router::exchange_into`](crate::Router::exchange_into) drains
//!    every buffer in place, leaving them empty with capacity intact;
//! 4. [`put_drained`](MessageArena::put_drained) hands the drained row
//!    back for the next superstep.
//!
//! On a fault rollback the exchange never happens;
//! [`reset`](MessageArena::reset) clears whatever was staged (again
//! keeping capacity) so the replayed superstep starts from a clean arena.
//!
//! Message content and delivery order are completely unaffected — the
//! arena only changes *where the bytes live*, so partitions, PageRank
//! values, and walk traces stay bit-identical to the allocate-per-step
//! engines (see the engines' determinism tests).

use crate::MachineId;

/// One machine's reusable per-destination staging row.
#[derive(Clone, Debug)]
pub struct MessageArena<M> {
    /// `boxes[to]` — messages staged for machine `to`. Empty (`len == 0`,
    /// outer `Vec` too) while the row is lent to the router.
    boxes: Vec<Vec<M>>,
    num_machines: usize,
    /// Largest number of messages staged in a single superstep.
    high_water: usize,
}

impl<M> MessageArena<M> {
    /// An empty arena for a `k`-machine cluster.
    ///
    /// # Panics
    ///
    /// Panics if `num_machines` is zero.
    pub fn new(num_machines: usize) -> Self {
        assert!(num_machines > 0, "need at least one machine");
        MessageArena {
            boxes: (0..num_machines).map(|_| Vec::new()).collect(),
            num_machines,
            high_water: 0,
        }
    }

    /// Number of machines (destination buffers).
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Stages a message for machine `to`.
    #[inline]
    pub fn push(&mut self, to: MachineId, msg: M) {
        self.boxes[to as usize].push(msg);
    }

    /// Messages currently staged across all destinations.
    pub fn staged(&self) -> usize {
        self.boxes.iter().map(Vec::len).sum()
    }

    /// Total element capacity currently reserved across all destinations
    /// — stays at the high-water mark between supersteps, which is the
    /// whole point.
    pub fn reserved(&self) -> usize {
        self.boxes.iter().map(Vec::capacity).sum()
    }

    /// Largest number of messages ever staged in one superstep.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Moves the filled row out (for [`Router::put_rows`]), leaving the
    /// arena rowless until [`put_drained`](MessageArena::put_drained)
    /// returns it.
    ///
    /// [`Router::put_rows`]: crate::Router::put_rows
    pub fn take_filled(&mut self) -> Vec<Vec<M>> {
        let row = std::mem::take(&mut self.boxes);
        self.high_water = self.high_water.max(row.iter().map(Vec::len).sum());
        row
    }

    /// Returns a drained row after the exchange. The row must match this
    /// arena's machine count and be fully drained — handing back a
    /// non-empty row would leak its messages into the next superstep.
    ///
    /// # Panics
    ///
    /// Panics if the row has the wrong arity or still holds messages.
    pub fn put_drained(&mut self, row: Vec<Vec<M>>) {
        assert_eq!(row.len(), self.num_machines, "row arity mismatch");
        assert!(
            row.iter().all(Vec::is_empty),
            "row still holds staged messages"
        );
        self.boxes = row;
    }

    /// Clears every staged message, keeping buffer capacity. Engines call
    /// this on fault rollback, where the superstep that staged the
    /// messages is abandoned and will be replayed.
    pub fn reset(&mut self) {
        for b in &mut self.boxes {
            b.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Router;

    #[test]
    fn lifecycle_round_trip_through_the_router() {
        let mut arenas: Vec<MessageArena<u32>> = (0..3).map(|_| MessageArena::new(3)).collect();
        let mut router: Router<u32> = Router::new(3);
        let mut ex = crate::router::Exchange::default();

        arenas[0].push(1, 10);
        arenas[0].push(1, 11);
        arenas[2].push(0, 20);
        assert_eq!(arenas[0].staged(), 2);

        router
            .put_rows(arenas.iter_mut().map(MessageArena::take_filled).collect())
            .unwrap();
        router.exchange_into(&mut ex);
        assert_eq!(ex.inboxes[1], vec![10, 11]);
        assert_eq!(ex.inboxes[0], vec![20]);
        for (arena, row) in arenas.iter_mut().zip(router.take_rows()) {
            arena.put_drained(row);
        }
        assert_eq!(arenas[0].staged(), 0);
        assert_eq!(arenas[0].high_water(), 2);
        assert_eq!(arenas[2].high_water(), 1);
    }

    #[test]
    fn capacity_survives_the_drain() {
        let mut arena: MessageArena<u64> = MessageArena::new(2);
        let mut router: Router<u64> = Router::new(2);
        let mut ex = crate::router::Exchange::default();
        for step in 0..4 {
            for i in 0..100 {
                arena.push((i % 2) as MachineId, i);
            }
            router
                .put_rows(vec![arena.take_filled(), vec![Vec::new(), Vec::new()]])
                .unwrap();
            router.exchange_into(&mut ex);
            arena.put_drained(router.take_rows().swap_remove(0));
            assert_eq!(arena.staged(), 0);
            if step > 0 {
                // The drained buffers keep their high-water capacity.
                assert!(arena.reserved() >= 100, "step {step}: {}", arena.reserved());
            }
        }
        assert_eq!(arena.high_water(), 100);
    }

    #[test]
    fn reset_clears_but_keeps_capacity() {
        let mut arena: MessageArena<u8> = MessageArena::new(2);
        for _ in 0..50 {
            arena.push(1, 7);
        }
        let reserved = arena.reserved();
        arena.reset();
        assert_eq!(arena.staged(), 0);
        assert_eq!(arena.reserved(), reserved);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn put_drained_rejects_wrong_arity() {
        let mut arena: MessageArena<u8> = MessageArena::new(3);
        let _ = arena.take_filled();
        arena.put_drained(vec![Vec::new(); 2]);
    }

    #[test]
    #[should_panic(expected = "still holds staged messages")]
    fn put_drained_rejects_undrained_rows() {
        let mut arena: MessageArena<u8> = MessageArena::new(2);
        let _ = arena.take_filled();
        arena.put_drained(vec![vec![1], Vec::new()]);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_panics() {
        let _: MessageArena<u8> = MessageArena::new(0);
    }
}
