//! # bpart-cluster — a BSP cluster simulator
//!
//! The paper evaluates BPart inside Gemini and KnightKing on an 8-machine
//! cluster. This crate is the testbed substitute: it models a cluster of
//! `k` machines executing iteration-based bulk-synchronous-parallel
//! computation over a partitioned graph (Fig. 1 of the paper).
//!
//! * [`Cluster`] — the machine set: the shared graph, the partition, and
//!   ownership lookup,
//! * [`router::Router`] — per-destination message buffers with a
//!   deterministic all-to-all exchange at the superstep boundary,
//! * [`arena::MessageArena`] — reusable per-machine staging rows that
//!   keep their high-water capacity across supersteps, so steady-state
//!   supersteps allocate nothing for messaging,
//! * [`cost::CostModel`] / [`cost::WorkUnits`] — converts counted work
//!   (walk steps, edges scanned, vertices updated, messages) into modelled
//!   time, calibrated so compute dominates as on the paper's 56 Gbps fabric,
//! * [`telemetry::Telemetry`] — per-iteration per-machine records plus the
//!   aggregates the paper reports (waiting-time ratio, total running time),
//! * [`exec::for_each_machine`] — runs per-machine closures over disjoint
//!   machine states, sequentially or on real threads (crossbeam scope);
//!   a panicking closure surfaces as a recoverable per-machine failure,
//! * [`fault::FaultPlan`] / [`fault::FaultState`] — deterministic fault
//!   injection (machine crashes, stragglers, lossy links) applied at the
//!   exchange barrier, driving the engines' checkpoint/rollback recovery.
//!
//! Every engine built on this crate counts work in *units*, not wall-clock
//! seconds, so experiment output is deterministic and machine-independent;
//! the paper's metrics are all ratios between machines or schemes, which a
//! unit cost model reproduces faithfully (DESIGN.md §3).

pub mod arena;
pub mod cost;
pub mod exec;
pub mod fault;
pub mod router;
pub mod telemetry;

pub use arena::MessageArena;
pub use cost::{CostModel, WorkUnits};
pub use fault::{FaultPlan, FaultState, LinkOverhead, MachineFailure, UnrecoverableFailure};
pub use router::{Exchange, Router, RouterError};
pub use telemetry::{IterationRecord, MachineWaiting, Telemetry, TelemetrySummary};

use bpart_core::{PartId, Partition};
use bpart_graph::{CsrGraph, VertexId};
use std::sync::Arc;

/// Identifies one simulated machine (same space as partition part ids).
pub type MachineId = PartId;

/// A simulated cluster: `k` machines, each owning one partition part.
#[derive(Clone, Debug)]
pub struct Cluster {
    graph: Arc<CsrGraph>,
    partition: Arc<Partition>,
    members: Arc<Vec<Vec<VertexId>>>,
}

impl Cluster {
    /// Builds a cluster with one machine per partition part.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover the graph.
    pub fn new(graph: Arc<CsrGraph>, partition: Arc<Partition>) -> Self {
        assert_eq!(
            graph.num_vertices(),
            partition.num_vertices(),
            "partition must cover the graph"
        );
        let members = Arc::new(partition.all_members());
        Cluster {
            graph,
            partition,
            members,
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.partition.num_parts()
    }

    /// The machine owning vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> MachineId {
        self.partition.part_of(v)
    }

    /// The shared graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The partition backing this cluster.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Vertices owned by machine `m`.
    pub fn local_vertices(&self, m: MachineId) -> &[VertexId] {
        &self.members[m as usize]
    }

    /// Per-machine vertex counts (`|V_i|`).
    pub fn vertex_counts(&self) -> &[u64] {
        self.partition.vertex_counts()
    }

    /// Per-machine edge counts (`|E_i|`, out-degree sums).
    pub fn edge_counts(&self) -> &[u64] {
        self.partition.edge_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_core::{ChunkV, Partitioner};
    use bpart_graph::generate;

    #[test]
    fn cluster_exposes_ownership() {
        let g = Arc::new(generate::ring(8));
        let p = Arc::new(ChunkV.partition(&g, 2));
        let c = Cluster::new(g.clone(), p);
        assert_eq!(c.num_machines(), 2);
        assert_eq!(c.owner(0), 0);
        assert_eq!(c.owner(7), 1);
        assert_eq!(c.local_vertices(0), &[0, 1, 2, 3]);
        assert_eq!(c.vertex_counts(), &[4, 4]);
        assert_eq!(c.edge_counts(), &[4, 4]);
        assert_eq!(c.graph().num_edges(), 8);
    }

    #[test]
    #[should_panic(expected = "cover the graph")]
    fn mismatched_partition_panics() {
        let g = Arc::new(generate::ring(8));
        let other = Arc::new(generate::ring(6));
        let p = Arc::new(ChunkV.partition(&other, 2));
        Cluster::new(g, p);
    }
}
