//! Cost model: counted work → modelled time.
//!
//! The simulator never measures wall-clock; engines *count* what they do
//! and the model converts counts to time units. All paper metrics are
//! ratios, so only the relative weights matter. Defaults are calibrated so
//! a walk step, an edge scan and a vertex update cost alike and a message
//! costs a fraction of a compute unit — matching the paper's testbed where
//! 56 Gbps networking keeps communication cheaper than computation but not
//! free.

/// Work counted by a machine during one superstep's computation phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkUnits {
    /// Random-walk steps executed (KnightKing-style engines).
    pub steps: u64,
    /// Edges scanned (Gemini-style iteration engines).
    pub edges_scanned: u64,
    /// Vertex state updates applied.
    pub vertices_updated: u64,
}

impl WorkUnits {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: WorkUnits) {
        self.steps += other.steps;
        self.edges_scanned += other.edges_scanned;
        self.vertices_updated += other.vertices_updated;
    }

    /// True when no work was counted.
    pub fn is_zero(&self) -> bool {
        *self == WorkUnits::default()
    }
}

/// Converts [`WorkUnits`] and message counts into modelled time units.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Time per random-walk step.
    pub step_cost: f64,
    /// Time per edge scanned.
    pub edge_cost: f64,
    /// Time per vertex update.
    pub vertex_cost: f64,
    /// Time per message sent or received (communication phase).
    pub message_cost: f64,
    /// Time per unit of state written to (or restored from) a checkpoint:
    /// one vertex value for iteration engines, one in-flight walker for
    /// walk engines. Only charged when checkpointing is enabled.
    pub checkpoint_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // One compute unit per step/edge/vertex; one unit per message.
        // A combined network message (serialization + wire + dispatch)
        // costs far more than a float add, and this ratio puts the
        // communication phase at ~30-40% of a hash-partitioned PageRank
        // iteration — where Gemini-class systems measure it.
        CostModel {
            step_cost: 1.0,
            edge_cost: 1.0,
            vertex_cost: 1.0,
            message_cost: 1.0,
            // Checkpoints stream state to local disk: cheaper per element
            // than live computation, but not free — the interval trade-off
            // in the fault benchmarks only exists if snapshots cost time.
            checkpoint_cost: 0.25,
        }
    }
}

impl CostModel {
    /// Computation-phase time for the counted work.
    pub fn compute_time(&self, work: &WorkUnits) -> f64 {
        work.steps as f64 * self.step_cost
            + work.edges_scanned as f64 * self.edge_cost
            + work.vertices_updated as f64 * self.vertex_cost
    }

    /// Communication-phase time for a machine that sent and received the
    /// given message counts.
    pub fn comm_time(&self, sent: u64, received: u64) -> f64 {
        (sent + received) as f64 * self.message_cost
    }

    /// Time for one machine to snapshot (or restore) `state_units` units
    /// of engine state.
    pub fn checkpoint_time(&self, state_units: u64) -> f64 {
        state_units as f64 * self.checkpoint_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_is_linear() {
        let m = CostModel::default();
        let w = WorkUnits {
            steps: 10,
            edges_scanned: 5,
            vertices_updated: 2,
        };
        assert_eq!(m.compute_time(&w), 17.0);
        let weighted = CostModel {
            step_cost: 2.0,
            edge_cost: 0.5,
            vertex_cost: 0.0,
            message_cost: 0.1,
            ..CostModel::default()
        };
        assert_eq!(weighted.compute_time(&w), 22.5);
    }

    #[test]
    fn checkpoint_time_is_linear_in_state() {
        let m = CostModel::default();
        assert_eq!(m.checkpoint_time(0), 0.0);
        assert_eq!(m.checkpoint_time(100), 100.0 * m.checkpoint_cost);
        let free = CostModel {
            checkpoint_cost: 0.0,
            ..CostModel::default()
        };
        assert_eq!(free.checkpoint_time(1_000_000), 0.0);
    }

    #[test]
    fn comm_time_counts_both_directions() {
        let m = CostModel::default();
        assert_eq!(m.comm_time(4, 4), 8.0);
        assert_eq!(m.comm_time(0, 0), 0.0);
        let cheap = CostModel {
            message_cost: 0.25,
            ..CostModel::default()
        };
        assert_eq!(cheap.comm_time(4, 4), 2.0);
    }

    #[test]
    fn work_units_accumulate() {
        let mut w = WorkUnits::default();
        assert!(w.is_zero());
        w.add(WorkUnits {
            steps: 1,
            edges_scanned: 2,
            vertices_updated: 3,
        });
        w.add(WorkUnits {
            steps: 1,
            edges_scanned: 0,
            vertices_updated: 0,
        });
        assert_eq!(
            w,
            WorkUnits {
                steps: 2,
                edges_scanned: 2,
                vertices_updated: 3
            }
        );
        assert!(!w.is_zero());
    }
}
