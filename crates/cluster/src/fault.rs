//! Deterministic fault injection for the simulated cluster.
//!
//! Real BSP deployments lose machines mid-job, suffer stragglers, and see
//! lossy links; the paper's testbed metrics all assume a quiet cluster.
//! This module lets experiments replay the same faults every run: a
//! [`FaultPlan`] is a seedable description of *what goes wrong when*, and
//! a [`FaultState`] tracks which faults have fired so recovery does not
//! re-trigger them.
//!
//! Faults are applied at the exchange barrier (the only globally
//! synchronised point of a superstep), so both execution modes observe
//! them identically:
//!
//! * **crash** — a machine dies at superstep `s`. The engines roll every
//!   machine back to the last checkpoint and replay; because all engines
//!   are deterministic (per-walker RNG state migrates with the walker),
//!   replay reproduces bitwise-identical results, and only modelled time
//!   and telemetry show the damage.
//! * **straggler** — a machine's computation runs `factor`× slower over a
//!   superstep range. Results are untouched; waiting-time telemetry grows.
//! * **link drop / duplication** — each message on a directed machine pair
//!   is dropped (then retransmitted) or duplicated (then deduplicated)
//!   with some probability. Payloads still arrive exactly once, so
//!   results are unchanged; the extra traffic is charged to the cost
//!   model. The per-message decision is a stateless hash of
//!   `(seed, superstep, from, to, index)` — no RNG stream to advance —
//!   so sequential and threaded executors agree on every decision.
//!
//! Plans can be built programmatically or parsed from a compact spec
//! string (the CLI's `--fault-plan`); see [`FaultPlan::parse`].

use crate::MachineId;
use std::any::Any;
use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;

/// Why one machine's superstep did not complete.
pub enum MachineFailure {
    /// The machine's closure panicked; the payload is preserved so an
    /// unrecoverable failure can be re-raised faithfully.
    Panic(Box<dyn Any + Send + 'static>),
    /// The fault plan crashed this machine at the exchange barrier.
    Crash {
        /// Superstep during which the crash fired.
        superstep: usize,
    },
}

impl MachineFailure {
    /// Best-effort human-readable description of a panic payload.
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            MachineFailure::Panic(payload) => payload
                .downcast_ref::<&'static str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str)),
            MachineFailure::Crash { .. } => None,
        }
    }
}

impl fmt::Debug for MachineFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineFailure::Panic(_) => {
                write!(f, "Panic({:?})", self.panic_message().unwrap_or("..."))
            }
            MachineFailure::Crash { superstep } => {
                write!(f, "Crash {{ superstep: {superstep} }}")
            }
        }
    }
}

/// A machine failure the engines could not recover from (e.g. a closure
/// that panics deterministically on every replay).
#[derive(Debug)]
pub struct UnrecoverableFailure {
    /// Superstep at which recovery was abandoned.
    pub superstep: usize,
    /// The failing machine.
    pub machine: MachineId,
    /// What went wrong.
    pub failure: MachineFailure,
}

impl fmt::Display for UnrecoverableFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "machine {} failed unrecoverably at superstep {}: {:?}",
            self.machine, self.superstep, self.failure
        )
    }
}

impl std::error::Error for UnrecoverableFailure {}

/// Kinds of link fault (directed machine pair).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LinkKind {
    Drop,
    Duplicate,
}

#[derive(Clone, Debug, PartialEq)]
struct CrashFault {
    superstep: usize,
    machine: MachineId,
}

#[derive(Clone, Debug, PartialEq)]
struct StragglerFault {
    first: usize,
    last: usize,
    machine: MachineId,
    factor: f64,
}

#[derive(Clone, Debug, PartialEq)]
struct LinkFault {
    first: usize,
    last: usize,
    from: MachineId,
    to: MachineId,
    kind: LinkKind,
    probability: f64,
}

/// Extra message traffic caused by link faults on one directed pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkOverhead {
    /// Messages lost and retransmitted (sender pays one extra send).
    pub dropped: u64,
    /// Messages delivered twice and deduplicated (receiver pays one
    /// extra receive).
    pub duplicated: u64,
}

impl LinkOverhead {
    /// Total faulty events on the link.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated
    }
}

/// A deterministic, seedable schedule of faults.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    crashes: Vec<CrashFault>,
    stragglers: Vec<StragglerFault>,
    links: Vec<LinkFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the seed feeding the per-message drop/duplicate decisions.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Machine `machine` crashes at the barrier of superstep `superstep`
    /// (after computing, before its messages are delivered). Each crash
    /// fires exactly once — replaying the superstep succeeds.
    pub fn crash(mut self, superstep: usize, machine: MachineId) -> Self {
        self.crashes.push(CrashFault { superstep, machine });
        self
    }

    /// Machine `machine` computes `factor`× slower during supersteps
    /// `first..=last` (inclusive). Factors below 1.0 are clamped to 1.0.
    pub fn straggler(mut self, first: usize, last: usize, machine: MachineId, factor: f64) -> Self {
        self.stragglers.push(StragglerFault {
            first,
            last,
            machine,
            factor: factor.max(1.0),
        });
        self
    }

    /// Messages from `from` to `to` are each dropped (and retransmitted)
    /// with probability `probability` during supersteps `first..=last`.
    pub fn drop_link(
        mut self,
        first: usize,
        last: usize,
        from: MachineId,
        to: MachineId,
        probability: f64,
    ) -> Self {
        self.links.push(LinkFault {
            first,
            last,
            from,
            to,
            kind: LinkKind::Drop,
            probability: probability.clamp(0.0, 1.0),
        });
        self
    }

    /// Messages from `from` to `to` are each duplicated (and deduplicated
    /// at the receiver) with probability `probability` during supersteps
    /// `first..=last`.
    pub fn duplicate_link(
        mut self,
        first: usize,
        last: usize,
        from: MachineId,
        to: MachineId,
        probability: f64,
    ) -> Self {
        self.links.push(LinkFault {
            first,
            last,
            from,
            to,
            kind: LinkKind::Duplicate,
            probability: probability.clamp(0.0, 1.0),
        });
        self
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.stragglers.is_empty() && self.links.is_empty()
    }

    /// Number of scheduled crash faults.
    pub fn num_crashes(&self) -> usize {
        self.crashes.len()
    }

    /// The scheduled crashes as `(superstep, machine)` pairs, in plan
    /// order. The process backend maps these onto real `SIGKILL`s.
    pub fn crash_schedule(&self) -> Vec<(usize, MachineId)> {
        self.crashes
            .iter()
            .map(|c| (c.superstep, c.machine))
            .collect()
    }

    /// True when the plan schedules any link drop/duplication faults.
    pub fn has_link_faults(&self) -> bool {
        !self.links.is_empty()
    }

    /// Parses the compact spec syntax used by `--fault-plan`: clauses
    /// separated by `;`, each one of
    ///
    /// ```text
    /// seed=N                 seed for per-message decisions
    /// crash@S:mM             machine M crashes at superstep S
    /// straggle@A-B:mM:xF     machine M runs F x slower on supersteps A..=B
    /// drop@A-B:mF->mT:P      link F->T drops each message with prob. P
    /// dup@A-B:mF->mT:P       link F->T duplicates each message with prob. P
    /// ```
    ///
    /// Superstep ranges also accept a single value (`straggle@3:m0:x2`).
    /// Whitespace around clauses is ignored.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultPlanParseError> {
        let mut plan = FaultPlan::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(v) = clause.strip_prefix("seed=") {
                plan.seed = v
                    .trim()
                    .parse()
                    .map_err(|_| bad(clause, "seed must be an integer"))?;
            } else if let Some(rest) = clause.strip_prefix("crash@") {
                let (step, machine) = rest
                    .split_once(':')
                    .ok_or_else(|| bad(clause, "expected crash@S:mM"))?;
                let superstep = parse_usize(step, clause)?;
                let machine = parse_machine(machine, clause)?;
                plan = plan.crash(superstep, machine);
            } else if let Some(rest) = clause.strip_prefix("straggle@") {
                let mut parts = rest.split(':');
                let range = parts.next().ok_or_else(|| bad(clause, "missing range"))?;
                let machine = parts
                    .next()
                    .ok_or_else(|| bad(clause, "expected straggle@A-B:mM:xF"))?;
                let factor = parts
                    .next()
                    .and_then(|f| f.strip_prefix('x'))
                    .ok_or_else(|| bad(clause, "expected factor of the form xF"))?;
                if parts.next().is_some() {
                    return Err(bad(clause, "too many fields"));
                }
                let (first, last) = parse_range(range, clause)?;
                let machine = parse_machine(machine, clause)?;
                let factor: f64 = factor
                    .parse()
                    .map_err(|_| bad(clause, "factor must be a number"))?;
                plan = plan.straggler(first, last, machine, factor);
            } else if let Some((kind, rest)) = clause
                .strip_prefix("drop@")
                .map(|r| (LinkKind::Drop, r))
                .or_else(|| {
                    clause
                        .strip_prefix("dup@")
                        .map(|r| (LinkKind::Duplicate, r))
                })
            {
                let mut parts = rest.split(':');
                let range = parts.next().ok_or_else(|| bad(clause, "missing range"))?;
                let link = parts
                    .next()
                    .ok_or_else(|| bad(clause, "expected @A-B:mF->mT:P"))?;
                let prob = parts
                    .next()
                    .ok_or_else(|| bad(clause, "missing probability"))?;
                if parts.next().is_some() {
                    return Err(bad(clause, "too many fields"));
                }
                let (first, last) = parse_range(range, clause)?;
                let (from, to) = link
                    .split_once("->")
                    .ok_or_else(|| bad(clause, "expected link of the form mF->mT"))?;
                let from = parse_machine(from, clause)?;
                let to = parse_machine(to, clause)?;
                let probability: f64 = prob
                    .parse()
                    .map_err(|_| bad(clause, "probability must be a number"))?;
                if !(0.0..=1.0).contains(&probability) {
                    return Err(bad(clause, "probability must be within [0, 1]"));
                }
                plan.links.push(LinkFault {
                    first,
                    last,
                    from,
                    to,
                    kind,
                    probability,
                });
            } else {
                return Err(bad(clause, "unknown clause (crash/straggle/drop/dup/seed)"));
            }
        }
        Ok(plan)
    }
}

impl FromStr for FaultPlan {
    type Err = FaultPlanParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultPlan::parse(s)
    }
}

/// Renders the compact spec syntax accepted by [`FaultPlan::parse`], so
/// `parse(plan.to_string()) == plan` — plans survive a round trip through
/// CLI flags, job specs, and log lines. A zero seed and empty clause
/// lists are omitted; single-superstep ranges print without the `-B`
/// half, and floats use Rust's shortest-round-trip formatting, all of
/// which parse back to the identical plan.
impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        let mut clause = |f: &mut fmt::Formatter<'_>| {
            let s = sep;
            sep = "; ";
            f.write_str(s)
        };
        if self.seed != 0 {
            clause(f)?;
            write!(f, "seed={}", self.seed)?;
        }
        for c in &self.crashes {
            clause(f)?;
            write!(f, "crash@{}:m{}", c.superstep, c.machine)?;
        }
        for s in &self.stragglers {
            clause(f)?;
            write!(f, "straggle@")?;
            write_range(f, s.first, s.last)?;
            write!(f, ":m{}:x{}", s.machine, s.factor)?;
        }
        for l in &self.links {
            clause(f)?;
            let kind = match l.kind {
                LinkKind::Drop => "drop",
                LinkKind::Duplicate => "dup",
            };
            write!(f, "{kind}@")?;
            write_range(f, l.first, l.last)?;
            write!(f, ":m{}->m{}:{}", l.from, l.to, l.probability)?;
        }
        Ok(())
    }
}

fn write_range(f: &mut fmt::Formatter<'_>, first: usize, last: usize) -> fmt::Result {
    if first == last {
        write!(f, "{first}")
    } else {
        write!(f, "{first}-{last}")
    }
}

/// A malformed `--fault-plan` spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlanParseError {
    clause: String,
    reason: String,
}

impl fmt::Display for FaultPlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault clause {:?}: {}", self.clause, self.reason)
    }
}

impl std::error::Error for FaultPlanParseError {}

fn bad(clause: &str, reason: &str) -> FaultPlanParseError {
    FaultPlanParseError {
        clause: clause.to_string(),
        reason: reason.to_string(),
    }
}

fn parse_usize(s: &str, clause: &str) -> Result<usize, FaultPlanParseError> {
    s.trim()
        .parse()
        .map_err(|_| bad(clause, "superstep must be an integer"))
}

fn parse_machine(s: &str, clause: &str) -> Result<MachineId, FaultPlanParseError> {
    s.trim()
        .strip_prefix('m')
        .ok_or_else(|| bad(clause, "machine must look like m3"))?
        .parse()
        .map_err(|_| bad(clause, "machine id must be an integer"))
}

fn parse_range(s: &str, clause: &str) -> Result<(usize, usize), FaultPlanParseError> {
    match s.split_once('-') {
        Some((a, b)) => {
            let first = parse_usize(a, clause)?;
            let last = parse_usize(b, clause)?;
            if first > last {
                return Err(bad(clause, "range start exceeds range end"));
            }
            Ok((first, last))
        }
        None => {
            let v = parse_usize(s, clause)?;
            Ok((v, v))
        }
    }
}

/// SplitMix64 finalizer — the stateless mixing function behind every
/// per-message decision.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Converts 64 random bits to a float in `[0, 1)`.
#[inline]
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Runtime fault tracker: owns a plan plus the set of already-fired
/// crashes, so a replayed superstep does not crash again.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    fired: HashSet<(usize, MachineId)>,
}

impl FaultState {
    /// Tracker over `plan` with no faults fired yet.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            fired: HashSet::new(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Machines crashing at `superstep` that have not fired yet; marks
    /// them fired. Call exactly once per (possibly replayed) superstep.
    pub fn take_crashes(&mut self, superstep: usize) -> Vec<MachineId> {
        let mut crashed: Vec<MachineId> = self
            .plan
            .crashes
            .iter()
            .filter(|c| c.superstep == superstep && !self.fired.contains(&(superstep, c.machine)))
            .map(|c| c.machine)
            .collect();
        crashed.sort_unstable();
        crashed.dedup();
        for &m in &crashed {
            self.fired.insert((superstep, m));
        }
        crashed
    }

    /// Combined slowdown factor for `machine` at `superstep` (1.0 when no
    /// straggler fault is active). Stragglers are stateless, so replays
    /// are slowed identically.
    pub fn compute_factor(&self, superstep: usize, machine: MachineId) -> f64 {
        self.plan
            .stragglers
            .iter()
            .filter(|s| s.machine == machine && (s.first..=s.last).contains(&superstep))
            .map(|s| s.factor)
            .product()
    }

    /// Extra traffic on the directed link `from -> to` given `messages`
    /// staged messages this superstep. Decisions hash
    /// `(seed, superstep, from, to, index)` — identical across execution
    /// modes and across replays.
    pub fn link_overhead(
        &self,
        superstep: usize,
        from: MachineId,
        to: MachineId,
        messages: u64,
    ) -> LinkOverhead {
        let mut overhead = LinkOverhead::default();
        for fault in &self.plan.links {
            if fault.from != from || fault.to != to {
                continue;
            }
            if !(fault.first..=fault.last).contains(&superstep) {
                continue;
            }
            if fault.probability <= 0.0 || messages == 0 {
                continue;
            }
            let tag = match fault.kind {
                LinkKind::Drop => 0x5eed_d809u64,
                LinkKind::Duplicate => 0xd0_91caau64,
            };
            let base = mix(self.plan.seed ^ tag)
                ^ mix(superstep as u64)
                ^ mix(((from as u64) << 32) | to as u64);
            let mut hits = 0u64;
            for i in 0..messages {
                if unit(mix(base ^ i)) < fault.probability {
                    hits += 1;
                }
            }
            match fault.kind {
                LinkKind::Drop => overhead.dropped += hits,
                LinkKind::Duplicate => overhead.duplicated += hits,
            }
        }
        overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_parser_agree() {
        let built = FaultPlan::new()
            .with_seed(7)
            .crash(3, 1)
            .straggler(0, 5, 2, 4.0)
            .drop_link(1, 2, 0, 3, 0.5)
            .duplicate_link(4, 4, 3, 0, 0.25);
        let parsed = FaultPlan::parse(
            "seed=7; crash@3:m1; straggle@0-5:m2:x4; drop@1-2:m0->m3:0.5; dup@4:m3->m0:0.25",
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn display_round_trips_through_parse() {
        let plan = FaultPlan::new()
            .with_seed(7)
            .crash(3, 1)
            .straggler(0, 5, 2, 4.0)
            .straggler(3, 3, 0, 1.5)
            .drop_link(1, 2, 0, 3, 0.5)
            .duplicate_link(4, 4, 3, 0, 0.25);
        let spec = plan.to_string();
        assert_eq!(
            spec,
            "seed=7; crash@3:m1; straggle@0-5:m2:x4; straggle@3:m0:x1.5; \
             drop@1-2:m0->m3:0.5; dup@4:m3->m0:0.25"
        );
        assert_eq!(FaultPlan::parse(&spec).unwrap(), plan);
        // Empty plans render to the empty spec, which parses back empty.
        assert_eq!(FaultPlan::new().to_string(), "");
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn crash_schedule_lists_plan_order() {
        let plan = FaultPlan::new().crash(4, 2).crash(1, 0);
        assert_eq!(plan.crash_schedule(), vec![(4, 2), (1, 0)]);
        assert!(!plan.has_link_faults());
        assert!(FaultPlan::new()
            .drop_link(0, 1, 0, 1, 0.5)
            .has_link_faults());
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for spec in [
            "crash@3",            // missing machine
            "crash@x:m1",         // non-numeric superstep
            "straggle@0-5:m2",    // missing factor
            "straggle@5-0:m2:x2", // inverted range
            "drop@1:m0-m3:0.5",   // bad link arrow
            "drop@1:m0->m3:1.5",  // probability out of range
            "dup@1:m0->m3:nope",  // non-numeric probability
            "explode@1:m0",       // unknown clause
            "seed=abc",           // non-numeric seed
            "straggle@1:2:x2",    // machine without m prefix
        ] {
            assert!(FaultPlan::parse(spec).is_err(), "accepted {spec:?}");
        }
    }

    #[test]
    fn empty_specs_parse_to_empty_plans() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" ; ; ").unwrap().is_empty());
        assert!(FaultPlan::new().is_empty());
        assert!(!FaultPlan::new().crash(0, 0).is_empty());
    }

    #[test]
    fn crashes_fire_exactly_once() {
        let mut state = FaultState::new(FaultPlan::new().crash(2, 1).crash(2, 0).crash(5, 1));
        assert!(state.take_crashes(0).is_empty());
        assert_eq!(state.take_crashes(2), vec![0, 1]);
        // Replaying superstep 2 after recovery: no second crash.
        assert!(state.take_crashes(2).is_empty());
        assert_eq!(state.take_crashes(5), vec![1]);
        assert!(state.take_crashes(5).is_empty());
    }

    #[test]
    fn straggler_factors_compose_and_expire() {
        let state = FaultState::new(
            FaultPlan::new()
                .straggler(1, 3, 0, 2.0)
                .straggler(2, 2, 0, 3.0)
                .straggler(0, 9, 1, 5.0),
        );
        assert_eq!(state.compute_factor(0, 0), 1.0);
        assert_eq!(state.compute_factor(1, 0), 2.0);
        assert_eq!(state.compute_factor(2, 0), 6.0);
        assert_eq!(state.compute_factor(4, 0), 1.0);
        assert_eq!(state.compute_factor(4, 1), 5.0);
        assert_eq!(state.compute_factor(4, 2), 1.0);
    }

    #[test]
    fn sub_unit_straggler_factors_are_clamped() {
        let state = FaultState::new(FaultPlan::new().straggler(0, 0, 0, 0.25));
        assert_eq!(state.compute_factor(0, 0), 1.0);
    }

    #[test]
    fn link_overhead_is_deterministic_and_bounded() {
        let plan = FaultPlan::new()
            .with_seed(11)
            .drop_link(0, 10, 0, 1, 0.3)
            .duplicate_link(0, 10, 0, 1, 0.2);
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan);
        for step in 0..5 {
            let oa = a.link_overhead(step, 0, 1, 1000);
            let ob = b.link_overhead(step, 0, 1, 1000);
            assert_eq!(oa, ob);
            assert!(oa.dropped <= 1000 && oa.duplicated <= 1000);
            // With 1000 messages at p=0.3/0.2 the expected hit counts are
            // 300/200; a deterministic hash should land near them.
            assert!((150..450).contains(&(oa.dropped as i64)), "{oa:?}");
            assert!((80..320).contains(&(oa.duplicated as i64)), "{oa:?}");
        }
        // Unaffected links and supersteps see zero overhead.
        assert_eq!(a.link_overhead(3, 1, 0, 1000), LinkOverhead::default());
        assert_eq!(a.link_overhead(11, 0, 1, 1000), LinkOverhead::default());
        assert_eq!(a.link_overhead(3, 0, 1, 0), LinkOverhead::default());
    }

    #[test]
    fn link_overhead_certainty_edges() {
        let always = FaultState::new(FaultPlan::new().drop_link(0, 0, 0, 1, 1.0));
        assert_eq!(always.link_overhead(0, 0, 1, 64).dropped, 64);
        let never = FaultState::new(FaultPlan::new().drop_link(0, 0, 0, 1, 0.0));
        assert_eq!(never.link_overhead(0, 0, 1, 64).dropped, 0);
    }

    #[test]
    fn machine_failure_reports_panic_messages() {
        let failure = MachineFailure::Panic(Box::new("boom".to_string()));
        assert_eq!(failure.panic_message(), Some("boom"));
        assert!(format!("{failure:?}").contains("boom"));
        let crash = MachineFailure::Crash { superstep: 4 };
        assert_eq!(crash.panic_message(), None);
        assert!(format!("{crash:?}").contains('4'));
        let err = UnrecoverableFailure {
            superstep: 4,
            machine: 2,
            failure: crash,
        };
        assert!(err.to_string().contains("machine 2"));
    }
}
