//! Per-machine execution: sequential or real threads.
//!
//! Engines keep one state struct per machine; a superstep maps a closure
//! over all machine states. Because every machine state is a disjoint
//! `&mut`, the closure can run on real threads (crossbeam scope) with no
//! locks — results come back in machine order either way, so the two modes
//! produce identical output as long as each machine's computation is
//! self-contained (engines seed per-machine RNGs).
//!
//! A panicking closure does not abort the process: both modes catch the
//! unwind and surface it as a per-machine [`MachineFailure::Panic`], which
//! the engines treat like any other machine failure (recoverable via
//! checkpoint rollback, or re-raised when recovery is impossible).

use crate::fault::MachineFailure;
use crate::MachineId;
use crossbeam::thread;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How machine closures are executed within a superstep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// One machine after another on the calling thread (deterministic,
    /// zero overhead; the default, and the right choice on small graphs).
    #[default]
    Sequential,
    /// One OS thread per machine via a crossbeam scope — exercises the
    /// same code under real parallelism.
    Threaded,
}

/// Runs `f(machine, &mut state)` for every machine over disjoint states
/// and returns the per-machine outcomes in machine order.
///
/// A closure that panics yields `Err(MachineFailure::Panic(..))` for that
/// machine instead of tearing down the caller; the other machines still
/// run to completion in both modes. Note a panicked machine may have
/// half-updated its state — recovery must restore it from a snapshot.
pub fn for_each_machine<S, R, F>(
    mode: ExecMode,
    states: &mut [S],
    f: F,
) -> Vec<Result<R, MachineFailure>>
where
    S: Send,
    R: Send,
    F: Fn(MachineId, &mut S) -> R + Sync,
{
    match mode {
        ExecMode::Sequential => states
            .iter_mut()
            .enumerate()
            .map(|(m, s)| {
                catch_unwind(AssertUnwindSafe(|| f(m as MachineId, s)))
                    .map_err(MachineFailure::Panic)
            })
            .collect(),
        ExecMode::Threaded => thread::scope(|scope| {
            let handles: Vec<_> = states
                .iter_mut()
                .enumerate()
                .map(|(m, s)| {
                    let f = &f;
                    scope.spawn(move |_| f(m as MachineId, s))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(MachineFailure::Panic))
                .collect()
        })
        .expect("crossbeam scope failed"),
    }
}

/// Splits per-machine outcomes into all-Ok results or the first failing
/// machine. Engines call this after every fallible phase: either the
/// superstep proceeds with complete results, or recovery rolls back to
/// the last checkpoint.
pub fn collect_results<R>(
    results: Vec<Result<R, MachineFailure>>,
) -> Result<Vec<R>, (MachineId, MachineFailure)> {
    let mut ok = Vec::with_capacity(results.len());
    for (m, result) in results.into_iter().enumerate() {
        match result {
            Ok(v) => ok.push(v),
            Err(failure) => return Err((m as MachineId, failure)),
        }
    }
    Ok(ok)
}

/// [`for_each_machine`] for callers that treat any machine failure as
/// fatal: re-raises the first panic on the calling thread (preserving the
/// payload) and aborts on injected crashes.
pub fn for_each_machine_infallible<S, R, F>(mode: ExecMode, states: &mut [S], f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(MachineId, &mut S) -> R + Sync,
{
    for_each_machine(mode, states, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(MachineFailure::Panic(payload)) => std::panic::resume_unwind(payload),
            Err(failure @ MachineFailure::Crash { .. }) => {
                panic!("machine failed without a recovery path: {failure:?}")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unwrap_all<R>(results: Vec<Result<R, MachineFailure>>) -> Vec<R> {
        results
            .into_iter()
            .map(|r| r.expect("machine should succeed"))
            .collect()
    }

    #[test]
    fn sequential_and_threaded_agree() {
        let mut a = vec![1u64, 2, 3, 4];
        let mut b = a.clone();
        let f = |m: MachineId, s: &mut u64| {
            *s *= 10;
            *s + m as u64
        };
        let ra = unwrap_all(for_each_machine(ExecMode::Sequential, &mut a, f));
        let rb = unwrap_all(for_each_machine(ExecMode::Threaded, &mut b, f));
        assert_eq!(ra, rb);
        assert_eq!(a, b);
        assert_eq!(ra, vec![10, 21, 32, 43]);
    }

    #[test]
    fn results_come_back_in_machine_order() {
        let mut states = vec![(); 8];
        let r = unwrap_all(for_each_machine(ExecMode::Threaded, &mut states, |m, _| m));
        assert_eq!(r, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_machine_set_is_fine() {
        let mut states: Vec<u8> = vec![];
        let r = for_each_machine(ExecMode::Sequential, &mut states, |_, _| 0u8);
        assert!(r.is_empty());
    }

    #[test]
    fn panicking_machine_becomes_a_failure_not_an_abort() {
        for mode in [ExecMode::Sequential, ExecMode::Threaded] {
            let mut states = vec![0u32; 4];
            let results = for_each_machine(mode, &mut states, |m, s| {
                if m == 2 {
                    panic!("machine 2 exploded");
                }
                *s = m + 100;
                *s
            });
            assert_eq!(results.len(), 4);
            for (m, r) in results.iter().enumerate() {
                if m == 2 {
                    let failure = r.as_ref().unwrap_err();
                    assert_eq!(failure.panic_message(), Some("machine 2 exploded"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), m as u32 + 100);
                }
            }
            // Healthy machines still mutated their state.
            assert_eq!(states[0], 100);
            assert_eq!(states[3], 103);
        }
    }

    #[test]
    fn infallible_wrapper_reraises_the_panic_payload() {
        let mut states = vec![(); 2];
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            for_each_machine_infallible(ExecMode::Sequential, &mut states, |m, _| {
                if m == 1 {
                    panic!("original payload");
                }
            })
        }))
        .unwrap_err();
        assert_eq!(caught.downcast_ref::<&str>(), Some(&"original payload"));
    }
}
