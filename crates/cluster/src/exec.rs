//! Per-machine execution: sequential or real threads.
//!
//! Engines keep one state struct per machine; a superstep maps a closure
//! over all machine states. Because every machine state is a disjoint
//! `&mut`, the closure can run on real threads (crossbeam scope) with no
//! locks — results come back in machine order either way, so the two modes
//! produce identical output as long as each machine's computation is
//! self-contained (engines seed per-machine RNGs).

use crate::MachineId;
use crossbeam::thread;

/// How machine closures are executed within a superstep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// One machine after another on the calling thread (deterministic,
    /// zero overhead; the default, and the right choice on small graphs).
    #[default]
    Sequential,
    /// One OS thread per machine via a crossbeam scope — exercises the
    /// same code under real parallelism.
    Threaded,
}

/// Runs `f(machine, &mut state)` for every machine over disjoint states and
/// returns the per-machine results in machine order.
pub fn for_each_machine<S, R, F>(mode: ExecMode, states: &mut [S], f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(MachineId, &mut S) -> R + Sync,
{
    match mode {
        ExecMode::Sequential => states
            .iter_mut()
            .enumerate()
            .map(|(m, s)| f(m as MachineId, s))
            .collect(),
        ExecMode::Threaded => thread::scope(|scope| {
            let handles: Vec<_> = states
                .iter_mut()
                .enumerate()
                .map(|(m, s)| {
                    let f = &f;
                    scope.spawn(move |_| f(m as MachineId, s))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("machine thread panicked"))
                .collect()
        })
        .expect("crossbeam scope failed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_threaded_agree() {
        let mut a = vec![1u64, 2, 3, 4];
        let mut b = a.clone();
        let f = |m: MachineId, s: &mut u64| {
            *s *= 10;
            *s + m as u64
        };
        let ra = for_each_machine(ExecMode::Sequential, &mut a, f);
        let rb = for_each_machine(ExecMode::Threaded, &mut b, f);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
        assert_eq!(ra, vec![10, 21, 32, 43]);
    }

    #[test]
    fn results_come_back_in_machine_order() {
        let mut states = vec![(); 8];
        let r = for_each_machine(ExecMode::Threaded, &mut states, |m, _| m);
        assert_eq!(r, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn empty_machine_set_is_fine() {
        let mut states: Vec<u8> = vec![];
        let r = for_each_machine(ExecMode::Sequential, &mut states, |_, _| 0u8);
        assert!(r.is_empty());
    }
}
