//! Per-iteration, per-machine execution records and the paper's aggregates.
//!
//! One [`IterationRecord`] is appended per superstep. The aggregates match
//! §4's metrics:
//!
//! * *total running time* — Σ over iterations of
//!   `max_i(compute_i) + max_i(comm_i)` (the slowest machine gates each
//!   phase, Fig. 1),
//! * *waiting time* of machine `i` — Σ of `max(compute) − compute_i`
//!   (time spent waiting for the slowest machine, §4.3),
//! * *waiting ratio* — total waiting over all machines divided by
//!   `machines × total running time` (Fig. 13).

use bpart_core::StreamStats;
use parking_lot::Mutex;
use std::sync::OnceLock;

/// NaN-propagating max fold. `f64::max` ignores NaN on *either* side
/// (`NaN.max(x) == x`), so folding with it silently reports a poisoned
/// compute time as the fastest machine; a NaN must instead poison the
/// aggregate so it is visible in reports.
fn max_nan_propagating(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0, |acc, v| {
        if acc.is_nan() || v.is_nan() {
            f64::NAN
        } else {
            acc.max(v)
        }
    })
}

/// One superstep's timings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IterationRecord {
    /// Computation-phase time per machine.
    pub compute: Vec<f64>,
    /// Communication-phase time per machine.
    pub comm: Vec<f64>,
    /// Messages sent per machine.
    pub sent: Vec<u64>,
    /// Faults injected during this superstep (crashes fired plus messages
    /// dropped or duplicated on faulty links).
    pub faults: u64,
    /// True when this record re-executes a superstep already completed
    /// before a rollback (recovery replay).
    pub replay: bool,
    /// Recovery work charged at this superstep (checkpoint restore after
    /// a crash); added to the superstep's wall time.
    pub recovery: f64,
}

impl IterationRecord {
    /// Wall time of this superstep: slowest compute plus slowest comm,
    /// plus any recovery work (rollback happens with the cluster stalled).
    /// A NaN timing propagates into the result instead of being masked.
    pub fn wall_time(&self) -> f64 {
        let max_c = max_nan_propagating(&self.compute);
        let max_m = max_nan_propagating(&self.comm);
        max_c + max_m + self.recovery
    }

    /// Waiting time of each machine in this superstep's computation phase.
    /// A NaN compute time poisons every machine's waiting time (the barrier
    /// release time is unknowable).
    pub fn waiting(&self) -> Vec<f64> {
        let max_c = max_nan_propagating(&self.compute);
        self.compute.iter().map(|&c| max_c - c).collect()
    }
}

/// Per-machine slice of a [`Telemetry::summary`]: the paper's Fig. 13
/// quantities for one machine.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MachineWaiting {
    /// Total compute time across all supersteps.
    pub compute: f64,
    /// Total time spent waiting at the computation barrier.
    pub waiting: f64,
    /// This machine's waiting as a fraction of total running time
    /// (`waiting / total_time`, Fig. 13's per-machine bar).
    pub ratio: f64,
}

/// Run-level aggregate of a [`Telemetry`]: total time, the global waiting
/// ratio, and the per-machine breakdown behind it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySummary {
    /// Total modelled running time.
    pub total_time: f64,
    /// Global waiting ratio (Fig. 13's headline number).
    pub waiting_ratio: f64,
    /// Per-machine waiting breakdown, indexed by machine id.
    pub machines: Vec<MachineWaiting>,
}

impl TelemetrySummary {
    /// Builds the Fig. 13 summary directly from per-superstep
    /// `(compute, comm)` per-machine timing rows — the *measured* path,
    /// fed by the process backend's federated worker reports, where
    /// [`Telemetry::summary`] is the modelled one. Uses the same
    /// NaN-propagating folds, so measured and modelled tables are
    /// directly comparable.
    pub fn from_steps(steps: &[(Vec<f64>, Vec<f64>)]) -> TelemetrySummary {
        let Some(first) = steps.first() else {
            return TelemetrySummary::default();
        };
        let k = first.0.len();
        let mut total_time = 0.0;
        let mut compute = vec![0.0; k];
        let mut waiting = vec![0.0; k];
        for (c, m) in steps {
            let max_c = max_nan_propagating(c);
            total_time += max_c + max_nan_propagating(m);
            for (acc, &x) in compute.iter_mut().zip(c) {
                *acc += x;
            }
            for (acc, &x) in waiting.iter_mut().zip(c) {
                *acc += max_c - x;
            }
        }
        let machines: Vec<MachineWaiting> = waiting
            .iter()
            .zip(&compute)
            .map(|(&w, &c)| MachineWaiting {
                compute: c,
                waiting: w,
                ratio: if total_time > 0.0 {
                    w / total_time
                } else {
                    0.0
                },
            })
            .collect();
        let waiting_ratio = if total_time == 0.0 || k == 0 {
            0.0
        } else {
            waiting.iter().sum::<f64>() / (k as f64 * total_time)
        };
        TelemetrySummary {
            total_time,
            waiting_ratio,
            machines,
        }
    }
}

/// Accumulates iteration records for one application run. Interior-mutable
/// (a `parking_lot` mutex) so threaded executors can record without
/// plumbing `&mut` through machine closures.
///
/// Recording also feeds the process-wide [`bpart_obs`] metrics registry
/// (`cluster.supersteps`, `cluster.messages`, `cluster.faults`,
/// `cluster.replays`), so metric snapshots cover the BSP layer without a
/// handle on the run's `Telemetry`.
#[derive(Debug, Default)]
pub struct Telemetry {
    records: Mutex<Vec<IterationRecord>>,
    partition: Mutex<Option<StreamStats>>,
}

impl Telemetry {
    /// Fresh, empty telemetry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Appends one superstep record.
    pub fn record(&self, record: IterationRecord) {
        static SUPERSTEPS: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
        static MESSAGES: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
        static FAULTS: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
        static REPLAYS: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
        static LAST_STEP_TIME: OnceLock<&'static bpart_obs::metrics::Gauge> = OnceLock::new();
        static STEP_TIME_HIST: OnceLock<&'static bpart_obs::metrics::Histogram> = OnceLock::new();
        // Live view for `/progress`: the modelled wall time of the most
        // recent superstep (a creeping value flags a straggler mid-run).
        LAST_STEP_TIME
            .get_or_init(|| bpart_obs::metrics::gauge("cluster.last_superstep_time"))
            .set(record.wall_time());
        // Distribution of modelled superstep times (cost-model units):
        // the `le` buckets feed the shared quantile estimator, so alert
        // `Quantile` rules and report percentiles can watch the BSP
        // layer's tail without a handle on this `Telemetry`.
        STEP_TIME_HIST
            .get_or_init(|| {
                bpart_obs::metrics::histogram(
                    "cluster.superstep_time",
                    &[
                        1e2, 2.5e2, 5e2, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 5e5, 1e6,
                    ],
                )
            })
            .observe(record.wall_time());
        SUPERSTEPS
            .get_or_init(|| bpart_obs::metrics::counter("cluster.supersteps"))
            .inc();
        MESSAGES
            .get_or_init(|| bpart_obs::metrics::counter("cluster.messages"))
            .add(record.sent.iter().sum());
        FAULTS
            .get_or_init(|| bpart_obs::metrics::counter("cluster.faults"))
            .add(record.faults);
        if record.replay {
            REPLAYS
                .get_or_init(|| bpart_obs::metrics::counter("cluster.replays"))
                .inc();
        }
        self.records.lock().push(record);
    }

    /// Number of supersteps recorded.
    pub fn num_iterations(&self) -> usize {
        self.records.lock().len()
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<IterationRecord> {
        self.records.lock().clone()
    }

    /// Records the partitioning stage's streaming telemetry (buffer count,
    /// worker threads, synchronization stalls). Called once before the
    /// supersteps start; a later call overwrites the earlier record.
    pub fn record_partition(&self, stats: StreamStats) {
        *self.partition.lock() = Some(stats);
    }

    /// The partitioning stage's streaming telemetry, if recorded.
    pub fn partition_stats(&self) -> Option<StreamStats> {
        *self.partition.lock()
    }

    /// Partitioning throughput in vertices per second; zero when no
    /// partition stage was recorded.
    pub fn partition_throughput(&self) -> f64 {
        self.partition.lock().map_or(0.0, |s| s.vertices_per_sec())
    }

    /// Total modelled running time (Σ per-iteration wall time).
    pub fn total_time(&self) -> f64 {
        self.records.lock().iter().map(|r| r.wall_time()).sum()
    }

    /// Per-machine total waiting time across all iterations.
    pub fn waiting_per_machine(&self) -> Vec<f64> {
        let records = self.records.lock();
        let Some(first) = records.first() else {
            return Vec::new();
        };
        let mut waiting = vec![0.0; first.compute.len()];
        for r in records.iter() {
            for (w, x) in waiting.iter_mut().zip(r.waiting()) {
                *w += x;
            }
        }
        waiting
    }

    /// Fig. 13 in one call: total time, the global waiting ratio, and each
    /// machine's waiting time and per-machine ratio.
    pub fn summary(&self) -> TelemetrySummary {
        let total_time = self.total_time();
        let waiting = self.waiting_per_machine();
        let mut compute = vec![0.0; waiting.len()];
        for r in self.records.lock().iter() {
            for (acc, &c) in compute.iter_mut().zip(&r.compute) {
                *acc += c;
            }
        }
        let machines: Vec<MachineWaiting> = waiting
            .iter()
            .zip(&compute)
            .map(|(&w, &c)| MachineWaiting {
                compute: c,
                waiting: w,
                ratio: if total_time > 0.0 {
                    w / total_time
                } else {
                    0.0
                },
            })
            .collect();
        TelemetrySummary {
            total_time,
            waiting_ratio: self.waiting_ratio(),
            machines,
        }
    }

    /// The paper's Fig. 13 metric: total waiting of all machines divided by
    /// `machines × total running time`. Zero when nothing was recorded.
    pub fn waiting_ratio(&self) -> f64 {
        let total = self.total_time();
        let waiting = self.waiting_per_machine();
        if total == 0.0 || waiting.is_empty() {
            return 0.0;
        }
        waiting.iter().sum::<f64>() / (waiting.len() as f64 * total)
    }

    /// Total messages sent by all machines (Fig. 5b's "total message
    /// walks" when the engine sends one message per migrating walker).
    pub fn total_messages(&self) -> u64 {
        self.records
            .lock()
            .iter()
            .flat_map(|r| r.sent.iter().copied())
            .sum()
    }

    /// Total faults injected across all supersteps (crashes plus faulty
    /// link events). Zero on a fault-free run.
    pub fn total_faults(&self) -> u64 {
        self.records.lock().iter().map(|r| r.faults).sum()
    }

    /// Number of supersteps that were recovery replays of previously
    /// completed work. Zero unless a crash forced a rollback.
    pub fn replayed_supersteps(&self) -> usize {
        self.records.lock().iter().filter(|r| r.replay).count()
    }

    /// Total recovery work charged across the run: checkpoint restores
    /// plus the compute re-executed during replayed supersteps.
    pub fn total_recovery_time(&self) -> f64 {
        self.records
            .lock()
            .iter()
            .map(|r| {
                let replayed = if r.replay {
                    r.wall_time() - r.recovery
                } else {
                    0.0
                };
                r.recovery + replayed
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(compute: Vec<f64>, comm: Vec<f64>, sent: Vec<u64>) -> IterationRecord {
        IterationRecord {
            compute,
            comm,
            sent,
            ..IterationRecord::default()
        }
    }

    #[test]
    fn wall_time_takes_the_slowest_of_each_phase() {
        let r = rec(vec![3.0, 5.0], vec![1.0, 0.5], vec![0, 0]);
        assert_eq!(r.wall_time(), 6.0);
        assert_eq!(r.waiting(), vec![2.0, 0.0]);
    }

    #[test]
    fn aggregates_over_iterations() {
        let t = Telemetry::new();
        t.record(rec(vec![4.0, 2.0], vec![0.0, 0.0], vec![1, 2]));
        t.record(rec(vec![1.0, 3.0], vec![1.0, 1.0], vec![3, 4]));
        assert_eq!(t.num_iterations(), 2);
        assert_eq!(t.total_time(), 4.0 + 4.0);
        assert_eq!(t.waiting_per_machine(), vec![2.0, 2.0]);
        assert_eq!(t.total_messages(), 10);
        // waiting ratio: (2+2) / (2 machines * 8) = 0.25
        assert!((t.waiting_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn perfectly_balanced_run_has_zero_waiting() {
        let t = Telemetry::new();
        t.record(rec(vec![2.0, 2.0, 2.0], vec![0.5, 0.5, 0.5], vec![0, 0, 0]));
        assert_eq!(t.waiting_ratio(), 0.0);
    }

    #[test]
    fn empty_telemetry_is_zero() {
        let t = Telemetry::new();
        assert_eq!(t.total_time(), 0.0);
        assert_eq!(t.waiting_ratio(), 0.0);
        assert!(t.waiting_per_machine().is_empty());
        assert_eq!(t.total_messages(), 0);
        assert_eq!(t.total_faults(), 0);
        assert_eq!(t.replayed_supersteps(), 0);
        assert_eq!(t.total_recovery_time(), 0.0);
    }

    #[test]
    fn partition_stage_stats_are_exposed() {
        let t = Telemetry::new();
        assert!(t.partition_stats().is_none());
        assert_eq!(t.partition_throughput(), 0.0);
        t.record_partition(StreamStats {
            vertices: 1_000,
            edges: 30_000,
            buffers: 4,
            secs: 0.5,
            sync_secs: 0.1,
            threads: 2,
        });
        let s = t.partition_stats().expect("recorded");
        assert_eq!(s.vertices, 1_000);
        assert_eq!(s.threads, 2);
        assert!((t.partition_throughput() - 2_000.0).abs() < 1e-9);
        assert!((s.sync_stall_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn nan_timings_propagate_instead_of_vanishing() {
        // f64::max drops NaN (NaN.max(x) == x), so the old fold reported a
        // poisoned machine as instantaneous; the aggregate must go NaN.
        let r = rec(vec![3.0, f64::NAN], vec![1.0, 0.5], vec![0, 0]);
        assert!(r.wall_time().is_nan(), "NaN compute must poison wall_time");
        assert!(r.waiting().iter().all(|w| w.is_nan()));
        // NaN first in the list (the accumulator side) must also survive.
        let r = rec(vec![f64::NAN, 3.0], vec![1.0, 0.5], vec![0, 0]);
        assert!(r.wall_time().is_nan());
        // A NaN comm time poisons wall_time but not compute waiting.
        let r = rec(vec![2.0, 1.0], vec![f64::NAN, 0.5], vec![0, 0]);
        assert!(r.wall_time().is_nan());
        assert_eq!(r.waiting(), vec![0.0, 1.0]);
        // NaN-free records are untouched by the new fold.
        let r = rec(vec![3.0, 5.0], vec![1.0, 0.5], vec![0, 0]);
        assert_eq!(r.wall_time(), 6.0);
    }

    #[test]
    fn summary_breaks_waiting_down_per_machine() {
        let t = Telemetry::new();
        t.record(rec(vec![4.0, 2.0], vec![0.0, 0.0], vec![1, 2]));
        t.record(rec(vec![1.0, 3.0], vec![1.0, 1.0], vec![3, 4]));
        let s = t.summary();
        assert_eq!(s.total_time, 8.0);
        assert!((s.waiting_ratio - 0.25).abs() < 1e-12);
        assert_eq!(s.machines.len(), 2);
        assert_eq!(s.machines[0].compute, 5.0);
        assert_eq!(s.machines[0].waiting, 2.0);
        assert!((s.machines[0].ratio - 0.25).abs() < 1e-12);
        assert_eq!(s.machines[1].waiting, 2.0);
        // Per-machine ratios average to the global ratio by construction.
        let mean: f64 = s.machines.iter().map(|m| m.ratio).sum::<f64>() / s.machines.len() as f64;
        assert!((mean - s.waiting_ratio).abs() < 1e-12);
        // Empty telemetry yields an empty, all-zero summary.
        let empty = Telemetry::new().summary();
        assert_eq!(empty.total_time, 0.0);
        assert!(empty.machines.is_empty());
    }

    #[test]
    fn from_steps_matches_the_recorded_summary() {
        // The measured path (raw per-step timing rows) must agree with
        // the modelled path (recorded Telemetry) on identical inputs.
        let steps = vec![
            (vec![4.0, 2.0], vec![0.0, 0.0]),
            (vec![1.0, 3.0], vec![1.0, 1.0]),
        ];
        let t = Telemetry::new();
        for (c, m) in &steps {
            t.record(rec(c.clone(), m.clone(), vec![0, 0]));
        }
        assert_eq!(TelemetrySummary::from_steps(&steps), t.summary());
        // Empty input yields the empty summary; NaN poisons totals.
        assert_eq!(
            TelemetrySummary::from_steps(&[]),
            TelemetrySummary::default()
        );
        let poisoned = TelemetrySummary::from_steps(&[(vec![1.0, f64::NAN], vec![0.0, 0.0])]);
        assert!(poisoned.total_time.is_nan());
    }

    #[test]
    fn fault_fields_feed_the_recovery_aggregates() {
        let t = Telemetry::new();
        // Normal superstep, then an aborted one (crash), then its replay.
        t.record(rec(vec![2.0, 1.0], vec![1.0, 1.0], vec![5, 5]));
        t.record(IterationRecord {
            compute: vec![2.0, 1.0],
            comm: vec![0.0, 0.0],
            sent: vec![0, 0],
            faults: 1,
            replay: false,
            recovery: 4.0,
        });
        t.record(IterationRecord {
            compute: vec![2.0, 1.0],
            comm: vec![1.0, 1.0],
            sent: vec![5, 5],
            faults: 0,
            replay: true,
            recovery: 0.0,
        });
        assert_eq!(t.total_faults(), 1);
        assert_eq!(t.replayed_supersteps(), 1);
        // Recovery time = 4.0 restore + 3.0 replayed superstep wall time.
        assert!((t.total_recovery_time() - 7.0).abs() < 1e-12);
        // Wall time of the aborted superstep includes the restore.
        assert_eq!(t.records()[1].wall_time(), 2.0 + 4.0);
        // Total time counts wasted, restore, and replayed work.
        assert!((t.total_time() - (3.0 + 6.0 + 3.0)).abs() < 1e-12);
    }
}
