//! Per-iteration, per-machine execution records and the paper's aggregates.
//!
//! One [`IterationRecord`] is appended per superstep. The aggregates match
//! §4's metrics:
//!
//! * *total running time* — Σ over iterations of
//!   `max_i(compute_i) + max_i(comm_i)` (the slowest machine gates each
//!   phase, Fig. 1),
//! * *waiting time* of machine `i` — Σ of `max(compute) − compute_i`
//!   (time spent waiting for the slowest machine, §4.3),
//! * *waiting ratio* — total waiting over all machines divided by
//!   `machines × total running time` (Fig. 13).

use bpart_core::StreamStats;
use parking_lot::Mutex;

/// One superstep's timings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IterationRecord {
    /// Computation-phase time per machine.
    pub compute: Vec<f64>,
    /// Communication-phase time per machine.
    pub comm: Vec<f64>,
    /// Messages sent per machine.
    pub sent: Vec<u64>,
    /// Faults injected during this superstep (crashes fired plus messages
    /// dropped or duplicated on faulty links).
    pub faults: u64,
    /// True when this record re-executes a superstep already completed
    /// before a rollback (recovery replay).
    pub replay: bool,
    /// Recovery work charged at this superstep (checkpoint restore after
    /// a crash); added to the superstep's wall time.
    pub recovery: f64,
}

impl IterationRecord {
    /// Wall time of this superstep: slowest compute plus slowest comm,
    /// plus any recovery work (rollback happens with the cluster stalled).
    pub fn wall_time(&self) -> f64 {
        let max_c = self.compute.iter().cloned().fold(0.0, f64::max);
        let max_m = self.comm.iter().cloned().fold(0.0, f64::max);
        max_c + max_m + self.recovery
    }

    /// Waiting time of each machine in this superstep's computation phase.
    pub fn waiting(&self) -> Vec<f64> {
        let max_c = self.compute.iter().cloned().fold(0.0, f64::max);
        self.compute.iter().map(|&c| max_c - c).collect()
    }
}

/// Accumulates iteration records for one application run. Interior-mutable
/// (a `parking_lot` mutex) so threaded executors can record without
/// plumbing `&mut` through machine closures.
#[derive(Debug, Default)]
pub struct Telemetry {
    records: Mutex<Vec<IterationRecord>>,
    partition: Mutex<Option<StreamStats>>,
}

impl Telemetry {
    /// Fresh, empty telemetry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Appends one superstep record.
    pub fn record(&self, record: IterationRecord) {
        self.records.lock().push(record);
    }

    /// Number of supersteps recorded.
    pub fn num_iterations(&self) -> usize {
        self.records.lock().len()
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<IterationRecord> {
        self.records.lock().clone()
    }

    /// Records the partitioning stage's streaming telemetry (buffer count,
    /// worker threads, synchronization stalls). Called once before the
    /// supersteps start; a later call overwrites the earlier record.
    pub fn record_partition(&self, stats: StreamStats) {
        *self.partition.lock() = Some(stats);
    }

    /// The partitioning stage's streaming telemetry, if recorded.
    pub fn partition_stats(&self) -> Option<StreamStats> {
        *self.partition.lock()
    }

    /// Partitioning throughput in vertices per second; zero when no
    /// partition stage was recorded.
    pub fn partition_throughput(&self) -> f64 {
        self.partition.lock().map_or(0.0, |s| s.vertices_per_sec())
    }

    /// Total modelled running time (Σ per-iteration wall time).
    pub fn total_time(&self) -> f64 {
        self.records.lock().iter().map(|r| r.wall_time()).sum()
    }

    /// Per-machine total waiting time across all iterations.
    pub fn waiting_per_machine(&self) -> Vec<f64> {
        let records = self.records.lock();
        let Some(first) = records.first() else {
            return Vec::new();
        };
        let mut waiting = vec![0.0; first.compute.len()];
        for r in records.iter() {
            for (w, x) in waiting.iter_mut().zip(r.waiting()) {
                *w += x;
            }
        }
        waiting
    }

    /// The paper's Fig. 13 metric: total waiting of all machines divided by
    /// `machines × total running time`. Zero when nothing was recorded.
    pub fn waiting_ratio(&self) -> f64 {
        let total = self.total_time();
        let waiting = self.waiting_per_machine();
        if total == 0.0 || waiting.is_empty() {
            return 0.0;
        }
        waiting.iter().sum::<f64>() / (waiting.len() as f64 * total)
    }

    /// Total messages sent by all machines (Fig. 5b's "total message
    /// walks" when the engine sends one message per migrating walker).
    pub fn total_messages(&self) -> u64 {
        self.records
            .lock()
            .iter()
            .flat_map(|r| r.sent.iter().copied())
            .sum()
    }

    /// Total faults injected across all supersteps (crashes plus faulty
    /// link events). Zero on a fault-free run.
    pub fn total_faults(&self) -> u64 {
        self.records.lock().iter().map(|r| r.faults).sum()
    }

    /// Number of supersteps that were recovery replays of previously
    /// completed work. Zero unless a crash forced a rollback.
    pub fn replayed_supersteps(&self) -> usize {
        self.records.lock().iter().filter(|r| r.replay).count()
    }

    /// Total recovery work charged across the run: checkpoint restores
    /// plus the compute re-executed during replayed supersteps.
    pub fn total_recovery_time(&self) -> f64 {
        self.records
            .lock()
            .iter()
            .map(|r| {
                let replayed = if r.replay {
                    r.wall_time() - r.recovery
                } else {
                    0.0
                };
                r.recovery + replayed
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(compute: Vec<f64>, comm: Vec<f64>, sent: Vec<u64>) -> IterationRecord {
        IterationRecord {
            compute,
            comm,
            sent,
            ..IterationRecord::default()
        }
    }

    #[test]
    fn wall_time_takes_the_slowest_of_each_phase() {
        let r = rec(vec![3.0, 5.0], vec![1.0, 0.5], vec![0, 0]);
        assert_eq!(r.wall_time(), 6.0);
        assert_eq!(r.waiting(), vec![2.0, 0.0]);
    }

    #[test]
    fn aggregates_over_iterations() {
        let t = Telemetry::new();
        t.record(rec(vec![4.0, 2.0], vec![0.0, 0.0], vec![1, 2]));
        t.record(rec(vec![1.0, 3.0], vec![1.0, 1.0], vec![3, 4]));
        assert_eq!(t.num_iterations(), 2);
        assert_eq!(t.total_time(), 4.0 + 4.0);
        assert_eq!(t.waiting_per_machine(), vec![2.0, 2.0]);
        assert_eq!(t.total_messages(), 10);
        // waiting ratio: (2+2) / (2 machines * 8) = 0.25
        assert!((t.waiting_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn perfectly_balanced_run_has_zero_waiting() {
        let t = Telemetry::new();
        t.record(rec(vec![2.0, 2.0, 2.0], vec![0.5, 0.5, 0.5], vec![0, 0, 0]));
        assert_eq!(t.waiting_ratio(), 0.0);
    }

    #[test]
    fn empty_telemetry_is_zero() {
        let t = Telemetry::new();
        assert_eq!(t.total_time(), 0.0);
        assert_eq!(t.waiting_ratio(), 0.0);
        assert!(t.waiting_per_machine().is_empty());
        assert_eq!(t.total_messages(), 0);
        assert_eq!(t.total_faults(), 0);
        assert_eq!(t.replayed_supersteps(), 0);
        assert_eq!(t.total_recovery_time(), 0.0);
    }

    #[test]
    fn partition_stage_stats_are_exposed() {
        let t = Telemetry::new();
        assert!(t.partition_stats().is_none());
        assert_eq!(t.partition_throughput(), 0.0);
        t.record_partition(StreamStats {
            vertices: 1_000,
            buffers: 4,
            secs: 0.5,
            sync_secs: 0.1,
            threads: 2,
        });
        let s = t.partition_stats().expect("recorded");
        assert_eq!(s.vertices, 1_000);
        assert_eq!(s.threads, 2);
        assert!((t.partition_throughput() - 2_000.0).abs() < 1e-9);
        assert!((s.sync_stall_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fault_fields_feed_the_recovery_aggregates() {
        let t = Telemetry::new();
        // Normal superstep, then an aborted one (crash), then its replay.
        t.record(rec(vec![2.0, 1.0], vec![1.0, 1.0], vec![5, 5]));
        t.record(IterationRecord {
            compute: vec![2.0, 1.0],
            comm: vec![0.0, 0.0],
            sent: vec![0, 0],
            faults: 1,
            replay: false,
            recovery: 4.0,
        });
        t.record(IterationRecord {
            compute: vec![2.0, 1.0],
            comm: vec![1.0, 1.0],
            sent: vec![5, 5],
            faults: 0,
            replay: true,
            recovery: 0.0,
        });
        assert_eq!(t.total_faults(), 1);
        assert_eq!(t.replayed_supersteps(), 1);
        // Recovery time = 4.0 restore + 3.0 replayed superstep wall time.
        assert!((t.total_recovery_time() - 7.0).abs() < 1e-12);
        // Wall time of the aborted superstep includes the restore.
        assert_eq!(t.records()[1].wall_time(), 2.0 + 4.0);
        // Total time counts wasted, restore, and replayed work.
        assert!((t.total_time() - (3.0 + 6.0 + 3.0)).abs() < 1e-12);
    }
}
