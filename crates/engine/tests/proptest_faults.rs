//! Property-based tests for fault injection: under a fixed `FaultPlan`,
//! recovery reproduces the fault-free answer bit-for-bit, and both
//! execution modes agree on results *and* fault telemetry for arbitrary
//! graphs, crash points, and checkpoint intervals.

use bpart_cluster::exec::ExecMode;
use bpart_cluster::{Cluster, CostModel, FaultPlan};
use bpart_core::{ChunkV, Partitioner};
use bpart_engine::{apps::PageRank, IterationEngine};
use bpart_graph::generate;
use proptest::prelude::*;
use std::sync::Arc;

fn faulted_engine(
    graph: &Arc<bpart_graph::CsrGraph>,
    mode: ExecMode,
    plan: &FaultPlan,
    checkpoint_every: usize,
) -> IterationEngine {
    let partition = Arc::new(ChunkV.partition(graph, 4));
    IterationEngine::new(
        Cluster::new(graph.clone(), partition),
        CostModel::default(),
        mode,
    )
    .with_faults(plan.clone())
    .with_checkpoint_every(checkpoint_every)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recovery_reproduces_fault_free_values(
        seed in 0u64..200,
        crash_at in 0usize..8,
        machine in 0u32..4,
        every in 1usize..5,
    ) {
        let graph = Arc::new(generate::erdos_renyi(60, 480, seed));
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let app = PageRank::new(8);
        let clean = IterationEngine::default_for(graph.clone(), partition).run(&app);
        let plan = FaultPlan::new().crash(crash_at, machine);
        let faulted = faulted_engine(&graph, ExecMode::Sequential, &plan, every).run(&app);
        prop_assert_eq!(&clean.values, &faulted.values);
        prop_assert_eq!(clean.iterations, faulted.iterations);
        prop_assert_eq!(faulted.telemetry.total_faults(), 1);
        prop_assert!(faulted.telemetry.total_recovery_time() > 0.0);
    }

    #[test]
    fn exec_modes_agree_under_a_fixed_fault_plan(
        seed in 0u64..100,
        crash_at in 0usize..6,
        every in 1usize..4,
    ) {
        let graph = Arc::new(generate::erdos_renyi(50, 400, seed));
        let plan = FaultPlan::new()
            .with_seed(seed)
            .crash(crash_at, 2)
            .straggler(0, 9, 1, 3.0)
            .drop_link(0, 9, 0, 3, 0.4)
            .duplicate_link(0, 9, 3, 0, 0.2);
        let app = PageRank::new(7);
        let seq = faulted_engine(&graph, ExecMode::Sequential, &plan, every).run(&app);
        let thr = faulted_engine(&graph, ExecMode::Threaded, &plan, every).run(&app);
        prop_assert_eq!(&seq.values, &thr.values);
        prop_assert_eq!(seq.iterations, thr.iterations);
        prop_assert_eq!(seq.telemetry.total_faults(), thr.telemetry.total_faults());
        prop_assert_eq!(
            seq.telemetry.replayed_supersteps(),
            thr.telemetry.replayed_supersteps()
        );
        prop_assert_eq!(seq.telemetry.total_time(), thr.telemetry.total_time());
        prop_assert_eq!(seq.telemetry.total_messages(), thr.telemetry.total_messages());
    }
}
