//! The vertex-program abstraction (Gemini's signal/slot style).

use bpart_graph::{CsrGraph, VertexId};

/// Per-iteration context handed to [`VertexProgram::apply`].
#[derive(Clone, Copy, Debug)]
pub struct ProgramContext {
    /// 0-based iteration number.
    pub iteration: usize,
    /// Number of vertices in the whole graph.
    pub num_vertices: usize,
    /// Global aggregate computed from the *previous* iteration's values
    /// (see [`VertexProgram::aggregate`]); 0 in iteration 0... unless the
    /// engine seeded it from the initial values, which it does.
    pub aggregate: f64,
}

/// A vertex-centric program executed by
/// [`IterationEngine`](crate::IterationEngine).
///
/// Each iteration: every *active* vertex `u` produces one signal via
/// [`scatter`](VertexProgram::scatter), which is delivered along all of
/// `u`'s out-edges (and in-edges too if
/// [`use_in_edges`](VertexProgram::use_in_edges) is true). Signals headed
/// to the same target are merged with
/// [`combine`](VertexProgram::combine) before crossing the network —
/// Gemini's sender-side combining. After the exchange,
/// [`apply`](VertexProgram::apply) folds the combined signal into each
/// signalled vertex (and every vertex, for programs that update
/// unconditionally like PageRank); it returns whether the vertex is active
/// in the next iteration.
pub trait VertexProgram: Sync {
    /// Per-vertex state.
    type Value: Clone + Send + Sync;
    /// Signal payload (must combine associatively).
    type Accum: Clone + Send;

    /// Initial state of vertex `v`.
    fn init(&self, v: VertexId, graph: &CsrGraph) -> Self::Value;

    /// Whether `v` starts active.
    fn initially_active(&self, v: VertexId, graph: &CsrGraph) -> bool;

    /// Signal produced by active vertex `u`; `None` sends nothing.
    fn scatter(&self, u: VertexId, value: &Self::Value, graph: &CsrGraph) -> Option<Self::Accum>;

    /// Merges `b` into `a` (associative, commutative).
    fn combine(&self, a: &mut Self::Accum, b: Self::Accum);

    /// Folds the combined incoming signal (if any) into `v`'s state;
    /// returns whether `v` is active next iteration.
    fn apply(
        &self,
        v: VertexId,
        value: &mut Self::Value,
        incoming: Option<Self::Accum>,
        ctx: &ProgramContext,
        graph: &CsrGraph,
    ) -> bool;

    /// When true, [`apply`](VertexProgram::apply) runs on *every* local
    /// vertex each iteration (synchronous programs like PageRank); when
    /// false, only on vertices that received a signal (traversals).
    fn apply_to_all(&self) -> bool {
        false
    }

    /// Signals also travel along in-edges (needed for weakly-connected
    /// component style programs on directed graphs).
    fn use_in_edges(&self) -> bool {
        false
    }

    /// Per-vertex contribution to a global scalar aggregate, summed each
    /// iteration and delivered in the next iteration's
    /// [`ProgramContext::aggregate`] (PageRank uses it for dangling mass).
    fn aggregate(&self, _v: VertexId, _value: &Self::Value, _graph: &CsrGraph) -> f64 {
        0.0
    }

    /// Hard iteration limit (`None` = run until no vertex is active).
    fn max_iterations(&self) -> Option<usize> {
        None
    }
}
