//! Iteration-engine applications.
//!
//! The two the paper runs on Gemini — [`PageRank`] (10 iterations) and
//! [`ConnectedComponents`] (until convergence) — plus [`Bfs`] and [`Sssp`]
//! as additional Gemini-style workloads.

mod bfs;
mod cc;
mod delta_pagerank;
mod pagerank;
mod sssp;

pub use bfs::Bfs;
pub use cc::ConnectedComponents;
pub use delta_pagerank::{DeltaPageRank, RankState};
pub use pagerank::{reference_pagerank, PageRank};
pub use sssp::{edge_weight, reference_sssp, Sssp};
