//! Delta (forward-push) PageRank: runs to a residual tolerance instead of
//! a fixed iteration count, only propagating *changes*.
//!
//! Each vertex holds `(rank, residual)`. A vertex is active while its
//! residual exceeds the tolerance; when active it pushes
//! `d · residual / outdeg` to its out-neighbors and flushes
//! `(1 − d) · residual` into its rank. At convergence
//! `rank + (1 − d)·residual ≈ PageRank(v)` (without dangling
//! redistribution — dangling residual retires into the vertex's own rank).
//!
//! Unlike the synchronous [`PageRank`](crate::apps::PageRank) (which
//! touches every edge every iteration), work here shrinks with the
//! frontier — the sparse-mode behaviour Gemini switches to as PageRank
//! converges, and a second, differently-shaped engine workload for the
//! load-balance experiments.

use crate::program::{ProgramContext, VertexProgram};
use bpart_graph::{CsrGraph, VertexId};

/// Per-vertex state: accumulated rank plus unpushed residual mass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankState {
    /// Settled PageRank mass.
    pub rank: f64,
    /// Mass not yet pushed to neighbors.
    pub residual: f64,
}

/// Convergence-driven PageRank vertex program.
#[derive(Clone, Copy, Debug)]
pub struct DeltaPageRank {
    /// Damping factor `d` (classic 0.85).
    pub damping: f64,
    /// Residual threshold below which a vertex goes quiet.
    pub tolerance: f64,
    /// Safety cap on supersteps.
    pub max_iterations: usize,
}

impl DeltaPageRank {
    /// Delta PageRank with damping 0.85 and the given tolerance.
    pub fn new(tolerance: f64) -> Self {
        DeltaPageRank {
            damping: 0.85,
            tolerance,
            max_iterations: 10_000,
        }
    }

    /// Final PageRank estimate for a finished state.
    pub fn estimate(&self, state: &RankState) -> f64 {
        state.rank + (1.0 - self.damping) * state.residual
    }
}

impl VertexProgram for DeltaPageRank {
    type Value = RankState;
    type Accum = f64;

    fn init(&self, _v: VertexId, graph: &CsrGraph) -> RankState {
        RankState {
            rank: 0.0,
            residual: 1.0 / graph.num_vertices() as f64,
        }
    }

    fn initially_active(&self, _v: VertexId, _graph: &CsrGraph) -> bool {
        true
    }

    fn scatter(&self, u: VertexId, value: &RankState, graph: &CsrGraph) -> Option<f64> {
        let deg = graph.out_degree(u);
        (deg > 0).then(|| self.damping * value.residual / deg as f64)
    }

    fn combine(&self, a: &mut f64, b: f64) {
        *a += b;
    }

    fn apply(
        &self,
        _v: VertexId,
        value: &mut RankState,
        incoming: Option<f64>,
        _ctx: &ProgramContext,
        _graph: &CsrGraph,
    ) -> bool {
        // A vertex that was active this superstep has already pushed its
        // residual (scatter reads the pre-apply state), so flush it.
        if value.residual > self.tolerance {
            value.rank += (1.0 - self.damping) * value.residual;
            value.residual = 0.0;
        }
        value.residual += incoming.unwrap_or(0.0);
        value.residual > self.tolerance
    }

    fn apply_to_all(&self) -> bool {
        true
    }

    fn max_iterations(&self) -> Option<usize> {
        Some(self.max_iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::reference_pagerank;
    use crate::engine::IterationEngine;
    use bpart_core::{BPart, ChunkV, HashPartitioner, Partitioner};
    use bpart_graph::{generate, GraphBuilder};
    use std::sync::Arc;

    /// Symmetrized power-law graph: no dangling vertices, so the reference
    /// (which redistributes dangling mass) and delta PR agree.
    fn dangling_free_graph() -> Arc<bpart_graph::CsrGraph> {
        let base = generate::twitter_like().generate_scaled(0.005);
        Arc::new(
            GraphBuilder::new(base.num_vertices())
                .edges(base.edges())
                .symmetric()
                .build(),
        )
    }

    #[test]
    fn converges_to_reference_pagerank() {
        let graph = dangling_free_graph();
        let app = DeltaPageRank::new(1e-9);
        let partition = Arc::new(HashPartitioner::default().partition(&graph, 4));
        let run = IterationEngine::default_for(graph.clone(), partition).run(&app);
        let expected = reference_pagerank(&graph, 0.85, 200);
        for (v, state) in run.values.iter().enumerate() {
            let got = app.estimate(state);
            assert!(
                (got - expected[v]).abs() < 1e-6,
                "vertex {v}: {got} vs {}",
                expected[v]
            );
        }
    }

    #[test]
    fn total_mass_is_conserved() {
        let graph = dangling_free_graph();
        let app = DeltaPageRank::new(1e-8);
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let run = IterationEngine::default_for(graph.clone(), partition).run(&app);
        let total: f64 = run.values.iter().map(|s| app.estimate(s)).sum();
        assert!((total - 1.0).abs() < 1e-4, "total {total}");
    }

    #[test]
    fn partition_invariant() {
        let graph = dangling_free_graph();
        let app = DeltaPageRank::new(1e-7);
        let a = IterationEngine::default_for(graph.clone(), Arc::new(ChunkV.partition(&graph, 4)))
            .run(&app);
        let b = IterationEngine::default_for(
            graph.clone(),
            Arc::new(BPart::default().partition(&graph, 4)),
        )
        .run(&app);
        for (x, y) in a.values.iter().zip(&b.values) {
            assert!((app.estimate(x) - app.estimate(y)).abs() < 1e-9);
        }
    }

    #[test]
    fn work_shrinks_as_the_frontier_converges() {
        let graph = dangling_free_graph();
        let app = DeltaPageRank::new(1e-6);
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let run = IterationEngine::default_for(graph.clone(), partition).run(&app);
        let records = run.telemetry.records();
        assert!(records.len() >= 4, "needs a few supersteps");
        let early: f64 = records[0].compute.iter().sum();
        let late: f64 = records[records.len() - 2].compute.iter().sum();
        assert!(
            late < early * 0.5,
            "frontier should shrink: early {early}, late {late}"
        );
    }

    #[test]
    fn looser_tolerance_finishes_sooner() {
        let graph = dangling_free_graph();
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let engine = IterationEngine::default_for(graph.clone(), partition);
        let loose = engine.run(&DeltaPageRank::new(1e-4)).iterations;
        let tight = engine.run(&DeltaPageRank::new(1e-8)).iterations;
        assert!(loose < tight, "loose {loose} vs tight {tight}");
    }
}
