//! PageRank with damping and dangling-mass redistribution.
//!
//! Synchronous formulation: every iteration,
//!
//! ```text
//! rank'(v) = (1 − d)/n + d · (Σ_{u→v} rank(u)/outdeg(u) + D/n)
//! ```
//!
//! where `D` is the total rank held by dangling (out-degree-0) vertices —
//! collected through the engine's global aggregate so the ranks keep
//! summing to 1.

use crate::program::{ProgramContext, VertexProgram};
use bpart_graph::{CsrGraph, VertexId};

/// PageRank vertex program.
#[derive(Clone, Copy, Debug)]
pub struct PageRank {
    /// Damping factor `d` (classic 0.85).
    pub damping: f64,
    /// Fixed iteration count (the paper runs 10).
    pub iterations: usize,
}

impl PageRank {
    /// PageRank with damping 0.85 and the given iteration count.
    pub fn new(iterations: usize) -> Self {
        PageRank {
            damping: 0.85,
            iterations,
        }
    }
}

impl VertexProgram for PageRank {
    type Value = f64;
    type Accum = f64;

    fn init(&self, _v: VertexId, graph: &CsrGraph) -> f64 {
        1.0 / graph.num_vertices() as f64
    }

    fn initially_active(&self, _v: VertexId, _graph: &CsrGraph) -> bool {
        true
    }

    fn scatter(&self, u: VertexId, value: &f64, graph: &CsrGraph) -> Option<f64> {
        let d = graph.out_degree(u);
        (d > 0).then(|| value / d as f64)
    }

    fn combine(&self, a: &mut f64, b: f64) {
        *a += b;
    }

    fn apply(
        &self,
        _v: VertexId,
        value: &mut f64,
        incoming: Option<f64>,
        ctx: &ProgramContext,
        _graph: &CsrGraph,
    ) -> bool {
        let n = ctx.num_vertices as f64;
        let sum = incoming.unwrap_or(0.0) + ctx.aggregate / n;
        *value = (1.0 - self.damping) / n + self.damping * sum;
        true
    }

    fn apply_to_all(&self) -> bool {
        true
    }

    fn aggregate(&self, v: VertexId, value: &f64, graph: &CsrGraph) -> f64 {
        // Dangling mass: rank stuck on out-degree-0 vertices.
        if graph.out_degree(v) == 0 {
            *value
        } else {
            0.0
        }
    }

    fn max_iterations(&self) -> Option<usize> {
        Some(self.iterations)
    }
}

/// Single-machine reference PageRank used by the tests (same formula,
/// straightforward loops).
pub fn reference_pagerank(graph: &CsrGraph, damping: f64, iterations: usize) -> Vec<f64> {
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..iterations {
        let dangling: f64 = graph
            .vertices()
            .filter(|&v| graph.out_degree(v) == 0)
            .map(|v| rank[v as usize])
            .sum();
        let mut next = vec![(1.0 - damping) / n as f64 + damping * dangling / n as f64; n];
        for u in graph.vertices() {
            let d = graph.out_degree(u);
            if d == 0 {
                continue;
            }
            let share = damping * rank[u as usize] / d as f64;
            for &v in graph.out_neighbors(u) {
                next[v as usize] += share;
            }
        }
        rank = next;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IterationEngine;
    use bpart_core::{ChunkE, HashPartitioner, Partitioner};
    use bpart_graph::generate;
    use std::sync::Arc;

    fn run_distributed(graph: Arc<CsrGraph>, k: usize, iters: usize) -> Vec<f64> {
        let partition = Arc::new(HashPartitioner::default().partition(&graph, k));
        IterationEngine::default_for(graph, partition)
            .run(&PageRank::new(iters))
            .values
    }

    #[test]
    fn ranks_sum_to_one_with_dangling_vertices() {
        // path graph: last vertex is dangling
        let graph = Arc::new(generate::path(50));
        let ranks = run_distributed(graph, 4, 10);
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn matches_reference_implementation() {
        let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
        let expected = reference_pagerank(&graph, 0.85, 10);
        let got = run_distributed(graph, 4, 10);
        for (i, (a, b)) in got.iter().zip(&expected).enumerate() {
            assert!((a - b).abs() < 1e-9, "vertex {i}: {a} vs {b}");
        }
    }

    #[test]
    fn partition_choice_does_not_change_ranks() {
        let graph = Arc::new(generate::lj_like().generate_scaled(0.01));
        let a = run_distributed(graph.clone(), 8, 5);
        let partition = Arc::new(ChunkE.partition(&graph, 8));
        let b = IterationEngine::default_for(graph, partition)
            .run(&PageRank::new(5))
            .values;
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_outranks_leaves() {
        let graph = Arc::new(generate::star(10));
        let ranks = run_distributed(graph, 2, 20);
        for v in 1..11 {
            assert!(
                ranks[0] > ranks[v],
                "hub {} vs spoke {}",
                ranks[0],
                ranks[v]
            );
        }
    }

    #[test]
    fn iteration_count_is_respected() {
        let graph = Arc::new(generate::ring(10));
        let partition = Arc::new(HashPartitioner::default().partition(&graph, 2));
        let run = IterationEngine::default_for(graph, partition).run(&PageRank::new(7));
        assert_eq!(run.iterations, 7);
        assert_eq!(run.telemetry.num_iterations(), 7);
    }
}
