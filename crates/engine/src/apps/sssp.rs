//! Single-source shortest paths (Bellman-Ford style) with deterministic
//! synthetic edge weights.
//!
//! The datasets are unweighted, so the app derives a pseudo-random but
//! deterministic weight in `1..=max_weight` from each edge's endpoints;
//! distributed and reference implementations use the same function and so
//! agree exactly.

use crate::program::{ProgramContext, VertexProgram};
use bpart_graph::{CsrGraph, VertexId};

/// Deterministic synthetic weight for edge `(u, v)` in `1..=max_weight`.
#[inline]
pub fn edge_weight(u: VertexId, v: VertexId, max_weight: u32) -> u64 {
    let mut x = ((u as u64) << 32) | v as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (x ^ (x >> 31)) % max_weight as u64 + 1
}

/// SSSP vertex program; distances are `u64::MAX` when unreachable.
#[derive(Clone, Copy, Debug)]
pub struct Sssp {
    /// Root of the traversal.
    pub source: VertexId,
    /// Synthetic weights are drawn from `1..=max_weight`.
    pub max_weight: u32,
}

impl Sssp {
    /// SSSP from `source` with weights in `1..=8`.
    pub fn new(source: VertexId) -> Self {
        Sssp {
            source,
            max_weight: 8,
        }
    }
}

/// The signal carries the sender and its distance; the receiver adds its
/// incident edge weight on apply (scatter cannot know the target under the
/// one-signal-per-vertex Gemini model, so edges are re-weighted receiver
/// side — equivalent, because weights are a pure function of endpoints).
#[derive(Clone, Copy, Debug)]
pub struct DistFrom {
    /// Sending vertex.
    pub from: VertexId,
    /// Sender's distance at scatter time.
    pub dist: u64,
}

impl VertexProgram for Sssp {
    type Value = u64;
    type Accum = Vec<DistFrom>;

    fn init(&self, v: VertexId, _graph: &CsrGraph) -> u64 {
        if v == self.source {
            0
        } else {
            u64::MAX
        }
    }

    fn initially_active(&self, v: VertexId, _graph: &CsrGraph) -> bool {
        v == self.source
    }

    fn scatter(&self, u: VertexId, value: &u64, _graph: &CsrGraph) -> Option<Vec<DistFrom>> {
        Some(vec![DistFrom {
            from: u,
            dist: *value,
        }])
    }

    fn combine(&self, a: &mut Vec<DistFrom>, b: Vec<DistFrom>) {
        a.extend(b);
    }

    fn apply(
        &self,
        v: VertexId,
        value: &mut u64,
        incoming: Option<Vec<DistFrom>>,
        _ctx: &ProgramContext,
        _graph: &CsrGraph,
    ) -> bool {
        let Some(candidates) = incoming else {
            return false;
        };
        let mut improved = false;
        for c in candidates {
            let d = c
                .dist
                .saturating_add(edge_weight(c.from, v, self.max_weight));
            if d < *value {
                *value = d;
                improved = true;
            }
        }
        improved
    }
}

/// Reference Dijkstra with the same synthetic weights.
pub fn reference_sssp(graph: &CsrGraph, source: VertexId, max_weight: u32) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = graph.num_vertices();
    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for &v in graph.out_neighbors(u) {
            let nd = d + edge_weight(u, v, max_weight);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IterationEngine;
    use bpart_core::{ChunkV, HashPartitioner, Partitioner};
    use bpart_graph::generate;
    use std::sync::Arc;

    #[test]
    fn weights_are_deterministic_and_bounded() {
        for (u, v) in [(0u32, 1u32), (5, 9), (1000, 3)] {
            let w = edge_weight(u, v, 8);
            assert_eq!(w, edge_weight(u, v, 8));
            assert!((1..=8).contains(&w));
        }
        assert_eq!(edge_weight(3, 4, 1), 1);
    }

    #[test]
    fn matches_reference_dijkstra() {
        let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
        let expected = reference_sssp(&graph, 0, 8);
        let partition = Arc::new(HashPartitioner::default().partition(&graph, 4));
        let run = IterationEngine::default_for(graph, partition).run(&Sssp::new(0));
        assert_eq!(run.values, expected);
    }

    #[test]
    fn unreachable_stays_max() {
        let graph = Arc::new(generate::path(4));
        let partition = Arc::new(ChunkV.partition(&graph, 2));
        let run = IterationEngine::default_for(graph, partition).run(&Sssp::new(3));
        assert_eq!(run.values[0], u64::MAX);
        assert_eq!(run.values[3], 0);
    }

    #[test]
    fn shorter_multi_hop_path_wins() {
        // 0->1 heavy? All weights deterministic; just verify triangle
        // inequality holds vs reference on a small dense graph.
        let graph = Arc::new(generate::complete(12));
        let expected = reference_sssp(&graph, 0, 8);
        let partition = Arc::new(ChunkV.partition(&graph, 3));
        let run = IterationEngine::default_for(graph, partition).run(&Sssp::new(0));
        assert_eq!(run.values, expected);
    }
}
