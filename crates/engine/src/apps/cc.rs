//! Weakly connected components by min-label propagation.
//!
//! Every vertex starts labelled with its own id and repeatedly adopts the
//! smallest label in its (undirected) neighborhood; at convergence each
//! vertex carries the minimum vertex id of its weakly connected component —
//! the same convention as
//! [`bpart_graph::traversal::connected_components`], so distributed and
//! reference results compare with `==`.

use crate::program::{ProgramContext, VertexProgram};
use bpart_graph::{CsrGraph, VertexId};

/// Connected-components vertex program (runs until convergence).
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnectedComponents;

impl VertexProgram for ConnectedComponents {
    type Value = VertexId;
    type Accum = VertexId;

    fn init(&self, v: VertexId, _graph: &CsrGraph) -> VertexId {
        v
    }

    fn initially_active(&self, _v: VertexId, _graph: &CsrGraph) -> bool {
        true
    }

    fn scatter(&self, _u: VertexId, value: &VertexId, _graph: &CsrGraph) -> Option<VertexId> {
        Some(*value)
    }

    fn combine(&self, a: &mut VertexId, b: VertexId) {
        *a = (*a).min(b);
    }

    fn apply(
        &self,
        _v: VertexId,
        value: &mut VertexId,
        incoming: Option<VertexId>,
        _ctx: &ProgramContext,
        _graph: &CsrGraph,
    ) -> bool {
        match incoming {
            Some(label) if label < *value => {
                *value = label;
                true
            }
            _ => false,
        }
    }

    fn use_in_edges(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IterationEngine;
    use bpart_core::{ChunkV, Fennel, HashPartitioner, Partitioner};
    use bpart_graph::{generate, traversal};
    use std::sync::Arc;

    #[test]
    fn matches_reference_on_disjoint_rings() {
        let mut edges = Vec::new();
        for &(a, b) in &[(0u32, 1u32), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            edges.push((a, b));
        }
        let graph = Arc::new(bpart_graph::CsrGraph::from_edges(6, &edges));
        let partition = Arc::new(HashPartitioner::default().partition(&graph, 3));
        let run = IterationEngine::default_for(graph.clone(), partition).run(&ConnectedComponents);
        assert_eq!(run.values, traversal::connected_components(&graph));
    }

    #[test]
    fn matches_reference_on_power_law_graph() {
        let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
        let expected = traversal::connected_components(&graph);
        for k in [2usize, 8] {
            let partition = Arc::new(ChunkV.partition(&graph, k));
            let run =
                IterationEngine::default_for(graph.clone(), partition).run(&ConnectedComponents);
            assert_eq!(run.values, expected, "k = {k}");
        }
    }

    #[test]
    fn partition_invariance() {
        let graph = Arc::new(generate::lj_like().generate_scaled(0.01));
        let a = IterationEngine::default_for(
            graph.clone(),
            Arc::new(Fennel::default().partition(&graph, 4)),
        )
        .run(&ConnectedComponents);
        let b = IterationEngine::default_for(
            graph.clone(),
            Arc::new(HashPartitioner::default().partition(&graph, 4)),
        )
        .run(&ConnectedComponents);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn converges_and_stops() {
        let graph = Arc::new(generate::path(32));
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let run = IterationEngine::default_for(graph, partition).run(&ConnectedComponents);
        assert!(run.values.iter().all(|&l| l == 0));
        // label needs ~31 hops; convergence must terminate shortly after
        assert!(
            run.iterations >= 31 && run.iterations <= 34,
            "iters = {}",
            run.iterations
        );
    }

    #[test]
    fn isolated_vertices_keep_their_ids() {
        let graph = Arc::new(bpart_graph::CsrGraph::from_edges(4, &[(0, 1)]));
        let partition = Arc::new(ChunkV.partition(&graph, 2));
        let run = IterationEngine::default_for(graph, partition).run(&ConnectedComponents);
        assert_eq!(run.values, vec![0, 0, 2, 3]);
    }
}
