//! Breadth-first distances from a source vertex (frontier-push style).

use crate::program::{ProgramContext, VertexProgram};
use bpart_graph::{CsrGraph, VertexId};

/// BFS vertex program over out-edges; unreached vertices end at `u32::MAX`.
#[derive(Clone, Copy, Debug)]
pub struct Bfs {
    /// Root of the traversal.
    pub source: VertexId,
}

impl Bfs {
    /// BFS rooted at `source`.
    pub fn new(source: VertexId) -> Self {
        Bfs { source }
    }
}

impl VertexProgram for Bfs {
    type Value = u32;
    type Accum = u32;

    fn init(&self, v: VertexId, _graph: &CsrGraph) -> u32 {
        if v == self.source {
            0
        } else {
            u32::MAX
        }
    }

    fn initially_active(&self, v: VertexId, _graph: &CsrGraph) -> bool {
        v == self.source
    }

    fn scatter(&self, _u: VertexId, value: &u32, _graph: &CsrGraph) -> Option<u32> {
        Some(value + 1)
    }

    fn combine(&self, a: &mut u32, b: u32) {
        *a = (*a).min(b);
    }

    fn apply(
        &self,
        _v: VertexId,
        value: &mut u32,
        incoming: Option<u32>,
        _ctx: &ProgramContext,
        _graph: &CsrGraph,
    ) -> bool {
        match incoming {
            Some(d) if d < *value => {
                *value = d;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IterationEngine;
    use bpart_core::{ChunkV, HashPartitioner, Partitioner};
    use bpart_graph::{generate, traversal};
    use std::sync::Arc;

    #[test]
    fn matches_reference_bfs() {
        let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
        let expected = traversal::bfs_distances(&graph, 0);
        let partition = Arc::new(HashPartitioner::default().partition(&graph, 4));
        let run = IterationEngine::default_for(graph, partition).run(&Bfs::new(0));
        assert_eq!(run.values, expected);
    }

    #[test]
    fn unreachable_vertices_stay_at_max() {
        let graph = Arc::new(generate::path(5)); // 0->1->2->3->4
        let partition = Arc::new(ChunkV.partition(&graph, 2));
        let run = IterationEngine::default_for(graph, partition).run(&Bfs::new(2));
        assert_eq!(run.values, vec![u32::MAX, u32::MAX, 0, 1, 2]);
    }

    #[test]
    fn iterations_track_eccentricity() {
        let graph = Arc::new(generate::path(10));
        let partition = Arc::new(ChunkV.partition(&graph, 2));
        let run = IterationEngine::default_for(graph, partition).run(&Bfs::new(0));
        // 9 frontier expansions, +1 quiet round to detect convergence
        assert!(
            run.iterations >= 9 && run.iterations <= 11,
            "iters = {}",
            run.iterations
        );
    }
}
