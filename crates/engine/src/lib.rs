//! # bpart-engine — a Gemini-like vertex-centric iteration engine
//!
//! Re-implements the execution model of Gemini (Zhu et al., OSDI '16), the
//! iteration-based system the paper integrates BPart into, on top of the
//! [`bpart_cluster`] BSP simulator:
//!
//! * vertices are partitioned across machines; each machine owns its
//!   vertices' state and out-edges,
//! * each iteration, machines *scatter* signals along the edges of their
//!   active vertices (sender-side combining, as in Gemini), exchange the
//!   combined updates at the BSP barrier, then *apply* incoming signals to
//!   local vertex state,
//! * work is counted per machine (edges scanned + vertices updated) so the
//!   cost model can reproduce the paper's load-balance measurements.
//!
//! Applications are [`VertexProgram`] implementations; the crate ships the
//! two the paper runs on Gemini — [`apps::PageRank`] (10 iterations) and
//! [`apps::ConnectedComponents`] (to convergence) — plus BFS and SSSP.
//!
//! ```
//! use bpart_core::{ChunkV, Partitioner};
//! use bpart_engine::{apps::PageRank, IterationEngine};
//! use bpart_graph::generate;
//! use std::sync::Arc;
//!
//! let graph = Arc::new(generate::erdos_renyi(100, 600, 1));
//! let partition = Arc::new(ChunkV.partition(&graph, 4));
//! let engine = IterationEngine::default_for(graph, partition);
//! let run = engine.run(&PageRank::new(10));
//! let total: f64 = run.values.iter().sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! ```

pub mod apps;
pub mod engine;
pub mod program;

pub use engine::{CommAccounting, EngineRun, IterationEngine};
pub use program::{ProgramContext, VertexProgram};
