//! The BSP iteration driver.

use crate::program::{ProgramContext, VertexProgram};
use bpart_cluster::exec::{for_each_machine, ExecMode};
use bpart_cluster::{Cluster, CostModel, IterationRecord, Router, Telemetry, WorkUnits};
use bpart_core::Partition;
use bpart_graph::{CsrGraph, VertexId};
use std::sync::Arc;

/// Outcome of an engine run.
#[derive(Debug)]
pub struct EngineRun<V> {
    /// Final per-vertex values, indexed by global vertex id.
    pub values: Vec<V>,
    /// Per-iteration, per-machine execution records.
    pub telemetry: Telemetry,
    /// Number of iterations executed.
    pub iterations: usize,
}

/// How the communication phase is charged.
///
/// Messages are always *delivered* combined (sender-side combining, as in
/// Gemini); the accounting choice decides what the cost model sees.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommAccounting {
    /// Charge one unit per raw remote edge update — the payload a
    /// Pregel/Giraph-style system ships, and the model under which
    /// communication is proportional to edge cuts (the paper's §4.5
    /// attribution). The default.
    #[default]
    PerEdgeUpdate,
    /// Charge one unit per combined (machine, target) message — Gemini's
    /// mirror-update volume. Blunts cut differences on dense apps.
    Combined,
}

/// A Gemini-like iteration engine bound to one cluster.
pub struct IterationEngine {
    cluster: Cluster,
    cost: CostModel,
    mode: ExecMode,
    comm: CommAccounting,
}

/// Per-machine mutable state across iterations.
struct MachineState<V, A> {
    /// Local vertex values (indexed by local index).
    values: Vec<V>,
    /// Local activity flags.
    active: Vec<bool>,
    /// Dense per-target accumulator, indexed by *global* id (scratch).
    acc: Vec<Option<A>>,
    /// Targets touched in `acc` this phase.
    touched: Vec<VertexId>,
}

impl IterationEngine {
    /// Engine over `cluster` with an explicit cost model and execution mode.
    pub fn new(cluster: Cluster, cost: CostModel, mode: ExecMode) -> Self {
        IterationEngine {
            cluster,
            cost,
            mode,
            comm: CommAccounting::default(),
        }
    }

    /// Selects the communication accounting (see [`CommAccounting`]).
    pub fn with_comm_accounting(mut self, comm: CommAccounting) -> Self {
        self.comm = comm;
        self
    }

    /// Engine with default cost model and sequential execution.
    pub fn default_for(graph: Arc<CsrGraph>, partition: Arc<Partition>) -> Self {
        IterationEngine::new(
            Cluster::new(graph, partition),
            CostModel::default(),
            ExecMode::default(),
        )
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs `program` to completion and returns values plus telemetry.
    pub fn run<P: VertexProgram>(&self, program: &P) -> EngineRun<P::Value> {
        let graph = self.cluster.graph();
        let n = graph.num_vertices();
        let k = self.cluster.num_machines();

        // Global -> (owner-local) index map, shared read-only.
        let mut local_of = vec![0u32; n];
        for m in 0..k {
            for (li, &v) in self.cluster.local_vertices(m as u32).iter().enumerate() {
                local_of[v as usize] = li as u32;
            }
        }

        let mut states: Vec<MachineState<P::Value, P::Accum>> = (0..k)
            .map(|m| {
                let members = self.cluster.local_vertices(m as u32);
                MachineState {
                    values: members.iter().map(|&v| program.init(v, graph)).collect(),
                    active: members
                        .iter()
                        .map(|&v| program.initially_active(v, graph))
                        .collect(),
                    acc: vec![None; n],
                    touched: Vec::new(),
                }
            })
            .collect();

        let telemetry = Telemetry::new();
        let mut iterations = 0usize;

        loop {
            if let Some(max) = program.max_iterations() {
                if iterations >= max {
                    break;
                }
            }
            // Global aggregate over current values (e.g. PR dangling mass).
            let aggregate: f64 = for_each_machine(self.mode, &mut states, |m, s| {
                self.cluster
                    .local_vertices(m)
                    .iter()
                    .zip(&s.values)
                    .map(|(&v, val)| program.aggregate(v, val, graph))
                    .sum::<f64>()
            })
            .into_iter()
            .sum();

            // ---- scatter phase -------------------------------------------------
            let cluster = &self.cluster;
            type ScatterOut<A> = (Vec<Vec<(VertexId, A)>>, Vec<u64>, WorkUnits, bool);
            let scatter_out: Vec<ScatterOut<P::Accum>> =
                for_each_machine(self.mode, &mut states, |m, s| {
                    let mut work = WorkUnits::default();
                    let members = cluster.local_vertices(m);
                    let mut any_active = false;
                    // Raw (uncombined) cross-machine updates per destination:
                    // the network payload a Pregel-style system would ship.
                    // Messages are still delivered combined, but the paper
                    // attributes communication cost to edge cuts (§4.5), so
                    // the cost model charges per raw remote update.
                    let mut raw = vec![0u64; cluster.num_machines()];
                    for (li, &u) in members.iter().enumerate() {
                        if !s.active[li] {
                            continue;
                        }
                        any_active = true;
                        let Some(signal) = program.scatter(u, &s.values[li], graph) else {
                            continue;
                        };
                        let out = graph.out_neighbors(u);
                        work.edges_scanned += out.len() as u64;
                        for &v in out {
                            let dest = cluster.owner(v);
                            if dest != m {
                                raw[dest as usize] += 1;
                            }
                            accumulate::<P>(program, s, v, signal.clone());
                        }
                        if program.use_in_edges() {
                            let inn = graph.in_neighbors(u);
                            work.edges_scanned += inn.len() as u64;
                            for &v in inn {
                                let dest = cluster.owner(v);
                                if dest != m {
                                    raw[dest as usize] += 1;
                                }
                                accumulate::<P>(program, s, v, signal.clone());
                            }
                        }
                    }
                    // Drain the dense accumulator into per-destination
                    // combined messages (sender-side combining).
                    s.touched.sort_unstable();
                    let mut outbox: Vec<Vec<(VertexId, P::Accum)>> =
                        (0..cluster.num_machines()).map(|_| Vec::new()).collect();
                    for &v in &s.touched {
                        let acc = s.acc[v as usize]
                            .take()
                            .expect("touched implies accumulated");
                        outbox[cluster.owner(v) as usize].push((v, acc));
                    }
                    s.touched.clear();
                    (outbox, raw, work, any_active)
                });

            let any_scatter_active = scatter_out.iter().any(|(_, _, _, a)| *a);
            let mut compute: Vec<f64> = scatter_out
                .iter()
                .map(|(_, _, w, _)| self.cost.compute_time(w))
                .collect();
            // Raw update totals per machine (sent / received).
            let mut raw_sent = vec![0u64; k];
            let mut raw_received = vec![0u64; k];
            for (from, (_, raw, _, _)) in scatter_out.iter().enumerate() {
                for (to, &count) in raw.iter().enumerate() {
                    raw_sent[from] += count;
                    raw_received[to] += count;
                }
            }

            // ---- exchange ------------------------------------------------------
            let mut router: Router<(VertexId, P::Accum)> = Router::new(k);
            router.put_rows(
                scatter_out
                    .into_iter()
                    .map(|(rows, _, _, _)| rows)
                    .collect(),
            );
            // Self-addressed updates stay machine-local: they are not
            // network messages. Pull them out before counting.
            {
                let rows = router.take_rows();
                let mut cleaned = Vec::with_capacity(k);
                let mut local_rows: Vec<Vec<(VertexId, P::Accum)>> = Vec::with_capacity(k);
                for (m, mut row) in rows.into_iter().enumerate() {
                    let own = std::mem::take(&mut row[m]);
                    local_rows.push(own);
                    cleaned.push(row);
                }
                router.put_rows(cleaned);
                // Deliver local updates by re-staging them post-exchange.
                let mut ex = router.exchange();
                for (m, own) in local_rows.into_iter().enumerate() {
                    // Local messages are applied with the same mechanism but
                    // cost nothing on the network.
                    ex.inboxes[m].extend(own);
                }

                // ---- apply phase ----------------------------------------------
                let ctx = ProgramContext {
                    iteration: iterations,
                    num_vertices: n,
                    aggregate,
                };
                let inboxes = std::mem::take(&mut ex.inboxes);
                let mut inbox_iter = inboxes.into_iter();
                let mut any_active_next = false;
                // Sequential over machines for inbox handoff; the per-machine
                // apply loops are the heavy part and stay identical in both
                // exec modes.
                let apply_results: Vec<(WorkUnits, bool)> = {
                    let mut results = Vec::with_capacity(k);
                    for (m, s) in states.iter_mut().enumerate() {
                        let inbox = inbox_iter.next().expect("one inbox per machine");
                        // Merge all incoming signals into the dense accumulator.
                        for (v, a) in inbox {
                            accumulate::<P>(program, s, v, a);
                        }
                        let mut work = WorkUnits::default();
                        let mut any = false;
                        let members = cluster.local_vertices(m as u32);
                        if program.apply_to_all() {
                            for (li, &v) in members.iter().enumerate() {
                                let incoming = s.acc[v as usize].take();
                                let active =
                                    program.apply(v, &mut s.values[li], incoming, &ctx, graph);
                                s.active[li] = active;
                                any |= active;
                                work.vertices_updated += 1;
                            }
                            s.touched.clear();
                        } else {
                            // Only signalled vertices update; everyone else
                            // goes (or stays) inactive.
                            s.active.iter_mut().for_each(|a| *a = false);
                            s.touched.sort_unstable();
                            for ti in 0..s.touched.len() {
                                let v = s.touched[ti];
                                let li = local_of[v as usize] as usize;
                                let incoming = s.acc[v as usize].take();
                                let active =
                                    program.apply(v, &mut s.values[li], incoming, &ctx, graph);
                                s.active[li] = active;
                                any |= active;
                                work.vertices_updated += 1;
                            }
                            s.touched.clear();
                        }
                        results.push((work, any));
                    }
                    results
                };
                for (m, (work, any)) in apply_results.iter().enumerate() {
                    compute[m] += self.cost.compute_time(work);
                    any_active_next |= any;
                }

                // ---- telemetry ------------------------------------------------
                let (sent_counts, recv_counts) = match self.comm {
                    CommAccounting::PerEdgeUpdate => (raw_sent.clone(), raw_received.clone()),
                    CommAccounting::Combined => (ex.sent.clone(), ex.received.clone()),
                };
                let comm: Vec<f64> = (0..k)
                    .map(|m| self.cost.comm_time(sent_counts[m], recv_counts[m]))
                    .collect();
                telemetry.record(IterationRecord {
                    compute,
                    comm,
                    sent: sent_counts,
                });

                iterations += 1;
                // Quiescence: once no vertex is active, no future superstep
                // can change any state — stop regardless of the iteration
                // cap (which is only an upper bound).
                if !any_active_next {
                    break;
                }
                let _ = any_scatter_active;
            }
        }

        // Gather values back to global order.
        let mut values: Vec<Option<P::Value>> = vec![None; n];
        for (m, s) in states.into_iter().enumerate() {
            for (li, v) in self.cluster.local_vertices(m as u32).iter().enumerate() {
                values[*v as usize] = Some(s.values[li].clone());
            }
        }
        EngineRun {
            values: values
                .into_iter()
                .map(|v| v.expect("every vertex owned"))
                .collect(),
            telemetry,
            iterations,
        }
    }
}

/// Folds `a` into machine state's dense accumulator for target `v`.
#[inline]
fn accumulate<P: VertexProgram>(
    program: &P,
    s: &mut MachineState<P::Value, P::Accum>,
    v: VertexId,
    a: P::Accum,
) {
    match &mut s.acc[v as usize] {
        Some(existing) => program.combine(existing, a),
        slot @ None => {
            *slot = Some(a);
            s.touched.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_core::{ChunkV, HashPartitioner, Partitioner};
    use bpart_graph::generate;

    /// Toy program: every vertex starts at 1 and pushes its value forward;
    /// each vertex becomes the sum of its in-signals for one iteration.
    struct PushOnce;
    impl VertexProgram for PushOnce {
        type Value = u64;
        type Accum = u64;
        fn init(&self, _v: VertexId, _g: &CsrGraph) -> u64 {
            1
        }
        fn initially_active(&self, _v: VertexId, _g: &CsrGraph) -> bool {
            true
        }
        fn scatter(&self, _u: VertexId, value: &u64, _g: &CsrGraph) -> Option<u64> {
            Some(*value)
        }
        fn combine(&self, a: &mut u64, b: u64) {
            *a += b;
        }
        fn apply(
            &self,
            _v: VertexId,
            value: &mut u64,
            incoming: Option<u64>,
            _ctx: &ProgramContext,
            _g: &CsrGraph,
        ) -> bool {
            if let Some(sum) = incoming {
                *value = sum;
            }
            false
        }
        fn max_iterations(&self) -> Option<usize> {
            Some(1)
        }
    }

    #[test]
    fn push_once_counts_in_degree() {
        let graph = Arc::new(generate::star(4)); // hub 0 <-> 4 spokes
        let partition = Arc::new(ChunkV.partition(&graph, 2));
        let engine = IterationEngine::default_for(graph.clone(), partition);
        let run = engine.run(&PushOnce);
        assert_eq!(run.iterations, 1);
        // hub receives 4 signals of value 1; spokes receive 1 each
        assert_eq!(run.values[0], 4);
        for v in 1..5 {
            assert_eq!(run.values[v], 1);
        }
    }

    #[test]
    fn results_are_partition_invariant() {
        let graph = Arc::new(generate::erdos_renyi(200, 1_200, 5));
        let a = IterationEngine::default_for(graph.clone(), Arc::new(ChunkV.partition(&graph, 4)))
            .run(&PushOnce);
        let b = IterationEngine::default_for(
            graph.clone(),
            Arc::new(HashPartitioner::default().partition(&graph, 4)),
        )
        .run(&PushOnce);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn telemetry_records_each_iteration() {
        let graph = Arc::new(generate::ring(16));
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let engine = IterationEngine::default_for(graph, partition);
        let run = engine.run(&PushOnce);
        assert_eq!(run.telemetry.num_iterations(), 1);
        let records = run.telemetry.records();
        // On a ring split into contiguous chunks, only chunk-boundary
        // signals cross machines: 4 cut edges = 4 messages.
        assert_eq!(records[0].sent.iter().sum::<u64>(), 4);
    }

    #[test]
    fn combined_accounting_charges_less_than_per_edge() {
        // Many sources per remote target: combining collapses them, so the
        // Combined accounting must report (weakly) fewer messages and the
        // values must be identical either way.
        let graph = Arc::new(generate::complete(24));
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let per_edge =
            IterationEngine::default_for(graph.clone(), partition.clone()).run(&PushOnce);
        let combined = IterationEngine::default_for(graph.clone(), partition)
            .with_comm_accounting(CommAccounting::Combined)
            .run(&PushOnce);
        assert_eq!(per_edge.values, combined.values);
        let raw = per_edge.telemetry.total_messages();
        let merged = combined.telemetry.total_messages();
        assert!(merged < raw, "combined {merged} should be below raw {raw}");
        // complete graph on 4 machines: every vertex signals 18 remote
        // targets; combined messages = (machine, target) pairs = 3 * 24 per
        // direction pattern
        // every vertex signals its 18 remote neighbors: 24 x 18 raw updates
        assert_eq!(raw, 24 * 18);
        // combined: each of the 4 machines sends one update per remote
        // target = 18 messages
        assert_eq!(merged, 4 * 18);
    }

    #[test]
    fn threaded_mode_matches_sequential() {
        let graph = Arc::new(generate::erdos_renyi(150, 900, 9));
        let partition = Arc::new(ChunkV.partition(&graph, 3));
        let seq = IterationEngine::new(
            Cluster::new(graph.clone(), partition.clone()),
            CostModel::default(),
            ExecMode::Sequential,
        )
        .run(&PushOnce);
        let thr = IterationEngine::new(
            Cluster::new(graph.clone(), partition),
            CostModel::default(),
            ExecMode::Threaded,
        )
        .run(&PushOnce);
        assert_eq!(seq.values, thr.values);
    }
}
