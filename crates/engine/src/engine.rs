//! The BSP iteration driver.
//!
//! Fault tolerance: the engine can run under a [`FaultPlan`] (injected
//! machine crashes, stragglers, lossy links) with superstep
//! checkpointing. Crashes trigger rollback to the last checkpoint and
//! deterministic replay, so final values are bitwise-identical to a
//! fault-free run — only the telemetry (wasted work, recovery time,
//! replayed supersteps) shows the damage. The initial state acts as an
//! implicit checkpoint, so recovery works even with checkpointing
//! disabled (at the price of replaying from superstep zero).

use crate::program::{ProgramContext, VertexProgram};
use bpart_cluster::exec::{collect_results, for_each_machine, ExecMode};
use bpart_cluster::MachineId;
use bpart_cluster::{
    Cluster, CostModel, Exchange, FaultPlan, FaultState, IterationRecord, MachineFailure,
    MessageArena, Router, Telemetry, UnrecoverableFailure, WorkUnits,
};
use bpart_core::Partition;
use bpart_graph::{CsrGraph, VertexId};
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of an engine run.
#[derive(Debug)]
pub struct EngineRun<V> {
    /// Final per-vertex values, indexed by global vertex id.
    pub values: Vec<V>,
    /// Per-iteration, per-machine execution records.
    pub telemetry: Telemetry,
    /// Number of (logical) iterations executed; replayed supersteps are
    /// not double-counted here — they appear in the telemetry instead.
    pub iterations: usize,
}

/// How the communication phase is charged.
///
/// Messages are always *delivered* combined (sender-side combining, as in
/// Gemini); the accounting choice decides what the cost model sees.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommAccounting {
    /// Charge one unit per raw remote edge update — the payload a
    /// Pregel/Giraph-style system ships, and the model under which
    /// communication is proportional to edge cuts (the paper's §4.5
    /// attribution). The default.
    #[default]
    PerEdgeUpdate,
    /// Charge one unit per combined (machine, target) message — Gemini's
    /// mirror-update volume. Blunts cut differences on dense apps.
    Combined,
}

/// A Gemini-like iteration engine bound to one cluster.
pub struct IterationEngine {
    cluster: Cluster,
    cost: CostModel,
    mode: ExecMode,
    comm: CommAccounting,
    faults: FaultPlan,
    checkpoint_every: Option<usize>,
}

/// Per-machine outbox rows as taken from the arena: `rows[to]` holds the
/// combined updates staged for machine `to`.
type OutboxRows<A> = Vec<Vec<(VertexId, A)>>;

/// Per-machine mutable state across iterations.
struct MachineState<V, A> {
    /// Local vertex values (indexed by local index).
    values: Vec<V>,
    /// Local activity flags.
    active: Vec<bool>,
    /// Dense per-target accumulator, indexed by *global* id (scratch).
    acc: Vec<Option<A>>,
    /// Targets touched in `acc` this phase.
    touched: Vec<VertexId>,
    /// Arena-staged combined updates (reset between supersteps).
    outbox: MessageArena<(VertexId, A)>,
}

/// A globally consistent snapshot taken at a superstep boundary.
struct Checkpoint<V> {
    /// The next superstep to run after restoring this snapshot.
    superstep: usize,
    /// Per-machine `(values, active)` pairs.
    machines: Vec<(Vec<V>, Vec<bool>)>,
}

fn snapshot<V: Clone, A>(states: &[MachineState<V, A>]) -> Vec<(Vec<V>, Vec<bool>)> {
    states
        .iter()
        .map(|s| (s.values.clone(), s.active.clone()))
        .collect()
}

/// Restores every machine to `checkpoint`, clearing scatter scratch that
/// a partially executed (or panicked) superstep may have left behind.
fn rollback<V: Clone, A>(states: &mut [MachineState<V, A>], checkpoint: &Checkpoint<V>) {
    for (s, (values, active)) in states.iter_mut().zip(&checkpoint.machines) {
        for &v in &s.touched {
            s.acc[v as usize] = None;
        }
        s.touched.clear();
        s.outbox.reset();
        s.values.clone_from(values);
        s.active.clone_from(active);
    }
}

impl IterationEngine {
    /// Engine over `cluster` with an explicit cost model and execution mode.
    pub fn new(cluster: Cluster, cost: CostModel, mode: ExecMode) -> Self {
        IterationEngine {
            cluster,
            cost,
            mode,
            comm: CommAccounting::default(),
            faults: FaultPlan::default(),
            checkpoint_every: None,
        }
    }

    /// Selects the communication accounting (see [`CommAccounting`]).
    pub fn with_comm_accounting(mut self, comm: CommAccounting) -> Self {
        self.comm = comm;
        self
    }

    /// Injects faults from `plan` during the run (see [`FaultPlan`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Checkpoints machine state every `every` supersteps (`every` must be
    /// positive). Without this, recovery replays from the initial state.
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        self.checkpoint_every = Some(every);
        self
    }

    /// Engine with default cost model and sequential execution.
    pub fn default_for(graph: Arc<CsrGraph>, partition: Arc<Partition>) -> Self {
        IterationEngine::new(
            Cluster::new(graph, partition),
            CostModel::default(),
            ExecMode::default(),
        )
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs `program` to completion; panics (re-raising the original
    /// payload) on an unrecoverable machine failure. See
    /// [`try_run`](IterationEngine::try_run) for the fallible form.
    pub fn run<P: VertexProgram>(&self, program: &P) -> EngineRun<P::Value> {
        match self.try_run(program) {
            Ok(run) => run,
            Err(UnrecoverableFailure {
                failure: MachineFailure::Panic(payload),
                ..
            }) => std::panic::resume_unwind(payload),
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs `program` to completion and returns values plus telemetry,
    /// surviving injected faults via checkpoint rollback and replay.
    ///
    /// Returns `Err` only when recovery cannot make progress: a machine
    /// fails (panics) at the same superstep on the replay attempt too,
    /// which a deterministic program would repeat forever.
    pub fn try_run<P: VertexProgram>(
        &self,
        program: &P,
    ) -> Result<EngineRun<P::Value>, UnrecoverableFailure> {
        let graph = self.cluster.graph();
        let n = graph.num_vertices();
        let k = self.cluster.num_machines();

        // Global -> (owner-local) index map, shared read-only.
        let mut local_of = vec![0u32; n];
        for m in 0..k {
            for (li, &v) in self.cluster.local_vertices(m as u32).iter().enumerate() {
                local_of[v as usize] = li as u32;
            }
        }

        let mut states: Vec<MachineState<P::Value, P::Accum>> = (0..k)
            .map(|m| {
                let members = self.cluster.local_vertices(m as u32);
                MachineState {
                    values: members.iter().map(|&v| program.init(v, graph)).collect(),
                    active: members
                        .iter()
                        .map(|&v| program.initially_active(v, graph))
                        .collect(),
                    acc: vec![None; n],
                    touched: Vec::new(),
                    outbox: MessageArena::new(k),
                }
            })
            .collect();

        let telemetry = Telemetry::new();
        let mut faults = FaultState::new(self.faults.clone());
        // The initial state is an implicit (free) checkpoint: recovery is
        // always possible, even with checkpointing disabled.
        let mut checkpoint = Checkpoint {
            superstep: 0,
            machines: snapshot(&states),
        };
        // `superstep` is the logical superstep being computed; it moves
        // backwards on rollback. `high_water` marks how far the run has
        // ever progressed, so replays can be flagged in telemetry.
        let mut superstep = 0usize;
        let mut high_water = 0usize;
        let mut failures_at: HashMap<usize, u32> = HashMap::new();

        // Shared recovery path for machine failures (panics): charge the
        // restore, record the aborted superstep, roll back — or give up if
        // this superstep already failed once before (deterministic replay
        // would fail forever).
        macro_rules! recover_or_bail {
            ($machine:expr, $failure:expr, $compute:expr, $replaying:expr) => {{
                let attempts = failures_at.entry(superstep).or_insert(0);
                *attempts += 1;
                if *attempts >= 2 {
                    return Err(UnrecoverableFailure {
                        superstep,
                        machine: $machine,
                        failure: $failure,
                    });
                }
                let recovery = restore_time(&self.cost, &checkpoint);
                telemetry.record(IterationRecord {
                    compute: $compute,
                    comm: vec![0.0; k],
                    sent: vec![0; k],
                    faults: 1,
                    replay: $replaying,
                    recovery,
                });
                bpart_obs::metrics::counter("cluster.recoveries").inc();
                rollback(&mut states, &checkpoint);
                superstep = checkpoint.superstep;
                continue;
            }};
        }

        use std::sync::OnceLock;
        static PROGRESS: OnceLock<&'static bpart_obs::metrics::Gauge> = OnceLock::new();
        // Live progress for the `/progress` monitoring endpoint: which
        // superstep the engine is currently executing.
        let progress_gauge =
            PROGRESS.get_or_init(|| bpart_obs::metrics::gauge("cluster.progress_superstep"));

        // Persistent messaging buffers: the router, the exchange, and the
        // holder for self-addressed (machine-local) updates all keep their
        // high-water capacity across supersteps, complementing the
        // per-machine arenas in `MachineState`.
        let mut router: Router<(VertexId, P::Accum)> = Router::new(k);
        let mut ex: Exchange<(VertexId, P::Accum)> = Exchange::default();
        let mut local_rows: Vec<Vec<(VertexId, P::Accum)>> = (0..k).map(|_| Vec::new()).collect();

        loop {
            if let Some(max) = program.max_iterations() {
                if superstep >= max {
                    break;
                }
            }
            let replaying = superstep < high_water;
            progress_gauge.set(superstep as f64);
            let mut step_span = bpart_obs::span("cluster.superstep");
            step_span.attr("superstep", superstep);
            step_span.attr("replay", replaying);
            if replaying {
                // Replayed supersteps are what post-mortems read: pin
                // them past the tail sampler's downsampling.
                step_span.keep();
            }

            // Global aggregate over current values (e.g. PR dangling mass).
            let agg_results = for_each_machine(self.mode, &mut states, |m, s| {
                self.cluster
                    .local_vertices(m)
                    .iter()
                    .zip(&s.values)
                    .map(|(&v, val)| program.aggregate(v, val, graph))
                    .sum::<f64>()
            });
            let aggregate: f64 = match collect_results(agg_results) {
                Ok(parts) => parts.into_iter().sum(),
                Err((machine, failure)) => {
                    recover_or_bail!(machine, failure, vec![0.0; k], replaying)
                }
            };

            // ---- scatter phase -------------------------------------------------
            let cluster = &self.cluster;
            type ScatterOut = (Vec<u64>, WorkUnits, bool);
            let scatter_results = for_each_machine(self.mode, &mut states, |m, s| {
                let mut work = WorkUnits::default();
                debug_assert_eq!(s.outbox.staged(), 0);
                let members = cluster.local_vertices(m);
                let mut any_active = false;
                // Raw (uncombined) cross-machine updates per destination:
                // the network payload a Pregel-style system would ship.
                // Messages are still delivered combined, but the paper
                // attributes communication cost to edge cuts (§4.5), so
                // the cost model charges per raw remote update.
                let mut raw = vec![0u64; cluster.num_machines()];
                for (li, &u) in members.iter().enumerate() {
                    if !s.active[li] {
                        continue;
                    }
                    any_active = true;
                    let Some(signal) = program.scatter(u, &s.values[li], graph) else {
                        continue;
                    };
                    let out = graph.out_neighbors(u);
                    work.edges_scanned += out.len() as u64;
                    for &v in out {
                        let dest = cluster.owner(v);
                        if dest != m {
                            raw[dest as usize] += 1;
                        }
                        accumulate::<P>(program, s, v, signal.clone());
                    }
                    if program.use_in_edges() {
                        let inn = graph.in_neighbors(u);
                        work.edges_scanned += inn.len() as u64;
                        for &v in inn {
                            let dest = cluster.owner(v);
                            if dest != m {
                                raw[dest as usize] += 1;
                            }
                            accumulate::<P>(program, s, v, signal.clone());
                        }
                    }
                }
                // Drain the dense accumulator into the machine's arena as
                // per-destination combined messages (sender-side
                // combining); the arena buffers persist across supersteps.
                s.touched.sort_unstable();
                for &v in &s.touched {
                    let acc = s.acc[v as usize]
                        .take()
                        .expect("touched implies accumulated");
                    s.outbox.push(cluster.owner(v), (v, acc));
                }
                s.touched.clear();
                (raw, work, any_active)
            });
            let scatter_out: Vec<ScatterOut> = match collect_results(scatter_results) {
                Ok(out) => out,
                Err((machine, failure)) => {
                    recover_or_bail!(machine, failure, vec![0.0; k], replaying)
                }
            };

            let mut compute: Vec<f64> = scatter_out
                .iter()
                .map(|(_, w, _)| self.cost.compute_time(w))
                .collect();
            // Raw update totals per machine (sent / received).
            let mut raw_sent = vec![0u64; k];
            let mut raw_received = vec![0u64; k];
            for (from, (raw, _, _)) in scatter_out.iter().enumerate() {
                for (to, &count) in raw.iter().enumerate() {
                    raw_sent[from] += count;
                    raw_received[to] += count;
                }
            }

            // ---- the exchange barrier: injected crashes fire here --------------
            let crashed = faults.take_crashes(superstep);
            if !crashed.is_empty() {
                // The computation phase ran and is wasted; the exchange
                // never completes, so no communication is charged.
                for (m, c) in compute.iter_mut().enumerate() {
                    *c *= faults.compute_factor(superstep, m as MachineId);
                }
                // The wasted compute still counts toward waiting (the
                // exchange never completes, so comm defaults to zeros in
                // the analyzer — matching the record below).
                step_span.attr("compute", bpart_obs::analysis::join_timings(&compute));
                let recovery = restore_time(&self.cost, &checkpoint);
                telemetry.record(IterationRecord {
                    compute,
                    comm: vec![0.0; k],
                    sent: vec![0; k],
                    faults: crashed.len() as u64,
                    replay: replaying,
                    recovery,
                });
                bpart_obs::metrics::counter("cluster.recoveries").inc();
                rollback(&mut states, &checkpoint);
                superstep = checkpoint.superstep;
                continue;
            }

            // ---- exchange ------------------------------------------------------
            let mut rows: Vec<OutboxRows<P::Accum>> =
                states.iter_mut().map(|s| s.outbox.take_filled()).collect();
            // Self-addressed updates stay machine-local: they are not
            // network messages. Swap them into the persistent local-row
            // holder before counting (the swapped-in buffer is last
            // round's drained holder, so no capacity is lost either way).
            for (m, row) in rows.iter_mut().enumerate() {
                debug_assert!(local_rows[m].is_empty());
                std::mem::swap(&mut row[m], &mut local_rows[m]);
            }
            // A malformed hand-back is a deterministic structural bug, so
            // replay cannot fix it: fail the run, not the process.
            if let Err(e) = router.put_rows(rows) {
                let machine = match e {
                    bpart_cluster::RouterError::DestArity { sender, .. } => sender,
                    bpart_cluster::RouterError::SenderArity { .. } => 0,
                };
                return Err(UnrecoverableFailure {
                    superstep,
                    machine,
                    failure: MachineFailure::Panic(Box::new(e.to_string())),
                });
            }

            // Link faults act on the wire payload (the combined messages
            // actually staged): drops cost the sender a retransmission,
            // duplicates cost the receiver a discarded copy. Payloads
            // still arrive exactly once, so values are unaffected.
            let mut drop_extra_sent = vec![0u64; k];
            let mut dup_extra_received = vec![0u64; k];
            let mut link_events = 0u64;
            if !self.faults.is_empty() {
                let staged = router.staged_matrix();
                for (from, row) in staged.iter().enumerate() {
                    for (to, &count) in row.iter().enumerate() {
                        if count == 0 {
                            continue;
                        }
                        let overhead = faults.link_overhead(
                            superstep,
                            from as MachineId,
                            to as MachineId,
                            count,
                        );
                        drop_extra_sent[from] += overhead.dropped;
                        dup_extra_received[to] += overhead.duplicated;
                        link_events += overhead.total();
                    }
                }
            }

            // Deliver local updates by re-staging them post-exchange.
            router.exchange_into(&mut ex);
            for (m, own) in local_rows.iter_mut().enumerate() {
                // Local messages are applied with the same mechanism but
                // cost nothing on the network. `append` drains the holder
                // for the next superstep, keeping its capacity.
                ex.inboxes[m].append(own);
            }
            // Hand the drained rows back to their arenas for reuse.
            for (s, row) in states.iter_mut().zip(router.take_rows()) {
                s.outbox.put_drained(row);
            }

            // ---- apply phase ----------------------------------------------
            let ctx = ProgramContext {
                iteration: superstep,
                num_vertices: n,
                aggregate,
            };
            let mut any_active_next = false;
            // Sequential over machines for inbox handoff; the per-machine
            // apply loops are the heavy part and stay identical in both
            // exec modes. Inboxes are drained (not consumed) so the
            // exchange buffers carry their capacity into the next round.
            let apply_results: Vec<(WorkUnits, bool)> = {
                let mut results = Vec::with_capacity(k);
                for (m, s) in states.iter_mut().enumerate() {
                    // Merge all incoming signals into the dense accumulator.
                    for (v, a) in ex.inboxes[m].drain(..) {
                        accumulate::<P>(program, s, v, a);
                    }
                    let mut work = WorkUnits::default();
                    let mut any = false;
                    let members = cluster.local_vertices(m as u32);
                    if program.apply_to_all() {
                        for (li, &v) in members.iter().enumerate() {
                            let incoming = s.acc[v as usize].take();
                            let active = program.apply(v, &mut s.values[li], incoming, &ctx, graph);
                            s.active[li] = active;
                            any |= active;
                            work.vertices_updated += 1;
                        }
                        s.touched.clear();
                    } else {
                        // Only signalled vertices update; everyone else
                        // goes (or stays) inactive.
                        s.active.iter_mut().for_each(|a| *a = false);
                        s.touched.sort_unstable();
                        for ti in 0..s.touched.len() {
                            let v = s.touched[ti];
                            let li = local_of[v as usize] as usize;
                            let incoming = s.acc[v as usize].take();
                            let active = program.apply(v, &mut s.values[li], incoming, &ctx, graph);
                            s.active[li] = active;
                            any |= active;
                            work.vertices_updated += 1;
                        }
                        s.touched.clear();
                    }
                    results.push((work, any));
                }
                results
            };
            for (m, (work, any)) in apply_results.iter().enumerate() {
                compute[m] += self.cost.compute_time(work);
                any_active_next |= any;
            }

            // ---- checkpoint -----------------------------------------------
            if let Some(every) = self.checkpoint_every {
                if (superstep + 1) % every == 0 {
                    let _ckpt_span = bpart_obs::span("cluster.checkpoint");
                    checkpoint = Checkpoint {
                        superstep: superstep + 1,
                        machines: snapshot(&states),
                    };
                    for (m, s) in states.iter().enumerate() {
                        compute[m] += self.cost.checkpoint_time(s.values.len() as u64);
                    }
                    bpart_obs::metrics::counter("cluster.checkpoints").inc();
                }
            }

            // ---- telemetry ------------------------------------------------
            for (m, c) in compute.iter_mut().enumerate() {
                *c *= faults.compute_factor(superstep, m as MachineId);
            }
            let (mut sent_counts, mut recv_counts) = match self.comm {
                CommAccounting::PerEdgeUpdate => (raw_sent.clone(), raw_received.clone()),
                CommAccounting::Combined => (ex.sent.clone(), ex.received.clone()),
            };
            for m in 0..k {
                sent_counts[m] += drop_extra_sent[m];
                recv_counts[m] += dup_extra_received[m];
            }
            let comm: Vec<f64> = (0..k)
                .map(|m| self.cost.comm_time(sent_counts[m], recv_counts[m]))
                .collect();
            // Per-machine timings on the span (shortest round-trip f64
            // formatting), so the critical-path analyzer reconstructs the
            // same numbers `Telemetry::summary()` reports, bit-exactly.
            step_span.attr("compute", bpart_obs::analysis::join_timings(&compute));
            step_span.attr("comm", bpart_obs::analysis::join_timings(&comm));
            telemetry.record(IterationRecord {
                compute,
                comm,
                sent: sent_counts,
                faults: link_events,
                replay: replaying,
                recovery: 0.0,
            });

            superstep += 1;
            high_water = high_water.max(superstep);
            // Quiescence: once no vertex is active, no future superstep
            // can change any state — stop regardless of the iteration
            // cap (which is only an upper bound).
            if !any_active_next {
                break;
            }
        }

        // Gather values back to global order.
        let mut values: Vec<Option<P::Value>> = vec![None; n];
        for (m, s) in states.into_iter().enumerate() {
            for (li, v) in self.cluster.local_vertices(m as u32).iter().enumerate() {
                values[*v as usize] = Some(s.values[li].clone());
            }
        }
        Ok(EngineRun {
            values: values
                .into_iter()
                .map(|v| v.expect("every vertex owned"))
                .collect(),
            telemetry,
            iterations: superstep,
        })
    }
}

/// Modelled time to restore every machine from `checkpoint` (machines
/// restore in parallel, so the stall is the slowest restore).
fn restore_time<V>(cost: &CostModel, checkpoint: &Checkpoint<V>) -> f64 {
    checkpoint
        .machines
        .iter()
        .map(|(values, _)| cost.checkpoint_time(values.len() as u64))
        .fold(0.0, f64::max)
}

/// Folds `a` into machine state's dense accumulator for target `v`.
#[inline]
fn accumulate<P: VertexProgram>(
    program: &P,
    s: &mut MachineState<P::Value, P::Accum>,
    v: VertexId,
    a: P::Accum,
) {
    match &mut s.acc[v as usize] {
        Some(existing) => program.combine(existing, a),
        slot @ None => {
            *slot = Some(a);
            s.touched.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_core::{ChunkV, HashPartitioner, Partitioner};
    use bpart_graph::generate;

    /// Toy program: every vertex starts at 1 and pushes its value forward;
    /// each vertex becomes the sum of its in-signals for one iteration.
    struct PushOnce;
    impl VertexProgram for PushOnce {
        type Value = u64;
        type Accum = u64;
        fn init(&self, _v: VertexId, _g: &CsrGraph) -> u64 {
            1
        }
        fn initially_active(&self, _v: VertexId, _g: &CsrGraph) -> bool {
            true
        }
        fn scatter(&self, _u: VertexId, value: &u64, _g: &CsrGraph) -> Option<u64> {
            Some(*value)
        }
        fn combine(&self, a: &mut u64, b: u64) {
            *a += b;
        }
        fn apply(
            &self,
            _v: VertexId,
            value: &mut u64,
            incoming: Option<u64>,
            _ctx: &ProgramContext,
            _g: &CsrGraph,
        ) -> bool {
            if let Some(sum) = incoming {
                *value = sum;
            }
            false
        }
        fn max_iterations(&self) -> Option<usize> {
            Some(1)
        }
    }

    /// PushOnce, but runs for a configurable number of iterations so
    /// crash/checkpoint schedules have room to fire.
    struct PushMany(usize);
    impl VertexProgram for PushMany {
        type Value = u64;
        type Accum = u64;
        fn init(&self, _v: VertexId, _g: &CsrGraph) -> u64 {
            1
        }
        fn initially_active(&self, _v: VertexId, _g: &CsrGraph) -> bool {
            true
        }
        fn scatter(&self, _u: VertexId, value: &u64, _g: &CsrGraph) -> Option<u64> {
            Some(*value)
        }
        fn combine(&self, a: &mut u64, b: u64) {
            *a += b;
        }
        fn apply(
            &self,
            _v: VertexId,
            value: &mut u64,
            incoming: Option<u64>,
            ctx: &ProgramContext,
            _g: &CsrGraph,
        ) -> bool {
            if let Some(sum) = incoming {
                *value = value.wrapping_add(sum);
            }
            ctx.iteration + 1 < self.0
        }
        fn max_iterations(&self) -> Option<usize> {
            Some(self.0)
        }
    }

    #[test]
    fn push_once_counts_in_degree() {
        let graph = Arc::new(generate::star(4)); // hub 0 <-> 4 spokes
        let partition = Arc::new(ChunkV.partition(&graph, 2));
        let engine = IterationEngine::default_for(graph.clone(), partition);
        let run = engine.run(&PushOnce);
        assert_eq!(run.iterations, 1);
        // hub receives 4 signals of value 1; spokes receive 1 each
        assert_eq!(run.values[0], 4);
        for v in 1..5 {
            assert_eq!(run.values[v], 1);
        }
    }

    #[test]
    fn results_are_partition_invariant() {
        let graph = Arc::new(generate::erdos_renyi(200, 1_200, 5));
        let a = IterationEngine::default_for(graph.clone(), Arc::new(ChunkV.partition(&graph, 4)))
            .run(&PushOnce);
        let b = IterationEngine::default_for(
            graph.clone(),
            Arc::new(HashPartitioner::default().partition(&graph, 4)),
        )
        .run(&PushOnce);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn telemetry_records_each_iteration() {
        let graph = Arc::new(generate::ring(16));
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let engine = IterationEngine::default_for(graph, partition);
        let run = engine.run(&PushOnce);
        assert_eq!(run.telemetry.num_iterations(), 1);
        let records = run.telemetry.records();
        // On a ring split into contiguous chunks, only chunk-boundary
        // signals cross machines: 4 cut edges = 4 messages.
        assert_eq!(records[0].sent.iter().sum::<u64>(), 4);
    }

    #[test]
    fn combined_accounting_charges_less_than_per_edge() {
        // Many sources per remote target: combining collapses them, so the
        // Combined accounting must report (weakly) fewer messages and the
        // values must be identical either way.
        let graph = Arc::new(generate::complete(24));
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let per_edge =
            IterationEngine::default_for(graph.clone(), partition.clone()).run(&PushOnce);
        let combined = IterationEngine::default_for(graph.clone(), partition)
            .with_comm_accounting(CommAccounting::Combined)
            .run(&PushOnce);
        assert_eq!(per_edge.values, combined.values);
        let raw = per_edge.telemetry.total_messages();
        let merged = combined.telemetry.total_messages();
        assert!(merged < raw, "combined {merged} should be below raw {raw}");
        // complete graph on 4 machines: every vertex signals 18 remote
        // targets; combined messages = (machine, target) pairs = 3 * 24 per
        // direction pattern
        // every vertex signals its 18 remote neighbors: 24 x 18 raw updates
        assert_eq!(raw, 24 * 18);
        // combined: each of the 4 machines sends one update per remote
        // target = 18 messages
        assert_eq!(merged, 4 * 18);
    }

    #[test]
    fn threaded_mode_matches_sequential() {
        let graph = Arc::new(generate::erdos_renyi(150, 900, 9));
        let partition = Arc::new(ChunkV.partition(&graph, 3));
        let seq = IterationEngine::new(
            Cluster::new(graph.clone(), partition.clone()),
            CostModel::default(),
            ExecMode::Sequential,
        )
        .run(&PushOnce);
        let thr = IterationEngine::new(
            Cluster::new(graph.clone(), partition),
            CostModel::default(),
            ExecMode::Threaded,
        )
        .run(&PushOnce);
        assert_eq!(seq.values, thr.values);
    }

    fn faulted_engine(
        graph: &Arc<CsrGraph>,
        k: usize,
        plan: FaultPlan,
        checkpoint_every: Option<usize>,
    ) -> IterationEngine {
        let partition = Arc::new(ChunkV.partition(graph, k));
        let mut e = IterationEngine::default_for(graph.clone(), partition).with_faults(plan);
        if let Some(every) = checkpoint_every {
            e = e.with_checkpoint_every(every);
        }
        e
    }

    #[test]
    fn crash_recovery_reproduces_fault_free_values() {
        let graph = Arc::new(generate::erdos_renyi(120, 800, 3));
        let clean = faulted_engine(&graph, 4, FaultPlan::new(), None).run(&PushMany(6));
        for checkpoint_every in [None, Some(2), Some(4)] {
            let plan = FaultPlan::new().crash(3, 1);
            let faulted = faulted_engine(&graph, 4, plan, checkpoint_every).run(&PushMany(6));
            assert_eq!(clean.values, faulted.values, "ckpt {checkpoint_every:?}");
            assert_eq!(clean.iterations, faulted.iterations);
            assert_eq!(faulted.telemetry.total_faults(), 1);
            assert!(
                faulted.telemetry.replayed_supersteps() > 0,
                "rollback past completed supersteps must show as replays"
            );
            assert!(faulted.telemetry.total_recovery_time() > 0.0);
            assert!(faulted.telemetry.total_time() > clean.telemetry.total_time());
        }
    }

    #[test]
    fn checkpoint_interval_bounds_replay_distance() {
        let graph = Arc::new(generate::erdos_renyi(80, 500, 4));
        let crash_at = 5usize;
        for (every, expected_replays) in [(None, 5), (Some(1), 0), (Some(2), 1), (Some(4), 1)] {
            let run = faulted_engine(&graph, 4, FaultPlan::new().crash(crash_at, 0), every)
                .run(&PushMany(6));
            // Rollback lands on the last checkpoint at or below the crash
            // superstep; everything between is re-executed as a replay.
            assert_eq!(
                run.telemetry.replayed_supersteps(),
                expected_replays,
                "every={every:?}"
            );
        }
    }

    #[test]
    fn multiple_crashes_and_exec_modes_agree() {
        let graph = Arc::new(generate::erdos_renyi(100, 700, 8));
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let plan = FaultPlan::new().crash(1, 0).crash(3, 2).crash(3, 3);
        let clean =
            IterationEngine::default_for(graph.clone(), partition.clone()).run(&PushMany(5));
        let seq = IterationEngine::new(
            Cluster::new(graph.clone(), partition.clone()),
            CostModel::default(),
            ExecMode::Sequential,
        )
        .with_faults(plan.clone())
        .with_checkpoint_every(2)
        .run(&PushMany(5));
        let thr = IterationEngine::new(
            Cluster::new(graph.clone(), partition),
            CostModel::default(),
            ExecMode::Threaded,
        )
        .with_faults(plan)
        .with_checkpoint_every(2)
        .run(&PushMany(5));
        assert_eq!(clean.values, seq.values);
        assert_eq!(seq.values, thr.values);
        assert_eq!(seq.telemetry.total_faults(), 3);
        assert_eq!(thr.telemetry.total_faults(), 3);
        assert_eq!(
            seq.telemetry.replayed_supersteps(),
            thr.telemetry.replayed_supersteps()
        );
        assert_eq!(seq.telemetry.total_time(), thr.telemetry.total_time());
    }

    #[test]
    fn stragglers_slow_the_clock_but_not_the_answer() {
        let graph = Arc::new(generate::erdos_renyi(100, 600, 2));
        let clean = faulted_engine(&graph, 4, FaultPlan::new(), None).run(&PushMany(4));
        let slow = faulted_engine(&graph, 4, FaultPlan::new().straggler(0, 9, 2, 8.0), None)
            .run(&PushMany(4));
        assert_eq!(clean.values, slow.values);
        assert_eq!(slow.telemetry.total_faults(), 0);
        assert!(slow.telemetry.total_time() > clean.telemetry.total_time());
        assert!(slow.telemetry.waiting_ratio() > clean.telemetry.waiting_ratio());
    }

    #[test]
    fn link_faults_charge_retransmissions_without_changing_values() {
        let graph = Arc::new(generate::complete(32));
        let clean = faulted_engine(&graph, 4, FaultPlan::new(), None).run(&PushMany(3));
        let lossy = faulted_engine(
            &graph,
            4,
            FaultPlan::new()
                .with_seed(5)
                .drop_link(0, 9, 0, 1, 0.5)
                .duplicate_link(0, 9, 2, 3, 0.5),
            None,
        )
        .run(&PushMany(3));
        assert_eq!(clean.values, lossy.values);
        assert!(lossy.telemetry.total_faults() > 0);
        assert!(lossy.telemetry.total_messages() > clean.telemetry.total_messages());
        assert!(lossy.telemetry.total_time() > clean.telemetry.total_time());
    }

    #[test]
    fn fault_free_runs_are_unchanged_by_the_fault_machinery() {
        let graph = Arc::new(generate::erdos_renyi(90, 500, 6));
        let a = faulted_engine(&graph, 3, FaultPlan::new(), None).run(&PushMany(4));
        let b = faulted_engine(&graph, 3, FaultPlan::new().crash(100, 0), None).run(&PushMany(4));
        // A crash scheduled past the end of the run never fires.
        assert_eq!(a.values, b.values);
        assert_eq!(a.telemetry.total_time(), b.telemetry.total_time());
        assert_eq!(b.telemetry.total_faults(), 0);
        assert_eq!(b.telemetry.replayed_supersteps(), 0);
    }

    /// A program whose scatter panics on one machine's vertex range at a
    /// chosen iteration — once, or persistently.
    struct PanicAt {
        vertex: VertexId,
        iterations: usize,
    }
    impl VertexProgram for PanicAt {
        type Value = u64;
        type Accum = u64;
        fn init(&self, _v: VertexId, _g: &CsrGraph) -> u64 {
            1
        }
        fn initially_active(&self, _v: VertexId, _g: &CsrGraph) -> bool {
            true
        }
        fn scatter(&self, u: VertexId, value: &u64, _g: &CsrGraph) -> Option<u64> {
            if u == self.vertex {
                panic!("scatter bug on vertex {u}");
            }
            Some(*value)
        }
        fn combine(&self, a: &mut u64, b: u64) {
            *a += b;
        }
        fn apply(
            &self,
            _v: VertexId,
            value: &mut u64,
            incoming: Option<u64>,
            _ctx: &ProgramContext,
            _g: &CsrGraph,
        ) -> bool {
            if let Some(sum) = incoming {
                *value += sum;
            }
            true
        }
        fn max_iterations(&self) -> Option<usize> {
            Some(self.iterations)
        }
    }

    #[test]
    fn deterministic_panic_surfaces_as_unrecoverable_failure() {
        let graph = Arc::new(generate::ring(12));
        let partition = Arc::new(ChunkV.partition(&graph, 3));
        for mode in [ExecMode::Sequential, ExecMode::Threaded] {
            let engine = IterationEngine::new(
                Cluster::new(graph.clone(), partition.clone()),
                CostModel::default(),
                mode,
            );
            let err = engine
                .try_run(&PanicAt {
                    vertex: 7,
                    iterations: 3,
                })
                .unwrap_err();
            // Vertex 7 lives on machine 1 (ChunkV over 12 vertices / 3).
            assert_eq!(err.machine, 1);
            assert_eq!(err.superstep, 0);
            assert_eq!(err.failure.panic_message(), Some("scatter bug on vertex 7"));
        }
    }
}
