//! End-to-end tests driving the compiled `bpart` binary.

use std::path::PathBuf;
use std::process::Command;

fn bpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bpart"))
}

fn tmp(name: &str) -> (PathBuf, String) {
    let mut p = std::env::temp_dir();
    p.push(format!("bpart_e2e_{}_{name}", std::process::id()));
    let s = p.to_str().unwrap().to_string();
    (p, s)
}

#[test]
fn full_pipeline_through_the_binary() {
    let (gp, g) = tmp("pipe.txt");
    let (pp, p) = tmp("pipe.parts");

    let out = bpart()
        .args([
            "generate",
            "--preset",
            "twitter_like",
            "--scale",
            "0.01",
            "--out",
            &g,
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("1000 vertices"));

    let out = bpart()
        .args([
            "partition",
            &g,
            "--parts",
            "4",
            "--scheme",
            "bpart",
            "--out",
            &p,
        ])
        .output()
        .expect("run partition");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("vertex bias"), "{text}");

    let out = bpart()
        .args(["quality", &g, &p])
        .output()
        .expect("run quality");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("(4 parts)"));

    std::fs::remove_file(gp).ok();
    std::fs::remove_file(pp).ok();
}

#[test]
fn help_lists_all_commands_and_exits_zero() {
    let out = bpart().arg("--help").output().expect("run help");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "generate",
        "stats",
        "partition",
        "quality",
        "convert",
        "schemes",
    ] {
        assert!(text.contains(cmd), "usage missing {cmd}");
    }
}

#[test]
fn errors_exit_nonzero_with_usage_on_stderr() {
    let out = bpart().arg("frobnicate").output().expect("run bad command");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"), "{err}");
    assert!(err.contains("USAGE"), "{err}");

    let out = bpart()
        .args(["stats", "/no/such/file"])
        .output()
        .expect("run missing file");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("/no/such/file"));
}

#[test]
fn schemes_listing_matches_library_roster() {
    let out = bpart().arg("schemes").output().expect("run schemes");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for scheme in bpart_cli::commands::scheme_names() {
        assert!(text.contains(scheme), "missing {scheme}");
    }
}
