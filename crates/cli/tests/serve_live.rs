//! Live monitoring: `--serve-addr` must answer all four endpoints while
//! the job is still running. The run happens on a worker thread; the test
//! discovers the OS-assigned port via `serve::last_bound_addr` and
//! scrapes the endpoints over raw TCP mid-run.

use bpart_cli::{run, Command, ObsFlags};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bpart_serve_test_{}_{name}", std::process::id()));
    p
}

/// One blocking HTTP/1.1 GET; returns the full response (head + body).
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: bpart\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

/// Retries `http_get` until the response contains `marker` (the server
/// may still be loading the graph on the first scrape).
fn scrape(addr: SocketAddr, path: &str, marker: &str, deadline: Instant) -> String {
    let mut last = String::new();
    while Instant::now() < deadline {
        if let Ok(response) = http_get(addr, path) {
            if response.starts_with("HTTP/1.1 200") && response.contains(marker) {
                return response;
            }
            last = response;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("GET {path}: never saw {marker:?}; last response:\n{last}");
}

#[test]
fn serve_addr_answers_all_endpoints_during_a_run() {
    let graph_path = tmp("live.txt");
    let gp = graph_path.to_str().unwrap().to_string();
    run(&Command::Generate {
        preset: "lj_like".into(),
        scale: 0.02,
        seed: Some(5),
        out: gp.clone(),
    })
    .unwrap();

    // Enough supersteps that the job is still running for several seconds
    // (debug builds take ~5ms per superstep) while the test scrapes.
    let worker = std::thread::spawn(move || {
        run(&Command::Run {
            backend: "threads".into(),
            workers: None,
            graph: gp,
            parts: 4,
            scheme: "bpart".into(),
            app: "pagerank".into(),
            iters: 1200,
            walk_len: 5,
            seed: 7,
            mode: "sequential".into(),
            fault_plan: None,
            checkpoint_every: None,
            threads: 1,
            buffer_size: bpart_core::DEFAULT_BUFFER_SIZE,
            obs: ObsFlags {
                serve_addr: Some("127.0.0.1:0".into()),
                ..ObsFlags::default()
            },
        })
    });

    // The server binds before the graph even loads; wait for the addr.
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Some(addr) = bpart_obs::serve::last_bound_addr() {
            break addr;
        }
        assert!(Instant::now() < deadline, "server never bound");
        std::thread::sleep(Duration::from_millis(10));
    };

    assert!(
        !worker.is_finished(),
        "run finished before the first scrape"
    );
    let health = scrape(addr, "/healthz", "ok", deadline);
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    // Counters from the partitioning/cluster layers appear once work starts.
    scrape(addr, "/metrics", "# TYPE", deadline);
    scrape(addr, "/progress", "\"counters\"", deadline);
    // Superstep/stream spans close continuously while the job runs.
    scrape(addr, "/spans", "\"name\"", deadline);
    assert!(
        !worker.is_finished(),
        "endpoints should have been scraped mid-run"
    );

    let out = worker.join().unwrap().unwrap();
    assert!(out.contains("served observability on http://"), "{out}");
    // The listener is gone after the run: a fresh GET must fail.
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        http_get(addr, "/healthz").is_err(),
        "server still up after the run finished"
    );

    std::fs::remove_file(graph_path).ok();
}
