//! The critical-path analyzer must agree with the cluster telemetry on a
//! real workload: the per-machine blame totals are derived from span
//! attributes, the telemetry summary from the superstep records, and both
//! fold the same numbers in the same order — so they match bit-for-bit.

use bpart_cli::commands::scheme_by_name;
use bpart_cli::{run, Command, ObsFlags};
use bpart_cluster::exec::ExecMode;
use bpart_cluster::{Cluster, CostModel, FaultPlan};
use bpart_engine::apps::PageRank;
use bpart_engine::IterationEngine;
use bpart_graph::{generate, CsrGraph};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// The tests share the process-global tracer ring; serialize them.
static TRACER: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    TRACER.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bpart_cp_test_{}_{name}", std::process::id()));
    p
}

fn fixture_graph() -> CsrGraph {
    let mut recipe = generate::ALL_PRESETS
        .iter()
        .map(|p| p())
        .find(|p| p.name == "lj_like")
        .unwrap();
    recipe.seed = 11;
    recipe.generate_scaled(0.02)
}

#[test]
fn blame_totals_agree_bit_exactly_with_telemetry() {
    let _guard = lock();
    let graph = Arc::new(fixture_graph());
    let scheme = scheme_by_name("bpart").unwrap();
    let (partition, _) = scheme.partition_with_stats(&graph, 4);
    let partition = Arc::new(partition);

    bpart_obs::set_trace_enabled(true);
    bpart_obs::clear_trace();
    // Include a crash + replay so the analyzer also sees the recovery
    // paths (aborted supersteps record zero compute and are skipped).
    let plan: FaultPlan = "crash@3:m1".parse().unwrap();
    let engine = IterationEngine::new(
        Cluster::new(graph, partition),
        CostModel::default(),
        ExecMode::Sequential,
    )
    .with_faults(plan)
    .with_checkpoint_every(2);
    let run = engine.try_run(&PageRank::new(8)).unwrap();
    let jsonl = bpart_obs::export::trace_to_jsonl(&bpart_obs::tracer::snapshot());
    bpart_obs::set_trace_enabled(false);

    let spans = bpart_obs::report::parse_trace_jsonl(&jsonl).unwrap();
    let cp = bpart_obs::analysis::analyze(&spans).unwrap();
    let summary = run.telemetry.summary();

    assert_eq!(cp.machines.len(), summary.machines.len());
    for (m, (blame, tele)) in cp.machines.iter().zip(&summary.machines).enumerate() {
        // Exact equality, not approximate: both sides perform the same
        // f64 additions in the same order (see obs::analysis docs).
        assert_eq!(blame.compute, tele.compute, "machine {m} compute");
        assert_eq!(blame.waiting, tele.waiting, "machine {m} waiting");
    }
    // Every superstep is gated by exactly one machine, and the gating
    // compute is the step's critical time.
    let gated: u64 = cp.machines.iter().map(|m| m.gated_steps).sum();
    assert_eq!(gated as usize, cp.steps.len());
    assert!(
        cp.steps.iter().any(|s| s.replay),
        "crash should force a replay step"
    );
}

#[test]
fn report_critical_path_renders_gating_and_blame() {
    let _guard = lock();
    let graph_path = tmp("report.txt");
    let trace_path = tmp("report.jsonl");
    let gp = graph_path.to_str().unwrap().to_string();
    let tp = trace_path.to_str().unwrap().to_string();

    run(&Command::Generate {
        preset: "lj_like".into(),
        scale: 0.01,
        seed: Some(5),
        out: gp.clone(),
    })
    .unwrap();
    run(&Command::Run {
        backend: "threads".into(),
        workers: None,
        graph: gp.clone(),
        parts: 4,
        scheme: "bpart".into(),
        app: "pagerank".into(),
        iters: 5,
        walk_len: 5,
        seed: 7,
        mode: "sequential".into(),
        fault_plan: None,
        checkpoint_every: None,
        threads: 1,
        buffer_size: bpart_core::DEFAULT_BUFFER_SIZE,
        obs: ObsFlags {
            trace_out: Some(tp.clone()),
            ..ObsFlags::default()
        },
    })
    .unwrap();

    let out = run(&Command::Report {
        traces: vec![tp.clone()],
        critical_path: true,
        profile: false,
        straggler_factor: 2.0,
    })
    .unwrap();
    assert!(
        out.contains("critical path: 5 supersteps, 4 machines"),
        "{out}"
    );
    assert!(out.contains("per-machine blame"), "{out}");
    assert!(out.contains("stragglers"), "{out}");
    // Each superstep row names its gating machine.
    let gate_rows = out.lines().filter(|l| l.contains("  m")).count();
    assert!(gate_rows >= 5, "{out}");

    // Without --critical-path the classic span tree is rendered instead.
    let tree = run(&Command::Report {
        traces: vec![tp.clone()],
        critical_path: false,
        profile: false,
        straggler_factor: 2.0,
    })
    .unwrap();
    assert!(tree.contains("per-phase totals"), "{tree}");

    std::fs::remove_file(graph_path).ok();
    std::fs::remove_file(trace_path).ok();
}
