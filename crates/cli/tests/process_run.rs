//! End-to-end CLI test of `run --backend process`: the real `bpart`
//! binary spawns real worker processes, a fault-plan crash `SIGKILL`s
//! one mid-run, and the command itself verifies bit-identity against the
//! threads oracle (it exits non-zero on divergence). This is the same
//! path the CI chaos job drives.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bpart_procrun_test_{}_{name}", std::process::id()));
    p
}

fn bpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bpart"))
}

fn generate_graph(path: &PathBuf) {
    let out = bpart()
        .args([
            "generate", "--preset", "lj_like", "--scale", "0.02", "--seed", "11", "--out",
        ])
        .arg(path)
        .output()
        .expect("run bpart generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn process_backend_survives_a_sigkill_and_matches_the_oracle() {
    let graph = tmp("graph.txt");
    generate_graph(&graph);

    let out = bpart()
        .arg("run")
        .arg(&graph)
        .args([
            "--parts",
            "3",
            "--scheme",
            "chunk-v",
            "--app",
            "pagerank",
            "--iters",
            "6",
            "--backend",
            "process",
            "--fault-plan",
            "crash@2:m1",
            "--checkpoint-every",
            "2",
        ])
        .output()
        .expect("run bpart run --backend process");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("bit-identical:   yes"), "{stdout}");
    // Exactly one scheduled kill: one death, one recovery, one respawn.
    assert!(
        stdout.contains("recovery:        1 deaths, 1 recoveries, 1 respawns"),
        "{stdout}"
    );
    std::fs::remove_file(&graph).ok();
}

#[test]
fn process_backend_runs_clean_without_faults() {
    let graph = tmp("clean_graph.txt");
    generate_graph(&graph);

    let out = bpart()
        .arg("run")
        .arg(&graph)
        .args([
            "--parts",
            "3",
            "--app",
            "cc",
            "--backend",
            "process",
            "--checkpoint-every",
            "2",
        ])
        .output()
        .expect("run bpart run --backend process");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("bit-identical:   yes"), "{stdout}");
    assert!(
        stdout.contains("recovery:        0 deaths, 0 recoveries"),
        "{stdout}"
    );
    std::fs::remove_file(&graph).ok();
}
