//! `bpart` binary entry point — a thin shim over [`bpart_cli::dispatch`].

use std::process::ExitCode;

// With `--features alloc-profile`, heap traffic is attributed to the
// innermost live span (surfaced as `# alloc:` lines in `--profile-out`
// dumps). Recording stays off until the profiler arms it at run start.
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static ALLOC: bpart_obs::profile::SpanAlloc<std::alloc::System> =
    bpart_obs::profile::SpanAlloc(std::alloc::System);

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match bpart_cli::dispatch(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("bpart: {error}");
            if matches!(error, bpart_cli::DispatchError::Parse(_)) {
                eprintln!();
                eprintln!("{}", bpart_cli::USAGE);
            }
            ExitCode::FAILURE
        }
    }
}
