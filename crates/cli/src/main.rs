//! `bpart` binary entry point — a thin shim over [`bpart_cli::dispatch`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match bpart_cli::dispatch(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("bpart: {error}");
            if matches!(error, bpart_cli::DispatchError::Parse(_)) {
                eprintln!();
                eprintln!("{}", bpart_cli::USAGE);
            }
            ExitCode::FAILURE
        }
    }
}
