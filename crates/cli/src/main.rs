//! `bpart` binary entry point — a thin shim over [`bpart_cli::dispatch`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match bpart_cli::dispatch(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("bpart: {message}");
            eprintln!();
            eprintln!("{}", bpart_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
