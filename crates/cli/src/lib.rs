//! # bpart-cli — the `bpart` command-line tool
//!
//! A downstream-user front end over the library crates:
//!
//! ```text
//! bpart generate --preset twitter_like --scale 0.1 --out graph.txt
//! bpart stats graph.txt
//! bpart partition graph.txt --parts 8 --scheme bpart --out graph.parts
//! bpart quality graph.txt graph.parts
//! bpart convert graph.txt graph.bpgr
//! ```
//!
//! Graph files ending in `.bpgr` use the binary CSR format; anything else
//! is treated as a SNAP-style text edge list. Partition files ending in
//! `.bppt` are binary; anything else is the METIS-style one-id-per-line
//! text format.
//!
//! The command logic lives in this library (returning output as a
//! `String`) so it is unit-testable; `main.rs` is a thin shim.

pub mod args;
pub mod commands;

pub use args::{parse, Command, ObsFlags, ParseError};
pub use commands::{run, CliError};

/// How a [`dispatch`] call failed — `main.rs` prints the usage text after
/// parse errors but not after runtime failures (a regression reported by
/// `bpart obs diff` should not be buried under the flag listing).
#[derive(Debug)]
pub enum DispatchError {
    /// The arguments did not parse; usage is worth showing.
    Parse(String),
    /// The command ran and failed; the message is the whole story.
    Run(String),
}

impl std::fmt::Display for DispatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchError::Parse(m) | DispatchError::Run(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for DispatchError {}

/// Entry point shared by `main.rs` and the tests: parse then run.
pub fn dispatch(argv: &[String]) -> Result<String, DispatchError> {
    let command = parse(argv).map_err(|e| DispatchError::Parse(e.to_string()))?;
    run(&command).map_err(|e| DispatchError::Run(e.to_string()))
}

/// The usage text printed on `--help` or argument errors.
pub const USAGE: &str = "\
bpart — two-dimensional balanced graph partitioning (BPart, ICPP '22)

USAGE:
  bpart generate  --preset <lj_like|twitter_like|friendster_like> \
[--scale F] [--seed N] --out FILE
  bpart stats     GRAPH
  bpart partition GRAPH --parts K [--scheme NAME] [--out FILE] \
[--threads T] [--buffer-size B] [--input-format auto|text|binary|shards] \
[--shard-dir DIR] [--mem-ceiling MB] [+ OBSERVABILITY flags]
  bpart shard     GRAPH --out-dir DIR [--shard-bytes N]
  bpart quality   GRAPH PARTITION
  bpart run       GRAPH --parts K [--scheme NAME] [--app APP] [--iters N] \
[--walk-len L] [--seed N] [--mode sequential|threaded] \
[--backend threads|process] [--workers N] [--fault-plan SPEC] \
[--checkpoint-every N] [--threads T] [--buffer-size B] \
[+ OBSERVABILITY flags]
  bpart report    TRACE... [--critical-path] [--profile] [--straggler-factor F]
  bpart obs diff  BASELINE CANDIDATE [--watch M1,M2] [--threshold F]
  bpart obs alerts ADDR
  bpart convert   SRC DST
  bpart schemes

SCHEMES:
  chunk-v | chunk-e | hash | fennel | ldg | bpart (default) | bpart-p1 |
  multilevel | gd

APPS (run):
  pagerank (default) | cc | deepwalk | walk

FAULT PLANS (run --fault-plan):
  semicolon-separated clauses, e.g. \"crash@3:m1;straggle@0-9:m2:x4;seed=7\":
  crash@S:mM            machine M crashes at superstep S
  straggle@A-B:mM:xF    machine M runs F times slower on supersteps A..=B
  drop@A-B:mF->mT:P     link F->T drops (retransmits) messages with prob P
  dup@A-B:mF->mT:P      link F->T duplicates messages with prob P
  seed=N                seed for the per-link fault hashing
  Crashed supersteps roll back to the last checkpoint (--checkpoint-every)
  and replay; results are identical to a fault-free run.

DISTRIBUTED MODE (run --backend process):
  --backend process  run each BSP machine as a real supervised worker
                     process (spawned from this binary) over TCP; the
                     thread-simulated oracle runs alongside and the
                     command fails unless results are bit-identical
  --workers N        worker process count; must equal --parts (default)
  Fault-plan crash clauses become real SIGKILLs of worker processes:
  death is detected by heartbeat loss, state restores from the last
  driver-held checkpoint (--checkpoint-every), and the run replays to
  the same result. See DESIGN.md §13.

OUT-OF-CORE (partition graphs bigger than RAM; see DESIGN.md §14):
  bpart shard GRAPH --out-dir DIR   split GRAPH into a self-describing
                     shard directory (.bpgr inputs convert zero-copy via
                     mmap); --shard-bytes caps each shard (default 64 MiB)
                     and thereby the pipeline's largest resident buffer
  --input-format F   partition input kind: auto (default; detects shard
                     directories by their manifest), text, binary, shards
  --shard-dir DIR    stream from this shard directory (implies shards;
                     the GRAPH positional may then be omitted)
  --mem-ceiling MB   hard-cap the process address space via RLIMIT_AS —
                     an out-of-core run that regresses to O(graph) memory
                     fails instead of quietly succeeding
  Out-of-core runs support the streaming schemes (fennel, bpart-p1) and
  produce bit-identical assignments to their in-memory counterparts.

PARALLEL STREAMING (partition/run, streaming schemes only):
  --threads T      scoring worker threads (default 1 = exact sequential)
  --buffer-size B  vertices scored per weight-sync window (default 4096);
                   B=1 reproduces the sequential result for any T

OBSERVABILITY (partition/run; see DESIGN.md §10–11):
  --trace-out FILE    dump hierarchical phase spans as JSON lines; render
                      the flame-style tree with `bpart report FILE`
  --metrics-out FILE  dump the counter/gauge/histogram registry as a
                      Prometheus-style text snapshot
  --serve-addr ADDR   serve /metrics /spans /healthz /progress over HTTP
                      while the job runs (e.g. 127.0.0.1:9090; port 0 picks
                      a free port, announced on stderr)
  --history-out FILE  append-style run-history record (JSON) with config,
                      git rev, and headline metrics for `bpart obs diff`
  --git-rev REV       revision stamped into the history record (defaults
                      to $BPART_GIT_REV / $GITHUB_SHA)
  --profile-out FILE  continuous-profiler flamegraph (folded-stack text);
                      on a process-backend run this merges the driver's
                      and every worker's profile into one cluster view
  BPART_TAIL_SAMPLE=1 (env) tail-based span sampling: slow/faulted
                      supersteps keep full detail in the span ring, fast
                      repetitive ones downsample (DESIGN.md §16)
  A --serve-addr server also exposes /profile (live folded stacks) and
  /alerts (built-in metric rules: worker-death, straggler, pipeline-stall,
  replay-storm, rpc-rtt-p99); firing alerts turn /healthz degraded and
  `bpart obs alerts ADDR` pretty-prints them.

REPORT (post-mortem on --trace-out files; several TRACEs — the driver's
plus the per-worker exports a process-backend run leaves next to it —
merge into one clock-aligned view):
  --critical-path       per-superstep gating machine + per-machine blame
                        table (paper Fig. 13) instead of the span tree
  --profile             merge folded-stack PROFILE files (--profile-out)
                        into one flame view instead of reading traces
  --straggler-factor F  flag supersteps whose gating compute exceeds the
                        superstep median by F (default 2)

OBS DIFF (run-to-run regression check; exits non-zero on regression):
  --watch M1,M2   watched metrics (default wall_time_secs,cut_ratio);
                  a watched metric regresses when the candidate exceeds
                  the baseline by more than the threshold
  --threshold F   allowed relative increase (default 0.05 = 5%)

FILES:
  *.bpgr  binary CSR graph        (anything else: text edge list)
  *.bppt  binary partition        (anything else: text, one part per line)
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_reports_parse_errors() {
        let err = dispatch(&["frobnicate".into()]).unwrap_err();
        assert!(matches!(err, DispatchError::Parse(_)), "{err:?}");
        assert!(err.to_string().contains("unknown command"), "{err}");
    }

    #[test]
    fn dispatch_marks_runtime_failures_as_run_errors() {
        let err = dispatch(&["stats".into(), "/no/such/graph".into()]).unwrap_err();
        assert!(matches!(err, DispatchError::Run(_)), "{err:?}");
    }

    #[test]
    fn dispatch_runs_schemes_listing() {
        let out = dispatch(&["schemes".into()]).unwrap();
        assert!(out.contains("bpart"));
        assert!(out.contains("chunk-v"));
    }
}
