//! # bpart-cli — the `bpart` command-line tool
//!
//! A downstream-user front end over the library crates:
//!
//! ```text
//! bpart generate --preset twitter_like --scale 0.1 --out graph.txt
//! bpart stats graph.txt
//! bpart partition graph.txt --parts 8 --scheme bpart --out graph.parts
//! bpart quality graph.txt graph.parts
//! bpart convert graph.txt graph.bpgr
//! ```
//!
//! Graph files ending in `.bpgr` use the binary CSR format; anything else
//! is treated as a SNAP-style text edge list. Partition files ending in
//! `.bppt` are binary; anything else is the METIS-style one-id-per-line
//! text format.
//!
//! The command logic lives in this library (returning output as a
//! `String`) so it is unit-testable; `main.rs` is a thin shim.

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError};
pub use commands::{run, CliError};

/// Entry point shared by `main.rs` and the tests: parse then run.
pub fn dispatch(argv: &[String]) -> Result<String, String> {
    let command = parse(argv).map_err(|e| e.to_string())?;
    run(&command).map_err(|e| e.to_string())
}

/// The usage text printed on `--help` or argument errors.
pub const USAGE: &str = "\
bpart — two-dimensional balanced graph partitioning (BPart, ICPP '22)

USAGE:
  bpart generate  --preset <lj_like|twitter_like|friendster_like> \
[--scale F] [--seed N] --out FILE
  bpart stats     GRAPH
  bpart partition GRAPH --parts K [--scheme NAME] [--out FILE] \
[--threads T] [--buffer-size B] [--trace-out FILE] [--metrics-out FILE]
  bpart quality   GRAPH PARTITION
  bpart run       GRAPH --parts K [--scheme NAME] [--app APP] [--iters N] \
[--walk-len L] [--seed N] [--mode sequential|threaded] [--fault-plan SPEC] \
[--checkpoint-every N] [--threads T] [--buffer-size B] \
[--trace-out FILE] [--metrics-out FILE]
  bpart report    TRACE
  bpart convert   SRC DST
  bpart schemes

SCHEMES:
  chunk-v | chunk-e | hash | fennel | ldg | bpart (default) | bpart-p1 |
  multilevel | gd

APPS (run):
  pagerank (default) | cc | deepwalk | walk

FAULT PLANS (run --fault-plan):
  semicolon-separated clauses, e.g. \"crash@3:m1;straggle@0-9:m2:x4;seed=7\":
  crash@S:mM            machine M crashes at superstep S
  straggle@A-B:mM:xF    machine M runs F times slower on supersteps A..=B
  drop@A-B:mF->mT:P     link F->T drops (retransmits) messages with prob P
  dup@A-B:mF->mT:P      link F->T duplicates messages with prob P
  seed=N                seed for the per-link fault hashing
  Crashed supersteps roll back to the last checkpoint (--checkpoint-every)
  and replay; results are identical to a fault-free run.

PARALLEL STREAMING (partition/run, streaming schemes only):
  --threads T      scoring worker threads (default 1 = exact sequential)
  --buffer-size B  vertices scored per weight-sync window (default 4096);
                   B=1 reproduces the sequential result for any T

OBSERVABILITY (partition/run; see DESIGN.md §10):
  --trace-out FILE    dump hierarchical phase spans as JSON lines; render
                      the flame-style tree with `bpart report FILE`
  --metrics-out FILE  dump the counter/gauge/histogram registry as a
                      Prometheus-style text snapshot

FILES:
  *.bpgr  binary CSR graph        (anything else: text edge list)
  *.bppt  binary partition        (anything else: text, one part per line)
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_reports_parse_errors() {
        let err = dispatch(&["frobnicate".into()]).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
    }

    #[test]
    fn dispatch_runs_schemes_listing() {
        let out = dispatch(&["schemes".into()]).unwrap();
        assert!(out.contains("bpart"));
        assert!(out.contains("chunk-v"));
    }
}
