//! Command implementations. Each returns its output as a `String` so the
//! behaviour is unit-testable without capturing stdout.

use crate::args::{Command, ObsFlags};
use crate::USAGE;
use bpart_cluster::exec::ExecMode;
use bpart_cluster::{Cluster, CostModel, FaultPlan, Telemetry};
use bpart_core::pio;
use bpart_core::prelude::*;
use bpart_engine::apps::{ConnectedComponents, PageRank};
use bpart_engine::IterationEngine;
use bpart_graph::{generate, io, stats, CsrGraph};
use bpart_multilevel::Multilevel;
use bpart_walker::apps::{DeepWalk, SimpleRandomWalk};
use bpart_walker::{WalkEngine, WalkStarts};
use std::fmt;
use std::fs::File;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Errors surfaced to the user with context.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn fail(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Executes a parsed command and returns its printable output.
pub fn run(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Schemes => Ok(scheme_names().join("\n") + "\n"),
        Command::Generate {
            preset,
            scale,
            seed,
            out,
        } => generate_cmd(preset, *scale, *seed, out),
        Command::Stats { graph } => stats_cmd(graph),
        Command::Partition {
            graph,
            parts,
            scheme,
            out,
            threads,
            buffer_size,
            input_format,
            shard_dir,
            mem_ceiling_mb,
            obs,
        } => {
            let exports = ObsExports::begin(obs)?;
            let mut text = partition_cmd(
                graph,
                *parts,
                scheme,
                out.as_deref(),
                ParallelConfig {
                    threads: *threads,
                    buffer_size: *buffer_size,
                },
                input_format,
                shard_dir.as_deref(),
                *mem_ceiling_mb,
                obs,
            )?;
            exports.finish(&mut text)?;
            Ok(text)
        }
        Command::Shard {
            graph,
            out_dir,
            shard_bytes,
        } => shard_cmd(graph, out_dir, *shard_bytes),
        Command::Quality { graph, partition } => quality_cmd(graph, partition),
        Command::Convert { src, dst } => convert_cmd(src, dst),
        Command::Run {
            graph,
            parts,
            scheme,
            app,
            iters,
            walk_len,
            seed,
            mode,
            backend,
            workers,
            fault_plan,
            checkpoint_every,
            threads,
            buffer_size,
            obs,
        } => {
            let exports = ObsExports::begin(obs)?;
            let mut text = if backend == "process" {
                run_process_cmd(
                    graph,
                    *parts,
                    scheme,
                    app,
                    *iters,
                    *walk_len,
                    *seed,
                    *workers,
                    fault_plan.as_deref(),
                    *checkpoint_every,
                    obs,
                )?
            } else {
                run_cmd(
                    graph,
                    *parts,
                    scheme,
                    app,
                    *iters,
                    *walk_len,
                    *seed,
                    mode,
                    fault_plan.as_deref(),
                    *checkpoint_every,
                    ParallelConfig {
                        threads: *threads,
                        buffer_size: *buffer_size,
                    },
                    obs,
                )?
            };
            exports.finish(&mut text)?;
            Ok(text)
        }
        Command::Worker {
            connect,
            worker_id,
            key,
            heartbeat_ms,
        } => {
            bpart_dist::run_worker(bpart_dist::WorkerConfig {
                connect: connect.clone(),
                worker_id: *worker_id,
                key: *key,
                heartbeat: std::time::Duration::from_millis((*heartbeat_ms).max(1)),
            })
            .map_err(|e| fail(format!("worker {worker_id} failed: {e}")))?;
            Ok(String::new())
        }
        Command::Report {
            traces,
            critical_path,
            profile,
            straggler_factor,
        } => report_cmd(traces, *critical_path, *profile, *straggler_factor),
        Command::ObsDiff {
            a,
            b,
            watch,
            threshold,
        } => obs_diff_cmd(a, b, watch, *threshold),
        Command::ObsAlerts { addr } => obs_alerts_cmd(addr),
    }
}

/// Observability plumbing requested via the shared [`ObsFlags`].
///
/// `begin` arms the global tracer (and resets any spans left over from a
/// previous command in the same process) before the workload runs and, if
/// `--serve-addr` was given, starts the live HTTP endpoint; `finish` writes
/// the requested files afterwards, stops the server, and appends a line per
/// artifact to the report so the user knows where to look.
struct ObsExports<'a> {
    obs: &'a ObsFlags,
    server: Option<bpart_obs::serve::ServeHandle>,
}

impl<'a> ObsExports<'a> {
    fn begin(obs: &'a ObsFlags) -> Result<Self, CliError> {
        // The live /spans endpoint is only useful with tracing on, so
        // --serve-addr arms the tracer just like --trace-out does; the
        // profiler samples the tracer's live span stacks, so
        // --profile-out must arm it too.
        if obs.trace_out.is_some() || obs.serve_addr.is_some() || obs.profile_out.is_some() {
            bpart_obs::set_trace_enabled(true);
            bpart_obs::clear_trace();
            // Long runs can opt the span ring into tail-based sampling:
            // slow/faulted supersteps keep full detail, fast repetitive
            // ones downsample (DESIGN.md §16).
            if std::env::var("BPART_TAIL_SAMPLE").as_deref() == Ok("1") {
                bpart_obs::sampling::set_tail_sampling_enabled(true);
            }
        }
        // The continuous profiler runs whenever its output has somewhere
        // to go: a --profile-out file or the live /profile endpoint.
        if obs.profile_out.is_some() || obs.serve_addr.is_some() {
            bpart_obs::profile::reset_profile();
            bpart_obs::profile::set_profile_enabled(true);
            // A no-op unless the binary was built with --features
            // alloc-profile (which installs SpanAlloc as the global
            // allocator); with it, heap bytes land on the innermost span.
            bpart_obs::profile::set_alloc_profile_enabled(true);
            bpart_obs::profile::start_sampler(bpart_obs::profile::DEFAULT_SAMPLE_INTERVAL);
        }
        // The alert engine watches the registry in the background while a
        // live server is up (that's what turns /healthz degraded); the
        // built-in rules are installed either way so `finish` can report
        // anything that fired during the run.
        if obs.serve_addr.is_some() {
            bpart_obs::alerts::install_builtin_rules();
            bpart_obs::alerts::start_evaluator(std::time::Duration::from_millis(250));
        }
        let server = match obs.serve_addr.as_deref() {
            Some(addr) => {
                let handle = bpart_obs::serve::start(addr)
                    .map_err(|e| fail(format!("cannot serve observability on {addr}: {e}")))?;
                // Announced on stderr so scripts scraping a `--serve-addr
                // 127.0.0.1:0` run can discover the chosen port while the
                // report itself stays on stdout.
                eprintln!("bpart: serving observability on http://{}", handle.addr());
                Some(handle)
            }
            None => None,
        };
        Ok(ObsExports { obs, server })
    }

    fn finish(mut self, text: &mut String) -> Result<(), CliError> {
        if let Some(path) = self.obs.trace_out.as_deref() {
            let written = bpart_obs::export::write_trace_jsonl(Path::new(path))
                .map_err(|e| fail(format!("cannot write trace {path}: {e}")))?;
            text.push_str(&format!(
                "  wrote {written} spans to {path} (inspect with `bpart report {path}`)\n"
            ));
        }
        if self.obs.trace_out.is_some()
            || self.obs.serve_addr.is_some()
            || self.obs.profile_out.is_some()
        {
            bpart_obs::set_trace_enabled(false);
        }
        if let Some(path) = self.obs.metrics_out.as_deref() {
            bpart_obs::export::write_metrics_text(Path::new(path))
                .map_err(|e| fail(format!("cannot write metrics {path}: {e}")))?;
            // A process-backend run also snapshots every worker's
            // federated series (worker="N"-labelled), same as /metrics.
            let federated = bpart_obs::federation::global().prometheus_federated();
            if !federated.is_empty() {
                use std::io::Write as _;
                std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .and_then(|mut f| f.write_all(federated.as_bytes()))
                    .map_err(|e| fail(format!("cannot append federated metrics {path}: {e}")))?;
            }
            text.push_str(&format!("  wrote metrics snapshot to {path}\n"));
        }
        if self.obs.profile_out.is_some() || self.obs.serve_addr.is_some() {
            bpart_obs::profile::stop_sampler();
            bpart_obs::profile::set_profile_enabled(false);
            bpart_obs::profile::set_alloc_profile_enabled(false);
        }
        if let Some(path) = self.obs.profile_out.as_deref() {
            // The cluster-wide flame view: the driver's own folded
            // stacks plus every federated worker profile, clock-aligned
            // by construction (counts, not timestamps).
            let mut folded = bpart_obs::federation::global().cluster_profile_folded();
            // Allocator attribution rides along as comment lines (the
            // folded parser skips `#`), populated only under the CLI's
            // alloc-profile feature.
            for (span, bytes, allocs) in bpart_obs::profile::alloc_snapshot() {
                folded.push_str(&format!(
                    "# alloc: {span} {bytes} bytes / {allocs} allocs\n"
                ));
            }
            if let Some(parent) = Path::new(path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)
                        .map_err(|e| fail(format!("cannot create {}: {e}", parent.display())))?;
                }
            }
            std::fs::write(path, &folded)
                .map_err(|e| fail(format!("cannot write profile {path}: {e}")))?;
            text.push_str(&format!(
                "  wrote folded profile to {path} (render with `bpart report --profile {path}`)\n"
            ));
        }
        if self.obs.serve_addr.is_some() {
            bpart_obs::alerts::stop_evaluator();
            let fired = bpart_obs::alerts::firing();
            if !fired.is_empty() {
                text.push_str(&format!("  alerts firing at exit: {}\n", fired.join(", ")));
            }
        }
        if let Some(server) = self.server.take() {
            let addr = server.addr();
            server.shutdown();
            text.push_str(&format!("  served observability on http://{addr}\n"));
        }
        Ok(())
    }
}

/// Builds the run-history record shared by `partition` and `run`, stamping
/// the configuration common to both.
fn history_record(
    obs: &ObsFlags,
    label: &str,
    graph_path: &str,
    scheme: &str,
    parts: usize,
    parallel: &ParallelConfig,
) -> bpart_obs::history::RunRecord {
    let mut rec = bpart_obs::history::RunRecord::new(label, graph_path);
    if let Some(rev) = obs.git_rev.as_deref() {
        rec = rec.with_git_rev(rev);
    }
    rec.set_config("scheme", scheme);
    rec.set_config("parts", parts);
    rec.set_config("threads", parallel.threads);
    rec.set_config("buffer_size", parallel.buffer_size);
    rec
}

/// Writes a finished history record and appends the pointer line.
fn write_history(
    rec: &bpart_obs::history::RunRecord,
    path: &str,
    text: &mut String,
) -> Result<(), CliError> {
    rec.write(Path::new(path))
        .map_err(|e| fail(format!("cannot write history {path}: {e}")))?;
    text.push_str(&format!(
        "  wrote history record to {path} (compare with `bpart obs diff`)\n"
    ));
    Ok(())
}

/// Parses one or more trace files (the driver's plus the per-worker
/// exports of a process-backend run) and merges them into one view
/// sorted by (already clock-aligned) start timestamps. Span ids in
/// worker exports live in disjoint per-worker ranges; should a foreign
/// trace still collide, its ids are shifted past everything seen so far
/// (intra-file parent links move with them, cross-file links — worker
/// roots nesting under driver superstep spans — are left untouched).
fn report_cmd(
    traces: &[String],
    critical_path: bool,
    profile: bool,
    straggler_factor: f64,
) -> Result<String, CliError> {
    if profile {
        return report_profile_cmd(traces);
    }
    let mut all: Vec<bpart_obs::report::ParsedSpan> = Vec::new();
    let mut used: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for trace_path in traces {
        let text = std::fs::read_to_string(trace_path)
            .map_err(|e| fail(format!("cannot open {trace_path}: {e}")))?;
        let mut spans = bpart_obs::report::parse_trace_jsonl(&text)
            .map_err(|e| fail(format!("{trace_path}: {e}")))?;
        let file_ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        if spans.iter().any(|s| used.contains(&s.id)) {
            let shift = used.iter().next_back().copied().unwrap_or(0) + 1;
            for s in &mut spans {
                s.id = s.id.wrapping_add(shift);
                if let Some(p) = s.parent {
                    if file_ids.contains(&p) {
                        s.parent = Some(p.wrapping_add(shift));
                    }
                }
            }
        }
        used.extend(spans.iter().map(|s| s.id));
        all.extend(spans);
    }
    all.sort_by_key(|s| (s.start_ns, s.id));
    if critical_path {
        let cp = bpart_obs::analysis::analyze(&all)
            .map_err(|e| fail(format!("{}: {e}", traces.join(", "))))?;
        Ok(bpart_obs::analysis::render(&cp, straggler_factor))
    } else {
        Ok(bpart_obs::report::render_report(&all))
    }
}

/// `bpart report --profile`: merges one or more folded-stack profile
/// files (`--profile-out`, or `/profile` scrapes) into a single flame
/// view — identical stacks across files sum their counts — and renders
/// it with per-stack sample shares. The output is itself valid folded
/// text, so it pipes straight into any flamegraph renderer.
fn report_profile_cmd(paths: &[String]) -> Result<String, CliError> {
    let mut merged: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for path in paths {
        let text =
            std::fs::read_to_string(path).map_err(|e| fail(format!("cannot open {path}: {e}")))?;
        for (stack, count) in
            bpart_obs::profile::parse_folded(&text).map_err(|e| fail(format!("{path}: {e}")))?
        {
            *merged.entry(stack).or_insert(0) += count;
        }
    }
    let total: u64 = merged.values().sum();
    if total == 0 {
        return Ok("profile: no samples (was the profiler enabled?)\n".to_string());
    }
    let mut rows: Vec<(&String, &u64)> = merged.iter().collect();
    rows.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    let mut out = format!(
        "# profile: {} samples across {} stacks ({} files)\n",
        total,
        rows.len(),
        paths.len()
    );
    for (stack, count) in rows {
        out.push_str(&format!("{stack} {count}\n"));
    }
    Ok(out)
}

/// `bpart obs alerts ADDR`: one hand-rolled HTTP GET of `/alerts` from a
/// live `--serve-addr` server, pretty-printed one rule per line.
fn obs_alerts_cmd(addr: &str) -> Result<String, CliError> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| fail(format!("cannot connect to {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .ok();
    write!(stream, "GET /alerts HTTP/1.1\r\nHost: {addr}\r\n\r\n")
        .map_err(|e| fail(format!("cannot query {addr}: {e}")))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| fail(format!("cannot read from {addr}: {e}")))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| fail(format!("malformed HTTP response from {addr}")))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(fail(format!("{addr} answered {status}")));
    }
    // The body is the alerts_json array; re-render it one rule per line
    // so a terminal read doesn't need a JSON tool.
    let trimmed = body.trim().trim_start_matches('[').trim_end_matches(']');
    let mut out = String::from("alerts:\n");
    if trimmed.is_empty() {
        out.push_str("  (no rules installed)\n");
        return Ok(out);
    }
    // Objects are flat (no nested braces), so splitting on "},{" is safe.
    for obj in trimmed.split("},{") {
        let obj = obj.trim_start_matches('{').trim_end_matches('}');
        out.push_str(&format!("  {obj}\n"));
    }
    Ok(out)
}

fn obs_diff_cmd(
    a_path: &str,
    b_path: &str,
    watch: &[String],
    threshold: f64,
) -> Result<String, CliError> {
    let a = bpart_obs::history::RunRecord::read(Path::new(a_path))
        .map_err(|e| fail(format!("{a_path}: {e}")))?;
    let b = bpart_obs::history::RunRecord::read(Path::new(b_path))
        .map_err(|e| fail(format!("{b_path}: {e}")))?;
    let watches: Vec<bpart_obs::history::Watch> = watch
        .iter()
        .map(|m| bpart_obs::history::Watch::new(m, threshold))
        .collect();
    let report = bpart_obs::history::diff(&a, &b, &watches);
    let rendered = report.render();
    if report.has_regressions() {
        // Returned as an error so the process exits non-zero; the rendered
        // table rides along so CI logs still show the full comparison.
        return Err(fail(format!(
            "{rendered}watched metric regressed more than {:.1}% over {a_path}",
            threshold * 100.0
        )));
    }
    Ok(rendered)
}

/// All scheme names accepted by `--scheme`.
pub fn scheme_names() -> Vec<&'static str> {
    vec![
        "chunk-v",
        "chunk-e",
        "hash",
        "fennel",
        "ldg",
        "bpart",
        "bpart-p1",
        "multilevel",
        "gd",
    ]
}

/// Resolves a scheme name to a partitioner with a sequential worker pool.
pub fn scheme_by_name(name: &str) -> Result<Box<dyn Partitioner>, CliError> {
    scheme_with_parallel(name, ParallelConfig::default())
}

/// Resolves a scheme name to a partitioner, threading the worker-pool shape
/// into the streaming schemes (`fennel`, `bpart`, `bpart-p1`). The other
/// schemes are not stream-based and ignore it.
pub fn scheme_with_parallel(
    name: &str,
    parallel: ParallelConfig,
) -> Result<Box<dyn Partitioner>, CliError> {
    Ok(match name {
        "chunk-v" => Box::new(ChunkV),
        "chunk-e" => Box::new(ChunkE),
        "hash" => Box::new(HashPartitioner::default()),
        "fennel" => Box::new(Fennel::new(FennelConfig {
            parallel,
            ..Default::default()
        })),
        "ldg" => Box::new(Ldg::default()),
        "bpart" => Box::new(BPart::new(BPartConfig {
            parallel,
            ..Default::default()
        })),
        "bpart-p1" => Box::new(bpart_core::bpart::WeightedStream::new(BPartConfig {
            parallel,
            ..Default::default()
        })),
        "multilevel" => Box::new(Multilevel::default()),
        "gd" => Box::new(GdPartitioner::default()),
        other => {
            return Err(fail(format!(
                "unknown scheme {other:?}; available: {}",
                scheme_names().join(", ")
            )))
        }
    })
}

fn is_binary_graph(path: &str) -> bool {
    Path::new(path).extension().is_some_and(|e| e == "bpgr")
}

fn is_binary_partition(path: &str) -> bool {
    Path::new(path).extension().is_some_and(|e| e == "bppt")
}

/// Loads a graph from text or binary by extension.
pub fn load_graph(path: &str) -> Result<CsrGraph, CliError> {
    if is_binary_graph(path) {
        // Zero-copy load: parses out of an mmap view when possible,
        // falling back to an owned read.
        io::load_binary(path).map_err(|e| fail(format!("{path}: {e}")))
    } else {
        let file = File::open(path).map_err(|e| fail(format!("cannot open {path}: {e}")))?;
        Ok(io::read_edge_list(file)
            .map_err(|e| fail(format!("{path}: {e}")))?
            .into_csr())
    }
}

/// Saves a graph as text or binary by extension.
pub fn save_graph(graph: &CsrGraph, path: &str) -> Result<(), CliError> {
    let file = File::create(path).map_err(|e| fail(format!("cannot create {path}: {e}")))?;
    if is_binary_graph(path) {
        io::write_binary(graph, file).map_err(|e| fail(format!("{path}: {e}")))
    } else {
        io::write_edge_list(graph, file).map_err(|e| fail(format!("{path}: {e}")))
    }
}

fn generate_cmd(
    preset: &str,
    scale: f64,
    seed: Option<u64>,
    out: &str,
) -> Result<String, CliError> {
    let mut recipe = generate::ALL_PRESETS
        .iter()
        .map(|p| p())
        .find(|p| p.name == preset)
        .ok_or_else(|| {
            fail(format!(
                "unknown preset {preset:?}; available: lj_like, twitter_like, friendster_like"
            ))
        })?;
    if let Some(s) = seed {
        recipe.seed = s;
    }
    let graph = recipe.generate_scaled(scale);
    save_graph(&graph, out)?;
    Ok(format!(
        "wrote {out}: {} vertices, {} edges (preset {preset}, scale {scale})\n",
        graph.num_vertices(),
        graph.num_edges()
    ))
}

fn stats_cmd(path: &str) -> Result<String, CliError> {
    let graph = load_graph(path)?;
    let s = stats::degree_stats(&graph);
    let (zero, buckets) = stats::log_degree_histogram(&graph);
    let mut out = String::new();
    out.push_str(&format!("graph: {path}\n"));
    out.push_str(&format!("  vertices:        {}\n", s.vertices));
    out.push_str(&format!("  edges:           {}\n", s.edges));
    out.push_str(&format!("  average degree:  {:.2}\n", s.average));
    out.push_str(&format!("  max degree:      {}\n", s.max));
    out.push_str(&format!(
        "  top-1% mass:     {:.1}%\n",
        s.top1pct_mass * 100.0
    ));
    out.push_str(&format!("  degree gini:     {:.3}\n", s.gini));
    if let Some(alpha) = s.powerlaw_alpha {
        out.push_str(&format!("  power-law alpha: {alpha:.2}\n"));
    }
    out.push_str("  out-degree histogram (log2 buckets):\n");
    out.push_str(&format!("    deg 0: {zero}\n"));
    for (b, count) in buckets.iter().enumerate() {
        if *count > 0 {
            out.push_str(&format!(
                "    deg [{}, {}): {count}\n",
                1usize << b,
                1usize << (b + 1)
            ));
        }
    }
    Ok(out)
}

/// How the `partition` input resolves after `--input-format`/`--shard-dir`.
enum PartitionInput {
    /// Load the whole graph resident (text or binary by extension).
    Resident,
    /// Stream out-of-core from this shard directory.
    Shards(String),
}

/// Resolves what `partition` should read. `auto` keeps the historical
/// extension-based behaviour unless the path is a shard directory (or
/// `--shard-dir` was given); `shards` forces the out-of-core path.
fn resolve_partition_input(
    graph_path: &str,
    input_format: &str,
    shard_dir: Option<&str>,
) -> PartitionInput {
    if let Some(dir) = shard_dir {
        return PartitionInput::Shards(dir.to_string());
    }
    match input_format {
        "shards" => PartitionInput::Shards(graph_path.to_string()),
        "auto" if Path::new(graph_path).join(pio::MANIFEST_NAME).is_file() => {
            PartitionInput::Shards(graph_path.to_string())
        }
        _ => PartitionInput::Resident,
    }
}

#[allow(clippy::too_many_arguments)]
fn partition_cmd(
    graph_path: &str,
    parts: usize,
    scheme_name: &str,
    out: Option<&str>,
    parallel: ParallelConfig,
    input_format: &str,
    shard_dir: Option<&str>,
    mem_ceiling_mb: Option<u64>,
    obs: &ObsFlags,
) -> Result<String, CliError> {
    let mut ceiling_note = String::new();
    if let Some(mb) = mem_ceiling_mb {
        bpart_obs::rss::set_address_space_limit(mb * 1024 * 1024)
            .map_err(|e| fail(format!("cannot apply --mem-ceiling {mb}: {e}")))?;
        ceiling_note = format!("  mem ceiling:     {mb} MB (RLIMIT_AS)\n");
    }
    if let PartitionInput::Shards(dir) =
        resolve_partition_input(graph_path, input_format, shard_dir)
    {
        return partition_ooc_cmd(&dir, parts, scheme_name, out, parallel, ceiling_note, obs);
    }
    let graph = load_graph(graph_path)?;
    let scheme = scheme_with_parallel(scheme_name, parallel)?;
    let start = Instant::now();
    let (partition, stats) = scheme.partition_with_stats(&graph, parts);
    let elapsed = start.elapsed().as_secs_f64();
    let quality = metrics::quality(&graph, &partition);
    let mut text = render_quality(&quality, &partition, scheme.name());
    text.push_str(&ceiling_note);
    text.push_str(&format!("  partition time:  {elapsed:.3}s\n"));
    text.push_str(&stream_stats_report(&stats));
    if let Some(path) = out {
        let file = File::create(path).map_err(|e| fail(format!("cannot create {path}: {e}")))?;
        if is_binary_partition(path) {
            pio::write_binary(&partition, file).map_err(|e| fail(format!("{path}: {e}")))?;
        } else {
            pio::write_text(&partition, file).map_err(|e| fail(format!("{path}: {e}")))?;
        }
        text.push_str(&format!("  wrote {path}\n"));
    }
    if let Some(hpath) = obs.history_out.as_deref() {
        let mut rec = history_record(obs, "partition", graph_path, scheme_name, parts, &parallel);
        rec.set_metric("wall_time_secs", elapsed);
        rec.set_metric("cut_ratio", quality.cut_ratio);
        rec.set_metric("vertex_bias", quality.vertex_bias);
        rec.set_metric("edge_bias", quality.edge_bias);
        rec.set_metric("throughput_vps", stats.vertices_per_sec());
        write_history(&rec, hpath, &mut text)?;
    }
    Ok(text)
}

/// Maps a `--scheme` name to its out-of-core equivalent. Only the
/// streaming schemes have one — the others need the whole graph resident
/// by construction.
fn ooc_scheme_by_name(name: &str) -> Result<(bpart_core::OocScheme, &'static str), CliError> {
    match name {
        "fennel" => Ok((bpart_core::OocScheme::Fennel, "Fennel (out-of-core)")),
        "bpart-p1" => Ok((
            bpart_core::OocScheme::BPartP1 { c: 0.5 },
            "BPart-P1 (out-of-core)",
        )),
        other => Err(fail(format!(
            "scheme {other:?} has no out-of-core path; shards support: fennel, bpart-p1"
        ))),
    }
}

/// The out-of-core partition path: stream the shard directory through the
/// staged pipeline, report the same quality lines the resident path does
/// (cut recomputed by re-streaming the shards — the graph is never
/// resident), plus per-stage pipeline telemetry.
fn partition_ooc_cmd(
    shard_path: &str,
    parts: usize,
    scheme_name: &str,
    out: Option<&str>,
    parallel: ParallelConfig,
    ceiling_note: String,
    obs: &ObsFlags,
) -> Result<String, CliError> {
    let (scheme, label) = ooc_scheme_by_name(scheme_name)?;
    let shards = pio::ShardSet::open(Path::new(shard_path))
        .map_err(|e| fail(format!("{shard_path}: {e}")))?;
    let mut config = bpart_core::OocConfig::new(parts, scheme);
    // `--buffer-size` is the shared memory knob: resident streaming uses
    // it as the weight-sync window, the pipeline as records per batch.
    config.batch_vertices = parallel.buffer_size;
    let start = Instant::now();
    let outcome = bpart_core::stream_assign_ooc(&shards, &config)
        .map_err(|e| fail(format!("{shard_path}: {e}")))?;
    let elapsed = start.elapsed().as_secs_f64();
    let cut_ratio = bpart_core::ooc_cut_ratio(&shards, &outcome.assignment)
        .map_err(|e| fail(format!("{shard_path}: {e}")))?;

    let mut text = format!("partition: {label} ({parts} parts)\n");
    text.push_str(&format!(
        "  vertex bias:     {:.4}\n",
        metrics::bias(&outcome.vertex_counts)
    ));
    text.push_str(&format!(
        "  edge bias:       {:.4}\n",
        metrics::bias(&outcome.edge_counts)
    ));
    text.push_str(&format!(
        "  vertex fairness: {:.4}\n",
        metrics::jain_fairness(&outcome.vertex_counts)
    ));
    text.push_str(&format!(
        "  edge fairness:   {:.4}\n",
        metrics::jain_fairness(&outcome.edge_counts)
    ));
    text.push_str(&format!("  edge-cut ratio:  {cut_ratio:.4}\n"));
    text.push_str(&format!("  |V_i|:           {:?}\n", outcome.vertex_counts));
    text.push_str(&format!("  |E_i|:           {:?}\n", outcome.edge_counts));
    text.push_str(&ceiling_note);
    text.push_str(&format!(
        "  shards:          {} ({} bytes max resident)\n",
        shards.num_shards(),
        shards.max_shard_bytes()
    ));
    text.push_str(&format!("  partition time:  {elapsed:.3}s\n"));
    text.push_str(&stream_stats_report(&outcome.stats));
    text.push_str("  pipeline stages:\n");
    for s in &outcome.pipeline.stages {
        text.push_str(&format!(
            "    {:<7} {} batches, busy {:.3}s, stalls {}/{} (send/recv), peak occupancy {}/{}\n",
            format!("{}:", s.name),
            s.batches,
            s.busy_secs,
            s.send_stalls,
            s.recv_stalls,
            s.max_occupancy,
            s.channel_capacity
        ));
    }
    if let Some(path) = out {
        let file = File::create(path).map_err(|e| fail(format!("cannot create {path}: {e}")))?;
        if is_binary_partition(path) {
            pio::write_binary_assignment(parts, &outcome.assignment, file)
                .map_err(|e| fail(format!("{path}: {e}")))?;
        } else {
            pio::write_text_assignment(parts, &outcome.assignment, file)
                .map_err(|e| fail(format!("{path}: {e}")))?;
        }
        text.push_str(&format!("  wrote {path}\n"));
    }
    if let Some(hpath) = obs.history_out.as_deref() {
        let mut rec = history_record(
            obs,
            "partition-ooc",
            shard_path,
            scheme_name,
            parts,
            &parallel,
        );
        rec.set_metric("wall_time_secs", elapsed);
        rec.set_metric("cut_ratio", cut_ratio);
        rec.set_metric("vertex_bias", metrics::bias(&outcome.vertex_counts));
        rec.set_metric("edge_bias", metrics::bias(&outcome.edge_counts));
        rec.set_metric("throughput_vps", outcome.stats.vertices_per_sec());
        write_history(&rec, hpath, &mut text)?;
    }
    Ok(text)
}

/// `bpart shard`: split a graph into the out-of-core shard directory.
/// Binary (`.bpgr`) inputs go through the zero-copy [`io::MappedCsr`]
/// view so the out-adjacency never becomes resident; text inputs load the
/// graph first (they have to be parsed anyway).
fn shard_cmd(graph_path: &str, out_dir: &str, shard_bytes: u64) -> Result<String, CliError> {
    let start = Instant::now();
    let (manifest, source) = if is_binary_graph(graph_path) {
        let csr =
            io::MappedCsr::open(graph_path).map_err(|e| fail(format!("{graph_path}: {e}")))?;
        let source = if csr.is_zero_copy() {
            "mapped zero-copy"
        } else {
            "mapped (owned fallback)"
        };
        let manifest = pio::write_shards_from_mapped(&csr, Path::new(out_dir), shard_bytes)
            .map_err(|e| fail(format!("{out_dir}: {e}")))?;
        (manifest, source)
    } else {
        let graph = load_graph(graph_path)?;
        let manifest = pio::write_shards(&graph, Path::new(out_dir), shard_bytes)
            .map_err(|e| fail(format!("{out_dir}: {e}")))?;
        (manifest, "resident")
    };
    let elapsed = start.elapsed().as_secs_f64();
    let total: u64 = manifest.shards.iter().map(|s| s.bytes).sum();
    Ok(format!(
        "sharded {graph_path} -> {out_dir}: {} vertices, {} edges, {} shards \
({total} bytes, source {source}, {elapsed:.3}s)\n  partition with: bpart partition \
--shard-dir {out_dir} --parts K --scheme fennel\n",
        manifest.n,
        manifest.m,
        manifest.shards.len(),
    ))
}

fn quality_cmd(graph_path: &str, partition_path: &str) -> Result<String, CliError> {
    let graph = load_graph(graph_path)?;
    let file = File::open(partition_path)
        .map_err(|e| fail(format!("cannot open {partition_path}: {e}")))?;
    let partition = if is_binary_partition(partition_path) {
        pio::read_binary(&graph, file).map_err(|e| fail(format!("{partition_path}: {e}")))?
    } else {
        pio::read_text(&graph, file).map_err(|e| fail(format!("{partition_path}: {e}")))?
    };
    Ok(report(&graph, &partition, partition_path))
}

/// All application names accepted by `run --app`.
pub fn app_names() -> Vec<&'static str> {
    vec!["pagerank", "cc", "deepwalk", "walk"]
}

#[allow(clippy::too_many_arguments)]
fn run_cmd(
    graph_path: &str,
    parts: usize,
    scheme_name: &str,
    app: &str,
    iters: usize,
    walk_len: u32,
    seed: u64,
    mode: &str,
    fault_plan: Option<&str>,
    checkpoint_every: Option<usize>,
    parallel: ParallelConfig,
    obs: &ObsFlags,
) -> Result<String, CliError> {
    let graph = Arc::new(load_graph(graph_path)?);
    let scheme = scheme_with_parallel(scheme_name, parallel)?;
    let (partition, partition_stats) = scheme.partition_with_stats(&graph, parts);
    // The cut ratio is recomputed here (rather than threaded out of the
    // partitioner) so history records carry it for every scheme.
    let quality = metrics::quality(&graph, &partition);
    let partition = Arc::new(partition);
    let mode = match mode {
        "threaded" => ExecMode::Threaded,
        _ => ExecMode::Sequential,
    };
    let plan = match fault_plan {
        Some(spec) => spec
            .parse::<FaultPlan>()
            .map_err(|e| fail(format!("bad --fault-plan: {e}")))?,
        None => FaultPlan::default(),
    };

    let mut out = format!(
        "run: {app} on {graph_path} ({} vertices, {} edges), {} scheme, {parts} machines\n",
        graph.num_vertices(),
        graph.num_edges(),
        scheme.name(),
    );
    let run_start = Instant::now();
    let (telemetry, iterations) = match app {
        "pagerank" | "cc" => {
            let mut engine =
                IterationEngine::new(Cluster::new(graph, partition), CostModel::default(), mode)
                    .with_faults(plan);
            if let Some(every) = checkpoint_every {
                engine = engine.with_checkpoint_every(every);
            }
            if app == "pagerank" {
                let run = engine
                    .try_run(&PageRank::new(iters))
                    .map_err(|e| fail(format!("run failed: {e}")))?;
                (run.telemetry, run.iterations)
            } else {
                let run = engine
                    .try_run(&ConnectedComponents)
                    .map_err(|e| fail(format!("run failed: {e}")))?;
                (run.telemetry, run.iterations)
            }
        }
        "deepwalk" | "walk" => {
            let mut engine =
                WalkEngine::new(Cluster::new(graph, partition), CostModel::default(), mode)
                    .with_faults(plan);
            if let Some(every) = checkpoint_every {
                engine = engine.with_checkpoint_every(every);
            }
            let starts = WalkStarts::PerVertex(1);
            let run = if app == "deepwalk" {
                engine.try_run(&DeepWalk::new(walk_len), &starts, seed)
            } else {
                engine.try_run(&SimpleRandomWalk::new(walk_len), &starts, seed)
            }
            .map_err(|e| fail(format!("run failed: {e}")))?;
            out.push_str(&format!(
                "  walker steps:    {}\n  message walks:   {}\n",
                run.total_steps, run.message_walks
            ));
            (run.telemetry, run.iterations)
        }
        other => {
            return Err(fail(format!(
                "unknown app {other:?}; available: {}",
                app_names().join(", ")
            )))
        }
    };
    let wall = run_start.elapsed().as_secs_f64();
    telemetry.record_partition(partition_stats);
    out.push_str(&telemetry_report(&telemetry, iterations));
    if let Some(hpath) = obs.history_out.as_deref() {
        let mut rec = history_record(obs, "run", graph_path, scheme_name, parts, &parallel);
        rec.set_config("app", app);
        rec.set_config("iters", iters);
        rec.set_config("mode", mode_name(mode));
        rec.set_config("seed", seed);
        rec.set_metric("wall_time_secs", wall);
        rec.set_metric("cut_ratio", quality.cut_ratio);
        rec.set_metric("total_time_units", telemetry.total_time());
        rec.set_metric("waiting_ratio", telemetry.waiting_ratio());
        rec.set_metric("supersteps", iterations as f64);
        rec.set_metric("messages", telemetry.total_messages() as f64);
        rec.set_metric("faults", telemetry.total_faults() as f64);
        rec.set_metric("replayed_steps", telemetry.replayed_supersteps() as f64);
        rec.set_metric("recovery_time_units", telemetry.total_recovery_time());
        write_history(&rec, hpath, &mut out)?;
    }
    Ok(out)
}

/// `run --backend process`: the job runs on real supervised worker
/// processes, and the thread-simulated oracle runs in-process alongside
/// it. The two result digests must agree bit-for-bit (recovery from any
/// fault-plan crashes included) — a mismatch fails the command, which is
/// what the CI chaos job leans on.
#[allow(clippy::too_many_arguments)]
fn run_process_cmd(
    graph_path: &str,
    parts: usize,
    scheme_name: &str,
    app: &str,
    iters: usize,
    walk_len: u32,
    seed: u64,
    workers: Option<usize>,
    fault_plan: Option<&str>,
    checkpoint_every: Option<usize>,
    obs: &ObsFlags,
) -> Result<String, CliError> {
    use bpart_dist::{AppSpec, Backend, GraphSource, JobSpec, ProcessConfig, ThreadsConfig};
    use bpart_obs::federation;

    // Cluster-wide observability federation: armed when any obs export
    // was requested, off otherwise so a plain run ships no telemetry
    // frames at all (the CI overhead gate measures exactly that).
    let obs_on = obs.trace_out.is_some()
        || obs.metrics_out.is_some()
        || obs.serve_addr.is_some()
        || obs.history_out.is_some()
        || obs.profile_out.is_some();
    federation::reset();
    federation::set_collection_enabled(obs_on);

    let workers = workers.unwrap_or(parts);
    if workers != parts {
        return Err(fail(format!(
            "--workers {workers} must equal --parts {parts}: each worker process plays one machine"
        )));
    }
    let plan = match fault_plan {
        Some(spec) => spec
            .parse::<FaultPlan>()
            .map_err(|e| fail(format!("bad --fault-plan: {e}")))?,
        None => FaultPlan::default(),
    };
    let app_spec = match app {
        "pagerank" => AppSpec::PageRank { iters },
        "cc" => AppSpec::ConnectedComponents,
        "deepwalk" => AppSpec::DeepWalk {
            walk_len,
            seed,
            per_vertex: 1,
        },
        "walk" => AppSpec::SimpleWalk {
            walk_len,
            seed,
            per_vertex: 1,
        },
        other => {
            return Err(fail(format!(
                "unknown app {other:?}; available: {}",
                app_names().join(", ")
            )))
        }
    };
    let spec = JobSpec {
        graph: GraphSource::File(graph_path.to_string()),
        scheme: scheme_name.to_string(),
        parts: parts as u32,
        app: app_spec,
        checkpoint_every: checkpoint_every.map(|e| e as u32),
    };

    let exe =
        std::env::current_exe().map_err(|e| fail(format!("cannot locate own executable: {e}")))?;
    let mut cfg = ProcessConfig::new(
        workers,
        vec![exe.to_string_lossy().into_owned(), "worker".to_string()],
    );
    cfg.faults = plan;

    let run_start = Instant::now();
    let out = bpart_dist::run_job(&spec, &Backend::Process(cfg))
        .map_err(|e| fail(format!("process backend failed: {e}")))?;
    let wall = run_start.elapsed().as_secs_f64();
    // The oracle runs fault-free: recovery must be transparent, so the
    // process result has to match the undisturbed simulation. Tracing is
    // muted for it — its modelled `cluster.superstep` spans use abstract
    // time units and would corrupt the measured trace's blame table.
    let trace_was = bpart_obs::trace_enabled();
    bpart_obs::set_trace_enabled(false);
    let oracle = bpart_dist::run_job(&spec, &Backend::Threads(ThreadsConfig::default()))
        .map_err(|e| fail(format!("threads oracle failed: {e}")))?;
    bpart_obs::set_trace_enabled(trace_was);

    let identical = out.digest == oracle.digest && out.supersteps == oracle.supersteps;
    let mut text = format!(
        "run: {app} on {graph_path}, {scheme_name} scheme, process backend ({workers} workers)\n"
    );
    text.push_str(&format!("  supersteps:      {}\n", out.supersteps));
    text.push_str(&format!("  digest:          {:#018x}\n", out.digest));
    text.push_str(&format!(
        "  oracle digest:   {:#018x} (threads backend)\n",
        oracle.digest
    ));
    text.push_str(&format!(
        "  bit-identical:   {}\n",
        if identical { "yes" } else { "NO" }
    ));
    let r = &out.recovery;
    text.push_str(&format!(
        "  recovery:        {} deaths, {} recoveries, {} respawns, {} replayed supersteps, {} link retries\n",
        r.worker_deaths, r.recoveries, r.respawns, r.replayed_supersteps, r.link_retries
    ));
    text.push_str(&format!("  wall time:       {wall:.2}s\n"));

    if obs_on {
        // Measured Fig. 13 per-machine table from the federated worker
        // reports: real wire wait vs. compute, next to the modelled
        // numbers the threads backend prints (see EXPERIMENTS.md).
        let store = federation::global();
        let steps: Vec<(Vec<f64>, Vec<f64>)> = (0..out.supersteps)
            .filter_map(|s| store.step_timings(s))
            .collect();
        let dead = store.dead_workers();
        drop(store);
        if !steps.is_empty() {
            let measured = bpart_cluster::TelemetrySummary::from_steps(&steps);
            text.push_str(&format!(
                "  measured (federated, {} of {} supersteps):\n",
                steps.len(),
                out.supersteps
            ));
            text.push_str(&format!(
                "    total time:    {:.3}s (waiting ratio {:.3})\n",
                measured.total_time, measured.waiting_ratio
            ));
            for (m, row) in measured.machines.iter().enumerate() {
                text.push_str(&format!(
                    "    m{m}: compute {:.3}s, waiting {:.3}s ({:.1}%)\n",
                    row.compute,
                    row.waiting,
                    row.ratio * 100.0
                ));
            }
        }
        // Driver-side RPC round-trip quantiles, from the same shared
        // bucket estimator the rpc-rtt-p99 alert rule reads.
        let mut rtt_line = None;
        bpart_obs::metrics::visit_metrics(|name, view| {
            if name != "dist.rpc_rtt_ns" {
                return;
            }
            if let bpart_obs::metrics::MetricView::Histogram {
                bounds, buckets, ..
            } = view
            {
                let q = |q| {
                    bpart_obs::metrics::quantile_from_buckets(&bounds, &buckets, q)
                        .map_or("n/a".to_string(), |v| format!("{:.2}ms", v / 1e6))
                };
                rtt_line = Some(format!(
                    "  rpc rtt:         p50 {}, p99 {}\n",
                    q(0.5),
                    q(0.99)
                ));
            }
        });
        if let Some(line) = rtt_line {
            text.push_str(&line);
        }
        if dead > 0 {
            text.push_str(&format!(
                "  stale workers:   {dead} (last pre-death snapshots retained)\n"
            ));
        }
        // Per-worker trace exports next to the driver's own --trace-out
        // file; `bpart report` merges them into one aligned view.
        if let Some(tpath) = obs.trace_out.as_deref() {
            let store = federation::global();
            let worker_ids: Vec<u32> = store.workers.keys().copied().collect();
            drop(store);
            let mut exported = Vec::new();
            for w in worker_ids {
                let Some(jsonl) = federation::global().worker_trace_jsonl(w) else {
                    continue;
                };
                let wpath = format!("{tpath}.worker{w}.jsonl");
                std::fs::write(&wpath, jsonl)
                    .map_err(|e| fail(format!("cannot write worker trace {wpath}: {e}")))?;
                exported.push(wpath);
            }
            if !exported.is_empty() {
                text.push_str(&format!(
                    "  wrote {} worker traces ({} …; merge with `bpart report {tpath} {}`)\n",
                    exported.len(),
                    exported[0],
                    exported.join(" "),
                ));
            }
        }
    }

    if let Some(hpath) = obs.history_out.as_deref() {
        let mut rec = bpart_obs::history::RunRecord::new("run-dist", graph_path);
        if let Some(rev) = obs.git_rev.as_deref() {
            rec = rec.with_git_rev(rev);
        }
        rec.set_config("scheme", scheme_name);
        rec.set_config("parts", parts);
        rec.set_config("app", app);
        rec.set_config("workers", workers);
        rec.set_metric("wall_time_secs", wall);
        rec.set_metric("supersteps", out.supersteps as f64);
        rec.set_metric("worker_deaths", r.worker_deaths as f64);
        rec.set_metric("recoveries", r.recoveries as f64);
        rec.set_metric("replayed_supersteps", r.replayed_supersteps as f64);
        rec.set_metric("link_retries", r.link_retries as f64);
        write_history(&rec, hpath, &mut text)?;
    }

    if !identical {
        return Err(fail(format!(
            "process backend diverged from the threads oracle:\n{text}"
        )));
    }
    Ok(text)
}

fn mode_name(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Threaded => "threaded",
        ExecMode::Sequential => "sequential",
    }
}

/// Streaming throughput lines shared by `partition` and `run` output.
/// Buffer detail only appears for buffered-parallel runs (`buffers > 0`);
/// the sequential path and non-streaming schemes report throughput alone.
fn stream_stats_report(stats: &StreamStats) -> String {
    let mut out = format!(
        "  throughput:      {:.0} vertices/s ({} thread{})\n",
        stats.vertices_per_sec(),
        stats.threads,
        if stats.threads == 1 { "" } else { "s" },
    );
    if stats.buffers > 0 {
        out.push_str(&format!(
            "  buffers:         {} (sync stall {:.1}%)\n",
            stats.buffers,
            stats.sync_stall_ratio() * 100.0
        ));
    }
    out
}

/// The telemetry summary shared by iteration and walk runs: the paper's
/// aggregates plus the fault/recovery counters.
fn telemetry_report(t: &Telemetry, iterations: usize) -> String {
    let mut out = String::new();
    if let Some(stats) = t.partition_stats() {
        out.push_str("  partition stage:\n");
        for line in stream_stats_report(&stats).lines() {
            out.push_str(&format!("  {line}\n"));
        }
    }
    out.push_str(&format!("  supersteps:      {iterations}\n"));
    out.push_str(&format!("  total time:      {:.2} units\n", t.total_time()));
    out.push_str(&format!("  waiting ratio:   {:.4}\n", t.waiting_ratio()));
    // Per-machine waiting breakdown (the paper's Fig. 13 view): which
    // machines sit idle at the superstep barrier and by how much.
    let summary = t.summary();
    for (m, w) in summary.machines.iter().enumerate() {
        out.push_str(&format!(
            "    m{m}: compute {:.2}, waiting {:.2} ({:.1}%)\n",
            w.compute,
            w.waiting,
            w.ratio * 100.0
        ));
    }
    out.push_str(&format!("  messages:        {}\n", t.total_messages()));
    out.push_str(&format!("  faults injected: {}\n", t.total_faults()));
    out.push_str(&format!("  replayed steps:  {}\n", t.replayed_supersteps()));
    out.push_str(&format!(
        "  recovery time:   {:.2} units\n",
        t.total_recovery_time()
    ));
    out
}

fn convert_cmd(src: &str, dst: &str) -> Result<String, CliError> {
    let graph = load_graph(src)?;
    save_graph(&graph, dst)?;
    Ok(format!(
        "converted {src} -> {dst} ({} vertices, {} edges)\n",
        graph.num_vertices(),
        graph.num_edges()
    ))
}

fn report(graph: &CsrGraph, partition: &Partition, label: &str) -> String {
    render_quality(&metrics::quality(graph, partition), partition, label)
}

fn render_quality(q: &metrics::QualityReport, partition: &Partition, label: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "partition: {label} ({} parts)\n",
        partition.num_parts()
    ));
    out.push_str(&format!("  vertex bias:     {:.4}\n", q.vertex_bias));
    out.push_str(&format!("  edge bias:       {:.4}\n", q.edge_bias));
    out.push_str(&format!("  vertex fairness: {:.4}\n", q.vertex_jain));
    out.push_str(&format!("  edge fairness:   {:.4}\n", q.edge_jain));
    out.push_str(&format!("  edge-cut ratio:  {:.4}\n", q.cut_ratio));
    out.push_str(&format!(
        "  |V_i|:           {:?}\n",
        partition.vertex_counts()
    ));
    out.push_str(&format!(
        "  |E_i|:           {:?}\n",
        partition.edge_counts()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bpart_cli_test_{}_{name}", std::process::id()));
        p
    }

    fn runs(cmd: Command) -> String {
        run(&cmd).unwrap()
    }

    #[test]
    fn generate_stats_partition_quality_pipeline() {
        let graph_path = tmp("pipeline.txt");
        let parts_path = tmp("pipeline.parts");
        let gp = graph_path.to_str().unwrap().to_string();
        let pp = parts_path.to_str().unwrap().to_string();

        let out = runs(Command::Generate {
            preset: "lj_like".into(),
            scale: 0.01,
            seed: Some(5),
            out: gp.clone(),
        });
        assert!(out.contains("750 vertices"), "{out}");

        let out = runs(Command::Stats { graph: gp.clone() });
        assert!(out.contains("average degree"), "{out}");

        let out = runs(Command::Partition {
            graph: gp.clone(),
            parts: 4,
            scheme: "bpart".into(),
            out: Some(pp.clone()),
            threads: 1,
            buffer_size: bpart_core::DEFAULT_BUFFER_SIZE,
            input_format: "auto".into(),
            shard_dir: None,
            mem_ceiling_mb: None,
            obs: ObsFlags::default(),
        });
        assert!(out.contains("edge-cut ratio"), "{out}");

        let out = runs(Command::Quality {
            graph: gp.clone(),
            partition: pp.clone(),
        });
        assert!(out.contains("vertex bias"), "{out}");

        std::fs::remove_file(graph_path).ok();
        std::fs::remove_file(parts_path).ok();
    }

    #[test]
    fn convert_round_trips_through_binary() {
        let text_path = tmp("conv.txt");
        let bin_path = tmp("conv.bpgr");
        let back_path = tmp("conv_back.txt");
        let tp = text_path.to_str().unwrap().to_string();
        let bp = bin_path.to_str().unwrap().to_string();
        let kp = back_path.to_str().unwrap().to_string();

        runs(Command::Generate {
            preset: "twitter_like".into(),
            scale: 0.005,
            seed: None,
            out: tp.clone(),
        });
        runs(Command::Convert {
            src: tp.clone(),
            dst: bp.clone(),
        });
        runs(Command::Convert {
            src: bp.clone(),
            dst: kp.clone(),
        });
        let a = load_graph(&tp).unwrap();
        let b = load_graph(&bp).unwrap();
        let c = load_graph(&kp).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);

        for p in [text_path, bin_path, back_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn binary_partition_files_round_trip() {
        let graph_path = tmp("binparts.txt");
        let parts_path = tmp("binparts.bppt");
        let gp = graph_path.to_str().unwrap().to_string();
        let pp = parts_path.to_str().unwrap().to_string();
        runs(Command::Generate {
            preset: "lj_like".into(),
            scale: 0.005,
            seed: None,
            out: gp.clone(),
        });
        runs(Command::Partition {
            graph: gp.clone(),
            parts: 4,
            scheme: "hash".into(),
            out: Some(pp.clone()),
            threads: 1,
            buffer_size: bpart_core::DEFAULT_BUFFER_SIZE,
            input_format: "auto".into(),
            shard_dir: None,
            mem_ceiling_mb: None,
            obs: ObsFlags::default(),
        });
        let out = runs(Command::Quality {
            graph: gp.clone(),
            partition: pp.clone(),
        });
        assert!(out.contains("(4 parts)"), "{out}");
        std::fs::remove_file(graph_path).ok();
        std::fs::remove_file(parts_path).ok();
    }

    #[test]
    fn parallel_partition_reports_buffer_telemetry() {
        let graph_path = tmp("par.txt");
        let gp = graph_path.to_str().unwrap().to_string();
        runs(Command::Generate {
            preset: "twitter_like".into(),
            scale: 0.01,
            seed: Some(3),
            out: gp.clone(),
        });
        let out = runs(Command::Partition {
            graph: gp.clone(),
            parts: 4,
            scheme: "fennel".into(),
            out: None,
            threads: 2,
            buffer_size: 128,
            input_format: "auto".into(),
            shard_dir: None,
            mem_ceiling_mb: None,
            obs: ObsFlags::default(),
        });
        assert!(out.contains("throughput:"), "{out}");
        assert!(out.contains("2 threads"), "{out}");
        assert!(out.contains("buffers:"), "{out}");
        assert!(out.contains("sync stall"), "{out}");

        // The run command surfaces the partition stage in its telemetry.
        let out = run(&Command::Run {
            graph: gp.clone(),
            parts: 4,
            scheme: "bpart".into(),
            app: "pagerank".into(),
            iters: 2,
            walk_len: 5,
            seed: 7,
            mode: "sequential".into(),
            backend: "threads".into(),
            workers: None,
            fault_plan: None,
            checkpoint_every: None,
            threads: 2,
            buffer_size: 128,
            obs: ObsFlags::default(),
        })
        .unwrap();
        assert!(out.contains("partition stage:"), "{out}");
        assert!(out.contains("2 threads"), "{out}");
        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn shard_then_out_of_core_partition_matches_resident_fennel() {
        let graph_path = tmp("ooc.txt");
        let bin_path = tmp("ooc.bpgr");
        let shard_dir = tmp("ooc_shards");
        let parts_path = tmp("ooc.parts");
        let gp = graph_path.to_str().unwrap().to_string();
        let bp = bin_path.to_str().unwrap().to_string();
        let sd = shard_dir.to_str().unwrap().to_string();
        let pp = parts_path.to_str().unwrap().to_string();

        runs(Command::Generate {
            preset: "twitter_like".into(),
            scale: 0.01,
            seed: Some(3),
            out: gp.clone(),
        });
        runs(Command::Convert {
            src: gp.clone(),
            dst: bp.clone(),
        });
        // Binary inputs shard through the mapped zero-copy view.
        let out = runs(Command::Shard {
            graph: bp.clone(),
            out_dir: sd.clone(),
            shard_bytes: 16 * 1024,
        });
        assert!(out.contains("shards"), "{out}");
        assert!(out.contains("zero-copy"), "{out}");

        // `--input-format auto` detects the shard directory by its
        // manifest and takes the out-of-core path.
        let out = runs(Command::Partition {
            graph: sd.clone(),
            parts: 4,
            scheme: "fennel".into(),
            out: Some(pp.clone()),
            threads: 1,
            buffer_size: 256,
            input_format: "auto".into(),
            shard_dir: None,
            mem_ceiling_mb: None,
            obs: ObsFlags::default(),
        });
        assert!(out.contains("out-of-core"), "{out}");
        assert!(out.contains("pipeline stages:"), "{out}");
        assert!(out.contains("fetch:"), "{out}");

        // The streamed assignment is bit-identical to the resident run.
        let graph = load_graph(&gp).unwrap();
        let resident = scheme_by_name("fennel").unwrap().partition(&graph, 4);
        let written = pio::read_text(&graph, File::open(&parts_path).unwrap()).unwrap();
        assert_eq!(written.assignment(), resident.assignment());

        // Non-streaming schemes cannot run out-of-core and say so.
        let e = run(&Command::Partition {
            graph: sd.clone(),
            parts: 4,
            scheme: "bpart".into(),
            out: None,
            threads: 1,
            buffer_size: bpart_core::DEFAULT_BUFFER_SIZE,
            input_format: "shards".into(),
            shard_dir: None,
            mem_ceiling_mb: None,
            obs: ObsFlags::default(),
        })
        .unwrap_err();
        assert!(e.to_string().contains("no out-of-core path"), "{e}");

        std::fs::remove_file(graph_path).ok();
        std::fs::remove_file(bin_path).ok();
        std::fs::remove_file(parts_path).ok();
        std::fs::remove_dir_all(shard_dir).ok();
    }

    #[test]
    fn out_of_core_partition_emits_history_records() {
        let graph_path = tmp("oochist.txt");
        let shard_dir = tmp("oochist_shards");
        let hist_path = tmp("oochist.json");
        let gp = graph_path.to_str().unwrap().to_string();
        let sd = shard_dir.to_str().unwrap().to_string();
        let hp = hist_path.to_str().unwrap().to_string();
        runs(Command::Generate {
            preset: "lj_like".into(),
            scale: 0.01,
            seed: Some(5),
            out: gp.clone(),
        });
        // Text inputs shard via the resident loader.
        runs(Command::Shard {
            graph: gp.clone(),
            out_dir: sd.clone(),
            shard_bytes: 8 * 1024,
        });
        runs(Command::Partition {
            graph: gp.clone(),
            parts: 4,
            scheme: "bpart-p1".into(),
            out: None,
            threads: 1,
            buffer_size: bpart_core::DEFAULT_BUFFER_SIZE,
            input_format: "shards".into(),
            shard_dir: Some(sd.clone()),
            mem_ceiling_mb: None,
            obs: ObsFlags {
                history_out: Some(hp.clone()),
                ..ObsFlags::default()
            },
        });
        let rec = bpart_obs::history::RunRecord::read(Path::new(&hp)).unwrap();
        assert_eq!(rec.label, "partition-ooc");
        assert_eq!(rec.config["scheme"], "bpart-p1");
        assert!(rec.metrics["cut_ratio"] > 0.0, "{rec:?}");
        std::fs::remove_file(graph_path).ok();
        std::fs::remove_file(hist_path).ok();
        std::fs::remove_dir_all(shard_dir).ok();
    }

    #[test]
    fn every_scheme_name_resolves() {
        for name in scheme_names() {
            scheme_by_name(name).unwrap();
        }
        assert!(scheme_by_name("nope").is_err());
    }

    #[test]
    fn gd_rejects_non_power_of_two_via_error_not_abort() {
        // The CLI relies on the library panic; verify the resolver at least
        // hands back the GD scheme so the binary reports the panic cleanly.
        let s = scheme_by_name("gd").unwrap();
        assert_eq!(s.name(), "GD");
    }

    fn run_on(graph: String, app: &str, fault_plan: Option<&str>) -> Result<String, CliError> {
        run(&Command::Run {
            graph,
            parts: 4,
            scheme: "chunk-v".into(),
            app: app.into(),
            iters: 5,
            walk_len: 5,
            seed: 7,
            mode: "sequential".into(),
            backend: "threads".into(),
            workers: None,
            fault_plan: fault_plan.map(str::to_string),
            checkpoint_every: Some(2),
            threads: 1,
            buffer_size: bpart_core::DEFAULT_BUFFER_SIZE,
            obs: ObsFlags::default(),
        })
    }

    #[test]
    fn run_surfaces_faults_in_the_report() {
        let graph_path = tmp("run_faults.txt");
        let gp = graph_path.to_str().unwrap().to_string();
        runs(Command::Generate {
            preset: "lj_like".into(),
            scale: 0.01,
            seed: Some(5),
            out: gp.clone(),
        });

        for app in ["pagerank", "cc", "deepwalk", "walk"] {
            let clean = run_on(gp.clone(), app, None).unwrap();
            assert!(clean.contains("faults injected: 0"), "{app}: {clean}");
            assert!(clean.contains("replayed steps:  0"), "{app}: {clean}");

            // crash at 3 with checkpoints every 2: rollback to the
            // superstep-2 checkpoint, so superstep 2 is replayed
            let faulted = run_on(gp.clone(), app, Some("crash@3:m1")).unwrap();
            assert!(faulted.contains("faults injected: 1"), "{app}: {faulted}");
            assert!(!faulted.contains("replayed steps:  0"), "{app}: {faulted}");
        }

        let e = run_on(gp.clone(), "pagerank", Some("crash@nope")).unwrap_err();
        assert!(e.to_string().contains("fault-plan"), "{e}");
        let e = run_on(gp.clone(), "frobnicate", None).unwrap_err();
        assert!(e.to_string().contains("unknown app"), "{e}");

        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn run_with_trace_and_metrics_exports_and_reports() {
        let graph_path = tmp("obs.txt");
        let trace_path = tmp("obs.jsonl");
        let metrics_path = tmp("obs.prom");
        let gp = graph_path.to_str().unwrap().to_string();
        let tp = trace_path.to_str().unwrap().to_string();
        let mp = metrics_path.to_str().unwrap().to_string();
        runs(Command::Generate {
            preset: "lj_like".into(),
            scale: 0.01,
            seed: Some(5),
            out: gp.clone(),
        });

        let out = runs(Command::Run {
            graph: gp.clone(),
            parts: 4,
            scheme: "bpart".into(),
            app: "pagerank".into(),
            iters: 3,
            walk_len: 5,
            seed: 7,
            mode: "sequential".into(),
            backend: "threads".into(),
            workers: None,
            fault_plan: None,
            checkpoint_every: None,
            threads: 1,
            buffer_size: bpart_core::DEFAULT_BUFFER_SIZE,
            obs: ObsFlags {
                trace_out: Some(tp.clone()),
                metrics_out: Some(mp.clone()),
                ..ObsFlags::default()
            },
        });
        // Per-machine waiting breakdown (Fig. 13) is in the run report.
        assert!(out.contains("m0: compute"), "{out}");
        assert!(out.contains("wrote metrics snapshot"), "{out}");

        // The trace parses and the report shows the instrumented phases.
        let report = runs(Command::Report {
            traces: vec![tp.clone()],
            critical_path: false,
            profile: false,
            straggler_factor: 2.0,
        });
        assert!(report.contains("cluster.superstep"), "{report}");
        assert!(report.contains("stream.pass"), "{report}");
        assert!(report.contains("per-phase totals"), "{report}");

        // The metrics snapshot is a Prometheus-style exposition covering
        // the streaming and cluster layers.
        let prom = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(prom.contains("# TYPE stream_vertices counter"), "{prom}");
        assert!(prom.contains("cluster_supersteps"), "{prom}");

        // Reporting on the metrics file (not JSONL) fails with a line number.
        let e = run(&Command::Report {
            traces: vec![mp.clone()],
            critical_path: false,
            profile: false,
            straggler_factor: 2.0,
        })
        .unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        for p in [graph_path, trace_path, metrics_path] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn history_records_and_obs_diff_gate_regressions() {
        let graph_path = tmp("hist.txt");
        let hist_a = tmp("hist_a.json");
        let hist_b = tmp("hist_b.json");
        let gp = graph_path.to_str().unwrap().to_string();
        let ha = hist_a.to_str().unwrap().to_string();
        let hb = hist_b.to_str().unwrap().to_string();
        runs(Command::Generate {
            preset: "lj_like".into(),
            scale: 0.01,
            seed: Some(5),
            out: gp.clone(),
        });

        let out = runs(Command::Run {
            graph: gp.clone(),
            parts: 4,
            scheme: "bpart".into(),
            app: "pagerank".into(),
            iters: 3,
            walk_len: 5,
            seed: 7,
            mode: "sequential".into(),
            backend: "threads".into(),
            workers: None,
            fault_plan: None,
            checkpoint_every: None,
            threads: 1,
            buffer_size: bpart_core::DEFAULT_BUFFER_SIZE,
            obs: ObsFlags {
                history_out: Some(ha.clone()),
                git_rev: Some("testrev".into()),
                ..ObsFlags::default()
            },
        });
        assert!(out.contains("wrote history record"), "{out}");
        let rec = bpart_obs::history::RunRecord::read(Path::new(&ha)).unwrap();
        assert_eq!(rec.git_rev, "testrev");
        assert!(rec.metrics.contains_key("cut_ratio"), "{rec:?}");
        assert!(rec.metrics.contains_key("waiting_ratio"), "{rec:?}");

        // An identical candidate passes the diff gate...
        std::fs::copy(&hist_a, &hist_b).unwrap();
        let watch = vec!["cut_ratio".to_string()];
        let out = runs(Command::ObsDiff {
            a: ha.clone(),
            b: hb.clone(),
            watch: watch.clone(),
            threshold: 0.05,
        });
        assert!(out.contains("cut_ratio"), "{out}");

        // ...while a >5% cut regression trips it with a non-Ok result.
        let mut worse = rec.clone();
        worse.set_metric("cut_ratio", rec.metrics["cut_ratio"] * 1.2);
        worse.write(Path::new(&hb)).unwrap();
        let e = run(&Command::ObsDiff {
            a: ha.clone(),
            b: hb.clone(),
            watch,
            threshold: 0.05,
        })
        .unwrap_err();
        assert!(e.to_string().contains("REGRESSED"), "{e}");
        assert!(e.to_string().contains("regressed more than 5.0%"), "{e}");

        for p in [graph_path, hist_a, hist_b] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn partition_emits_history_records() {
        let graph_path = tmp("phist.txt");
        let hist_path = tmp("phist.json");
        let gp = graph_path.to_str().unwrap().to_string();
        let hp = hist_path.to_str().unwrap().to_string();
        runs(Command::Generate {
            preset: "lj_like".into(),
            scale: 0.01,
            seed: Some(5),
            out: gp.clone(),
        });
        runs(Command::Partition {
            graph: gp.clone(),
            parts: 4,
            scheme: "bpart".into(),
            out: None,
            threads: 1,
            buffer_size: bpart_core::DEFAULT_BUFFER_SIZE,
            input_format: "auto".into(),
            shard_dir: None,
            mem_ceiling_mb: None,
            obs: ObsFlags {
                history_out: Some(hp.clone()),
                ..ObsFlags::default()
            },
        });
        let rec = bpart_obs::history::RunRecord::read(Path::new(&hp)).unwrap();
        assert_eq!(rec.label, "partition");
        assert_eq!(rec.config["scheme"], "bpart");
        assert!(rec.metrics["cut_ratio"] > 0.0, "{rec:?}");
        assert!(rec.metrics["wall_time_secs"] >= 0.0, "{rec:?}");
        std::fs::remove_file(graph_path).ok();
        std::fs::remove_file(hist_path).ok();
    }

    #[test]
    fn report_rejects_malformed_traces() {
        let bad_path = tmp("bad_trace.jsonl");
        std::fs::write(&bad_path, "not json\n").unwrap();
        let e = run(&Command::Report {
            traces: vec![bad_path.to_str().unwrap().into()],
            critical_path: false,
            profile: false,
            straggler_factor: 2.0,
        })
        .unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        std::fs::remove_file(bad_path).ok();

        let e = run(&Command::Report {
            traces: vec!["/no/such/trace.jsonl".into()],
            critical_path: false,
            profile: false,
            straggler_factor: 2.0,
        })
        .unwrap_err();
        assert!(e.to_string().contains("/no/such/trace.jsonl"), "{e}");
    }

    #[test]
    fn missing_files_are_reported_with_context() {
        let e = run(&Command::Stats {
            graph: "/no/such/file".into(),
        })
        .unwrap_err();
        assert!(e.to_string().contains("/no/such/file"), "{e}");
        let e = run(&Command::Generate {
            preset: "marsgraph".into(),
            scale: 1.0,
            seed: None,
            out: "x".into(),
        })
        .unwrap_err();
        assert!(e.to_string().contains("unknown preset"), "{e}");
    }
}
