//! Hand-rolled argument parsing (the workspace deliberately avoids heavy
//! CLI dependencies; see DESIGN.md §6).

use std::fmt;

/// The shared observability flags on `partition` and `run`: post-mortem
/// exports (`--trace-out`, `--metrics-out`), the live monitoring server
/// (`--serve-addr`), and run-history emission (`--history-out`,
/// `--git-rev`). All optional; see DESIGN.md §10–11.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsFlags {
    /// Write the span trace as JSONL here after the run.
    pub trace_out: Option<String>,
    /// Write the Prometheus metrics snapshot here after the run.
    pub metrics_out: Option<String>,
    /// Serve `/metrics`, `/spans`, `/healthz`, `/progress` on this
    /// address (e.g. `127.0.0.1:0`) while the job runs.
    pub serve_addr: Option<String>,
    /// Append a run-history record (JSON) at this path after the run.
    pub history_out: Option<String>,
    /// Git revision to stamp into the history record (defaults to
    /// `$BPART_GIT_REV` / `$GITHUB_SHA` / `"unknown"`).
    pub git_rev: Option<String>,
    /// Write the continuous profiler's folded-stack text here after the
    /// run (the cluster-wide flame view on distributed drivers).
    pub profile_out: Option<String>,
}

/// A parsed `bpart` invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `bpart generate --preset P [--scale F] [--seed N] --out FILE`
    Generate {
        preset: String,
        scale: f64,
        seed: Option<u64>,
        out: String,
    },
    /// `bpart stats GRAPH`
    Stats { graph: String },
    /// `bpart partition GRAPH --parts K [--scheme S] [--out FILE]
    /// [--threads T] [--buffer-size B] [--input-format auto|text|binary|shards]
    /// [--shard-dir DIR] [--mem-ceiling MB] [+ observability flags]`
    Partition {
        graph: String,
        parts: usize,
        scheme: String,
        out: Option<String>,
        threads: usize,
        buffer_size: usize,
        input_format: String,
        shard_dir: Option<String>,
        mem_ceiling_mb: Option<u64>,
        obs: ObsFlags,
    },
    /// `bpart shard GRAPH --out-dir DIR [--shard-bytes N]` — split a graph
    /// into the self-describing shard directory the out-of-core pipeline
    /// streams from.
    Shard {
        graph: String,
        out_dir: String,
        shard_bytes: u64,
    },
    /// `bpart quality GRAPH PARTITION`
    Quality { graph: String, partition: String },
    /// `bpart run GRAPH --parts K [--scheme S] [--app A] [--iters N]
    /// [--walk-len L] [--seed N] [--mode M] [--backend threads|process]
    /// [--workers N] [--fault-plan SPEC] [--checkpoint-every N]
    /// [--threads T] [--buffer-size B] [+ observability flags]`
    Run {
        graph: String,
        parts: usize,
        scheme: String,
        app: String,
        iters: usize,
        walk_len: u32,
        seed: u64,
        mode: String,
        backend: String,
        workers: Option<usize>,
        fault_plan: Option<String>,
        checkpoint_every: Option<usize>,
        threads: usize,
        buffer_size: usize,
        obs: ObsFlags,
    },
    /// `bpart worker --connect ADDR --worker-id N --key K
    /// [--heartbeat-ms MS]` — internal: one supervised BSP worker
    /// process, spawned by the process backend (not listed in usage).
    Worker {
        connect: String,
        worker_id: u32,
        key: u64,
        heartbeat_ms: u64,
    },
    /// `bpart report TRACE... [--critical-path] [--profile]
    /// [--straggler-factor F]` — multiple traces (driver + per-worker
    /// exports) merge into one aligned view; `--profile` reads folded
    /// profile files instead of JSONL traces.
    Report {
        traces: Vec<String>,
        critical_path: bool,
        profile: bool,
        straggler_factor: f64,
    },
    /// `bpart obs diff BASELINE CANDIDATE [--watch M1,M2] [--threshold F]`
    ObsDiff {
        a: String,
        b: String,
        watch: Vec<String>,
        threshold: f64,
    },
    /// `bpart obs alerts ADDR` — fetch and pretty-print `/alerts` from a
    /// live `--serve-addr` server.
    ObsAlerts { addr: String },
    /// `bpart convert SRC DST`
    Convert { src: String, dst: String },
    /// `bpart schemes`
    Schemes,
    /// `bpart --help`
    Help,
}

/// Argument errors with a human-readable message.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, ParseError> {
    let mut it = argv.iter().map(String::as_str);
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let rest: Vec<&str> = it.collect();
    match cmd {
        "--help" | "-h" | "help" => Ok(Command::Help),
        "schemes" => Ok(Command::Schemes),
        "generate" => {
            let (flags, positional) = split_flags(&rest)?;
            if !positional.is_empty() {
                return Err(err(format!(
                    "generate takes no positional args, got {positional:?}"
                )));
            }
            let preset = get_required(&flags, "preset")?;
            let scale = match get_optional(&flags, "scale") {
                Some(s) => s.parse().map_err(|_| err(format!("bad --scale {s:?}")))?,
                None => 1.0,
            };
            if scale <= 0.0 {
                return Err(err("--scale must be positive"));
            }
            let seed = match get_optional(&flags, "seed") {
                Some(s) => Some(s.parse().map_err(|_| err(format!("bad --seed {s:?}")))?),
                None => None,
            };
            let out = get_required(&flags, "out")?;
            check_unknown(&flags, &["preset", "scale", "seed", "out"])?;
            Ok(Command::Generate {
                preset,
                scale,
                seed,
                out,
            })
        }
        "stats" => {
            let (flags, positional) = split_flags(&rest)?;
            check_unknown(&flags, &[])?;
            match positional.as_slice() {
                [graph] => Ok(Command::Stats {
                    graph: graph.to_string(),
                }),
                other => Err(err(format!(
                    "stats takes one GRAPH argument, got {other:?}"
                ))),
            }
        }
        "partition" => {
            let (flags, positional) = split_flags(&rest)?;
            let graph = match positional.as_slice() {
                [g] => Some(g.to_string()),
                [] => None,
                other => {
                    return Err(err(format!(
                        "partition takes one GRAPH argument, got {other:?}"
                    )))
                }
            };
            let parts: usize = get_required(&flags, "parts")?
                .parse()
                .map_err(|_| err("bad --parts"))?;
            if parts == 0 {
                return Err(err("--parts must be at least 1"));
            }
            let scheme = get_optional(&flags, "scheme")
                .unwrap_or("bpart")
                .to_string();
            let out = get_optional(&flags, "out").map(str::to_string);
            let (threads, buffer_size) = parse_parallel(&flags)?;
            let input_format = get_optional(&flags, "input-format")
                .unwrap_or("auto")
                .to_string();
            if !["auto", "text", "binary", "shards"].contains(&input_format.as_str()) {
                return Err(err(format!(
                    "--input-format must be auto, text, binary, or shards, got {input_format:?}"
                )));
            }
            let shard_dir = get_optional(&flags, "shard-dir").map(str::to_string);
            if shard_dir.is_some() && input_format != "auto" && input_format != "shards" {
                return Err(err(format!(
                    "--shard-dir conflicts with --input-format {input_format}"
                )));
            }
            // With --shard-dir the shard directory *is* the input, so the
            // GRAPH positional may be omitted.
            let graph = match (graph, shard_dir.as_deref()) {
                (Some(g), _) => g,
                (None, Some(dir)) => dir.to_string(),
                (None, None) => {
                    return Err(err("partition needs a GRAPH argument (or --shard-dir)"))
                }
            };
            let mem_ceiling_mb = match get_optional(&flags, "mem-ceiling") {
                Some(s) => {
                    let mb: u64 = s
                        .parse()
                        .map_err(|_| err(format!("bad --mem-ceiling {s:?}")))?;
                    if mb == 0 {
                        return Err(err("--mem-ceiling must be at least 1 (MB)"));
                    }
                    Some(mb)
                }
                None => None,
            };
            let obs = parse_obs(&flags);
            check_unknown(
                &flags,
                &[
                    "parts",
                    "scheme",
                    "out",
                    "threads",
                    "buffer-size",
                    "input-format",
                    "shard-dir",
                    "mem-ceiling",
                    "trace-out",
                    "metrics-out",
                    "serve-addr",
                    "history-out",
                    "git-rev",
                    "profile-out",
                ],
            )?;
            Ok(Command::Partition {
                graph,
                parts,
                scheme,
                out,
                threads,
                buffer_size,
                input_format,
                shard_dir,
                mem_ceiling_mb,
                obs,
            })
        }
        "shard" => {
            let (flags, positional) = split_flags(&rest)?;
            let graph = match positional.as_slice() {
                [g] => g.to_string(),
                other => {
                    return Err(err(format!(
                        "shard takes one GRAPH argument, got {other:?}"
                    )))
                }
            };
            let out_dir = get_required(&flags, "out-dir")?;
            let shard_bytes: u64 = match get_optional(&flags, "shard-bytes") {
                Some(s) => {
                    let b = s
                        .parse()
                        .map_err(|_| err(format!("bad --shard-bytes {s:?}")))?;
                    if b == 0 {
                        return Err(err("--shard-bytes must be at least 1"));
                    }
                    b
                }
                None => 64 * 1024 * 1024,
            };
            check_unknown(&flags, &["out-dir", "shard-bytes"])?;
            Ok(Command::Shard {
                graph,
                out_dir,
                shard_bytes,
            })
        }
        "run" => {
            let (flags, positional) = split_flags(&rest)?;
            let graph = match positional.as_slice() {
                [g] => g.to_string(),
                other => return Err(err(format!("run takes one GRAPH argument, got {other:?}"))),
            };
            let parts: usize = get_required(&flags, "parts")?
                .parse()
                .map_err(|_| err("bad --parts"))?;
            if parts == 0 {
                return Err(err("--parts must be at least 1"));
            }
            let scheme = get_optional(&flags, "scheme")
                .unwrap_or("bpart")
                .to_string();
            let app = get_optional(&flags, "app")
                .unwrap_or("pagerank")
                .to_string();
            let iters = match get_optional(&flags, "iters") {
                Some(s) => s.parse().map_err(|_| err(format!("bad --iters {s:?}")))?,
                None => 10,
            };
            let walk_len = match get_optional(&flags, "walk-len") {
                Some(s) => s
                    .parse()
                    .map_err(|_| err(format!("bad --walk-len {s:?}")))?,
                None => 10,
            };
            let seed = match get_optional(&flags, "seed") {
                Some(s) => s.parse().map_err(|_| err(format!("bad --seed {s:?}")))?,
                None => 42,
            };
            let mode = get_optional(&flags, "mode")
                .unwrap_or("sequential")
                .to_string();
            if mode != "sequential" && mode != "threaded" {
                return Err(err(format!(
                    "--mode must be sequential or threaded, got {mode:?}"
                )));
            }
            let backend = get_optional(&flags, "backend")
                .unwrap_or("threads")
                .to_string();
            if backend != "threads" && backend != "process" {
                return Err(err(format!(
                    "--backend must be threads or process, got {backend:?}"
                )));
            }
            let workers = match get_optional(&flags, "workers") {
                Some(s) => {
                    let w: usize = s.parse().map_err(|_| err(format!("bad --workers {s:?}")))?;
                    if w == 0 {
                        return Err(err("--workers must be at least 1"));
                    }
                    Some(w)
                }
                None => None,
            };
            let fault_plan = get_optional(&flags, "fault-plan").map(str::to_string);
            let checkpoint_every = match get_optional(&flags, "checkpoint-every") {
                Some(s) => {
                    let every: usize = s
                        .parse()
                        .map_err(|_| err(format!("bad --checkpoint-every {s:?}")))?;
                    if every == 0 {
                        return Err(err("--checkpoint-every must be at least 1"));
                    }
                    Some(every)
                }
                None => None,
            };
            let (threads, buffer_size) = parse_parallel(&flags)?;
            let obs = parse_obs(&flags);
            check_unknown(
                &flags,
                &[
                    "parts",
                    "scheme",
                    "app",
                    "iters",
                    "walk-len",
                    "seed",
                    "mode",
                    "backend",
                    "workers",
                    "fault-plan",
                    "checkpoint-every",
                    "threads",
                    "buffer-size",
                    "trace-out",
                    "metrics-out",
                    "serve-addr",
                    "history-out",
                    "git-rev",
                    "profile-out",
                ],
            )?;
            Ok(Command::Run {
                graph,
                parts,
                scheme,
                app,
                iters,
                walk_len,
                seed,
                mode,
                backend,
                workers,
                fault_plan,
                checkpoint_every,
                threads,
                buffer_size,
                obs,
            })
        }
        "worker" => {
            let (flags, positional) = split_flags(&rest)?;
            if !positional.is_empty() {
                return Err(err(format!(
                    "worker takes no positional arguments, got {positional:?}"
                )));
            }
            let connect = get_required(&flags, "connect")?;
            let worker_id: u32 = get_required(&flags, "worker-id")?
                .parse()
                .map_err(|_| err("bad --worker-id"))?;
            let key: u64 = get_required(&flags, "key")?
                .parse()
                .map_err(|_| err("bad --key"))?;
            let heartbeat_ms: u64 = match get_optional(&flags, "heartbeat-ms") {
                Some(s) => s
                    .parse()
                    .map_err(|_| err(format!("bad --heartbeat-ms {s:?}")))?,
                None => 100,
            };
            check_unknown(&flags, &["connect", "worker-id", "key", "heartbeat-ms"])?;
            Ok(Command::Worker {
                connect,
                worker_id,
                key,
                heartbeat_ms,
            })
        }
        "report" => {
            // `--critical-path` / `--profile` are the CLI's boolean flags;
            // `split_flags` treats every `--x` as value-taking, so pull
            // the boolean tokens out before splitting.
            let mut critical_path = false;
            let mut profile = false;
            let rest: Vec<&str> = rest
                .into_iter()
                .filter(|&tok| {
                    if tok == "--critical-path" {
                        critical_path = true;
                        false
                    } else if tok == "--profile" {
                        profile = true;
                        false
                    } else {
                        true
                    }
                })
                .collect();
            let (flags, positional) = split_flags(&rest)?;
            let straggler_factor = match get_optional(&flags, "straggler-factor") {
                Some(s) => {
                    let f: f64 = s
                        .parse()
                        .map_err(|_| err(format!("bad --straggler-factor {s:?}")))?;
                    if f.is_nan() || f < 1.0 {
                        return Err(err("--straggler-factor must be at least 1"));
                    }
                    f
                }
                None => 2.0,
            };
            check_unknown(&flags, &["straggler-factor"])?;
            if positional.is_empty() {
                return Err(err(
                    "report takes one or more TRACE arguments (JSONL files from --trace-out, \
                     or folded profile files with --profile)",
                ));
            }
            if profile && critical_path {
                return Err(err("--profile and --critical-path are mutually exclusive"));
            }
            Ok(Command::Report {
                traces: positional.iter().map(|s| s.to_string()).collect(),
                critical_path,
                profile,
                straggler_factor,
            })
        }
        "obs" => {
            if let Some((&"alerts", tail)) = rest.split_first() {
                let (flags, positional) = split_flags(tail)?;
                check_unknown(&flags, &[])?;
                return match positional.as_slice() {
                    [addr] => Ok(Command::ObsAlerts {
                        addr: addr.to_string(),
                    }),
                    other => Err(err(format!(
                        "obs alerts takes one ADDR argument (a --serve-addr address), got {other:?}"
                    ))),
                };
            }
            let Some((&"diff", tail)) = rest.split_first() else {
                return Err(err(format!(
                    "obs takes a `diff` or `alerts` subcommand (obs diff BASELINE CANDIDATE, \
                     obs alerts ADDR), got {rest:?}"
                )));
            };
            let (flags, positional) = split_flags(tail)?;
            let watch: Vec<String> = match get_optional(&flags, "watch") {
                Some(list) => {
                    let names: Vec<String> = list
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect();
                    if names.is_empty() {
                        return Err(err("--watch needs at least one metric name"));
                    }
                    names
                }
                None => vec!["wall_time_secs".to_string(), "cut_ratio".to_string()],
            };
            let threshold = match get_optional(&flags, "threshold") {
                Some(s) => {
                    let t: f64 = s
                        .parse()
                        .map_err(|_| err(format!("bad --threshold {s:?}")))?;
                    if t.is_nan() || t < 0.0 {
                        return Err(err("--threshold must be non-negative"));
                    }
                    t
                }
                None => 0.05,
            };
            check_unknown(&flags, &["watch", "threshold"])?;
            match positional.as_slice() {
                [a, b] => Ok(Command::ObsDiff {
                    a: a.to_string(),
                    b: b.to_string(),
                    watch,
                    threshold,
                }),
                other => Err(err(format!(
                    "obs diff takes BASELINE and CANDIDATE history files, got {other:?}"
                ))),
            }
        }
        "quality" => {
            let (flags, positional) = split_flags(&rest)?;
            check_unknown(&flags, &[])?;
            match positional.as_slice() {
                [g, p] => Ok(Command::Quality {
                    graph: g.to_string(),
                    partition: p.to_string(),
                }),
                other => Err(err(format!(
                    "quality takes GRAPH and PARTITION arguments, got {other:?}"
                ))),
            }
        }
        "convert" => {
            let (flags, positional) = split_flags(&rest)?;
            check_unknown(&flags, &[])?;
            match positional.as_slice() {
                [s, d] => Ok(Command::Convert {
                    src: s.to_string(),
                    dst: d.to_string(),
                }),
                other => Err(err(format!(
                    "convert takes SRC and DST arguments, got {other:?}"
                ))),
            }
        }
        other => Err(err(format!("unknown command {other:?} (try --help)"))),
    }
}

/// Parses the shared `--threads` / `--buffer-size` worker-pool flags
/// (defaults: 1 thread — the exact sequential path — and
/// [`bpart_core::DEFAULT_BUFFER_SIZE`]). Both must be at least 1.
fn parse_parallel(flags: &[(&str, &str)]) -> Result<(usize, usize), ParseError> {
    let threads = match get_optional(flags, "threads") {
        Some(s) => s.parse().map_err(|_| err(format!("bad --threads {s:?}")))?,
        None => 1,
    };
    if threads == 0 {
        return Err(err("--threads must be at least 1"));
    }
    let buffer_size = match get_optional(flags, "buffer-size") {
        Some(s) => s
            .parse()
            .map_err(|_| err(format!("bad --buffer-size {s:?}")))?,
        None => bpart_core::DEFAULT_BUFFER_SIZE,
    };
    if buffer_size == 0 {
        return Err(err("--buffer-size must be at least 1"));
    }
    Ok((threads, buffer_size))
}

/// Parses the shared observability flags (all optional; see DESIGN.md
/// §10–11).
fn parse_obs(flags: &[(&str, &str)]) -> ObsFlags {
    ObsFlags {
        trace_out: get_optional(flags, "trace-out").map(str::to_string),
        metrics_out: get_optional(flags, "metrics-out").map(str::to_string),
        serve_addr: get_optional(flags, "serve-addr").map(str::to_string),
        history_out: get_optional(flags, "history-out").map(str::to_string),
        git_rev: get_optional(flags, "git-rev").map(str::to_string),
        profile_out: get_optional(flags, "profile-out").map(str::to_string),
    }
}

/// `--flag value` pairs collected by [`split_flags`].
type Flags<'a> = Vec<(&'a str, &'a str)>;

/// Splits `--flag value` pairs from positional arguments.
fn split_flags<'a>(rest: &[&'a str]) -> Result<(Flags<'a>, Vec<&'a str>), ParseError> {
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let tok = rest[i];
        if let Some(name) = tok.strip_prefix("--") {
            let value = rest
                .get(i + 1)
                .ok_or_else(|| err(format!("--{name} needs a value")))?;
            flags.push((name, *value));
            i += 2;
        } else {
            positional.push(tok);
            i += 1;
        }
    }
    Ok((flags, positional))
}

fn get_required(flags: &[(&str, &str)], name: &str) -> Result<String, ParseError> {
    get_optional(flags, name)
        .map(str::to_string)
        .ok_or_else(|| err(format!("missing required flag --{name}")))
}

fn get_optional<'a>(flags: &[(&'a str, &'a str)], name: &str) -> Option<&'a str> {
    flags.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}

fn check_unknown(flags: &[(&str, &str)], known: &[&str]) -> Result<(), ParseError> {
    for (name, _) in flags {
        if !known.contains(name) {
            return Err(err(format!("unknown flag --{name}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, ParseError> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_generate() {
        let cmd = p(&[
            "generate", "--preset", "lj_like", "--scale", "0.1", "--out", "g.txt",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                preset: "lj_like".into(),
                scale: 0.1,
                seed: None,
                out: "g.txt".into()
            }
        );
    }

    #[test]
    fn generate_requires_out() {
        let e = p(&["generate", "--preset", "lj_like"]).unwrap_err();
        assert!(e.to_string().contains("--out"));
    }

    #[test]
    fn parses_partition_with_defaults() {
        let cmd = p(&["partition", "g.txt", "--parts", "8"]).unwrap();
        assert_eq!(
            cmd,
            Command::Partition {
                graph: "g.txt".into(),
                parts: 8,
                scheme: "bpart".into(),
                out: None,
                threads: 1,
                buffer_size: bpart_core::DEFAULT_BUFFER_SIZE,
                input_format: "auto".into(),
                shard_dir: None,
                mem_ceiling_mb: None,
                obs: ObsFlags::default(),
            }
        );
    }

    #[test]
    fn parses_out_of_core_flags() {
        let cmd = p(&[
            "partition",
            "shards/",
            "--parts",
            "8",
            "--scheme",
            "fennel",
            "--input-format",
            "shards",
            "--mem-ceiling",
            "512",
        ])
        .unwrap();
        match cmd {
            Command::Partition {
                input_format,
                shard_dir,
                mem_ceiling_mb,
                ..
            } => {
                assert_eq!(input_format, "shards");
                assert_eq!(shard_dir, None);
                assert_eq!(mem_ceiling_mb, Some(512));
            }
            other => panic!("expected Partition, got {other:?}"),
        }
        let cmd = p(&[
            "partition",
            "g.bpgr",
            "--parts",
            "4",
            "--shard-dir",
            "shards/",
        ])
        .unwrap();
        match cmd {
            Command::Partition {
                input_format,
                shard_dir,
                ..
            } => {
                assert_eq!(input_format, "auto");
                assert_eq!(shard_dir.as_deref(), Some("shards/"));
            }
            other => panic!("expected Partition, got {other:?}"),
        }
        // Bad values and conflicting combinations are rejected.
        assert!(p(&["partition", "g", "--parts", "4", "--input-format", "orc"]).is_err());
        assert!(p(&["partition", "g", "--parts", "4", "--mem-ceiling", "0"]).is_err());
        assert!(p(&["partition", "g", "--parts", "4", "--mem-ceiling", "many"]).is_err());
        assert!(p(&[
            "partition",
            "g",
            "--parts",
            "4",
            "--input-format",
            "text",
            "--shard-dir",
            "d"
        ])
        .is_err());
    }

    #[test]
    fn parses_shard_command() {
        assert_eq!(
            p(&["shard", "g.bpgr", "--out-dir", "shards/"]).unwrap(),
            Command::Shard {
                graph: "g.bpgr".into(),
                out_dir: "shards/".into(),
                shard_bytes: 64 * 1024 * 1024,
            }
        );
        assert_eq!(
            p(&["shard", "g.txt", "--out-dir", "d", "--shard-bytes", "4096"]).unwrap(),
            Command::Shard {
                graph: "g.txt".into(),
                out_dir: "d".into(),
                shard_bytes: 4096,
            }
        );
        assert!(p(&["shard", "--out-dir", "d"]).is_err());
        assert!(p(&["shard", "g", "h", "--out-dir", "d"]).is_err());
        assert!(p(&["shard", "g"]).is_err());
        assert!(p(&["shard", "g", "--out-dir", "d", "--shard-bytes", "0"]).is_err());
    }

    #[test]
    fn parses_observability_flags() {
        let cmd = p(&[
            "partition",
            "g.txt",
            "--parts",
            "8",
            "--trace-out",
            "t.jsonl",
            "--metrics-out",
            "m.prom",
            "--serve-addr",
            "127.0.0.1:0",
            "--history-out",
            "results/history/run.json",
            "--git-rev",
            "abc123",
        ])
        .unwrap();
        match cmd {
            Command::Partition { obs, .. } => {
                assert_eq!(obs.trace_out.as_deref(), Some("t.jsonl"));
                assert_eq!(obs.metrics_out.as_deref(), Some("m.prom"));
                assert_eq!(obs.serve_addr.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(obs.history_out.as_deref(), Some("results/history/run.json"));
                assert_eq!(obs.git_rev.as_deref(), Some("abc123"));
            }
            other => panic!("expected Partition, got {other:?}"),
        }
        let cmd = p(&["run", "g.txt", "--parts", "4", "--trace-out", "t.jsonl"]).unwrap();
        match cmd {
            Command::Run { obs, .. } => {
                assert_eq!(obs.trace_out.as_deref(), Some("t.jsonl"));
                assert_eq!(obs.metrics_out, None);
                assert_eq!(obs.serve_addr, None);
            }
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn parses_report() {
        assert_eq!(
            p(&["report", "trace.jsonl"]).unwrap(),
            Command::Report {
                traces: vec!["trace.jsonl".into()],
                critical_path: false,
                profile: false,
                straggler_factor: 2.0,
            }
        );
        assert_eq!(
            p(&[
                "report",
                "--critical-path",
                "trace.jsonl",
                "--straggler-factor",
                "1.5"
            ])
            .unwrap(),
            Command::Report {
                traces: vec!["trace.jsonl".into()],
                critical_path: true,
                profile: false,
                straggler_factor: 1.5,
            }
        );
        // Multiple traces (driver + worker exports) merge into one view.
        assert_eq!(
            p(&["report", "a.jsonl", "b.jsonl", "c.jsonl"]).unwrap(),
            Command::Report {
                traces: vec!["a.jsonl".into(), "b.jsonl".into(), "c.jsonl".into()],
                critical_path: false,
                profile: false,
                straggler_factor: 2.0,
            }
        );
        // --profile flips to folded-profile mode; clashes with
        // --critical-path (different input formats entirely).
        assert_eq!(
            p(&["report", "--profile", "a.folded", "b.folded"]).unwrap(),
            Command::Report {
                traces: vec!["a.folded".into(), "b.folded".into()],
                critical_path: false,
                profile: true,
                straggler_factor: 2.0,
            }
        );
        assert!(p(&["report", "--profile", "--critical-path", "a"]).is_err());
        assert!(p(&["report"]).is_err());
        assert!(p(&["report", "a", "--straggler-factor", "0.5"]).is_err());
        assert!(p(&["report", "a", "--straggler-factor", "nan"]).is_err());
    }

    #[test]
    fn parses_obs_diff() {
        assert_eq!(
            p(&["obs", "diff", "a.json", "b.json"]).unwrap(),
            Command::ObsDiff {
                a: "a.json".into(),
                b: "b.json".into(),
                watch: vec!["wall_time_secs".into(), "cut_ratio".into()],
                threshold: 0.05,
            }
        );
        assert_eq!(
            p(&[
                "obs",
                "diff",
                "a.json",
                "b.json",
                "--watch",
                "cut_ratio, waiting_ratio",
                "--threshold",
                "0.1",
            ])
            .unwrap(),
            Command::ObsDiff {
                a: "a.json".into(),
                b: "b.json".into(),
                watch: vec!["cut_ratio".into(), "waiting_ratio".into()],
                threshold: 0.1,
            }
        );
        assert!(p(&["obs"]).is_err());
        assert!(p(&["obs", "diff", "a.json"]).is_err());
        assert!(p(&["obs", "diff", "a", "b", "--watch", ","]).is_err());
        assert!(p(&["obs", "diff", "a", "b", "--threshold", "-1"]).is_err());
    }

    #[test]
    fn parses_obs_alerts() {
        assert_eq!(
            p(&["obs", "alerts", "127.0.0.1:9090"]).unwrap(),
            Command::ObsAlerts {
                addr: "127.0.0.1:9090".into(),
            }
        );
        assert!(p(&["obs", "alerts"]).is_err());
        assert!(p(&["obs", "alerts", "a", "b"]).is_err());
        assert!(p(&["obs", "alerts", "addr", "--bogus", "x"]).is_err());
    }

    #[test]
    fn parses_profile_out() {
        match p(&[
            "run",
            "g.txt",
            "--parts",
            "2",
            "--profile-out",
            "results/prof.folded",
        ])
        .unwrap()
        {
            Command::Run { obs, .. } => {
                assert_eq!(obs.profile_out.as_deref(), Some("results/prof.folded"));
            }
            other => panic!("expected Run, got {other:?}"),
        }
        match p(&[
            "partition",
            "g.txt",
            "--parts",
            "2",
            "--profile-out",
            "p.folded",
        ])
        .unwrap()
        {
            Command::Partition { obs, .. } => {
                assert_eq!(obs.profile_out.as_deref(), Some("p.folded"));
            }
            other => panic!("expected Partition, got {other:?}"),
        }
    }

    #[test]
    fn parses_parallel_flags() {
        let cmd = p(&[
            "partition",
            "g.txt",
            "--parts",
            "8",
            "--threads",
            "4",
            "--buffer-size",
            "1024",
        ])
        .unwrap();
        match cmd {
            Command::Partition {
                threads,
                buffer_size,
                ..
            } => {
                assert_eq!(threads, 4);
                assert_eq!(buffer_size, 1024);
            }
            other => panic!("expected Partition, got {other:?}"),
        }
        assert!(p(&["partition", "g", "--parts", "4", "--threads", "0"]).is_err());
        assert!(p(&["partition", "g", "--parts", "4", "--buffer-size", "0"]).is_err());
        assert!(p(&["run", "g", "--parts", "4", "--threads", "zig"]).is_err());
    }

    #[test]
    fn rejects_zero_parts_and_bad_scale() {
        assert!(p(&["partition", "g", "--parts", "0"]).is_err());
        assert!(p(&["generate", "--preset", "x", "--scale", "-1", "--out", "o"]).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_commands() {
        assert!(p(&["partition", "g", "--parts", "4", "--bogus", "1"]).is_err());
        assert!(p(&["explode"]).is_err());
    }

    #[test]
    fn flag_without_value_is_an_error() {
        let e = p(&["partition", "g", "--parts"]).unwrap_err();
        assert!(e.to_string().contains("needs a value"));
    }

    #[test]
    fn parses_run_with_defaults() {
        let cmd = p(&["run", "g.txt", "--parts", "4"]).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                graph: "g.txt".into(),
                parts: 4,
                scheme: "bpart".into(),
                app: "pagerank".into(),
                iters: 10,
                walk_len: 10,
                seed: 42,
                mode: "sequential".into(),
                backend: "threads".into(),
                workers: None,
                fault_plan: None,
                checkpoint_every: None,
                threads: 1,
                buffer_size: bpart_core::DEFAULT_BUFFER_SIZE,
                obs: ObsFlags::default(),
            }
        );
    }

    #[test]
    fn parses_run_with_fault_flags() {
        let cmd = p(&[
            "run",
            "g.txt",
            "--parts",
            "8",
            "--app",
            "deepwalk",
            "--fault-plan",
            "crash@3:m1",
            "--checkpoint-every",
            "2",
            "--mode",
            "threaded",
        ])
        .unwrap();
        match cmd {
            Command::Run {
                app,
                fault_plan,
                checkpoint_every,
                mode,
                ..
            } => {
                assert_eq!(app, "deepwalk");
                assert_eq!(fault_plan.as_deref(), Some("crash@3:m1"));
                assert_eq!(checkpoint_every, Some(2));
                assert_eq!(mode, "threaded");
            }
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn run_rejects_bad_values() {
        assert!(p(&["run", "g", "--parts", "4", "--checkpoint-every", "0"]).is_err());
        assert!(p(&["run", "g", "--parts", "4", "--mode", "turbo"]).is_err());
        assert!(p(&["run", "g", "--parts", "4", "--backend", "carrier-pigeon"]).is_err());
        assert!(p(&["run", "g", "--parts", "4", "--workers", "0"]).is_err());
        assert!(p(&["run", "g", "--parts", "0"]).is_err());
        assert!(p(&["run"]).is_err());
    }

    #[test]
    fn parses_run_with_process_backend() {
        let cmd = p(&[
            "run",
            "g.txt",
            "--parts",
            "4",
            "--backend",
            "process",
            "--workers",
            "4",
        ])
        .unwrap();
        match cmd {
            Command::Run {
                backend, workers, ..
            } => {
                assert_eq!(backend, "process");
                assert_eq!(workers, Some(4));
            }
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn parses_the_internal_worker_command() {
        let cmd = p(&[
            "worker",
            "--connect",
            "127.0.0.1:4000",
            "--worker-id",
            "2",
            "--key",
            "99",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Worker {
                connect: "127.0.0.1:4000".into(),
                worker_id: 2,
                key: 99,
                heartbeat_ms: 100,
            }
        );
        assert!(p(&["worker", "--connect", "x"]).is_err());
    }

    #[test]
    fn parses_simple_commands() {
        assert_eq!(
            p(&["stats", "g.txt"]).unwrap(),
            Command::Stats {
                graph: "g.txt".into()
            }
        );
        assert_eq!(
            p(&["quality", "g", "p"]).unwrap(),
            Command::Quality {
                graph: "g".into(),
                partition: "p".into()
            }
        );
        assert_eq!(
            p(&["convert", "a", "b"]).unwrap(),
            Command::Convert {
                src: "a".into(),
                dst: "b".into()
            }
        );
        assert_eq!(p(&["schemes"]).unwrap(), Command::Schemes);
        assert_eq!(p(&[]).unwrap(), Command::Help);
        assert_eq!(p(&["--help"]).unwrap(), Command::Help);
    }
}
