//! Property-based tests for the buffered-parallel streaming engine: the
//! determinism contracts (`buffer_size == 1` reproduces the sequential
//! result for any thread count) and the paper's balance invariants hold
//! for arbitrary graphs and worker-pool shapes.

use bpart_core::bpart::WeightedStream;
use bpart_core::prelude::*;
use bpart_graph::generate;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn unit_buffer_reproduces_sequential_fennel(
        seed in 0u64..200,
        threads in 2usize..5,
        k in 2usize..9,
    ) {
        let g = generate::erdos_renyi(150, 1_200, seed);
        let sequential = Fennel::default().partition(&g, k);
        let parallel = Fennel::new(FennelConfig {
            parallel: ParallelConfig { threads, buffer_size: 1 },
            ..Default::default()
        })
        .partition(&g, k);
        // A one-vertex buffer means the weight snapshot is never stale, so
        // the parallel engine must make bit-identical choices.
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn unit_buffer_reproduces_sequential_weighted_stream(
        seed in 0u64..200,
        threads in 2usize..5,
    ) {
        let g = generate::erdos_renyi(150, 1_200, seed);
        let sequential = WeightedStream::default().partition(&g, 8);
        let parallel = WeightedStream::new(BPartConfig {
            parallel: ParallelConfig { threads, buffer_size: 1 },
            ..Default::default()
        })
        .partition(&g, 8);
        prop_assert_eq!(parallel, sequential);
    }

    #[test]
    fn parallel_fennel_respects_the_vertex_budget(
        seed in 0u64..200,
        threads in 2usize..5,
        buf_exp in 3u32..8,
        k in 2usize..9,
    ) {
        let buffer_size = 1usize << buf_exp; // 8..=128
        let g = generate::erdos_renyi(200, 1_600, seed);
        let p = Fennel::new(FennelConfig {
            parallel: ParallelConfig { threads, buffer_size },
            ..Default::default()
        })
        .partition(&g, k);
        prop_assert!(p.validate(&g).is_ok());
        // The commit barrier repairs snapshot-stale proposals, so the hard
        // per-part budget of the sequential pass also binds in parallel.
        let cap = (1.1 * g.num_vertices() as f64 / k as f64).ceil() as u64 + 1;
        for &c in p.vertex_counts() {
            prop_assert!(c <= cap, "threads={threads} buffer={buffer_size}: {c} > {cap}");
        }
    }

    #[test]
    fn parallel_weighted_stream_balances_the_indicator(
        threads in 2usize..5,
        buf_exp in 4u32..8,
    ) {
        // W_i = c·|V_i| + (1−c)·|E_i|/d̄ must stay near-equal across pieces
        // (Eq. 1 of the paper) when phase 1 runs on the parallel engine.
        let g = generate::twitter_like().generate_scaled(0.01);
        let pieces = 8;
        let p = WeightedStream::new(BPartConfig {
            parallel: ParallelConfig { threads, buffer_size: 1usize << buf_exp },
            ..Default::default()
        })
        .partition(&g, pieces);
        prop_assert!(p.validate(&g).is_ok());
        let d_bar = g.average_degree();
        let ws: Vec<f64> = p
            .vertex_counts()
            .iter()
            .zip(p.edge_counts())
            .map(|(&v, &e)| 0.5 * v as f64 + 0.5 * e as f64 / d_bar)
            .collect();
        let mean = ws.iter().sum::<f64>() / ws.len() as f64;
        let max = ws.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(
            (max - mean) / mean < 0.25,
            "threads={}: indicator spread too wide: {:?}", threads, ws
        );
    }
}
