//! Property-based tests for the partitioning core: metric bounds,
//! partitioner invariants and combine-phase conservation laws hold for
//! arbitrary graphs and configurations.

use bpart_core::bpart::{combine_round, Group};
use bpart_core::pio;
use bpart_core::prelude::*;
use bpart_graph::generate;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bias_and_jain_are_bounded(values in prop::collection::vec(0u64..10_000, 1..64)) {
        let b = metrics::bias(&values);
        prop_assert!(b >= 0.0, "bias {b} negative");
        let n = values.len() as f64;
        let j = metrics::jain_fairness(&values);
        prop_assert!((1.0 / n - 1e-9..=1.0 + 1e-9).contains(&j), "jain {j} out of range");
        // Perfectly balanced input pins both metrics.
        let flat = vec![values[0]; values.len()];
        prop_assert_eq!(metrics::bias(&flat), 0.0);
        prop_assert!((metrics::jain_fairness(&flat) - 1.0).abs() < 1e-12 || values[0] == 0);
    }

    #[test]
    fn every_partitioner_conserves_tallies(seed in 0u64..400, k in 1usize..9) {
        let g = generate::erdos_renyi(120, 900, seed);
        let schemes: Vec<Box<dyn Partitioner>> = vec![
            Box::new(ChunkV),
            Box::new(ChunkE),
            Box::new(HashPartitioner::new(seed)),
            Box::new(Fennel::default()),
            Box::new(BPart::default()),
        ];
        for scheme in &schemes {
            let p = scheme.partition(&g, k);
            prop_assert!(p.validate(&g).is_ok(), "{} invalid", scheme.name());
            prop_assert_eq!(p.vertex_counts().iter().sum::<u64>(), 120u64);
            prop_assert_eq!(p.edge_counts().iter().sum::<u64>(), 900u64);
            let cut = metrics::edge_cut_ratio(&g, &p);
            prop_assert!((0.0..=1.0).contains(&cut));
            if k == 1 {
                prop_assert_eq!(cut, 0.0);
            }
        }
    }

    #[test]
    fn combine_round_conserves_mass(
        sizes in prop::collection::vec((1u64..50, 0u64..500), 1..8)
    ) {
        // Build an even number of groups with disjoint vertex ranges.
        let mut groups = Vec::new();
        let mut next_id = 0u32;
        for &(v, e) in &sizes {
            groups.push(Group::new((next_id..next_id + v as u32).collect(), e));
            next_id += v as u32;
            groups.push(Group::new((next_id..next_id + v as u32).collect(), e / 2));
            next_id += v as u32;
        }
        let total_v: u64 = groups.iter().map(|g| g.vertex_count).sum();
        let total_e: u64 = groups.iter().map(|g| g.edge_count).sum();
        let combined = combine_round(groups);
        prop_assert_eq!(combined.len(), sizes.len());
        prop_assert_eq!(combined.iter().map(|g| g.vertex_count).sum::<u64>(), total_v);
        prop_assert_eq!(combined.iter().map(|g| g.edge_count).sum::<u64>(), total_e);
        // No vertex duplicated or lost.
        let mut all: Vec<u32> = combined.iter().flat_map(|g| g.vertices.clone()).collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len() as u64, total_v);
    }

    #[test]
    fn partition_io_round_trips(seed in 0u64..300, k in 1usize..9) {
        let g = generate::erdos_renyi(80, 400, seed);
        let p = HashPartitioner::new(seed).partition(&g, k);
        let mut text = Vec::new();
        pio::write_text(&p, &mut text).unwrap();
        let q = pio::read_text(&g, text.as_slice()).unwrap();
        prop_assert_eq!(p.assignment(), q.assignment());
        let mut bin = Vec::new();
        pio::write_binary(&p, &mut bin).unwrap();
        let r = pio::read_binary(&g, bin.as_slice()).unwrap();
        prop_assert_eq!(&p, &r);
    }

    #[test]
    fn stream_orders_are_permutations(seed in 0u64..200) {
        let g = generate::erdos_renyi(60, 300, seed);
        for order in [
            StreamOrder::Natural,
            StreamOrder::Random(seed),
            StreamOrder::Bfs,
            StreamOrder::DegreeDescending,
        ] {
            let mut visited = order.order(&g);
            visited.sort_unstable();
            let expect: Vec<u32> = (0..60).collect();
            prop_assert_eq!(visited, expect, "order {:?}", order);
        }
    }

    #[test]
    fn bpart_trace_is_internally_consistent(seed in 0u64..150, k in 2usize..10) {
        let g = generate::erdos_renyi(150, 1_200, seed);
        let (p, trace) = BPart::default().partition_with_trace(&g, k);
        prop_assert!(p.validate(&g).is_ok());
        let frozen: usize = trace.iter().map(|t| t.frozen).sum();
        prop_assert_eq!(frozen, k);
        prop_assert_eq!(trace.last().unwrap().remaining_vertices, 0);
        // remaining counts are non-increasing across layers
        for w in trace.windows(2) {
            prop_assert!(w[1].remaining_vertices <= w[0].remaining_vertices);
        }
    }

    #[test]
    fn hash_partitions_are_statistically_balanced(seed in 0u64..100) {
        let g = generate::erdos_renyi(4_000, 8_000, seed);
        let p = HashPartitioner::new(seed).partition(&g, 8);
        // 500 expected per part; 4-sigma band is ~ +/- 90
        for &c in p.vertex_counts() {
            prop_assert!((400..=600).contains(&c), "count {c}");
        }
    }
}
