//! Vertex stream orders for the streaming partitioners.
//!
//! Fennel-family partitioners consume vertices one at a time; the order
//! matters for quality. Real deployments stream in crawl order (= natural id
//! order here, since the generators place hubs at low ids); the ablation
//! benches also exercise random and BFS orders, the two alternatives studied
//! in the streaming-partitioning literature.

use bpart_graph::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// Order in which a streaming partitioner visits the vertices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamOrder {
    /// Ascending vertex id (crawl order for the synthetic datasets).
    Natural,
    /// Seeded uniform shuffle.
    Random(u64),
    /// Breadth-first from vertex 0 (unreached vertices appended in id
    /// order) — maximizes the number of already-placed neighbors per step.
    Bfs,
    /// Descending out-degree (hubs first), ties by id.
    DegreeDescending,
}

impl StreamOrder {
    /// Materializes the visit order for all vertices of `graph`.
    pub fn order(&self, graph: &CsrGraph) -> Vec<VertexId> {
        let all: Vec<VertexId> = graph.vertices().collect();
        self.order_subset(graph, &all)
    }

    /// Materializes the visit order restricted to `subset` (used by BPart's
    /// later layers, which re-stream only the unbalanced remainder).
    pub fn order_subset(&self, graph: &CsrGraph, subset: &[VertexId]) -> Vec<VertexId> {
        match self {
            StreamOrder::Natural => {
                let mut v = subset.to_vec();
                v.sort_unstable();
                v
            }
            StreamOrder::Random(seed) => {
                let mut v = subset.to_vec();
                v.sort_unstable();
                let mut rng = StdRng::seed_from_u64(*seed);
                // Fisher-Yates
                for i in (1..v.len()).rev() {
                    let j = rng.random_range(0..=i);
                    v.swap(i, j);
                }
                v
            }
            StreamOrder::Bfs => bfs_order(graph, subset),
            StreamOrder::DegreeDescending => {
                let mut v = subset.to_vec();
                v.sort_unstable_by_key(|&x| (usize::MAX - graph.out_degree(x), x));
                v
            }
        }
    }
}

/// BFS over the undirected view restricted to `subset`; vertices of the
/// subset not reached from earlier seeds start new BFS trees in id order.
fn bfs_order(graph: &CsrGraph, subset: &[VertexId]) -> Vec<VertexId> {
    let mut in_subset = vec![false; graph.num_vertices()];
    for &v in subset {
        in_subset[v as usize] = true;
    }
    let mut sorted = subset.to_vec();
    sorted.sort_unstable();

    let mut visited = vec![false; graph.num_vertices()];
    let mut order = Vec::with_capacity(subset.len());
    let mut queue = VecDeque::new();
    for &seed in &sorted {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &w in graph.out_neighbors(u).iter().chain(graph.in_neighbors(u)) {
                if in_subset[w as usize] && !visited[w as usize] {
                    visited[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::generate;

    #[test]
    fn natural_order_is_sorted() {
        let g = generate::ring(5);
        assert_eq!(StreamOrder::Natural.order(&g), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_order_is_a_seeded_permutation() {
        let g = generate::ring(64);
        let a = StreamOrder::Random(1).order(&g);
        let b = StreamOrder::Random(1).order(&g);
        let c = StreamOrder::Random(2).order(&g);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, StreamOrder::Natural.order(&g));
    }

    #[test]
    fn bfs_order_visits_neighbors_before_far_vertices() {
        let g = generate::path(6); // 0->1->...->5
        assert_eq!(StreamOrder::Bfs.order(&g), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bfs_covers_disconnected_subsets() {
        let g = bpart_graph::CsrGraph::from_edges(6, &[(0, 1), (3, 4)]);
        let order = StreamOrder::Bfs.order(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn degree_descending_puts_hub_first() {
        let g = generate::star(5);
        let order = StreamOrder::DegreeDescending.order(&g);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn subset_orders_stay_within_subset() {
        let g = generate::complete(6);
        for order in [
            StreamOrder::Natural,
            StreamOrder::Random(3),
            StreamOrder::Bfs,
            StreamOrder::DegreeDescending,
        ] {
            let got = order.order_subset(&g, &[5, 1, 3]);
            let mut sorted = got.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 3, 5], "order {order:?}");
        }
    }
}
