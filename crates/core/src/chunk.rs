//! Chunking partitioners: Chunk-V and Chunk-E (§2.2, Fig. 2a/2b).
//!
//! Both walk the vertex stream in id order and cut it into `k` contiguous
//! ranges. Chunk-V balances the number of vertices per range (Gemini,
//! GridGraph); Chunk-E balances the sum of out-degrees per range
//! (KnightKing, GraphChi). Contiguity is the point: it preserves crawl
//! locality, which keeps edge cuts lower than hashing but concentrates hub
//! mass, producing the one-dimensional imbalance the paper measures.

use crate::partition::{PartId, Partition};
use crate::partitioner::Partitioner;
use bpart_graph::{CsrGraph, VertexId};

/// Contiguous chunking with balanced vertex counts.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChunkV;

impl Partitioner for ChunkV {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        assert!(num_parts > 0, "need at least one part");
        let n = graph.num_vertices();
        let mut assignment = vec![0 as PartId; n];
        // Part p owns ids [p*n/k, (p+1)*n/k) — the standard balanced split
        // that distributes the remainder one vertex at a time.
        for p in 0..num_parts {
            let lo = p * n / num_parts;
            let hi = (p + 1) * n / num_parts;
            for a in &mut assignment[lo..hi] {
                *a = p as PartId;
            }
        }
        Partition::from_assignment(graph, num_parts, assignment)
    }

    fn name(&self) -> &'static str {
        "Chunk-V"
    }
}

/// Contiguous chunking with balanced out-degree sums.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChunkE;

impl Partitioner for ChunkE {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        assert!(num_parts > 0, "need at least one part");
        let n = graph.num_vertices();
        let m = graph.num_edges() as u64;
        let mut assignment = vec![0 as PartId; n];
        // Greedy scan: close the current chunk once its degree sum reaches
        // the remaining-average target, recomputing the target per chunk so
        // later chunks absorb rounding drift instead of the last one.
        let mut part = 0 as PartId;
        let mut used_edges = 0u64;
        let mut chunk_edges = 0u64;
        for v in 0..n as VertexId {
            let remaining_parts = (num_parts - part as usize) as u64;
            // Target for the *current* chunk: the mass not yet claimed by
            // closed chunks, split over the chunks still open (including
            // this one).
            let target = (m - (used_edges - chunk_edges)).div_ceil(remaining_parts.max(1));
            assignment[v as usize] = part;
            let d = graph.out_degree(v) as u64;
            chunk_edges += d;
            used_edges += d;
            let vertices_left = n as u64 - v as u64 - 1;
            // Keep at least one vertex per unopened chunk when possible.
            if chunk_edges >= target
                && (part as usize) < num_parts - 1
                && vertices_left >= remaining_parts - 1
            {
                part += 1;
                chunk_edges = 0;
            }
        }
        Partition::from_assignment(graph, num_parts, assignment)
    }

    fn name(&self) -> &'static str {
        "Chunk-E"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use bpart_graph::generate;

    #[test]
    fn chunk_v_ranges_are_contiguous_and_balanced() {
        let g = generate::ring(10);
        let p = ChunkV.partition(&g, 3);
        assert_eq!(p.vertex_counts(), &[3, 3, 4]);
        // contiguity
        let a = p.assignment();
        for w in a.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn chunk_v_handles_k_greater_than_n() {
        let g = generate::ring(3);
        let p = ChunkV.partition(&g, 5);
        p.validate(&g).unwrap();
        assert_eq!(p.vertex_counts().iter().sum::<u64>(), 3);
    }

    #[test]
    fn chunk_e_balances_edges_on_uniform_graph() {
        let g = generate::ring(12); // every degree = 1
        let p = ChunkE.partition(&g, 4);
        assert_eq!(p.edge_counts(), &[3, 3, 3, 3]);
    }

    #[test]
    fn chunk_e_on_skewed_graph_has_imbalanced_vertices() {
        let g = generate::twitter_like().generate_scaled(0.05);
        let p = ChunkE.partition(&g, 8);
        p.validate(&g).unwrap();
        let edge_bias = metrics::bias(p.edge_counts());
        let vertex_bias = metrics::bias(p.vertex_counts());
        assert!(edge_bias < 0.3, "edge bias {edge_bias} should be small");
        assert!(
            vertex_bias > 0.8,
            "vertex bias {vertex_bias} should be large on a power-law graph"
        );
    }

    #[test]
    fn chunk_v_on_skewed_graph_has_imbalanced_edges() {
        let g = generate::twitter_like().generate_scaled(0.05);
        let p = ChunkV.partition(&g, 8);
        let vertex_bias = metrics::bias(p.vertex_counts());
        let edge_bias = metrics::bias(p.edge_counts());
        assert!(vertex_bias < 0.01, "vertex bias {vertex_bias}");
        assert!(
            edge_bias > 1.0,
            "edge bias {edge_bias} should be large on a power-law graph"
        );
    }

    #[test]
    fn chunk_e_every_part_nonempty_when_possible() {
        let g = generate::star(15); // hub 0 carries most degree
        let p = ChunkE.partition(&g, 4);
        p.validate(&g).unwrap();
        assert!(
            p.vertex_counts().iter().all(|&c| c > 0),
            "{:?}",
            p.vertex_counts()
        );
    }

    #[test]
    fn names() {
        assert_eq!(ChunkV.name(), "Chunk-V");
        assert_eq!(ChunkE.name(), "Chunk-E");
    }
}
