//! The [`Partitioner`] trait all schemes implement.

use crate::partition::Partition;
use bpart_graph::CsrGraph;

/// A graph partitioning scheme: splits a graph's vertex set into `k`
/// disjoint parts.
pub trait Partitioner {
    /// Partitions `graph` into `num_parts` parts.
    ///
    /// Implementations must return a [`Partition`] covering every vertex
    /// with part ids `< num_parts`; empty parts are permitted (they model a
    /// machine that received no work).
    ///
    /// # Panics
    ///
    /// Implementations panic when `num_parts == 0`.
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition;

    /// Short human-readable scheme name used in harness tables
    /// ("Chunk-V", "BPart", ...).
    fn name(&self) -> &'static str;
}

/// Blanket impl so `&T` and boxed partitioners can be passed around freely
/// (the harness iterates over `Vec<Box<dyn Partitioner>>`).
impl<T: Partitioner + ?Sized> Partitioner for &T {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        (**self).partition(graph, num_parts)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<T: Partitioner + ?Sized> Partitioner for Box<T> {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        (**self).partition(graph, num_parts)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkV;
    use bpart_graph::generate;

    #[test]
    fn trait_objects_and_references_work() {
        let g = generate::ring(8);
        let boxed: Box<dyn Partitioner> = Box::new(ChunkV);
        let p = boxed.partition(&g, 2);
        assert_eq!(p.num_parts(), 2);
        assert_eq!(boxed.name(), "Chunk-V");
        let by_ref = &ChunkV;
        assert_eq!(by_ref.partition(&g, 2), p);
    }
}
