//! The [`Partitioner`] trait all schemes implement.

use crate::partition::Partition;
use crate::streaming::StreamStats;
use bpart_graph::CsrGraph;
use std::time::Instant;

/// A graph partitioning scheme: splits a graph's vertex set into `k`
/// disjoint parts.
pub trait Partitioner {
    /// Partitions `graph` into `num_parts` parts.
    ///
    /// Implementations must return a [`Partition`] covering every vertex
    /// with part ids `< num_parts`; empty parts are permitted (they model a
    /// machine that received no work).
    ///
    /// # Panics
    ///
    /// Implementations panic when `num_parts == 0`.
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition;

    /// Like [`Partitioner::partition`] but also returns throughput
    /// telemetry. The default wraps `partition` in a wall-clock timer;
    /// streaming schemes override it to surface per-buffer detail
    /// (synchronization stalls, worker count).
    fn partition_with_stats(&self, graph: &CsrGraph, num_parts: usize) -> (Partition, StreamStats) {
        let start = Instant::now();
        let partition = self.partition(graph, num_parts);
        let stats = StreamStats {
            vertices: graph.num_vertices(),
            edges: graph.num_edges() as u64,
            buffers: 0,
            secs: start.elapsed().as_secs_f64(),
            sync_secs: 0.0,
            threads: 1,
        };
        (partition, stats)
    }

    /// Short human-readable scheme name used in harness tables
    /// ("Chunk-V", "BPart", ...).
    fn name(&self) -> &'static str;
}

/// Blanket impl so `&T` and boxed partitioners can be passed around freely
/// (the harness iterates over `Vec<Box<dyn Partitioner>>`).
impl<T: Partitioner + ?Sized> Partitioner for &T {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        (**self).partition(graph, num_parts)
    }
    fn partition_with_stats(&self, graph: &CsrGraph, num_parts: usize) -> (Partition, StreamStats) {
        (**self).partition_with_stats(graph, num_parts)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<T: Partitioner + ?Sized> Partitioner for Box<T> {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        (**self).partition(graph, num_parts)
    }
    fn partition_with_stats(&self, graph: &CsrGraph, num_parts: usize) -> (Partition, StreamStats) {
        (**self).partition_with_stats(graph, num_parts)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkV;
    use bpart_graph::generate;

    #[test]
    fn trait_objects_and_references_work() {
        let g = generate::ring(8);
        let boxed: Box<dyn Partitioner> = Box::new(ChunkV);
        let p = boxed.partition(&g, 2);
        assert_eq!(p.num_parts(), 2);
        assert_eq!(boxed.name(), "Chunk-V");
        let by_ref = &ChunkV;
        assert_eq!(by_ref.partition(&g, 2), p);
    }

    #[test]
    fn default_stats_time_the_whole_partition() {
        let g = generate::ring(32);
        let (p, stats) = ChunkV.partition_with_stats(&g, 4);
        assert_eq!(p.num_parts(), 4);
        assert_eq!(stats.vertices, 32);
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.buffers, 0);
        assert!(stats.secs >= 0.0);
    }
}
