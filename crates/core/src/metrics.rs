//! Partition quality metrics (§4.1 of the paper).
//!
//! * [`bias`] — `(max − mean) / mean`, the paper's primary balance measure
//!   (the slowest machine sets the iteration time, so only the maximum
//!   matters),
//! * [`jain_fairness`] — Jain's fairness index `(Σx)² / (n·Σx²)`,
//! * [`edge_cut_ratio`] — fraction of edges whose endpoints live in
//!   different parts,
//! * [`connectivity_matrix`] — edges between every pair of parts (§3.3's
//!   "are combined pieces still connected" check),
//! * [`quality`] — one-call summary used by the harness.

use crate::partition::Partition;
use bpart_graph::{CsrGraph, VertexId};
use rayon::prelude::*;

/// `(max − mean) / mean` over a set of tallies. Zero for empty input or
/// all-zero tallies (a degenerate but balanced partition).
pub fn bias(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let max = *values.iter().max().unwrap() as f64;
    let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        (max - mean) / mean
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`; 1 = perfectly balanced,
/// `1/n` = everything on one part. Returns 1.0 for empty or all-zero input.
pub fn jain_fairness(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().map(|&x| x as f64).sum();
    let sum_sq: f64 = values.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sum_sq == 0.0 {
        1.0
    } else {
        sum * sum / (values.len() as f64 * sum_sq)
    }
}

/// Fraction of directed edges `(u, v)` with `part(u) != part(v)`.
pub fn edge_cut_ratio(graph: &CsrGraph, partition: &Partition) -> f64 {
    let m = graph.num_edges();
    if m == 0 {
        return 0.0;
    }
    edge_cut_count(graph, partition) as f64 / m as f64
}

/// Number of directed edges crossing parts.
pub fn edge_cut_count(graph: &CsrGraph, partition: &Partition) -> u64 {
    let n = graph.num_vertices();
    (0..n)
        .into_par_iter()
        .map(|u| {
            let pu = partition.part_of(u as VertexId);
            graph
                .out_neighbors(u as VertexId)
                .iter()
                .filter(|&&v| partition.part_of(v) != pu)
                .count() as u64
        })
        .sum()
}

/// `k x k` matrix where entry `[i][j]` counts directed edges from part `i`
/// to part `j` (diagonal = internal edges).
pub fn connectivity_matrix(graph: &CsrGraph, partition: &Partition) -> Vec<Vec<u64>> {
    let k = partition.num_parts();
    let mut matrix = vec![vec![0u64; k]; k];
    for (u, v) in graph.edges() {
        matrix[partition.part_of(u) as usize][partition.part_of(v) as usize] += 1;
    }
    matrix
}

/// Minimum number of (undirected-view) edge connections between any pair of
/// distinct parts — the §3.3 connectivity guarantee. Returns `None` when
/// `k < 2`.
pub fn min_inter_part_connections(graph: &CsrGraph, partition: &Partition) -> Option<u64> {
    let k = partition.num_parts();
    if k < 2 {
        return None;
    }
    let m = connectivity_matrix(graph, partition);
    let mut min = u64::MAX;
    for (i, row) in m.iter().enumerate() {
        for (j, &forward) in row.iter().enumerate().skip(i + 1) {
            min = min.min(forward + m[j][i]);
        }
    }
    Some(min)
}

/// One-call quality summary for harness tables.
#[derive(Clone, Debug, PartialEq)]
pub struct QualityReport {
    /// Bias of per-part vertex counts.
    pub vertex_bias: f64,
    /// Bias of per-part edge counts.
    pub edge_bias: f64,
    /// Jain fairness of per-part vertex counts.
    pub vertex_jain: f64,
    /// Jain fairness of per-part edge counts.
    pub edge_jain: f64,
    /// Edge-cut ratio.
    pub cut_ratio: f64,
}

/// Computes the full [`QualityReport`] for a partition.
pub fn quality(graph: &CsrGraph, partition: &Partition) -> QualityReport {
    QualityReport {
        vertex_bias: bias(partition.vertex_counts()),
        edge_bias: bias(partition.edge_counts()),
        vertex_jain: jain_fairness(partition.vertex_counts()),
        edge_jain: jain_fairness(partition.edge_counts()),
        cut_ratio: edge_cut_ratio(graph, partition),
    }
}

#[cfg(test)]
impl crate::chunk::ChunkV {
    /// Test-only alias to keep the metrics tests free of trait imports.
    fn partition_helper(&self, g: &CsrGraph, k: usize) -> Partition {
        use crate::partitioner::Partitioner;
        self.partition(g, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::generate;

    #[test]
    fn bias_basics() {
        assert_eq!(bias(&[10, 10, 10]), 0.0);
        assert_eq!(bias(&[20, 10, 0]), 1.0); // mean 10, max 20
        assert_eq!(bias(&[]), 0.0);
        assert_eq!(bias(&[0, 0]), 0.0);
    }

    #[test]
    fn jain_basics() {
        assert_eq!(jain_fairness(&[5, 5, 5, 5]), 1.0);
        let one_sided = jain_fairness(&[12, 0, 0, 0]);
        assert!((one_sided - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0, 0]), 1.0);
    }

    #[test]
    fn cut_ratio_on_a_ring_split_in_two() {
        let g = generate::ring(8);
        // halves: exactly 2 crossing edges (3->4 and 7->0)
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(edge_cut_count(&g, &p), 2);
        assert!((edge_cut_ratio(&g, &p) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn connectivity_matrix_counts_directions() {
        let g = generate::ring(4); // 0->1->2->3->0
        let p = Partition::from_assignment(&g, 2, vec![0, 0, 1, 1]);
        let m = connectivity_matrix(&g, &p);
        assert_eq!(m[0][0], 1); // 0->1
        assert_eq!(m[0][1], 1); // 1->2
        assert_eq!(m[1][1], 1); // 2->3
        assert_eq!(m[1][0], 1); // 3->0
        assert_eq!(min_inter_part_connections(&g, &p), Some(2));
    }

    #[test]
    fn min_connections_undefined_for_single_part() {
        let g = generate::ring(4);
        let p = Partition::from_assignment(&g, 1, vec![0; 4]);
        assert_eq!(min_inter_part_connections(&g, &p), None);
    }

    #[test]
    fn quality_report_is_consistent() {
        let g = generate::twitter_like().generate_scaled(0.01);
        let p = crate::chunk::ChunkV.partition_helper(&g, 4);
        let q = quality(&g, &p);
        assert!((q.vertex_bias - bias(p.vertex_counts())).abs() < 1e-12);
        assert!(q.cut_ratio > 0.0 && q.cut_ratio < 1.0);
        assert!(q.vertex_jain > 0.99);
    }
}
