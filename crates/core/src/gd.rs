//! GD — multi-dimensional balanced partitioning via projected gradient
//! descent (Avdiukhin, Pupyrev & Yaroslavtsev, VLDB '19), the only other
//! two-dimensionally balanced scheme the paper discusses (§5).
//!
//! The paper's characterization, which this implementation reproduces: GD
//! *can* balance both vertices and edges, but it is time-consuming and
//! only splits into a **power-of-two** number of parts (recursive
//! bisection).
//!
//! One bisection relaxes the ±1 assignment to `x ∈ [−1, 1]^n` and runs
//! projected gradient ascent on the agreement objective
//! `Σ_{(u,v)∈E} x_u·x_v` (maximizing agreement = minimizing expected
//! cut), projecting after every step onto the intersection of the box
//! with the two balance hyperplanes `Σ x_v = 0` (vertices) and
//! `Σ d_v·x_v = 0` (edges/degrees). Rounding sorts by `x` and sweeps a
//! window around the median for the split minimizing edge imbalance, so
//! both dimensions come out balanced.

use crate::partition::{PartId, Partition};
use crate::partitioner::Partitioner;
use bpart_graph::{CsrGraph, VertexId};

/// Tunables for [`GdPartitioner`].
#[derive(Clone, Copy, Debug)]
pub struct GdConfig {
    /// Gradient iterations per bisection.
    pub iterations: usize,
    /// Gradient step size (scaled by 1/d̄ internally).
    pub learning_rate: f64,
    /// Alternating-projection rounds per step.
    pub projection_rounds: usize,
    /// Rounding sweep window around the vertex-median split, as a fraction
    /// of the side size.
    pub sweep_window: f64,
    /// Seed for the initial relaxation.
    pub seed: u64,
}

impl Default for GdConfig {
    fn default() -> Self {
        GdConfig {
            iterations: 40,
            learning_rate: 0.5,
            projection_rounds: 3,
            sweep_window: 0.05,
            seed: 0x6D60,
        }
    }
}

/// The GD recursive-bisection partitioner (power-of-two part counts only).
#[derive(Clone, Copy, Debug, Default)]
pub struct GdPartitioner {
    config: GdConfig,
}

impl GdPartitioner {
    /// GD with explicit tunables.
    pub fn new(config: GdConfig) -> Self {
        GdPartitioner { config }
    }
}

impl Partitioner for GdPartitioner {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        assert!(num_parts > 0, "need at least one part");
        assert!(
            num_parts.is_power_of_two(),
            "GD only supports power-of-two part counts (got {num_parts})"
        );
        let n = graph.num_vertices();
        let mut assignment = vec![0 as PartId; n];
        let all: Vec<VertexId> = graph.vertices().collect();
        bisect(graph, &self.config, &all, 0, num_parts, &mut assignment);
        Partition::from_assignment(graph, num_parts, assignment)
    }

    fn name(&self) -> &'static str {
        "GD"
    }
}

/// Recursively bisects `side` into parts `[base, base + parts)`.
fn bisect(
    graph: &CsrGraph,
    cfg: &GdConfig,
    side: &[VertexId],
    base: PartId,
    parts: usize,
    assignment: &mut [PartId],
) {
    if parts == 1 || side.len() <= 1 {
        for &v in side {
            assignment[v as usize] = base;
        }
        // Degenerate split with more parts than vertices: everything to
        // the first part; the rest stay empty.
        return;
    }
    let (left, right) = bisect_once(graph, cfg, side, base as u64);
    bisect(graph, cfg, &left, base, parts / 2, assignment);
    bisect(
        graph,
        cfg,
        &right,
        base + (parts / 2) as PartId,
        parts / 2,
        assignment,
    );
}

/// One projected-gradient bisection of `side`.
fn bisect_once(
    graph: &CsrGraph,
    cfg: &GdConfig,
    side: &[VertexId],
    salt: u64,
) -> (Vec<VertexId>, Vec<VertexId>) {
    let n_all = graph.num_vertices();
    let m = side.len();
    // Local index over the side; MAX marks vertices outside it.
    let mut local = vec![u32::MAX; n_all];
    for (i, &v) in side.iter().enumerate() {
        local[v as usize] = i as u32;
    }
    let degrees: Vec<f64> = side.iter().map(|&v| graph.out_degree(v) as f64).collect();
    let deg_norm: f64 = degrees.iter().map(|d| d * d).sum::<f64>().max(1.0);
    let d_bar = (degrees.iter().sum::<f64>() / m as f64).max(1.0);

    // Deterministic small random init (SplitMix-based, seeded per side).
    let mut x: Vec<f64> = side
        .iter()
        .map(|&v| {
            let h = splitmix(cfg.seed ^ salt.wrapping_mul(0x9e37_79b9) ^ v as u64);
            (h >> 11) as f64 / (1u64 << 53) as f64 * 0.2 - 0.1
        })
        .collect();
    project(&mut x, &degrees, deg_norm, cfg.projection_rounds);

    let lr = cfg.learning_rate / d_bar;
    let mut grad = vec![0.0f64; m];
    for _ in 0..cfg.iterations {
        // Gradient of Σ x_u x_v over side-internal (undirected) edges.
        grad.iter_mut().for_each(|g| *g = 0.0);
        for (i, &u) in side.iter().enumerate() {
            for &w in graph.out_neighbors(u).iter().chain(graph.in_neighbors(u)) {
                let j = local[w as usize];
                if j != u32::MAX {
                    grad[i] += x[j as usize];
                }
            }
        }
        for (xi, gi) in x.iter_mut().zip(&grad) {
            *xi += lr * gi; // ascent on agreement
        }
        project(&mut x, &degrees, deg_norm, cfg.projection_rounds);
    }

    // Rounding: sort by relaxed value, then sweep a window around the
    // vertex-median split for the cut point with the best edge balance.
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_by(|&a, &b| {
        x[b as usize]
            .total_cmp(&x[a as usize])
            .then(side[a as usize].cmp(&side[b as usize]))
    });
    let total_deg: f64 = degrees.iter().sum();
    let half = m / 2;
    let window = ((m as f64 * cfg.sweep_window) as usize).max(1);
    let lo = half.saturating_sub(window);
    let hi = (half + window).min(m - 1).max(lo);
    let mut prefix = 0.0;
    let mut best_split = half;
    let mut best_dev = f64::INFINITY;
    for (count, &i) in order.iter().enumerate() {
        prefix += degrees[i as usize];
        let split = count + 1;
        if (lo..=hi).contains(&split) {
            let dev = (prefix - total_deg / 2.0).abs();
            if dev < best_dev {
                best_dev = dev;
                best_split = split;
            }
        }
        if split > hi {
            break;
        }
    }
    let left: Vec<VertexId> = order[..best_split]
        .iter()
        .map(|&i| side[i as usize])
        .collect();
    let right: Vec<VertexId> = order[best_split..]
        .iter()
        .map(|&i| side[i as usize])
        .collect();
    (left, right)
}

/// Alternating projection onto `{Σx = 0} ∩ {Σ d·x = 0} ∩ [−1, 1]^n`.
fn project(x: &mut [f64], degrees: &[f64], deg_norm: f64, rounds: usize) {
    let n = x.len() as f64;
    for _ in 0..rounds {
        let mean: f64 = x.iter().sum::<f64>() / n;
        x.iter_mut().for_each(|v| *v -= mean);
        let dot: f64 = x.iter().zip(degrees).map(|(v, d)| v * d).sum();
        let scale = dot / deg_norm;
        for (v, d) in x.iter_mut().zip(degrees) {
            *v -= scale * d;
            *v = v.clamp(-1.0, 1.0);
        }
    }
}

#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::HashPartitioner;
    use crate::metrics;
    use bpart_graph::generate;

    #[test]
    fn balances_both_dimensions_on_power_law_graphs() {
        let g = generate::twitter_like().generate_scaled(0.05);
        for k in [2usize, 4, 8] {
            let p = GdPartitioner::default().partition(&g, k);
            p.validate(&g).unwrap();
            let q = metrics::quality(&g, &p);
            assert!(q.vertex_bias < 0.2, "k={k} vertex bias {}", q.vertex_bias);
            assert!(q.edge_bias < 0.25, "k={k} edge bias {}", q.edge_bias);
        }
    }

    #[test]
    fn cut_beats_hash() {
        let g = generate::friendster_like().generate_scaled(0.02);
        let gd_cut = metrics::edge_cut_ratio(&g, &GdPartitioner::default().partition(&g, 4));
        let hash_cut = metrics::edge_cut_ratio(&g, &HashPartitioner::default().partition(&g, 4));
        assert!(gd_cut < hash_cut, "gd {gd_cut} vs hash {hash_cut}");
    }

    #[test]
    fn deterministic() {
        let g = generate::lj_like().generate_scaled(0.01);
        let a = GdPartitioner::default().partition(&g, 4);
        let b = GdPartitioner::default().partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn separates_two_cliques() {
        let mut edges = Vec::new();
        for base in [0u32, 8u32] {
            for a in 0..8 {
                for b in 0..8 {
                    if a != b {
                        edges.push((base + a, base + b));
                    }
                }
            }
        }
        edges.push((0, 8));
        let g = CsrGraph::from_edges(16, &edges);
        let p = GdPartitioner::default().partition(&g, 2);
        let first = p.part_of(0);
        assert!((1..8).all(|v| p.part_of(v) == first), "clique 1 split");
        assert!(
            (8..16).all(|v| p.part_of(v) != first),
            "clique 2 not separated"
        );
    }

    use bpart_graph::CsrGraph;

    #[test]
    fn tiny_sides_terminate() {
        let g = generate::ring(3);
        let p = GdPartitioner::default().partition(&g, 4);
        p.validate(&g).unwrap();
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let g = generate::ring(8);
        GdPartitioner::default().partition(&g, 3);
    }
}
