//! Vertex-cut (edge) partitioning — the *other* partitioning family the
//! paper's related work surveys (§5): PowerGraph/PowerLyra-style systems
//! split the **edge set** and replicate the vertices that end up incident
//! to several parts.
//!
//! This module provides the category's quality measure (the replication
//! factor) and two streaming edge partitioners:
//!
//! * [`RandomEdge`] — hash each edge to a part; balanced but replicates
//!   heavily,
//! * [`Hdrf`] — High-Degree (are) Replicated First (Petroni et al.,
//!   CIKM '15), the state-of-the-art streaming vertex-cut the paper cites:
//!   prefer parts that already hold an endpoint, breaking ties toward
//!   replicating the *higher*-degree endpoint and toward smaller parts.
//!
//! The rest of the repository works in the edge-cut model (Gemini and
//! KnightKing both do), so these partitioners exist for comparison study
//! rather than engine execution.

use crate::partition::PartId;
use bpart_graph::{CsrGraph, VertexId};

/// An assignment of every *edge* to one of `k` parts, with the vertex
/// replica sets it implies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgePartition {
    num_parts: usize,
    /// Part of each edge, aligned with `graph.edges()` order.
    edge_assignment: Vec<PartId>,
    /// Edges per part.
    edge_counts: Vec<u64>,
    /// Sorted part lists per vertex (its replicas).
    replicas: Vec<Vec<PartId>>,
}

impl EdgePartition {
    /// Builds from a per-edge assignment aligned with `graph.edges()`.
    pub fn from_assignment(
        graph: &CsrGraph,
        num_parts: usize,
        edge_assignment: Vec<PartId>,
    ) -> Self {
        assert!(num_parts > 0, "need at least one part");
        assert_eq!(
            edge_assignment.len(),
            graph.num_edges(),
            "one part per edge"
        );
        let mut edge_counts = vec![0u64; num_parts];
        let mut replicas: Vec<Vec<PartId>> = vec![Vec::new(); graph.num_vertices()];
        for ((u, v), &p) in graph.edges().zip(&edge_assignment) {
            assert!((p as usize) < num_parts, "part id {p} out of range");
            edge_counts[p as usize] += 1;
            for w in [u, v] {
                let set = &mut replicas[w as usize];
                if let Err(pos) = set.binary_search(&p) {
                    set.insert(pos, p);
                }
            }
        }
        EdgePartition {
            num_parts,
            edge_assignment,
            edge_counts,
            replicas,
        }
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Edges per part.
    pub fn edge_counts(&self) -> &[u64] {
        &self.edge_counts
    }

    /// Parts holding a replica of `v` (empty for isolated vertices).
    pub fn replicas(&self, v: VertexId) -> &[PartId] {
        &self.replicas[v as usize]
    }

    /// The vertex-cut quality measure: mean replicas per non-isolated
    /// vertex (1.0 = no replication; `k` = fully replicated).
    pub fn replication_factor(&self) -> f64 {
        let (total, covered) = self
            .replicas
            .iter()
            .filter(|r| !r.is_empty())
            .fold((0usize, 0usize), |(t, c), r| (t + r.len(), c + 1));
        if covered == 0 {
            1.0
        } else {
            total as f64 / covered as f64
        }
    }

    /// The per-edge assignment, aligned with `graph.edges()` order.
    pub fn edge_assignment(&self) -> &[PartId] {
        &self.edge_assignment
    }
}

/// A streaming edge partitioner.
pub trait EdgePartitioner {
    /// Partitions the edge set of `graph` into `num_parts` parts.
    fn partition_edges(&self, graph: &CsrGraph, num_parts: usize) -> EdgePartition;
    /// Scheme name for tables.
    fn name(&self) -> &'static str;
}

/// Hash-based edge assignment (PowerGraph's default "random" vertex-cut).
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomEdge {
    /// Hash seed.
    pub seed: u64,
}

impl EdgePartitioner for RandomEdge {
    fn partition_edges(&self, graph: &CsrGraph, num_parts: usize) -> EdgePartition {
        assert!(num_parts > 0, "need at least one part");
        let assignment: Vec<PartId> = graph
            .edges()
            .map(|(u, v)| {
                let mut x = ((u as u64) << 32 | v as u64) ^ self.seed;
                x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                ((x ^ (x >> 31)) % num_parts as u64) as PartId
            })
            .collect();
        EdgePartition::from_assignment(graph, num_parts, assignment)
    }

    fn name(&self) -> &'static str {
        "RandomEdge"
    }
}

/// The HDRF streaming vertex-cut partitioner.
///
/// Edges are streamed in a seeded random order, the arrival model the
/// HDRF paper assumes — a source-sorted stream (whole hub blocks at once)
/// is adversarial for every greedy vertex-cut.
#[derive(Clone, Copy, Debug)]
pub struct Hdrf {
    /// Balance weight λ (≥ 0); higher values trade replication for edge
    /// balance. The HDRF paper's default is 1.0.
    pub lambda: f64,
    /// Stream-shuffle seed.
    pub seed: u64,
}

impl Default for Hdrf {
    fn default() -> Self {
        Hdrf {
            lambda: 1.0,
            seed: 0x4852_4446,
        }
    }
}

impl EdgePartitioner for Hdrf {
    fn partition_edges(&self, graph: &CsrGraph, num_parts: usize) -> EdgePartition {
        assert!(num_parts > 0, "need at least one part");
        let n = graph.num_vertices();
        let mut partial_degree = vec![0u64; n];
        let mut replicas: Vec<Vec<PartId>> = vec![Vec::new(); n];
        let mut sizes = vec![0u64; num_parts];
        let mut assignment = vec![PartId::MAX; graph.num_edges()];

        // Seeded Fisher-Yates over edge indices: the random-arrival stream.
        let mut order: Vec<u32> = (0..graph.num_edges() as u32).collect();
        let mut state = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in (1..order.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let all_edges: Vec<(VertexId, VertexId)> = graph.edges().collect();

        for &edge_idx in &order {
            let (u, v) = all_edges[edge_idx as usize];
            partial_degree[u as usize] += 1;
            partial_degree[v as usize] += 1;
            let (du, dv) = (partial_degree[u as usize], partial_degree[v as usize]);
            // Normalized degrees: θ_u + θ_v = 1.
            let theta_u = du as f64 / (du + dv) as f64;
            let theta_v = 1.0 - theta_u;
            let max_size = sizes.iter().copied().max().unwrap_or(0) as f64;
            let min_size = sizes.iter().copied().min().unwrap_or(0) as f64;

            let g_score = |w: VertexId, theta: f64, p: PartId| -> f64 {
                if replicas[w as usize].binary_search(&p).is_ok() {
                    // Favour keeping the LOW-degree endpoint intact: the
                    // high-degree one is "replicated first".
                    1.0 + (1.0 - theta)
                } else {
                    0.0
                }
            };
            let mut best: Option<(f64, u64, PartId)> = None;
            for p in 0..num_parts as PartId {
                let c_rep = g_score(u, theta_u, p) + g_score(v, theta_v, p);
                let c_bal = self.lambda * (max_size - sizes[p as usize] as f64)
                    / (1.0 + max_size - min_size);
                let score = c_rep + c_bal;
                let size = sizes[p as usize];
                let better = match best {
                    None => true,
                    Some((bs, bsize, bp)) => {
                        score > bs || (score == bs && (size < bsize || (size == bsize && p < bp)))
                    }
                };
                if better {
                    best = Some((score, size, p));
                }
            }
            let (_, _, part) = best.expect("at least one part");
            assignment[edge_idx as usize] = part;
            sizes[part as usize] += 1;
            for w in [u, v] {
                let set = &mut replicas[w as usize];
                if let Err(pos) = set.binary_search(&part) {
                    set.insert(pos, part);
                }
            }
        }
        EdgePartition::from_assignment(graph, num_parts, assignment)
    }

    fn name(&self) -> &'static str {
        "HDRF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::generate;

    #[test]
    fn edge_partition_bookkeeping() {
        let g = generate::ring(4); // 0->1->2->3->0
        let ep = EdgePartition::from_assignment(&g, 2, vec![0, 0, 1, 1]);
        assert_eq!(ep.edge_counts(), &[2, 2]);
        // vertex 0: edge 0->1 in part 0, edge 3->0 in part 1 => replicas {0,1}
        assert_eq!(ep.replicas(0), &[0, 1]);
        assert_eq!(ep.replicas(1), &[0]);
        assert!((ep.replication_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn replication_factor_of_single_part_is_one() {
        let g = generate::complete(6);
        let ep = RandomEdge::default().partition_edges(&g, 1);
        assert_eq!(ep.replication_factor(), 1.0);
        assert_eq!(ep.num_parts(), 1);
    }

    #[test]
    fn hdrf_replicates_less_than_random() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let hdrf = Hdrf::default().partition_edges(&g, 8);
        let random = RandomEdge::default().partition_edges(&g, 8);
        assert!(
            hdrf.replication_factor() < random.replication_factor() * 0.8,
            "hdrf {} vs random {}",
            hdrf.replication_factor(),
            random.replication_factor()
        );
    }

    #[test]
    fn hdrf_keeps_edges_balanced() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let ep = Hdrf::default().partition_edges(&g, 8);
        let bias = crate::metrics::bias(ep.edge_counts());
        assert!(bias < 0.2, "edge bias {bias}");
        assert_eq!(ep.edge_counts().iter().sum::<u64>(), g.num_edges() as u64);
    }

    #[test]
    fn hdrf_replicates_hubs_first() {
        // Star: the hub is the high-degree endpoint of every edge. With
        // enough balance pressure (λ = 2) the hub is forced to replicate
        // across parts while the degree-aware tie-breaking keeps the
        // low-degree spokes intact (one replica each).
        let g = generate::star(40);
        let hdrf = Hdrf {
            lambda: 2.0,
            ..Default::default()
        };
        let ep = hdrf.partition_edges(&g, 4);
        assert!(ep.replicas(0).len() > 1, "hub should replicate");
        let spoke_replicas: Vec<usize> = (1..41).map(|v| ep.replicas(v).len()).collect();
        let intact = spoke_replicas.iter().filter(|&&r| r == 1).count();
        assert!(intact >= 30, "most spokes stay intact: {intact}/40");
        assert!(crate::metrics::bias(ep.edge_counts()) < 0.5);
    }

    #[test]
    fn deterministic() {
        let g = generate::lj_like().generate_scaled(0.01);
        assert_eq!(
            Hdrf::default().partition_edges(&g, 4),
            Hdrf::default().partition_edges(&g, 4)
        );
        assert_eq!(
            RandomEdge::default().partition_edges(&g, 4),
            RandomEdge::default().partition_edges(&g, 4)
        );
    }

    #[test]
    #[should_panic(expected = "one part per edge")]
    fn wrong_length_assignment_panics() {
        let g = generate::ring(3);
        EdgePartition::from_assignment(&g, 2, vec![0]);
    }
}
