//! Hash partitioning (§2.2, Fig. 2c right): assign each vertex to
//! `hash(v) mod k`.
//!
//! Balanced in expectation in *both* dimensions (each part is a uniform
//! sample of vertices, so degree mass concentrates too), but destroys all
//! locality: the expected edge-cut ratio is `(k − 1) / k` — 87.5 % at
//! `k = 8`, exactly the paper's Table 3 row.

use crate::partition::{PartId, Partition};
use crate::partitioner::Partitioner;
use bpart_graph::CsrGraph;

/// Seeded hash partitioner.
#[derive(Clone, Copy, Debug)]
pub struct HashPartitioner {
    seed: u64,
}

impl HashPartitioner {
    /// Creates a hash partitioner with an explicit seed (different seeds
    /// give independent random assignments).
    pub fn new(seed: u64) -> Self {
        HashPartitioner { seed }
    }
}

impl Default for HashPartitioner {
    fn default() -> Self {
        HashPartitioner::new(0x5EED)
    }
}

/// SplitMix64 finalizer — a high-quality, dependency-free integer mixer.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Partitioner for HashPartitioner {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        assert!(num_parts > 0, "need at least one part");
        let assignment: Vec<PartId> = graph
            .vertices()
            .map(|v| (splitmix64(v as u64 ^ self.seed) % num_parts as u64) as PartId)
            .collect();
        Partition::from_assignment(graph, num_parts, assignment)
    }

    fn name(&self) -> &'static str {
        "Hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use bpart_graph::generate;

    #[test]
    fn covers_all_vertices_and_is_deterministic() {
        let g = generate::erdos_renyi(500, 3_000, 1);
        let a = HashPartitioner::new(7).partition(&g, 4);
        let b = HashPartitioner::new(7).partition(&g, 4);
        assert_eq!(a, b);
        a.validate(&g).unwrap();
    }

    #[test]
    fn different_seeds_differ() {
        let g = generate::erdos_renyi(500, 3_000, 1);
        let a = HashPartitioner::new(7).partition(&g, 4);
        let c = HashPartitioner::new(8).partition(&g, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn balances_both_dimensions_on_power_law_graph() {
        let g = generate::twitter_like().generate_scaled(0.05);
        let p = HashPartitioner::default().partition(&g, 8);
        assert!(metrics::bias(p.vertex_counts()) < 0.1);
        assert!(metrics::bias(p.edge_counts()) < 0.35);
    }

    #[test]
    fn edge_cut_is_close_to_k_minus_1_over_k() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let p = HashPartitioner::default().partition(&g, 8);
        let cut = metrics::edge_cut_ratio(&g, &p);
        assert!((cut - 0.875).abs() < 0.02, "cut = {cut}");
    }

    #[test]
    fn single_part_means_no_cut() {
        let g = generate::ring(16);
        let p = HashPartitioner::default().partition(&g, 1);
        assert_eq!(metrics::edge_cut_ratio(&g, &p), 0.0);
    }
}
