//! Shared streaming-assignment engine behind Fennel and BPart's phase 1.
//!
//! Both schemes stream vertices and assign each to the part maximizing
//!
//! ```text
//! S(v, G_i) = |V_i ∩ N(v)| − α·γ·W_i^(γ−1)
//! ```
//!
//! They differ only in the *balance weight* `W_i`: Fennel uses the vertex
//! count `|V_i|`, BPart the two-dimensional indicator
//! `c·|V_i| + (1−c)·|E_i|/d̄`. The engine abstracts that as a per-vertex
//! weight increment, so both weights sum to the number of streamed vertices
//! and share the same α calibration and capacity bound.
//!
//! Exactness note: for parts with no neighbors of `v` the score reduces to
//! the pure penalty, which is maximized by the minimum-weight part — so only
//! neighbor parts plus the current minimum-weight part need scoring. A lazy
//! min-heap tracks that minimum without rescanning all `k` parts per vertex.

use crate::partition::PartId;
use bpart_graph::{CsrGraph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel for "not yet assigned" in dense assignment vectors.
pub(crate) const UNASSIGNED: PartId = PartId::MAX;

/// Parameters of one streaming pass.
pub(crate) struct StreamConfig<'a> {
    /// Number of parts to open.
    pub num_parts: usize,
    /// Fennel exponent γ.
    pub gamma: f64,
    /// Fennel coefficient α (see [`fennel_alpha`]).
    pub alpha: f64,
    /// Hard cap on a part's weight; parts at or above it receive no further
    /// vertices unless every part is capped.
    pub capacity: f64,
    /// Vertices in visit order (may be a subset of the graph).
    pub order: &'a [VertexId],
    /// Restreaming (ReFennel): a previous full assignment to start from.
    /// Every streamed vertex is first *removed* from its old part, then
    /// rescored against the now-complete neighborhood information.
    pub previous: Option<&'a [PartId]>,
}

/// Outcome of a streaming pass.
pub(crate) struct StreamOutcome {
    /// Dense assignment over *all* graph vertices; vertices outside the
    /// streamed subset keep [`UNASSIGNED`].
    pub assignment: Vec<PartId>,
    /// Per-part vertex counts.
    pub vertex_counts: Vec<u64>,
    /// Per-part out-degree sums.
    pub edge_counts: Vec<u64>,
}

/// The classic Fennel α: `m · k^(γ−1) / n^γ`, expressed over the streamed
/// subset (`n` vertices carrying `m` out-edges) and `k` parts.
pub(crate) fn fennel_alpha(n: usize, m: u64, k: usize, gamma: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    m as f64 * (k as f64).powf(gamma - 1.0) / (n as f64).powf(gamma)
}

/// Lazy min-tracker over part weights (push on update, pop stale entries on
/// query). Weights are non-negative, so their IEEE bit patterns order
/// identically to their values.
struct MinWeight {
    heap: BinaryHeap<Reverse<(u64, PartId)>>,
}

impl MinWeight {
    fn new(weights: &[f64]) -> Self {
        let heap = weights
            .iter()
            .enumerate()
            .map(|(p, &w)| Reverse((w.to_bits(), p as PartId)))
            .collect();
        MinWeight { heap }
    }

    fn push(&mut self, part: PartId, weight: f64) {
        self.heap.push(Reverse((weight.to_bits(), part)));
    }

    /// Part with the (currently) smallest weight.
    fn min_part(&mut self, weights: &[f64]) -> PartId {
        while let Some(&Reverse((bits, p))) = self.heap.peek() {
            if weights[p as usize].to_bits() == bits {
                return p;
            }
            self.heap.pop();
        }
        unreachable!("heap always holds one live entry per part");
    }
}

/// Runs one streaming pass. `weight_delta(v)` is how much assigning `v`
/// grows its part's balance weight (`1.0` for Fennel; `c + (1−c)·d(v)/d̄`
/// for BPart).
pub(crate) fn stream_assign(
    graph: &CsrGraph,
    config: &StreamConfig<'_>,
    weight_delta: impl Fn(VertexId) -> f64,
) -> StreamOutcome {
    let k = config.num_parts;
    assert!(k > 0, "need at least one part");
    let n = graph.num_vertices();

    let mut assignment = match config.previous {
        Some(prev) => {
            assert_eq!(prev.len(), n, "previous assignment must cover the graph");
            prev.to_vec()
        }
        None => vec![UNASSIGNED; n],
    };
    let mut vertex_counts = vec![0u64; k];
    let mut edge_counts = vec![0u64; k];
    let mut weights = vec![0f64; k];
    if config.previous.is_some() {
        for v in 0..n as u32 {
            let p = assignment[v as usize];
            if p != UNASSIGNED {
                assert!((p as usize) < k, "previous part id {p} out of range");
                vertex_counts[p as usize] += 1;
                edge_counts[p as usize] += graph.out_degree(v) as u64;
                weights[p as usize] += weight_delta(v);
            }
        }
    }
    let mut min_tracker = MinWeight::new(&weights);

    // Scratch neighbor tallies with a touched-list so per-vertex reset cost
    // is O(#neighbor parts), not O(k).
    let mut nbr_counts = vec![0u32; k];
    let mut touched: Vec<PartId> = Vec::new();

    for &v in config.order {
        // Restreaming: take the vertex out of its old part before scoring.
        let old = assignment[v as usize];
        if old != UNASSIGNED {
            debug_assert!(config.previous.is_some(), "vertex {v} streamed twice");
            assignment[v as usize] = UNASSIGNED;
            vertex_counts[old as usize] -= 1;
            edge_counts[old as usize] -= graph.out_degree(v) as u64;
            weights[old as usize] -= weight_delta(v);
            min_tracker.push(old, weights[old as usize]);
        }

        // Tally already-placed neighbors per part (undirected neighborhood).
        for &w in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
            let p = assignment[w as usize];
            if p != UNASSIGNED {
                if nbr_counts[p as usize] == 0 {
                    touched.push(p);
                }
                nbr_counts[p as usize] += 1;
            }
        }

        // Candidates: neighbor parts plus the globally lightest part.
        let min_part = min_tracker.min_part(&weights);
        let mut best: Option<(f64, f64, PartId)> = None; // (score, weight, part)
        let consider =
            |p: PartId, nbr: u32, weights: &[f64], best: &mut Option<(f64, f64, PartId)>| {
                let w = weights[p as usize];
                if w >= config.capacity && p != min_part {
                    return;
                }
                let score = nbr as f64 - config.alpha * config.gamma * w.powf(config.gamma - 1.0);
                let better = match *best {
                    None => true,
                    Some((bs, bw, bp)) => {
                        score > bs || (score == bs && (w < bw || (w == bw && p < bp)))
                    }
                };
                if better {
                    *best = Some((score, w, p));
                }
            };
        for &p in &touched {
            consider(p, nbr_counts[p as usize], &weights, &mut best);
        }
        consider(min_part, nbr_counts[min_part as usize], &weights, &mut best);

        let (_, _, part) = best.expect("at least the min-weight part is considered");
        assignment[v as usize] = part;
        vertex_counts[part as usize] += 1;
        edge_counts[part as usize] += graph.out_degree(v) as u64;
        weights[part as usize] += weight_delta(v);
        min_tracker.push(part, weights[part as usize]);

        for &p in &touched {
            nbr_counts[p as usize] = 0;
        }
        touched.clear();
    }

    StreamOutcome {
        assignment,
        vertex_counts,
        edge_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::generate;

    fn run_fennel_like(graph: &CsrGraph, k: usize) -> StreamOutcome {
        let order: Vec<VertexId> = graph.vertices().collect();
        let gamma = 1.5;
        let alpha = fennel_alpha(graph.num_vertices(), graph.num_edges() as u64, k, gamma);
        let config = StreamConfig {
            num_parts: k,
            gamma,
            alpha,
            capacity: 1.1 * graph.num_vertices() as f64 / k as f64,
            order: &order,
            previous: None,
        };
        stream_assign(graph, &config, |_| 1.0)
    }

    #[test]
    fn covers_all_streamed_vertices() {
        let g = generate::erdos_renyi(200, 1_000, 3);
        let out = run_fennel_like(&g, 4);
        assert!(out.assignment.iter().all(|&p| p != UNASSIGNED));
        assert_eq!(out.vertex_counts.iter().sum::<u64>(), 200);
        assert_eq!(out.edge_counts.iter().sum::<u64>(), 1_000);
    }

    #[test]
    fn capacity_bounds_part_sizes() {
        let g = generate::erdos_renyi(400, 2_000, 5);
        let out = run_fennel_like(&g, 4);
        let cap = (1.1_f64 * 400.0 / 4.0).ceil() as u64 + 1;
        for &c in &out.vertex_counts {
            assert!(c <= cap, "part size {c} exceeds capacity {cap}");
        }
    }

    #[test]
    fn clique_stays_together() {
        // A 6-clique plus 18 isolated vertices, k=4: the clique should land
        // in one part because neighbor affinity dominates.
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in 0..6u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(24, &edges);
        let out = run_fennel_like(&g, 4);
        let first = out.assignment[0];
        assert!(
            (1..6).all(|v| out.assignment[v] == first),
            "clique split: {:?}",
            &out.assignment[..6]
        );
    }

    #[test]
    fn subset_stream_leaves_rest_unassigned() {
        let g = generate::ring(10);
        let order = vec![2, 3, 4];
        let config = StreamConfig {
            num_parts: 2,
            gamma: 1.5,
            alpha: fennel_alpha(3, 3, 2, 1.5),
            capacity: 2.0,
            order: &order,
            previous: None,
        };
        let out = stream_assign(&g, &config, |_| 1.0);
        assert_eq!(out.assignment[0], UNASSIGNED);
        assert_ne!(out.assignment[3], UNASSIGNED);
        assert_eq!(out.vertex_counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn restreaming_starts_from_previous_and_stays_valid() {
        let g = generate::erdos_renyi(300, 2_400, 4);
        let k = 4;
        let order: Vec<VertexId> = g.vertices().collect();
        let base = StreamConfig {
            num_parts: k,
            gamma: 1.5,
            alpha: fennel_alpha(300, 2_400, k, 1.5),
            capacity: 1.1 * 300.0 / k as f64,
            order: &order,
            previous: None,
        };
        let first = stream_assign(&g, &base, |_| 1.0);
        let again = StreamConfig {
            previous: Some(&first.assignment),
            ..base
        };
        let second = stream_assign(&g, &again, |_| 1.0);
        assert!(second.assignment.iter().all(|&p| p != UNASSIGNED));
        assert_eq!(second.vertex_counts.iter().sum::<u64>(), 300);
        assert_eq!(second.edge_counts.iter().sum::<u64>(), 2_400);
        // Restreaming sees the full neighborhood, so internal affinity can
        // only grow: count vertices placed with at least one same-part
        // neighbor.
        let happy = |assign: &[PartId]| {
            g.vertices()
                .filter(|&v| {
                    g.out_neighbors(v)
                        .iter()
                        .chain(g.in_neighbors(v))
                        .any(|&w| assign[w as usize] == assign[v as usize])
                })
                .count()
        };
        assert!(happy(&second.assignment) >= happy(&first.assignment));
    }

    #[test]
    fn weighted_delta_equalizes_weighted_indicator() {
        // BPart-style delta on a skewed graph: parts end with unequal vertex
        // counts but near-equal indicator (vertex count + edges/d̄)/2.
        let g = generate::twitter_like().generate_scaled(0.01);
        let n = g.num_vertices();
        let m = g.num_edges() as u64;
        let d_bar = g.average_degree();
        let k = 8;
        let order: Vec<VertexId> = g.vertices().collect();
        let config = StreamConfig {
            num_parts: k,
            gamma: 1.5,
            alpha: fennel_alpha(n, m, k, 1.5),
            capacity: 1.15 * n as f64 / k as f64,
            order: &order,
            previous: None,
        };
        let out = stream_assign(&g, &config, |v| 0.5 + 0.5 * g.out_degree(v) as f64 / d_bar);
        let weights: Vec<f64> = (0..k)
            .map(|p| 0.5 * out.vertex_counts[p] as f64 + 0.5 * out.edge_counts[p] as f64 / d_bar)
            .collect();
        let max = weights.iter().cloned().fold(f64::MIN, f64::max);
        let mean = weights.iter().sum::<f64>() / k as f64;
        assert!(
            (max - mean) / mean < 0.2,
            "weighted indicator should be near-balanced: {weights:?}"
        );
    }
}
