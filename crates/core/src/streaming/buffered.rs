//! Buffered-parallel streaming (after Chhabra et al.'s buffered streaming
//! partitioning and Awadelkarim & Ugander's restreaming, adapted to the
//! vertex-stream engine).
//!
//! The vertex order is cut into buffers of `buffer_size`. For each buffer:
//!
//! 1. **Snapshot** — restreamed vertices are first removed from their old
//!    parts; the part weights `W_i` are then frozen for the buffer.
//! 2. **Score** — the buffer is split into `threads` contiguous chunks, one
//!    scoped worker thread per chunk. Each worker streams its chunk
//!    *sequentially* against the snapshot plus a private overlay of its own
//!    proposals, so intra-chunk affinity and balance drift are captured; the
//!    other chunks' decisions stay invisible until the barrier.
//! 3. **Commit barrier** — proposals are applied in buffer order, summing
//!    the per-worker weight deltas back into the global `W_i`. Because the
//!    workers scored against stale weights, a part may overshoot its
//!    capacity once the deltas are reconciled; such proposals are repaired
//!    by rescoring the vertex against the *current* weights with the exact
//!    sequential rule, so the capacity invariant of the sequential pass
//!    (`W_i < capacity` unless the part is the global minimum) also holds
//!    in parallel mode.
//! 4. **Intra-buffer restream** — the first commit places early buffer
//!    vertices blind (their neighbors in other chunks were still unassigned
//!    at scoring time), which costs edge-cut quality. The same worker pool
//!    therefore re-streams the buffer once against the committed
//!    assignment: each vertex is taken out of its part and re-scored with
//!    the full buffer context visible, then recommitted. This recovers
//!    near-sequential quality at one extra (parallel) scoring round — the
//!    restream pass of the buffered-streaming literature.
//!
//! Determinism: chunk boundaries, worker scoring, and commit order depend
//! only on `(order, threads, buffer_size)`, never on thread scheduling.
//! With `buffer_size == 1` each buffer holds one vertex, the snapshot is
//! never stale, the restream re-derives the identical choice, and the
//! result is bit-identical to the sequential pass.
//!
//! The vendored `rayon` stand-in executes sequentially, so the worker pool
//! is built directly on [`std::thread::scope`].

use super::{
    seed_state, BufferRecord, FlatParts, FlatScorer, StreamConfig, StreamOutcome, StreamStats,
    UNASSIGNED,
};
use crate::partition::PartId;
use bpart_graph::{CsrGraph, VertexId};
use std::time::Instant;

/// Intra-buffer restream rounds after the initial commit (see module docs).
const REFINE_PASSES: usize = 1;

/// Sentinel marking "no chunk-local decision yet" in the dense proposal
/// overlay of [`ChunkScratch`]. Distinct from [`UNASSIGNED`], which the
/// overlay stores for vertices a restream round has taken out of their part.
const NOT_OVERLAID: PartId = PartId::MAX - 1;

/// Mutable global state of a buffered pass, shared by the commit barriers.
struct GlobalState {
    assignment: Vec<PartId>,
    vertex_counts: Vec<u64>,
    edge_counts: Vec<u64>,
    parts: FlatParts,
    // Commit-phase scratch (same trash-slot trick as the sequential pass:
    // `k` part slots plus one absorbing unassigned neighbors branchlessly).
    nbr_counts: Vec<u32>,
}

impl GlobalState {
    fn remove(&mut self, graph: &CsrGraph, v: VertexId, delta: f64, scorer: &FlatScorer) {
        let old = self.assignment[v as usize];
        debug_assert_ne!(old, UNASSIGNED);
        self.assignment[v as usize] = UNASSIGNED;
        self.vertex_counts[old as usize] -= 1;
        self.edge_counts[old as usize] -= graph.out_degree(v) as u64;
        self.parts.remove(old, delta, scorer);
    }

    fn apply(
        &mut self,
        graph: &CsrGraph,
        v: VertexId,
        part: PartId,
        delta: f64,
        scorer: &FlatScorer,
    ) {
        self.assignment[v as usize] = part;
        self.vertex_counts[part as usize] += 1;
        self.edge_counts[part as usize] += graph.out_degree(v) as u64;
        self.parts.add(part, delta, scorer);
    }

    /// Commits one proposal, rescoring against the live weights when the
    /// stale snapshot let the proposed part fill past its capacity.
    fn commit(
        &mut self,
        graph: &CsrGraph,
        scorer: &FlatScorer,
        v: VertexId,
        p: PartId,
        delta: f64,
    ) {
        let min_part = self.parts.min_part();
        let part = if self.parts.weight(p) >= scorer.capacity && p != min_part {
            let trash = self.nbr_counts.len() - 1;
            for &w in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                let q = self.assignment[w as usize] as usize;
                self.nbr_counts[q.min(trash)] += 1;
            }
            let repaired = scorer.choose(&self.nbr_counts[..trash], &self.parts, min_part);
            self.nbr_counts.fill(0);
            repaired
        } else {
            p
        };
        self.apply(graph, v, part, delta, scorer);
    }
}

/// Runs one buffered-parallel streaming pass. See the module docs for the
/// buffer/snapshot/commit/restream protocol.
pub(super) fn stream_assign_buffered(
    graph: &CsrGraph,
    config: &StreamConfig<'_>,
    weight_delta: &(impl Fn(VertexId) -> f64 + Sync),
) -> StreamOutcome {
    let k = config.num_parts;
    assert!(k > 0, "need at least one part");
    let threads = config.parallel.threads.max(1);
    let buffer_size = config.parallel.buffer_size.max(1);

    let (assignment, vertex_counts, edge_counts, weights) = seed_state(graph, config, weight_delta);
    let scorer = FlatScorer::new(config);
    let mut state = GlobalState {
        assignment,
        vertex_counts,
        edge_counts,
        parts: FlatParts::new(weights, &scorer),
        nbr_counts: vec![0u32; k + 1],
    };
    // One reusable scratch per worker slot, shared across all buffers and
    // restream rounds of the pass — snapshot scoring allocates nothing per
    // chunk beyond its proposal vector.
    let mut scratches: Vec<ChunkScratch> = (0..threads)
        .map(|_| ChunkScratch::new(graph.num_vertices(), k, &scorer))
        .collect();
    let mut records = Vec::with_capacity(config.order.len() / buffer_size + 1);

    use std::sync::OnceLock;
    static SCORE_NS: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
    static COMMIT_NS: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
    static PROGRESS: OnceLock<&'static bpart_obs::metrics::Gauge> = OnceLock::new();
    let score_ns = SCORE_NS.get_or_init(|| bpart_obs::metrics::counter("stream.score_ns"));
    let commit_ns = COMMIT_NS.get_or_init(|| bpart_obs::metrics::counter("stream.commit_ns"));
    // Live buffer progress for the `/progress` monitoring endpoint.
    let progress_gauge =
        PROGRESS.get_or_init(|| bpart_obs::metrics::gauge("stream.progress_buffers"));

    for (buffer_idx, buffer) in config.order.chunks(buffer_size).enumerate() {
        progress_gauge.set((buffer_idx + 1) as f64);
        let mut buffer_span = bpart_obs::span("stream.buffer");
        let buffer_start = Instant::now();
        let mut sync_secs = 0.0;

        // Restreaming: take the whole buffer out of its old parts before the
        // snapshot, so workers never count a buffer vertex's stale placement.
        for &v in buffer {
            if state.assignment[v as usize] != UNASSIGNED {
                debug_assert!(config.previous.is_some(), "vertex {v} streamed twice");
                state.remove(graph, v, weight_delta(v), &scorer);
            }
        }

        let chunk_len = buffer.len().div_ceil(threads);
        let chunks: Vec<&[VertexId]> = buffer.chunks(chunk_len).collect();

        // Initial round places the buffer; restream rounds re-score it with
        // the committed buffer context visible (restream = true).
        for round in 0..=REFINE_PASSES {
            let restream = round > 0;
            let proposals: Vec<Vec<PartId>> = std::thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .iter()
                    .zip(scratches.iter_mut())
                    .map(|(&chunk, scratch)| {
                        let state = &state;
                        let scorer = &scorer;
                        s.spawn(move || {
                            score_chunk(
                                graph,
                                chunk,
                                state,
                                scorer,
                                weight_delta,
                                restream,
                                scratch,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("streaming worker panicked"))
                    .collect()
            });

            // Commit barrier: reconcile the workers' weight deltas in buffer
            // order, repairing capacity overshoot against the live weights.
            let sync_start = Instant::now();
            for (chunk, proposal) in chunks.iter().zip(&proposals) {
                for (&v, &p) in chunk.iter().zip(proposal) {
                    let delta = weight_delta(v);
                    if restream {
                        state.remove(graph, v, delta, &scorer);
                    }
                    state.commit(graph, &scorer, v, p, delta);
                }
            }
            sync_secs += sync_start.elapsed().as_secs_f64();
        }

        let secs = buffer_start.elapsed().as_secs_f64();
        buffer_span.attr("buffer", buffer_idx);
        buffer_span.attr("vertices", buffer.len());
        // score = everything outside the commit barrier (snapshot + workers).
        score_ns.add(((secs - sync_secs).max(0.0) * 1e9) as u64);
        commit_ns.add((sync_secs * 1e9) as u64);
        records.push(BufferRecord {
            buffer: buffer_idx,
            vertices: buffer.len(),
            secs,
            sync_secs,
        });
    }

    StreamOutcome {
        assignment: state.assignment,
        vertex_counts: state.vertex_counts,
        edge_counts: state.edge_counts,
        buffers: records,
        stats: StreamStats::default(),
    }
}

/// Reusable per-worker scratch for [`score_chunk`]: the private weight
/// snapshot, a dense proposal overlay, and the neighbor-tally arrays. One
/// scratch is allocated per worker slot per pass and reused across every
/// buffer and restream round, so snapshot scoring does no per-call
/// allocation (the satellite fix for the old per-chunk `clone`/`HashMap`).
struct ChunkScratch {
    /// Private copy of the frozen part weights and penalties.
    parts: FlatParts,
    /// Dense per-vertex overlay of the chunk's own decisions; entries are
    /// restored to [`NOT_OVERLAID`] after every chunk, so reuse costs
    /// O(chunk), not O(n).
    overlay: Vec<PartId>,
    /// `k` part slots plus a trailing trash slot absorbing unassigned
    /// neighbors (branchless tally, as in the sequential pass).
    nbr_counts: Vec<u32>,
}

impl ChunkScratch {
    fn new(n: usize, k: usize, scorer: &FlatScorer) -> Self {
        assert!(
            (k as u64) < NOT_OVERLAID as u64,
            "part count {k} overflows the PartId sentinel space"
        );
        ChunkScratch {
            parts: FlatParts::new(vec![0.0; k], scorer),
            overlay: vec![NOT_OVERLAID; n],
            nbr_counts: vec![0u32; k + 1],
        }
    }
}

/// Streams one chunk sequentially against the weight snapshot plus a private
/// overlay of the chunk's own proposals. In restream mode each vertex is
/// first taken out of its committed part (locally) so it re-scores itself
/// with the rest of the buffer visible. Pure w.r.t. shared state: the only
/// output is the proposal vector, applied later at the commit barrier.
fn score_chunk(
    graph: &CsrGraph,
    chunk: &[VertexId],
    state: &GlobalState,
    scorer: &FlatScorer,
    weight_delta: &(impl Fn(VertexId) -> f64 + Sync),
    restream: bool,
    scratch: &mut ChunkScratch,
) -> Vec<PartId> {
    let base_assignment = &state.assignment;
    scratch.parts.copy_from(&state.parts);
    let ChunkScratch {
        parts,
        overlay,
        nbr_counts,
    } = scratch;
    let trash = nbr_counts.len() - 1;
    let mut proposals = Vec::with_capacity(chunk.len());

    for &v in chunk {
        if restream {
            // Take the vertex out of its committed part before re-scoring,
            // mirroring the sequential restream rule chunk-locally.
            let local = overlay[v as usize];
            let old = if local == NOT_OVERLAID {
                base_assignment[v as usize]
            } else {
                local
            };
            debug_assert_ne!(old, UNASSIGNED, "restream round on unplaced vertex");
            overlay[v as usize] = UNASSIGNED;
            parts.remove(old, weight_delta(v), scorer);
        }
        // Branchless two-level tally: resolve overlay-vs-base with a
        // select (both loads are unconditional and in-bounds) and absorb
        // unassigned neighbors into the trash slot.
        for &w in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
            let local = overlay[w as usize];
            let base = base_assignment[w as usize];
            let p = if local == NOT_OVERLAID { base } else { local } as usize;
            nbr_counts[p.min(trash)] += 1;
        }
        let part = scorer.choose(&nbr_counts[..trash], parts, parts.min_part());
        proposals.push(part);
        overlay[v as usize] = part;
        parts.add(part, weight_delta(v), scorer);

        nbr_counts.fill(0);
    }

    // Restore the overlay sentinel so the next chunk borrowing this
    // scratch starts clean.
    for &v in chunk {
        overlay[v as usize] = NOT_OVERLAID;
    }
    proposals
}

#[cfg(test)]
mod tests {
    use super::super::{fennel_alpha, stream_assign, ParallelConfig, StreamConfig};
    use super::*;
    use bpart_graph::generate;

    fn config<'a>(
        graph: &CsrGraph,
        k: usize,
        order: &'a [VertexId],
        parallel: ParallelConfig,
    ) -> StreamConfig<'a> {
        StreamConfig {
            num_parts: k,
            gamma: 1.5,
            alpha: fennel_alpha(graph.num_vertices(), graph.num_edges() as u64, k, 1.5)
                .expect("non-empty graph"),
            capacity: 1.1 * graph.num_vertices() as f64 / k as f64,
            order,
            previous: None,
            parallel,
        }
    }

    #[test]
    fn parallel_covers_all_vertices_and_respects_capacity() {
        let g = generate::erdos_renyi(500, 3_000, 7);
        let order: Vec<VertexId> = g.vertices().collect();
        for threads in [2, 3, 4] {
            let cfg = config(
                &g,
                4,
                &order,
                ParallelConfig {
                    threads,
                    buffer_size: 64,
                },
            );
            let out = stream_assign(&g, &cfg, |_| 1.0);
            assert!(out.assignment.iter().all(|&p| p != UNASSIGNED));
            assert_eq!(out.vertex_counts.iter().sum::<u64>(), 500);
            assert_eq!(out.edge_counts.iter().sum::<u64>(), 3_000);
            let cap = (1.1_f64 * 500.0 / 4.0).ceil() as u64 + 1;
            for &c in &out.vertex_counts {
                assert!(c <= cap, "threads={threads}: part size {c} > {cap}");
            }
        }
    }

    #[test]
    fn buffer_size_one_matches_sequential_exactly() {
        let g = generate::twitter_like().generate_scaled(0.005);
        let order: Vec<VertexId> = g.vertices().collect();
        let seq = stream_assign(
            &g,
            &config(&g, 8, &order, ParallelConfig::default()),
            |_| 1.0,
        );
        for threads in [2, 4] {
            let par = stream_assign(
                &g,
                &config(
                    &g,
                    8,
                    &order,
                    ParallelConfig {
                        threads,
                        buffer_size: 1,
                    },
                ),
                |_| 1.0,
            );
            assert_eq!(
                par.assignment, seq.assignment,
                "threads={threads} diverged from sequential at buffer_size=1"
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_shape() {
        let g = generate::lj_like().generate_scaled(0.005);
        let order: Vec<VertexId> = g.vertices().collect();
        let shape = ParallelConfig {
            threads: 4,
            buffer_size: 128,
        };
        let a = stream_assign(&g, &config(&g, 8, &order, shape), |_| 1.0);
        let b = stream_assign(&g, &config(&g, 8, &order, shape), |_| 1.0);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn records_one_buffer_per_window() {
        let g = generate::erdos_renyi(300, 1_500, 11);
        let order: Vec<VertexId> = g.vertices().collect();
        let out = stream_assign(
            &g,
            &config(
                &g,
                4,
                &order,
                ParallelConfig {
                    threads: 2,
                    buffer_size: 100,
                },
            ),
            |_| 1.0,
        );
        assert_eq!(out.buffers.len(), 3);
        assert_eq!(out.stats.buffers, 3);
        assert_eq!(out.buffers.iter().map(|b| b.vertices).sum::<usize>(), 300);
        assert!(out.buffers.iter().all(|b| b.sync_secs <= b.secs));
        assert_eq!(out.stats.threads, 2);
        assert!(out.stats.secs > 0.0);
    }

    #[test]
    fn parallel_restreaming_stays_valid() {
        let g = generate::erdos_renyi(300, 2_400, 4);
        let order: Vec<VertexId> = g.vertices().collect();
        let shape = ParallelConfig {
            threads: 3,
            buffer_size: 50,
        };
        let first = stream_assign(&g, &config(&g, 4, &order, shape), |_| 1.0);
        let mut again = config(&g, 4, &order, shape);
        again.previous = Some(&first.assignment);
        let second = stream_assign(&g, &again, |_| 1.0);
        assert!(second.assignment.iter().all(|&p| p != UNASSIGNED));
        assert_eq!(second.vertex_counts.iter().sum::<u64>(), 300);
        assert_eq!(second.edge_counts.iter().sum::<u64>(), 2_400);
    }

    #[test]
    fn quality_stays_near_sequential_on_power_law_graph() {
        // The quality envelope the perf gate enforces in CI, checked here at
        // unit scale: buffered scoring must not blow up the edge cut. The
        // buffer is sized to ~6% of the stream, the same buffer/graph ratio
        // the gate runs at (DEFAULT_BUFFER_SIZE against benchmark-scale
        // graphs); a buffer spanning half the graph has no committed context
        // to score against and is outside the supported envelope.
        let g = generate::twitter_like().generate_scaled(0.02);
        let order: Vec<VertexId> = g.vertices().collect();
        let cut = |assignment: &[PartId]| {
            let cut_edges: usize = g
                .vertices()
                .map(|v| {
                    g.out_neighbors(v)
                        .iter()
                        .filter(|&&w| assignment[w as usize] != assignment[v as usize])
                        .count()
                })
                .sum();
            cut_edges as f64 / g.num_edges() as f64
        };
        let seq = stream_assign(
            &g,
            &config(&g, 8, &order, ParallelConfig::default()),
            |_| 1.0,
        );
        let par = stream_assign(
            &g,
            &config(
                &g,
                8,
                &order,
                ParallelConfig {
                    threads: 4,
                    buffer_size: 128,
                },
            ),
            |_| 1.0,
        );
        let (cs, cp) = (cut(&seq.assignment), cut(&par.assignment));
        assert!(
            cp <= cs * 1.05 + 0.01,
            "parallel cut {cp} degraded >5% vs sequential {cs}"
        );
    }
}
