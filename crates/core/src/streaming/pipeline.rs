//! Out-of-core staged streaming: fetcher → mapper → committer → tracker.
//!
//! The in-memory engine alternates IO, scoring, and commit in one loop and
//! requires the whole graph resident. This module replays the *same*
//! sequential scoring pass from a shard directory
//! ([`crate::pio::ShardSet`]) through an explicit pipeline of stages
//! connected by bounded channels, so disk IO, record decoding, and
//! flat-array scoring overlap instead of alternating:
//!
//! ```text
//! fetcher ──raw batches──▶ mapper ──decoded batches──▶ committer ──reports──▶ tracker
//!   (mmap one shard at      (decode + validate,          (exact sequential      (obs gauges,
//!    a time, copy record     precompute weight            scoring, owns the      aggregate
//!    bytes into batches)     deltas)                      O(n) assignment)       telemetry)
//! ```
//!
//! ## Memory model
//!
//! Resident memory is `O(n + buffer)`, never `O(m)`: the committer owns the
//! dense assignment (`4n` bytes) plus `O(k)` part state; each channel holds
//! at most `channel_capacity` batches of `batch_vertices` records; and the
//! fetcher maps exactly one shard at a time (the shard size chosen at
//! [`write_shards`](crate::pio::write_shards) time bounds that mapping).
//! Edge data streams through and is dropped batch by batch.
//!
//! ## Backpressure
//!
//! Channels are `std::sync::mpsc::sync_channel`s wrapped with occupancy
//! and stall accounting: a producer that finds its channel full counts a
//! *send stall* and blocks; a consumer that finds it empty counts a *recv
//! stall* and blocks. Both feed `pipeline.*` obs counters/gauges (visible
//! live on `/progress`) and the per-stage [`StageStats`] the `stream_oom`
//! bench renders as stage-occupancy columns.
//!
//! ## Oracle contract
//!
//! The committer reproduces [`stream_assign_sequential`]'s pass bit for
//! bit: shard records store each vertex's full undirected neighborhood in
//! tally order (out-neighbors then in-neighbors), the committer applies
//! the identical [`FlatScorer`] arithmetic in natural vertex order, and α,
//! capacity, and weight deltas are derived with the same expressions the
//! in-memory partitioners use. On a fixed seed, the out-of-core assignment
//! equals the in-memory one exactly — the in-memory path *is* the test
//! oracle, not an approximation target.

use super::{
    fennel_alpha, FlatParts, FlatScorer, ParallelConfig, StreamConfig, StreamStats, UNASSIGNED,
};
use crate::partition::PartId;
use crate::pio::{PioError, ShardSet};
use bpart_graph::VertexId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default records per pipeline batch.
pub const DEFAULT_BATCH_VERTICES: usize = 256;

/// Default batches in flight per channel.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 4;

/// Which scoring scheme the out-of-core pass runs. Both reuse the exact
/// in-memory arithmetic; they differ only in balance weight and default
/// load factor, mirroring [`Fennel`](crate::Fennel) (1.1, unit deltas) and
/// [`BPart-P1`](crate::bpart::WeightedStream) (1.15, two-dimensional
/// deltas).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OocScheme {
    /// Fennel: vertex-count balance weight.
    Fennel,
    /// BPart phase 1: weighted indicator `c·|V_i| + (1−c)·|E_i|/d̄`.
    BPartP1 {
        /// The indicator's vertex/edge mix (paper default 0.5).
        c: f64,
    },
}

/// Tunables of one out-of-core pass.
#[derive(Clone, Copy, Debug)]
pub struct OocConfig {
    /// Number of parts to open.
    pub num_parts: usize,
    /// Scoring scheme.
    pub scheme: OocScheme,
    /// Fennel exponent γ (default 1.5).
    pub gamma: f64,
    /// Override for α; `None` computes the classic `m·k^(γ−1)/n^γ`.
    pub alpha: Option<f64>,
    /// Override for the per-part capacity multiple; `None` uses the
    /// scheme's default (1.1 for Fennel, 1.15 for BPart-P1).
    pub load_factor: Option<f64>,
    /// Records per batch flowing through the channels.
    pub batch_vertices: usize,
    /// Batches in flight per channel.
    pub channel_capacity: usize,
    /// Diagnostic throttle: sleep this long per committed batch. Used by
    /// the backpressure tests (and demos) to force the upstream stages to
    /// run ahead and stall against the channel bounds.
    pub commit_throttle: Option<Duration>,
}

impl OocConfig {
    /// Defaults for `num_parts` parts under `scheme`.
    pub fn new(num_parts: usize, scheme: OocScheme) -> Self {
        OocConfig {
            num_parts,
            scheme,
            gamma: 1.5,
            alpha: None,
            load_factor: None,
            batch_vertices: DEFAULT_BATCH_VERTICES,
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
            commit_throttle: None,
        }
    }
}

/// Telemetry of one pipeline stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageStats {
    /// Stage name ("fetch", "map", "commit", "track").
    pub name: &'static str,
    /// Batches processed.
    pub batches: u64,
    /// Vertex records processed.
    pub vertices: u64,
    /// Time spent doing work (excludes channel waits).
    pub busy_secs: f64,
    /// Times this stage blocked pushing downstream (its output channel was
    /// full — downstream is the bottleneck).
    pub send_stalls: u64,
    /// Times this stage blocked waiting upstream (its input channel was
    /// empty — upstream is the bottleneck).
    pub recv_stalls: u64,
    /// Peak batches observed in this stage's output channel.
    pub max_occupancy: usize,
    /// Bound of this stage's output channel (0 = no output channel).
    pub channel_capacity: usize,
}

/// Per-stage telemetry of a whole pipeline run.
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// fetch, map, commit, track — in flow order.
    pub stages: Vec<StageStats>,
}

impl PipelineStats {
    /// Looks a stage up by name.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.name == name)
    }
}

/// Result of an out-of-core pass: the dense assignment plus the same
/// aggregates the in-memory engine reports, and the per-stage pipeline
/// telemetry.
#[derive(Debug)]
pub struct OocOutcome {
    /// Part per vertex, natural order.
    pub assignment: Vec<PartId>,
    /// Parts opened.
    pub num_parts: usize,
    /// Per-part vertex counts.
    pub vertex_counts: Vec<u64>,
    /// Per-part out-degree sums.
    pub edge_counts: Vec<u64>,
    /// Aggregate throughput (sync_secs = committer idle time).
    pub stats: StreamStats,
    /// Per-stage pipeline telemetry.
    pub pipeline: PipelineStats,
}

// ---------------------------------------------------------------------------
// Bounded channels with occupancy + stall accounting
// ---------------------------------------------------------------------------

/// Shared accounting of one bounded channel. Occupancy is computed as
/// `sent − received`, clamped to the channel bound: the two counters are
/// updated after the underlying send/recv, so the difference can lag by
/// one on each side, but a `sync_channel` physically cannot hold more than
/// its bound — the clamp masks exactly that counter lag and nothing else.
struct ChannelAccounting {
    capacity: usize,
    sent: AtomicU64,
    received: AtomicU64,
    max_occupancy: AtomicUsize,
    send_stalls: AtomicU64,
    recv_stalls: AtomicU64,
    occupancy_gauge: &'static bpart_obs::metrics::Gauge,
    send_stall_counter: &'static bpart_obs::metrics::Counter,
    recv_stall_counter: &'static bpart_obs::metrics::Counter,
    /// Aggregate across every stage and direction — the numerator the
    /// `pipeline-stall` alert rule ratios against `pipeline.batches`.
    total_stall_counter: &'static bpart_obs::metrics::Counter,
}

struct BoundedSender<T> {
    tx: SyncSender<T>,
    acct: Arc<ChannelAccounting>,
}

struct BoundedReceiver<T> {
    rx: Receiver<T>,
    acct: Arc<ChannelAccounting>,
}

/// A bounded channel whose occupancy and stalls feed the obs registry as
/// `pipeline.<name>.{occupancy,send_stalls,recv_stalls}`.
fn bounded<T>(name: &str, capacity: usize) -> (BoundedSender<T>, BoundedReceiver<T>) {
    let capacity = capacity.max(1);
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
    let acct = Arc::new(ChannelAccounting {
        capacity,
        sent: AtomicU64::new(0),
        received: AtomicU64::new(0),
        max_occupancy: AtomicUsize::new(0),
        send_stalls: AtomicU64::new(0),
        recv_stalls: AtomicU64::new(0),
        occupancy_gauge: bpart_obs::metrics::gauge(&format!("pipeline.{name}.occupancy")),
        send_stall_counter: bpart_obs::metrics::counter(&format!("pipeline.{name}.send_stalls")),
        recv_stall_counter: bpart_obs::metrics::counter(&format!("pipeline.{name}.recv_stalls")),
        total_stall_counter: bpart_obs::metrics::counter("pipeline.stalls"),
    });
    (
        BoundedSender {
            tx,
            acct: Arc::clone(&acct),
        },
        BoundedReceiver { rx, acct },
    )
}

impl<T> BoundedSender<T> {
    /// Sends, counting a stall if the channel is full. Returns `false`
    /// when the receiver is gone (pipeline aborted) — the producer should
    /// stop.
    fn send(&self, item: T) -> bool {
        let item = match self.tx.try_send(item) {
            Ok(()) => {
                self.after_send();
                return true;
            }
            Err(TrySendError::Disconnected(_)) => return false,
            Err(TrySendError::Full(item)) => {
                self.acct.send_stalls.fetch_add(1, Ordering::Relaxed);
                self.acct.send_stall_counter.inc();
                self.acct.total_stall_counter.inc();
                item
            }
        };
        if self.tx.send(item).is_err() {
            return false;
        }
        self.after_send();
        true
    }

    fn after_send(&self) {
        let sent = self.acct.sent.fetch_add(1, Ordering::Relaxed) + 1;
        let received = self.acct.received.load(Ordering::Relaxed);
        let occ = (sent.saturating_sub(received) as usize).min(self.acct.capacity);
        self.acct.max_occupancy.fetch_max(occ, Ordering::Relaxed);
        self.acct.occupancy_gauge.set(occ as f64);
    }
}

impl<T> BoundedReceiver<T> {
    /// Receives, counting a stall if the channel is empty. `None` when the
    /// channel is closed and drained.
    fn recv(&self) -> Option<T> {
        let item = match self.rx.try_recv() {
            Ok(item) => item,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => return None,
            Err(std::sync::mpsc::TryRecvError::Empty) => {
                self.acct.recv_stalls.fetch_add(1, Ordering::Relaxed);
                self.acct.recv_stall_counter.inc();
                self.acct.total_stall_counter.inc();
                self.rx.recv().ok()?
            }
        };
        let received = self.acct.received.fetch_add(1, Ordering::Relaxed) + 1;
        let sent = self.acct.sent.load(Ordering::Relaxed);
        self.acct
            .occupancy_gauge
            .set((sent.saturating_sub(received) as usize).min(self.acct.capacity) as f64);
        Some(item)
    }
}

// ---------------------------------------------------------------------------
// Batches
// ---------------------------------------------------------------------------

/// What the fetcher ships: raw record bytes for a run of consecutive
/// vertices, copied out of the shard mapping (the copy *is* the read — it
/// is what forces the page in) so the mapping can be dropped per shard.
struct RawBatch {
    first_vertex: VertexId,
    out_degs: Vec<u32>,
    /// Prefix offsets into `nbr_bytes`, `out_degs.len() + 1` entries.
    nbr_ends: Vec<usize>,
    nbr_bytes: Vec<u8>,
}

/// What the mapper ships: decoded neighbor ids (validated `< n`) plus the
/// precomputed per-vertex weight deltas, ready for branchless tallying.
struct VertexBatch {
    first_vertex: VertexId,
    out_degs: Vec<u32>,
    /// Prefix offsets into `nbrs`, `out_degs.len() + 1` entries.
    nbr_ends: Vec<usize>,
    nbrs: Vec<VertexId>,
    deltas: Vec<f64>,
}

/// What the committer ships to the tracker after each batch.
struct BatchReport {
    vertices: u64,
    edges: u64,
}

// ---------------------------------------------------------------------------
// The pipeline
// ---------------------------------------------------------------------------

/// Runs one out-of-core streaming pass over `shards`.
///
/// See the module docs for the stage layout, memory model, and oracle
/// contract. Errors (truncated or corrupt shards, IO failures) propagate
/// through the channels and abort the whole pipeline with the originating
/// [`PioError`].
pub fn stream_assign_ooc(shards: &ShardSet, config: &OocConfig) -> Result<OocOutcome, PioError> {
    let k = config.num_parts;
    assert!(k > 0, "need at least one part");
    let n = shards.num_vertices();
    let m = shards.num_edges();

    let mut span = bpart_obs::span("stream.ooc");
    span.attr("vertices", n);
    span.attr("shards", shards.num_shards());

    if n == 0 {
        return Ok(OocOutcome {
            assignment: Vec::new(),
            num_parts: k,
            vertex_counts: vec![0; k],
            edge_counts: vec![0; k],
            stats: StreamStats::default(),
            pipeline: PipelineStats::default(),
        });
    }

    // Scheme parameters — the exact expressions the in-memory partitioners
    // use, so the scores (and therefore the assignment) match bit for bit.
    let gamma = config.gamma;
    let (load_default, d_bar) = match config.scheme {
        OocScheme::Fennel => (1.1, 1.0),
        OocScheme::BPartP1 { .. } => (1.15, (m as f64 / n as f64).max(f64::MIN_POSITIVE)),
    };
    let load = config.load_factor.unwrap_or(load_default);
    let alpha = match config.alpha {
        Some(a) => a,
        None => fennel_alpha(n, m, k, gamma).expect("n > 0 checked above"),
    };
    let capacity = load * n as f64 / k as f64;
    let delta_of = move |out_deg: u32| -> f64 {
        match config.scheme {
            OocScheme::Fennel => 1.0,
            OocScheme::BPartP1 { c } => c + (1.0 - c) * out_deg as f64 / d_bar,
        }
    };

    let batch_vertices = config.batch_vertices.max(1);
    let channel_capacity = config.channel_capacity.max(1);
    let throttle = config.commit_throttle;

    let (raw_tx, raw_rx) = bounded::<Result<RawBatch, PioError>>("fetch", channel_capacity);
    let (dec_tx, dec_rx) = bounded::<Result<VertexBatch, PioError>>("map", channel_capacity);
    let (rep_tx, rep_rx) = bounded::<BatchReport>("commit", channel_capacity);
    // Accounting handles survive the channel endpoints being moved into
    // (and dropped by) the stage threads.
    let fetch_acct = Arc::clone(&raw_rx.acct);
    let map_acct = Arc::clone(&dec_rx.acct);
    let rep_acct = Arc::clone(&rep_rx.acct);

    let start = Instant::now();
    #[allow(clippy::type_complexity)]
    let result: Result<(Vec<PartId>, Vec<u64>, Vec<u64>, PipelineStats, f64), PioError> =
        std::thread::scope(|scope| {
            // --- fetcher: shard IO → raw batches --------------------------
            let fetch = scope.spawn({
                let raw_tx = raw_tx;
                move || {
                    let mut busy = 0f64;
                    let mut batches = 0u64;
                    let mut vertices = 0u64;
                    'shards: for s in 0..shards.num_shards() {
                        let t0 = Instant::now();
                        let mut reader = match shards.open_shard(s) {
                            Ok(r) => r,
                            Err(e) => {
                                busy += t0.elapsed().as_secs_f64();
                                let _ = raw_tx.send(Err(e));
                                break 'shards;
                            }
                        };
                        busy += t0.elapsed().as_secs_f64();
                        let mut exhausted = false;
                        while !exhausted {
                            let t0 = Instant::now();
                            let mut batch = RawBatch {
                                first_vertex: 0,
                                out_degs: Vec::with_capacity(batch_vertices),
                                nbr_ends: Vec::with_capacity(batch_vertices + 1),
                                nbr_bytes: Vec::new(),
                            };
                            batch.nbr_ends.push(0);
                            let mut first = true;
                            let mut fill_err = None;
                            while batch.out_degs.len() < batch_vertices {
                                match reader.next_record() {
                                    Ok(Some(rec)) => {
                                        if first {
                                            batch.first_vertex = rec.vertex;
                                            first = false;
                                        }
                                        batch.out_degs.push(rec.out_deg);
                                        batch.nbr_bytes.extend_from_slice(rec.raw_nbr_bytes());
                                        batch.nbr_ends.push(batch.nbr_bytes.len());
                                    }
                                    Ok(None) => {
                                        exhausted = true;
                                        break;
                                    }
                                    Err(e) => {
                                        fill_err = Some(e);
                                        break;
                                    }
                                }
                            }
                            busy += t0.elapsed().as_secs_f64();
                            if !batch.out_degs.is_empty() {
                                batches += 1;
                                vertices += batch.out_degs.len() as u64;
                                if !raw_tx.send(Ok(batch)) {
                                    break 'shards;
                                }
                            }
                            if let Some(e) = fill_err {
                                let _ = raw_tx.send(Err(e));
                                break 'shards;
                            }
                        }
                    }
                    (batches, vertices, busy)
                }
            });

            // --- mapper: decode + validate → vertex batches ---------------
            let map = scope.spawn({
                let dec_tx = dec_tx;
                move || {
                    let mut busy = 0f64;
                    let mut batches = 0u64;
                    let mut vertices = 0u64;
                    while let Some(msg) = raw_rx.recv() {
                        let raw = match msg {
                            Ok(raw) => raw,
                            Err(e) => {
                                let _ = dec_tx.send(Err(e));
                                break;
                            }
                        };
                        let t0 = Instant::now();
                        let count = raw.out_degs.len();
                        let mut out = VertexBatch {
                            first_vertex: raw.first_vertex,
                            out_degs: raw.out_degs,
                            nbr_ends: Vec::with_capacity(count + 1),
                            nbrs: Vec::with_capacity(raw.nbr_bytes.len() / 4),
                            deltas: Vec::with_capacity(count),
                        };
                        out.nbr_ends.push(0);
                        let mut bad: Option<VertexId> = None;
                        for i in 0..count {
                            let bytes = &raw.nbr_bytes[raw.nbr_ends[i]..raw.nbr_ends[i + 1]];
                            for c in bytes.chunks_exact(4) {
                                let w = VertexId::from_le_bytes(c.try_into().unwrap());
                                if w as usize >= n {
                                    bad = Some(w);
                                }
                                out.nbrs.push(w);
                            }
                            out.nbr_ends.push(out.nbrs.len());
                            out.deltas.push(delta_of(out.out_degs[i]));
                        }
                        busy += t0.elapsed().as_secs_f64();
                        if let Some(w) = bad {
                            let _ = dec_tx.send(Err(PioError::Format(format!(
                                "neighbor id {w} out of range (n = {n})"
                            ))));
                            break;
                        }
                        batches += 1;
                        vertices += count as u64;
                        if !dec_tx.send(Ok(out)) {
                            break;
                        }
                    }
                    (batches, vertices, busy)
                }
            });

            // --- tracker: telemetry sink ----------------------------------
            let track = scope.spawn(move || {
                let committed = bpart_obs::metrics::gauge("pipeline.committed_vertices");
                let batch_counter = bpart_obs::metrics::counter("pipeline.batches");
                let mut busy = 0f64;
                let mut batches = 0u64;
                let mut vertices = 0u64;
                let mut edges = 0u64;
                while let Some(report) = rep_rx.recv() {
                    let t0 = Instant::now();
                    batches += 1;
                    vertices += report.vertices;
                    edges += report.edges;
                    committed.set(vertices as f64);
                    batch_counter.inc();
                    busy += t0.elapsed().as_secs_f64();
                }
                (batches, vertices, edges, busy)
            });

            // --- committer: exact sequential scoring (this thread) --------
            let mut assignment = vec![UNASSIGNED; n];
            let mut vertex_counts = vec![0u64; k];
            let mut edge_counts = vec![0u64; k];
            let scorer = FlatScorer::new(&StreamConfig {
                num_parts: k,
                gamma,
                alpha,
                capacity,
                order: &[],
                previous: None,
                parallel: ParallelConfig::default(),
            });
            let mut parts = FlatParts::new(vec![0f64; k], &scorer);
            let mut nbr_counts = vec![0u32; k + 1];
            let trash = k;

            let mut commit_busy = 0f64;
            let mut commit_batches = 0u64;
            let mut expected_next: VertexId = 0;
            let mut error: Option<PioError> = None;
            while let Some(msg) = dec_rx.recv() {
                let batch = match msg {
                    Ok(batch) => batch,
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                };
                if let Some(t) = throttle {
                    std::thread::sleep(t);
                }
                let t0 = Instant::now();
                if batch.first_vertex != expected_next {
                    error = Some(PioError::Format(format!(
                        "stream gap: expected vertex {expected_next}, batch starts at {}",
                        batch.first_vertex
                    )));
                    break;
                }
                let count = batch.out_degs.len();
                let mut edges_in_batch = 0u64;
                for i in 0..count {
                    let v = batch.first_vertex + i as VertexId;
                    // Tally in stored (out-then-in) order — identical
                    // counts to the in-memory branchless pass.
                    for &w in &batch.nbrs[batch.nbr_ends[i]..batch.nbr_ends[i + 1]] {
                        let p = assignment[w as usize] as usize;
                        nbr_counts[p.min(trash)] += 1;
                    }
                    let part = scorer.choose(&nbr_counts[..k], &parts, parts.min_part());
                    assignment[v as usize] = part;
                    vertex_counts[part as usize] += 1;
                    edge_counts[part as usize] += batch.out_degs[i] as u64;
                    edges_in_batch += batch.out_degs[i] as u64;
                    parts.add(part, batch.deltas[i], &scorer);
                    nbr_counts.fill(0);
                }
                expected_next += count as VertexId;
                commit_busy += t0.elapsed().as_secs_f64();
                commit_batches += 1;
                let _ = rep_tx.send(BatchReport {
                    vertices: count as u64,
                    edges: edges_in_batch,
                });
            }
            // Close our channel ends: the mapper's pending sends fail and
            // it exits, which drops the raw receiver and unblocks the
            // fetcher; dropping the report sender lets the tracker drain
            // and exit. Only then join.
            let committed_vertices = expected_next as u64;
            drop(dec_rx);
            drop(rep_tx);
            let (fetch_batches, fetch_vertices, fetch_busy) = fetch.join().expect("fetcher");
            let (map_batches, map_vertices, map_busy) = map.join().expect("mapper");
            let (track_batches, track_vertices, _track_edges, track_busy) =
                track.join().expect("tracker");

            if let Some(e) = error {
                return Err(e);
            }
            if expected_next as usize != n {
                return Err(PioError::Format(format!(
                    "stream ended early: {expected_next} of {n} vertices committed"
                )));
            }

            let stage = |name: &'static str,
                         batches: u64,
                         vertices: u64,
                         busy: f64,
                         out: Option<&ChannelAccounting>,
                         inn: Option<&ChannelAccounting>| {
                StageStats {
                    name,
                    batches,
                    vertices,
                    busy_secs: busy,
                    send_stalls: out.map_or(0, |a| a.send_stalls.load(Ordering::Relaxed)),
                    recv_stalls: inn.map_or(0, |a| a.recv_stalls.load(Ordering::Relaxed)),
                    max_occupancy: out.map_or(0, |a| a.max_occupancy.load(Ordering::Relaxed)),
                    channel_capacity: out.map_or(0, |a| a.capacity),
                }
            };
            let pipeline = PipelineStats {
                stages: vec![
                    stage(
                        "fetch",
                        fetch_batches,
                        fetch_vertices,
                        fetch_busy,
                        Some(&fetch_acct),
                        None,
                    ),
                    stage(
                        "map",
                        map_batches,
                        map_vertices,
                        map_busy,
                        Some(&map_acct),
                        Some(&fetch_acct),
                    ),
                    stage(
                        "commit",
                        commit_batches,
                        committed_vertices,
                        commit_busy,
                        Some(&rep_acct),
                        Some(&map_acct),
                    ),
                    stage(
                        "track",
                        track_batches,
                        track_vertices,
                        track_busy,
                        None,
                        Some(&rep_acct),
                    ),
                ],
            };
            Ok((
                assignment,
                vertex_counts,
                edge_counts,
                pipeline,
                commit_busy,
            ))
        });

    let (assignment, vertex_counts, edge_counts, pipeline, commit_busy) = result?;
    let secs = start.elapsed().as_secs_f64();
    let stats = StreamStats {
        vertices: n,
        edges: m,
        buffers: pipeline.stage("commit").map_or(0, |s| s.batches as usize),
        secs,
        // The committer's idle time: what it spent waiting on upstream
        // stages — the pipelined analogue of the buffered engine's
        // commit-barrier stalls.
        sync_secs: (secs - commit_busy).max(0.0),
        threads: 4,
    };
    span.attr("batches", stats.buffers);
    Ok(OocOutcome {
        assignment,
        num_parts: k,
        vertex_counts,
        edge_counts,
        stats,
        pipeline,
    })
}

/// Computes the directed edge-cut ratio of `assignment` by re-streaming
/// the shards — the out-of-core analogue of
/// [`metrics::edge_cut_ratio`](crate::metrics::edge_cut_ratio), needing
/// `O(buffer)` memory instead of the resident graph. Only the first
/// `out_deg` stored neighbors of each record (the out-neighbors) are
/// counted, so every directed edge is counted exactly once.
pub fn ooc_cut_ratio(shards: &ShardSet, assignment: &[PartId]) -> Result<f64, PioError> {
    let m = shards.num_edges();
    if m == 0 {
        return Ok(0.0);
    }
    if assignment.len() != shards.num_vertices() {
        return Err(PioError::Format(format!(
            "assignment covers {} vertices, shards have {}",
            assignment.len(),
            shards.num_vertices()
        )));
    }
    let mut cut = 0u64;
    for s in 0..shards.num_shards() {
        let mut reader = shards.open_shard(s)?;
        while let Some(rec) = reader.next_record()? {
            let pv = assignment[rec.vertex as usize];
            for w in rec.nbrs().take(rec.out_deg as usize) {
                if assignment[w as usize] != pv {
                    cut += 1;
                }
            }
        }
    }
    Ok(cut as f64 / m as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpart::WeightedStream;
    use crate::fennel::Fennel;
    use crate::partitioner::Partitioner;
    use crate::pio::{shard_file_name, write_shards};
    use crate::{metrics, PartId};
    use bpart_graph::generate;
    use std::path::PathBuf;

    fn temp_shards(name: &str, g: &bpart_graph::CsrGraph, target_bytes: u64) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bpart-pipeline-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_shards(g, &dir, target_bytes).unwrap();
        dir
    }

    #[test]
    fn ooc_fennel_is_bit_identical_to_the_in_memory_oracle() {
        let g = generate::twitter_like().generate_scaled(0.01);
        let k = 8;
        let dir = temp_shards("fennel-oracle", &g, 32 * 1024);
        let shards = ShardSet::open(&dir).unwrap();
        assert!(shards.num_shards() > 1, "want a multi-shard stream");

        let ooc = stream_assign_ooc(&shards, &OocConfig::new(k, OocScheme::Fennel)).unwrap();
        let oracle = Fennel::default().partition(&g, k);

        assert_eq!(ooc.assignment, oracle.assignment(), "assignments diverge");
        assert_eq!(ooc.vertex_counts, oracle.vertex_counts());
        assert_eq!(ooc.edge_counts, oracle.edge_counts());
        // The streamed cut equals the in-memory metric on the same
        // assignment.
        let streamed = ooc_cut_ratio(&shards, &ooc.assignment).unwrap();
        let resident = metrics::edge_cut_ratio(&g, &oracle);
        assert!(
            (streamed - resident).abs() < 1e-12,
            "cut mismatch: streamed {streamed} vs resident {resident}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ooc_bpart_p1_is_bit_identical_to_the_in_memory_oracle() {
        let g = generate::lj_like().generate_scaled(0.01);
        let k = 8;
        let dir = temp_shards("p1-oracle", &g, 32 * 1024);
        let shards = ShardSet::open(&dir).unwrap();

        let ooc =
            stream_assign_ooc(&shards, &OocConfig::new(k, OocScheme::BPartP1 { c: 0.5 })).unwrap();
        let oracle = WeightedStream::default().partition(&g, k);

        assert_eq!(ooc.assignment, oracle.assignment(), "assignments diverge");
        assert_eq!(ooc.vertex_counts, oracle.vertex_counts());
        assert_eq!(ooc.edge_counts, oracle.edge_counts());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slow_committer_backpressure_bounds_occupancy_and_counts_stalls() {
        let g = generate::erdos_renyi(2_000, 12_000, 7);
        let k = 4;
        let dir = temp_shards("backpressure", &g, 8 * 1024);
        let shards = ShardSet::open(&dir).unwrap();

        let mut config = OocConfig::new(k, OocScheme::Fennel);
        config.batch_vertices = 64;
        config.channel_capacity = 2;
        config.commit_throttle = Some(Duration::from_millis(2));
        let ooc = stream_assign_ooc(&shards, &config).unwrap();

        // Bounded channels: no stage's output channel ever held more than
        // its bound.
        for s in &ooc.pipeline.stages {
            assert!(
                s.max_occupancy <= s.channel_capacity.max(s.max_occupancy.min(2)),
                "stage {} occupancy {} exceeds capacity {}",
                s.name,
                s.max_occupancy,
                s.channel_capacity
            );
            if s.channel_capacity > 0 {
                assert!(
                    s.max_occupancy <= s.channel_capacity,
                    "stage {} occupancy {} exceeds capacity {}",
                    s.name,
                    s.max_occupancy,
                    s.channel_capacity
                );
            }
        }
        // The throttled committer forces the upstream stages to stall
        // against the bounds: the fetcher and/or mapper must have blocked
        // pushing downstream at least once.
        let fetch = ooc.pipeline.stage("fetch").unwrap();
        let map = ooc.pipeline.stage("map").unwrap();
        assert!(
            fetch.send_stalls + map.send_stalls > 0,
            "expected backpressure stalls, got fetch {} map {}",
            fetch.send_stalls,
            map.send_stalls
        );
        // And the full channels show up as peak occupancy at the bound.
        assert_eq!(map.max_occupancy, map.channel_capacity);

        // Throttling must not change the result: still bit-identical to
        // the sequential in-memory pass.
        let oracle = Fennel::default().partition(&g, k);
        assert_eq!(ooc.assignment, oracle.assignment());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_and_channel_shape_never_changes_the_assignment() {
        let g = generate::erdos_renyi(600, 4_000, 21);
        let k = 5;
        let dir = temp_shards("shapes", &g, 4 * 1024);
        let shards = ShardSet::open(&dir).unwrap();
        let baseline = stream_assign_ooc(&shards, &OocConfig::new(k, OocScheme::Fennel)).unwrap();
        for (batch, cap) in [(1, 1), (7, 2), (1024, 8)] {
            let mut config = OocConfig::new(k, OocScheme::Fennel);
            config.batch_vertices = batch;
            config.channel_capacity = cap;
            let run = stream_assign_ooc(&shards, &config).unwrap();
            assert_eq!(
                run.assignment, baseline.assignment,
                "batch {batch} cap {cap} diverged"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_shard_aborts_the_pipeline_with_a_typed_error() {
        let g = generate::erdos_renyi(400, 3_000, 3);
        let dir = temp_shards("truncated", &g, u64::MAX);
        let path = dir.join(shard_file_name(0));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();

        let shards = ShardSet::open(&dir).unwrap();
        match stream_assign_ooc(&shards, &OocConfig::new(4, OocScheme::Fennel)) {
            Err(PioError::Truncated { .. }) => {}
            other => panic!("expected Truncated abort, got {:?}", other.map(|o| o.stats)),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_stream_returns_an_empty_outcome() {
        let g = bpart_graph::CsrGraph::from_edges(0, &[]);
        let dir = temp_shards("empty", &g, 1024);
        let shards = ShardSet::open(&dir).unwrap();
        let ooc = stream_assign_ooc(&shards, &OocConfig::new(3, OocScheme::Fennel)).unwrap();
        assert!(ooc.assignment.is_empty());
        assert_eq!(ooc.vertex_counts, vec![0, 0, 0]);
        assert_eq!(ooc_cut_ratio(&shards, &ooc.assignment).unwrap(), 0.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_report_the_stream_and_stage_structure() {
        let g = generate::erdos_renyi(500, 2_500, 9);
        let dir = temp_shards("stats", &g, 8 * 1024);
        let shards = ShardSet::open(&dir).unwrap();
        let mut config = OocConfig::new(4, OocScheme::Fennel);
        config.batch_vertices = 100;
        let ooc = stream_assign_ooc(&shards, &config).unwrap();
        assert_eq!(ooc.stats.vertices, 500);
        assert_eq!(ooc.stats.edges, 2_500);
        assert!(ooc.stats.secs > 0.0);
        assert!(ooc.stats.sync_secs <= ooc.stats.secs);
        let names: Vec<&str> = ooc.pipeline.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, ["fetch", "map", "commit", "track"]);
        for name in ["fetch", "map", "commit", "track"] {
            let s = ooc.pipeline.stage(name).unwrap();
            assert_eq!(s.vertices, 500, "stage {name}");
            assert!(s.batches >= 5, "stage {name} saw {} batches", s.batches);
        }
        // ooc_cut_ratio rejects a wrong-length assignment.
        assert!(ooc_cut_ratio(&shards, &ooc.assignment[1..]).is_err());
        let _: Vec<PartId> = ooc.assignment;
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
