//! Shared streaming-assignment engine behind Fennel and BPart's phase 1.
//!
//! Both schemes stream vertices and assign each to the part maximizing
//!
//! ```text
//! S(v, G_i) = |V_i ∩ N(v)| − α·γ·W_i^(γ−1)
//! ```
//!
//! They differ only in the *balance weight* `W_i`: Fennel uses the vertex
//! count `|V_i|`, BPart the two-dimensional indicator
//! `c·|V_i| + (1−c)·|E_i|/d̄`. The engine abstracts that as a per-vertex
//! weight increment, so both weights sum to the number of streamed vertices
//! and share the same α calibration and capacity bound.
//!
//! Exactness note: for parts with no neighbors of `v` the score reduces to
//! the pure penalty, which (for `γ ≥ 1`, `α ≥ 0`) is maximized by the
//! minimum-weight part. The scorer exploits this with flat per-partition
//! state ([`FlatParts`]): weights, cached penalties, and neighbor counts
//! live in contiguous arrays sized to `k`, and each vertex is placed by two
//! branch-predictable linear reductions — an argmin over the weights for
//! the lightest part and an argmax over `count − penalty` for the winner —
//! instead of per-partition branches and a lazy min-heap. Because the
//! penalty is cached per part and refreshed only when a weight changes,
//! the scoring loop itself contains no `powf`. The pre-flat scalar
//! implementation is retained in [`oracle`] and differential proptests
//! hold the two bit-identical.
//!
//! ## Execution modes
//!
//! With [`ParallelConfig::threads`] `== 1` the engine runs the exact
//! sequential pass (bit-for-bit identical to the historical behaviour, which
//! keeps the golden determinism tests valid). With `threads > 1` it switches
//! to the *buffered* mode of [`buffered`]: the vertex order is cut into
//! buffers, each buffer is scored by a pool of scoped threads against a
//! snapshot of the part weights, and assignments commit at a per-buffer
//! barrier that reconciles the workers' weight deltas (and repairs any
//! capacity overshoot the stale snapshots allowed).

mod buffered;
pub mod pipeline;

use crate::partition::PartId;
use bpart_graph::{CsrGraph, VertexId};
use std::fmt;
use std::time::Instant;

/// Sentinel for "not yet assigned" in dense assignment vectors.
pub(crate) const UNASSIGNED: PartId = PartId::MAX;

/// Default vertices per synchronization window in buffered-parallel mode.
pub const DEFAULT_BUFFER_SIZE: usize = 4096;

/// Degree of parallelism for a streaming pass.
///
/// `threads == 1` selects the exact sequential path; `threads > 1` the
/// buffered mode, which scores `buffer_size` vertices per synchronization
/// window across `threads` scoped worker threads. Results are deterministic
/// for a fixed `(threads, buffer_size)` pair, and `buffer_size == 1`
/// reproduces the sequential assignment exactly regardless of `threads`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads scoring each buffer (1 = exact sequential pass).
    pub threads: usize,
    /// Vertices scored between two weight synchronizations.
    pub buffer_size: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 1,
            buffer_size: DEFAULT_BUFFER_SIZE,
        }
    }
}

impl ParallelConfig {
    /// The exact sequential configuration.
    pub fn sequential() -> Self {
        ParallelConfig::default()
    }

    /// Buffered mode with `threads` workers and the default buffer size.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
            ..ParallelConfig::default()
        }
    }
}

/// Typed errors of the streaming engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// α = `m·k^(γ−1)/n^γ` is undefined over an empty stream (`n == 0`);
    /// scoring with the `inf`/NaN it would produce poisons every score.
    EmptyStream,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::EmptyStream => {
                write!(
                    f,
                    "streamed subset is empty: Fennel α = m·k^(γ−1)/n^γ is undefined"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// Parameters of one streaming pass.
pub(crate) struct StreamConfig<'a> {
    /// Number of parts to open.
    pub num_parts: usize,
    /// Fennel exponent γ.
    pub gamma: f64,
    /// Fennel coefficient α (see [`fennel_alpha`]).
    pub alpha: f64,
    /// Hard cap on a part's weight; parts at or above it receive no further
    /// vertices unless every part is capped.
    pub capacity: f64,
    /// Vertices in visit order (may be a subset of the graph).
    pub order: &'a [VertexId],
    /// Restreaming (ReFennel): a previous full assignment to start from.
    /// Every streamed vertex is first *removed* from its old part, then
    /// rescored against the now-complete neighborhood information.
    pub previous: Option<&'a [PartId]>,
    /// Worker-pool shape (sequential by default).
    pub parallel: ParallelConfig,
}

/// One synchronization window of a buffered-parallel pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BufferRecord {
    /// 0-based buffer index within the pass.
    pub buffer: usize,
    /// Vertices scored in this buffer.
    pub vertices: usize,
    /// Wall time of the whole buffer (scoring + commit barrier).
    pub secs: f64,
    /// Time spent in the commit barrier reconciling weight deltas — the
    /// synchronization stall the buffer size trades against quality.
    pub sync_secs: f64,
}

impl BufferRecord {
    /// Scoring throughput of this buffer.
    pub fn vertices_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.vertices as f64 / self.secs
        } else {
            0.0
        }
    }
}

/// Aggregate throughput telemetry of one or more streaming passes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StreamStats {
    /// Vertices streamed.
    pub vertices: usize,
    /// Out-edges carried by the streamed vertices — the work the score
    /// loop actually touches, and the unit the hot-path throughput gate
    /// watches (edges/s).
    pub edges: u64,
    /// Synchronization windows executed (0 on a sequential pass).
    pub buffers: usize,
    /// Total wall time.
    pub secs: f64,
    /// Total time stalled in commit barriers.
    pub sync_secs: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl StreamStats {
    /// Streaming throughput in vertices per second.
    pub fn vertices_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.vertices as f64 / self.secs
        } else {
            0.0
        }
    }

    /// Streaming throughput in edges per second — the headline hot-path
    /// metric (the score loop's cost scales with edges, not vertices).
    pub fn edges_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.edges as f64 / self.secs
        } else {
            0.0
        }
    }

    /// Fraction of wall time spent in synchronization barriers. Clamped to
    /// non-negative so clock jitter on near-zero runs cannot surface as a
    /// (cosmetic) negative zero.
    pub fn sync_stall_ratio(&self) -> f64 {
        if self.secs > 0.0 {
            (self.sync_secs / self.secs).max(0.0)
        } else {
            0.0
        }
    }

    /// Folds another pass (or layer) into this aggregate.
    pub fn merge(&mut self, other: &StreamStats) {
        self.vertices += other.vertices;
        self.edges += other.edges;
        self.buffers += other.buffers;
        self.secs += other.secs;
        self.sync_secs += other.sync_secs;
        self.threads = self.threads.max(other.threads);
    }
}

/// Outcome of a streaming pass.
pub(crate) struct StreamOutcome {
    /// Dense assignment over *all* graph vertices; vertices outside the
    /// streamed subset keep [`UNASSIGNED`].
    pub assignment: Vec<PartId>,
    /// Per-part vertex counts.
    pub vertex_counts: Vec<u64>,
    /// Per-part out-degree sums.
    pub edge_counts: Vec<u64>,
    /// Per-buffer telemetry (empty on the sequential path).
    pub buffers: Vec<BufferRecord>,
    /// Aggregate throughput of this pass.
    pub stats: StreamStats,
}

/// The classic Fennel α: `m · k^(γ−1) / n^γ`, expressed over the streamed
/// subset (`n` vertices carrying `m` out-edges) and `k` parts.
///
/// Fails with [`StreamError::EmptyStream`] when `n == 0` — the exponent
/// would otherwise divide by zero and return `inf` (or NaN for `m == 0`),
/// silently poisoning every subsequent score. Callers short-circuit the
/// empty stream instead.
pub(crate) fn fennel_alpha(n: usize, m: u64, k: usize, gamma: f64) -> Result<f64, StreamError> {
    if n == 0 {
        return Err(StreamError::EmptyStream);
    }
    Ok(m as f64 * (k as f64).powf(gamma - 1.0) / (n as f64).powf(gamma))
}

/// Flat per-partition balance state: the weights `W_i` and their cached
/// penalties `α·γ·W_i^(γ−1)` laid out in two contiguous `f64` arrays sized
/// to `k`. The penalty is a pure function of the weight, so it is refreshed
/// once per weight *update* (one or two per streamed vertex) rather than
/// recomputed per candidate per vertex — the scoring loop itself never
/// calls `powf`. Both arrays are scanned whole by linear reductions
/// ([`min_part`](FlatParts::min_part), [`FlatScorer::choose`]) that the
/// compiler can unroll and vectorize.
pub(crate) struct FlatParts {
    weights: Vec<f64>,
    penalties: Vec<f64>,
}

impl FlatParts {
    fn new(weights: Vec<f64>, scorer: &FlatScorer) -> Self {
        let penalties = weights.iter().map(|&w| scorer.penalty(w)).collect();
        FlatParts { weights, penalties }
    }

    fn len(&self) -> usize {
        self.weights.len()
    }

    #[inline]
    fn weight(&self, p: PartId) -> f64 {
        self.weights[p as usize]
    }

    /// Sets one part's weight and refreshes its cached penalty.
    #[inline]
    fn set(&mut self, p: PartId, w: f64, scorer: &FlatScorer) {
        self.weights[p as usize] = w;
        self.penalties[p as usize] = scorer.penalty(w);
    }

    /// Adds an assignment's `delta` to one part.
    #[inline]
    fn add(&mut self, p: PartId, delta: f64, scorer: &FlatScorer) {
        self.set(p, self.weights[p as usize] + delta, scorer);
    }

    /// Removes a restreamed vertex's `delta`, clamped at zero: accumulated
    /// rounding error must not leave a drained part slightly negative — a
    /// negative weight would NaN-poison the balance penalty via `powf`.
    #[inline]
    fn remove(&mut self, p: PartId, delta: f64, scorer: &FlatScorer) {
        self.set(p, (self.weights[p as usize] - delta).max(0.0), scorer);
    }

    /// Overwrites this state with a snapshot of another of the same `k`
    /// (reusable-scratch copy — no allocation).
    fn copy_from(&mut self, other: &FlatParts) {
        self.weights.copy_from_slice(&other.weights);
        self.penalties.copy_from_slice(&other.penalties);
    }

    /// Argmin over the flat weight array: the globally lightest part, with
    /// the smallest id winning ties (the order the lazy min-heap this
    /// replaces used to produce).
    #[inline]
    fn min_part(&self) -> PartId {
        let mut best = 0usize;
        let mut best_w = self.weights[0];
        for (p, &w) in self.weights.iter().enumerate().skip(1) {
            if w < best_w {
                best = p;
                best_w = w;
            }
        }
        best as PartId
    }
}

/// The Fennel objective evaluated as one flat pass over all `k` parts.
/// Shared by the sequential pass, the buffered workers, and the
/// commit-barrier repair so every mode applies identical scoring and
/// tie-breaking (higher score, then lighter part, then smaller part id).
///
/// Exactness: scoring every part is equivalent to the scalar scorer's
/// "neighbor parts + lightest part" candidate set. A part with no
/// neighbors of `v` scores the pure penalty `−α·γ·W^(γ−1)`; for `γ ≥ 1`
/// and `α ≥ 0` that is maximized at the minimum weight, and the
/// (weight, id) tie-break then selects exactly the part the lazy heap
/// would have nominated. Score arithmetic is kept bit-for-bit identical
/// to the scalar form (`(α·γ)·W^(γ−1)` — `a*b*c` associates left), so the
/// flat pass reproduces the [`oracle`] choice exactly; the differential
/// proptests below hold the two to byte equality.
pub(crate) struct FlatScorer {
    /// Fused penalty coefficient `α·γ`.
    coef: f64,
    /// Penalty exponent `γ−1`.
    exponent: f64,
    capacity: f64,
}

impl FlatScorer {
    fn new(config: &StreamConfig<'_>) -> Self {
        FlatScorer {
            coef: config.alpha * config.gamma,
            exponent: config.gamma - 1.0,
            capacity: config.capacity,
        }
    }

    /// Balance penalty of one part at weight `w`.
    #[inline]
    fn penalty(&self, w: f64) -> f64 {
        self.coef * w.powf(self.exponent)
    }

    /// Picks the winning part: one branch-predictable pass over the flat
    /// neighbor counts and cached penalties. Parts at capacity are masked
    /// to `−∞` unless they are the lightest part, which always remains a
    /// legal target — the same rule the scalar scorer applied per branch.
    fn choose(&self, nbr_counts: &[u32], parts: &FlatParts, min_part: PartId) -> PartId {
        debug_assert_eq!(nbr_counts.len(), parts.len());
        let mut best_p: PartId = 0;
        let mut best_s = f64::NEG_INFINITY;
        let mut best_w = f64::INFINITY;
        for (p, ((&nbr, &w), &pen)) in nbr_counts
            .iter()
            .zip(&parts.weights)
            .zip(&parts.penalties)
            .enumerate()
        {
            let p = p as PartId;
            let open = w < self.capacity || p == min_part;
            let score = if open {
                nbr as f64 - pen
            } else {
                f64::NEG_INFINITY
            };
            // Ids ascend with the loop, so on a full (score, weight) tie
            // the earlier — smaller — id is kept, completing the scalar
            // scorer's three-level tie-break.
            if score > best_s || (score == best_s && w < best_w) {
                best_s = score;
                best_w = w;
                best_p = p;
            }
        }
        best_p
    }
}

/// Seeds assignment/count/weight state from `config.previous` (restreaming)
/// or all-[`UNASSIGNED`]. Shared by the sequential and buffered paths.
fn seed_state(
    graph: &CsrGraph,
    config: &StreamConfig<'_>,
    weight_delta: &(impl Fn(VertexId) -> f64 + Sync),
) -> (Vec<PartId>, Vec<u64>, Vec<u64>, Vec<f64>) {
    let k = config.num_parts;
    let n = graph.num_vertices();
    let assignment = match config.previous {
        Some(prev) => {
            assert_eq!(prev.len(), n, "previous assignment must cover the graph");
            prev.to_vec()
        }
        None => vec![UNASSIGNED; n],
    };
    let mut vertex_counts = vec![0u64; k];
    let mut edge_counts = vec![0u64; k];
    let mut weights = vec![0f64; k];
    if config.previous.is_some() {
        for v in 0..n as u32 {
            let p = assignment[v as usize];
            if p != UNASSIGNED {
                assert!((p as usize) < k, "previous part id {p} out of range");
                vertex_counts[p as usize] += 1;
                edge_counts[p as usize] += graph.out_degree(v) as u64;
                weights[p as usize] += weight_delta(v);
            }
        }
    }
    (assignment, vertex_counts, edge_counts, weights)
}

/// Runs one streaming pass. `weight_delta(v)` is how much assigning `v`
/// grows its part's balance weight (`1.0` for Fennel; `c + (1−c)·d(v)/d̄`
/// for BPart). Dispatches on [`StreamConfig::parallel`]: the exact
/// sequential pass for one thread, the buffered-parallel pass otherwise.
pub(crate) fn stream_assign(
    graph: &CsrGraph,
    config: &StreamConfig<'_>,
    weight_delta: impl Fn(VertexId) -> f64 + Sync,
) -> StreamOutcome {
    use std::sync::OnceLock;
    static VERTICES: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
    static EDGES: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
    static PASS_NS: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
    static SYNC_NS: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
    static PASSES: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
    // Pass count for the `/progress` view (restreaming schemes run
    // several passes; this is the coarse partition-stage progress signal).
    PASSES
        .get_or_init(|| bpart_obs::metrics::counter("stream.passes"))
        .inc();

    let mut span = bpart_obs::span("stream.pass");
    let start = Instant::now();
    let mut outcome = if config.parallel.threads <= 1 {
        stream_assign_sequential(graph, config, &weight_delta)
    } else {
        buffered::stream_assign_buffered(graph, config, &weight_delta)
    };
    outcome.stats.vertices = config.order.len();
    outcome.stats.edges = config
        .order
        .iter()
        .map(|&v| graph.out_degree(v) as u64)
        .sum();
    outcome.stats.threads = config.parallel.threads.max(1);
    outcome.stats.buffers = outcome.buffers.len();
    outcome.stats.secs = start.elapsed().as_secs_f64();
    outcome.stats.sync_secs = outcome.buffers.iter().map(|b| b.sync_secs).sum();
    span.attr("vertices", outcome.stats.vertices);
    span.attr("threads", outcome.stats.threads);
    span.attr("buffers", outcome.stats.buffers);
    VERTICES
        .get_or_init(|| bpart_obs::metrics::counter("stream.vertices"))
        .add(outcome.stats.vertices as u64);
    EDGES
        .get_or_init(|| bpart_obs::metrics::counter("stream.edges"))
        .add(outcome.stats.edges);
    PASS_NS
        .get_or_init(|| bpart_obs::metrics::counter("stream.pass_ns"))
        .add((outcome.stats.secs * 1e9) as u64);
    SYNC_NS
        .get_or_init(|| bpart_obs::metrics::counter("stream.sync_ns"))
        .add((outcome.stats.sync_secs * 1e9) as u64);
    outcome
}

/// The exact sequential pass (historical behaviour, golden-test stable),
/// placing each vertex with the flat-array reductions of [`FlatScorer`].
fn stream_assign_sequential(
    graph: &CsrGraph,
    config: &StreamConfig<'_>,
    weight_delta: &(impl Fn(VertexId) -> f64 + Sync),
) -> StreamOutcome {
    let k = config.num_parts;
    assert!(k > 0, "need at least one part");

    let (mut assignment, mut vertex_counts, mut edge_counts, weights) =
        seed_state(graph, config, weight_delta);
    let scorer = FlatScorer::new(config);
    let mut parts = FlatParts::new(weights, &scorer);

    // Scratch neighbor tallies: one slot per part plus a trailing trash
    // slot that absorbs unassigned neighbors ([`UNASSIGNED`] ≥ `k`, so
    // `min(k)` routes it there). The per-neighbor tally is branchless —
    // mid-stream the assigned/unassigned branch is a coin flip the
    // predictor loses constantly — and the per-vertex reset is a `k+1`-word
    // memset instead of touched-list bookkeeping.
    let mut nbr_counts = vec![0u32; k + 1];
    let trash = k;

    for &v in config.order {
        // Restreaming: take the vertex out of its old part before scoring.
        let old = assignment[v as usize];
        if old != UNASSIGNED {
            debug_assert!(config.previous.is_some(), "vertex {v} streamed twice");
            assignment[v as usize] = UNASSIGNED;
            vertex_counts[old as usize] -= 1;
            edge_counts[old as usize] -= graph.out_degree(v) as u64;
            parts.remove(old, weight_delta(v), &scorer);
        }

        // Tally already-placed neighbors per part (undirected neighborhood;
        // the two directions as separate slice loops so each vectorizes).
        for &w in graph.out_neighbors(v) {
            let p = assignment[w as usize] as usize;
            nbr_counts[p.min(trash)] += 1;
        }
        for &w in graph.in_neighbors(v) {
            let p = assignment[w as usize] as usize;
            nbr_counts[p.min(trash)] += 1;
        }

        let part = scorer.choose(&nbr_counts[..k], &parts, parts.min_part());
        assignment[v as usize] = part;
        vertex_counts[part as usize] += 1;
        edge_counts[part as usize] += graph.out_degree(v) as u64;
        parts.add(part, weight_delta(v), &scorer);

        nbr_counts.fill(0);
    }

    StreamOutcome {
        assignment,
        vertex_counts,
        edge_counts,
        buffers: Vec::new(),
        stats: StreamStats::default(),
    }
}

/// The pre-flat scalar implementation, retained verbatim as the
/// differential-test oracle: a lazy min-heap nominates the lightest part
/// and only "neighbor parts + min part" are scored, with `powf` evaluated
/// per candidate. The flat path must reproduce its choices bit for bit.
#[cfg(test)]
pub(crate) mod oracle {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Lazy min-tracker over part weights (push on update, pop stale
    /// entries on query). Weights are non-negative, so their IEEE bit
    /// patterns order identically to their values.
    struct MinWeight {
        heap: BinaryHeap<Reverse<(u64, PartId)>>,
    }

    impl MinWeight {
        fn new(weights: &[f64]) -> Self {
            let heap = weights
                .iter()
                .enumerate()
                .map(|(p, &w)| Reverse((w.to_bits(), p as PartId)))
                .collect();
            MinWeight { heap }
        }

        fn push(&mut self, part: PartId, weight: f64) {
            self.heap.push(Reverse((weight.to_bits(), part)));
        }

        fn min_part(&mut self, weights: &[f64]) -> PartId {
            while let Some(&Reverse((bits, p))) = self.heap.peek() {
                if weights[p as usize].to_bits() == bits {
                    return p;
                }
                self.heap.pop();
            }
            unreachable!("heap always holds one live entry per part");
        }
    }

    struct Scorer {
        alpha: f64,
        gamma: f64,
        capacity: f64,
    }

    impl Scorer {
        fn consider(
            &self,
            p: PartId,
            nbr: u32,
            weights: &[f64],
            min_part: PartId,
            best: &mut Option<(f64, f64, PartId)>,
        ) {
            let w = weights[p as usize];
            if w >= self.capacity && p != min_part {
                return;
            }
            let score = nbr as f64 - self.alpha * self.gamma * w.powf(self.gamma - 1.0);
            let better = match *best {
                None => true,
                Some((bs, bw, bp)) => {
                    score > bs || (score == bs && (w < bw || (w == bw && p < bp)))
                }
            };
            if better {
                *best = Some((score, w, p));
            }
        }

        fn choose(
            &self,
            touched: &[PartId],
            nbr_counts: &[u32],
            weights: &[f64],
            min_part: PartId,
        ) -> PartId {
            let mut best: Option<(f64, f64, PartId)> = None; // (score, weight, part)
            for &p in touched {
                self.consider(p, nbr_counts[p as usize], weights, min_part, &mut best);
            }
            self.consider(
                min_part,
                nbr_counts[min_part as usize],
                weights,
                min_part,
                &mut best,
            );
            let (_, _, part) = best.expect("at least the min-weight part is considered");
            part
        }
    }

    /// The historical sequential pass, byte-for-byte the pre-flat logic.
    pub(crate) fn stream_sequential(
        graph: &CsrGraph,
        config: &StreamConfig<'_>,
        weight_delta: &(impl Fn(VertexId) -> f64 + Sync),
    ) -> StreamOutcome {
        let k = config.num_parts;
        assert!(k > 0, "need at least one part");

        let (mut assignment, mut vertex_counts, mut edge_counts, mut weights) =
            seed_state(graph, config, weight_delta);
        let mut min_tracker = MinWeight::new(&weights);
        let scorer = Scorer {
            alpha: config.alpha,
            gamma: config.gamma,
            capacity: config.capacity,
        };

        let mut nbr_counts = vec![0u32; k];
        let mut touched: Vec<PartId> = Vec::new();

        for &v in config.order {
            let old = assignment[v as usize];
            if old != UNASSIGNED {
                assignment[v as usize] = UNASSIGNED;
                vertex_counts[old as usize] -= 1;
                edge_counts[old as usize] -= graph.out_degree(v) as u64;
                weights[old as usize] = (weights[old as usize] - weight_delta(v)).max(0.0);
                min_tracker.push(old, weights[old as usize]);
            }

            for &w in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                let p = assignment[w as usize];
                if p != UNASSIGNED {
                    if nbr_counts[p as usize] == 0 {
                        touched.push(p);
                    }
                    nbr_counts[p as usize] += 1;
                }
            }

            let min_part = min_tracker.min_part(&weights);
            let part = scorer.choose(&touched, &nbr_counts, &weights, min_part);
            assignment[v as usize] = part;
            vertex_counts[part as usize] += 1;
            edge_counts[part as usize] += graph.out_degree(v) as u64;
            weights[part as usize] += weight_delta(v);
            min_tracker.push(part, weights[part as usize]);

            for &p in &touched {
                nbr_counts[p as usize] = 0;
            }
            touched.clear();
        }

        StreamOutcome {
            assignment,
            vertex_counts,
            edge_counts,
            buffers: Vec::new(),
            stats: StreamStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::generate;

    fn run_fennel_like(graph: &CsrGraph, k: usize) -> StreamOutcome {
        let order: Vec<VertexId> = graph.vertices().collect();
        let gamma = 1.5;
        let alpha = fennel_alpha(graph.num_vertices(), graph.num_edges() as u64, k, gamma)
            .expect("non-empty graph");
        let config = StreamConfig {
            num_parts: k,
            gamma,
            alpha,
            capacity: 1.1 * graph.num_vertices() as f64 / k as f64,
            order: &order,
            previous: None,
            parallel: ParallelConfig::default(),
        };
        stream_assign(graph, &config, |_| 1.0)
    }

    #[test]
    fn covers_all_streamed_vertices() {
        let g = generate::erdos_renyi(200, 1_000, 3);
        let out = run_fennel_like(&g, 4);
        assert!(out.assignment.iter().all(|&p| p != UNASSIGNED));
        assert_eq!(out.vertex_counts.iter().sum::<u64>(), 200);
        assert_eq!(out.edge_counts.iter().sum::<u64>(), 1_000);
    }

    #[test]
    fn capacity_bounds_part_sizes() {
        let g = generate::erdos_renyi(400, 2_000, 5);
        let out = run_fennel_like(&g, 4);
        let cap = (1.1_f64 * 400.0 / 4.0).ceil() as u64 + 1;
        for &c in &out.vertex_counts {
            assert!(c <= cap, "part size {c} exceeds capacity {cap}");
        }
    }

    #[test]
    fn clique_stays_together() {
        // A 6-clique plus 18 isolated vertices, k=4: the clique should land
        // in one part because neighbor affinity dominates.
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in 0..6u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(24, &edges);
        let out = run_fennel_like(&g, 4);
        let first = out.assignment[0];
        assert!(
            (1..6).all(|v| out.assignment[v] == first),
            "clique split: {:?}",
            &out.assignment[..6]
        );
    }

    #[test]
    fn subset_stream_leaves_rest_unassigned() {
        let g = generate::ring(10);
        let order = vec![2, 3, 4];
        let config = StreamConfig {
            num_parts: 2,
            gamma: 1.5,
            alpha: fennel_alpha(3, 3, 2, 1.5).unwrap(),
            capacity: 2.0,
            order: &order,
            previous: None,
            parallel: ParallelConfig::default(),
        };
        let out = stream_assign(&g, &config, |_| 1.0);
        assert_eq!(out.assignment[0], UNASSIGNED);
        assert_ne!(out.assignment[3], UNASSIGNED);
        assert_eq!(out.vertex_counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn restreaming_starts_from_previous_and_stays_valid() {
        let g = generate::erdos_renyi(300, 2_400, 4);
        let k = 4;
        let order: Vec<VertexId> = g.vertices().collect();
        let base = StreamConfig {
            num_parts: k,
            gamma: 1.5,
            alpha: fennel_alpha(300, 2_400, k, 1.5).unwrap(),
            capacity: 1.1 * 300.0 / k as f64,
            order: &order,
            previous: None,
            parallel: ParallelConfig::default(),
        };
        let first = stream_assign(&g, &base, |_| 1.0);
        let again = StreamConfig {
            previous: Some(&first.assignment),
            ..base
        };
        let second = stream_assign(&g, &again, |_| 1.0);
        assert!(second.assignment.iter().all(|&p| p != UNASSIGNED));
        assert_eq!(second.vertex_counts.iter().sum::<u64>(), 300);
        assert_eq!(second.edge_counts.iter().sum::<u64>(), 2_400);
        // Restreaming sees the full neighborhood, so internal affinity can
        // only grow: count vertices placed with at least one same-part
        // neighbor.
        let happy = |assign: &[PartId]| {
            g.vertices()
                .filter(|&v| {
                    g.out_neighbors(v)
                        .iter()
                        .chain(g.in_neighbors(v))
                        .any(|&w| assign[w as usize] == assign[v as usize])
                })
                .count()
        };
        assert!(happy(&second.assignment) >= happy(&first.assignment));
    }

    #[test]
    fn weighted_delta_equalizes_weighted_indicator() {
        // BPart-style delta on a skewed graph: parts end with unequal vertex
        // counts but near-equal indicator (vertex count + edges/d̄)/2.
        let g = generate::twitter_like().generate_scaled(0.01);
        let n = g.num_vertices();
        let m = g.num_edges() as u64;
        let d_bar = g.average_degree();
        let k = 8;
        let order: Vec<VertexId> = g.vertices().collect();
        let config = StreamConfig {
            num_parts: k,
            gamma: 1.5,
            alpha: fennel_alpha(n, m, k, 1.5).unwrap(),
            capacity: 1.15 * n as f64 / k as f64,
            order: &order,
            previous: None,
            parallel: ParallelConfig::default(),
        };
        let out = stream_assign(&g, &config, |v| 0.5 + 0.5 * g.out_degree(v) as f64 / d_bar);
        let weights: Vec<f64> = (0..k)
            .map(|p| 0.5 * out.vertex_counts[p] as f64 + 0.5 * out.edge_counts[p] as f64 / d_bar)
            .collect();
        let max = weights.iter().cloned().fold(f64::MIN, f64::max);
        let mean = weights.iter().sum::<f64>() / k as f64;
        assert!(
            (max - mean) / mean < 0.2,
            "weighted indicator should be near-balanced: {weights:?}"
        );
    }

    #[test]
    fn empty_stream_alpha_is_a_typed_error() {
        assert_eq!(fennel_alpha(0, 0, 4, 1.5), Err(StreamError::EmptyStream));
        assert_eq!(fennel_alpha(0, 10, 4, 1.5), Err(StreamError::EmptyStream));
        let msg = StreamError::EmptyStream.to_string();
        assert!(msg.contains("empty"), "{msg}");
        // Non-empty streams stay finite.
        let a = fennel_alpha(10, 20, 4, 1.5).unwrap();
        assert!(a.is_finite() && a > 0.0);
    }

    #[test]
    fn sequential_stats_report_throughput_without_buffers() {
        let g = generate::erdos_renyi(200, 1_000, 3);
        let out = run_fennel_like(&g, 4);
        assert_eq!(out.stats.vertices, 200);
        assert_eq!(out.stats.edges, 1_000);
        assert_eq!(out.stats.threads, 1);
        assert_eq!(out.stats.buffers, 0);
        assert!(out.buffers.is_empty());
        assert!(out.stats.secs >= 0.0);
        assert_eq!(out.stats.sync_secs, 0.0);
    }

    mod differential {
        use super::super::*;
        use bpart_graph::generate;
        use proptest::prelude::*;

        fn assert_outcomes_match(flat: &StreamOutcome, scalar: &StreamOutcome) {
            assert_eq!(flat.assignment, scalar.assignment);
            assert_eq!(flat.vertex_counts, scalar.vertex_counts);
            assert_eq!(flat.edge_counts, scalar.edge_counts);
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The flat-array scorer is bit-identical to the scalar oracle
            /// across random graphs, part counts, and α/γ settings —
            /// including a restream round over the committed assignment.
            #[test]
            fn flat_scorer_matches_scalar_oracle(
                seed in 0u64..10_000,
                k in 1usize..12,
                gamma in 1.0f64..2.5,
                alpha_scale in 0.1f64..8.0,
                load in 1.02f64..1.4,
            ) {
                let g = generate::erdos_renyi(120, 900, seed);
                let order: Vec<VertexId> = g.vertices().collect();
                let alpha = fennel_alpha(120, 900, k, gamma).unwrap() * alpha_scale;
                let config = StreamConfig {
                    num_parts: k,
                    gamma,
                    alpha,
                    capacity: load * 120.0 / k as f64,
                    order: &order,
                    previous: None,
                    parallel: ParallelConfig::default(),
                };
                let flat = stream_assign_sequential(&g, &config, &|_| 1.0);
                let scalar = oracle::stream_sequential(&g, &config, &|_| 1.0);
                assert_outcomes_match(&flat, &scalar);

                let again = StreamConfig {
                    previous: Some(&flat.assignment),
                    ..config
                };
                let flat2 = stream_assign_sequential(&g, &again, &|_| 1.0);
                let scalar2 = oracle::stream_sequential(&g, &again, &|_| 1.0);
                assert_outcomes_match(&flat2, &scalar2);
            }

            /// Same differential contract under BPart's two-dimensional
            /// weight delta (fractional, degree-dependent weights).
            #[test]
            fn flat_scorer_matches_oracle_with_weighted_delta(
                seed in 0u64..10_000,
                k in 2usize..10,
                gamma in 1.0f64..2.0,
                c in 0.1f64..0.9,
            ) {
                let g = generate::erdos_renyi(150, 1_200, seed);
                let d_bar = g.average_degree();
                let order: Vec<VertexId> = g.vertices().collect();
                let config = StreamConfig {
                    num_parts: k,
                    gamma,
                    alpha: fennel_alpha(150, 1_200, k, gamma).unwrap(),
                    capacity: 1.1 * 150.0 / k as f64,
                    order: &order,
                    previous: None,
                    parallel: ParallelConfig::default(),
                };
                let delta = |v: VertexId| c + (1.0 - c) * g.out_degree(v) as f64 / d_bar;
                let flat = stream_assign_sequential(&g, &config, &delta);
                let scalar = oracle::stream_sequential(&g, &config, &delta);
                assert_outcomes_match(&flat, &scalar);
            }
        }
    }

    #[test]
    fn stream_stats_merge_accumulates() {
        let mut a = StreamStats {
            vertices: 100,
            edges: 600,
            buffers: 2,
            secs: 1.0,
            sync_secs: 0.25,
            threads: 2,
        };
        let b = StreamStats {
            vertices: 50,
            edges: 300,
            buffers: 1,
            secs: 0.5,
            sync_secs: 0.25,
            threads: 4,
        };
        a.merge(&b);
        assert_eq!(a.vertices, 150);
        assert_eq!(a.edges, 900);
        assert_eq!(a.buffers, 3);
        assert_eq!(a.threads, 4);
        assert!((a.vertices_per_sec() - 100.0).abs() < 1e-9);
        assert!((a.edges_per_sec() - 600.0).abs() < 1e-9);
        assert!((a.sync_stall_ratio() - (0.5 / 1.5)).abs() < 1e-9);
    }
}
