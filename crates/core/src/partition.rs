//! The [`Partition`] type: a vertex-disjoint assignment of a graph to `k`
//! parts, with per-part vertex and edge tallies maintained eagerly.
//!
//! Edge accounting follows the paper (and Gemini/KnightKing): each vertex
//! owns its out-edges, so part `i`'s edge count `|E_i|` is the sum of
//! out-degrees of the vertices assigned to it.

use bpart_graph::{CsrGraph, VertexId};

/// Partition (subgraph/machine) identifier.
pub type PartId = u32;

/// A complete assignment of every vertex to one of `k` parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    num_parts: usize,
    assignment: Vec<PartId>,
    vertex_counts: Vec<u64>,
    edge_counts: Vec<u64>,
}

impl Partition {
    /// Wraps an assignment vector, tallying per-part vertex and edge counts
    /// against `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the vertex count or any
    /// part id is `>= num_parts`.
    pub fn from_assignment(graph: &CsrGraph, num_parts: usize, assignment: Vec<PartId>) -> Self {
        assert_eq!(
            assignment.len(),
            graph.num_vertices(),
            "assignment must cover every vertex"
        );
        assert!(num_parts > 0, "need at least one part");
        let mut vertex_counts = vec![0u64; num_parts];
        let mut edge_counts = vec![0u64; num_parts];
        for (v, &p) in assignment.iter().enumerate() {
            assert!(
                (p as usize) < num_parts,
                "part id {p} out of range (k = {num_parts})"
            );
            vertex_counts[p as usize] += 1;
            edge_counts[p as usize] += graph.out_degree(v as VertexId) as u64;
        }
        Partition {
            num_parts,
            assignment,
            vertex_counts,
            edge_counts,
        }
    }

    /// Number of parts `k`.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of vertices covered.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// The part that owns vertex `v`.
    #[inline]
    pub fn part_of(&self, v: VertexId) -> PartId {
        self.assignment[v as usize]
    }

    /// The full vertex → part map.
    #[inline]
    pub fn assignment(&self) -> &[PartId] {
        &self.assignment
    }

    /// `|V_i|` for every part.
    #[inline]
    pub fn vertex_counts(&self) -> &[u64] {
        &self.vertex_counts
    }

    /// `|E_i|` (out-degree sums) for every part.
    #[inline]
    pub fn edge_counts(&self) -> &[u64] {
        &self.edge_counts
    }

    /// Vertices owned by part `p`, ascending.
    pub fn members(&self, p: PartId) -> Vec<VertexId> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(v, &q)| (q == p).then_some(v as VertexId))
            .collect()
    }

    /// All parts' member lists in one pass (cheaper than `k` × [`members`]).
    ///
    /// [`members`]: Partition::members
    pub fn all_members(&self) -> Vec<Vec<VertexId>> {
        let mut out: Vec<Vec<VertexId>> = self
            .vertex_counts
            .iter()
            .map(|&c| Vec::with_capacity(c as usize))
            .collect();
        for (v, &p) in self.assignment.iter().enumerate() {
            out[p as usize].push(v as VertexId);
        }
        out
    }

    /// Checks internal consistency against `graph`: tallies match the
    /// assignment and every vertex is covered. Intended for tests and
    /// debug assertions.
    pub fn validate(&self, graph: &CsrGraph) -> Result<(), String> {
        if self.assignment.len() != graph.num_vertices() {
            return Err(format!(
                "assignment covers {} vertices, graph has {}",
                self.assignment.len(),
                graph.num_vertices()
            ));
        }
        let rebuilt = Partition::from_assignment(graph, self.num_parts, self.assignment.clone());
        if rebuilt.vertex_counts != self.vertex_counts {
            return Err("vertex tallies inconsistent".into());
        }
        if rebuilt.edge_counts != self.edge_counts {
            return Err("edge tallies inconsistent".into());
        }
        let covered: u64 = self.vertex_counts.iter().sum();
        if covered != graph.num_vertices() as u64 {
            return Err(format!("tallies cover {covered} vertices"));
        }
        let edges: u64 = self.edge_counts.iter().sum();
        if edges != graph.num_edges() as u64 {
            return Err(format!(
                "tallies cover {edges} edges, graph has {}",
                graph.num_edges()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::generate;

    #[test]
    fn tallies_match_assignment() {
        let g = generate::star(4); // hub 0 has degree 4, spokes degree 1
        let p = Partition::from_assignment(&g, 2, vec![0, 1, 1, 0, 0]);
        assert_eq!(p.vertex_counts(), &[3, 2]);
        assert_eq!(p.edge_counts(), &[4 + 1 + 1, 1 + 1]);
        p.validate(&g).unwrap();
    }

    #[test]
    fn members_listing() {
        let g = generate::ring(4);
        let p = Partition::from_assignment(&g, 2, vec![0, 1, 0, 1]);
        assert_eq!(p.members(0), vec![0, 2]);
        assert_eq!(p.members(1), vec![1, 3]);
        assert_eq!(p.all_members(), vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn part_of_lookup() {
        let g = generate::ring(3);
        let p = Partition::from_assignment(&g, 3, vec![2, 0, 1]);
        assert_eq!(p.part_of(0), 2);
        assert_eq!(p.part_of(2), 1);
        assert_eq!(p.num_parts(), 3);
        assert_eq!(p.num_vertices(), 3);
    }

    #[test]
    fn empty_parts_are_allowed() {
        let g = generate::ring(3);
        let p = Partition::from_assignment(&g, 5, vec![0, 0, 0]);
        assert_eq!(p.vertex_counts(), &[3, 0, 0, 0, 0]);
        p.validate(&g).unwrap();
    }

    #[test]
    fn validate_catches_wrong_graph() {
        let g = generate::ring(4);
        let p = Partition::from_assignment(&g, 2, vec![0, 1, 0, 1]);
        let other = generate::ring(5);
        assert!(p.validate(&other).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn part_id_out_of_range_panics() {
        let g = generate::ring(3);
        Partition::from_assignment(&g, 2, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "cover every vertex")]
    fn short_assignment_panics() {
        let g = generate::ring(3);
        Partition::from_assignment(&g, 2, vec![0, 1]);
    }
}
