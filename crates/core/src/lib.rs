//! # bpart-core — two-dimensional balanced graph partitioning
//!
//! This crate implements the primary contribution of *"Towards Fast
//! Large-scale Graph Analysis via Two-dimensional Balanced Partitioning"*
//! (ICPP '22): the **BPart** partitioner, together with the streaming
//! baselines it is evaluated against and the balance metrics the paper
//! reports.
//!
//! ## Partitioners
//!
//! All partitioners implement the [`Partitioner`] trait and produce a
//! [`Partition`] — a vertex-disjoint (edge-cut) assignment where each vertex
//! owns its out-edges:
//!
//! * [`ChunkV`] — contiguous chunks with equal vertex counts
//!   (Gemini, GridGraph),
//! * [`ChunkE`] — contiguous chunks with equal out-degree
//!   sums (KnightKing, GraphChi),
//! * [`HashPartitioner`] — seeded random assignment
//!   (Giraph, Pregel),
//! * [`Fennel`] — single-pass streaming with the
//!   neighborhood-minus-penalty score of Tsourakakis et al.,
//! * [`BPart`] — the paper's two-phase scheme: over-split with
//!   a weighted two-dimensional balance indicator, then pair-and-combine in
//!   layers until both dimensions balance.
//!
//! ## Metrics
//!
//! [`metrics`] provides the paper's balance measures — bias
//! `(max − mean)/mean` and Jain's fairness index — plus the edge-cut ratio
//! and the inter-piece connectivity matrix of §3.3.
//!
//! ## Example
//!
//! ```
//! use bpart_core::prelude::*;
//! use bpart_graph::generate;
//!
//! let g = generate::twitter_like().generate_scaled(0.01);
//! let partition = BPart::default().partition(&g, 4);
//! let q = metrics::quality(&g, &partition);
//! assert!(q.vertex_bias < 0.25 && q.edge_bias < 0.25);
//! ```

pub mod bpart;
pub mod chunk;
pub mod fennel;
pub mod gd;
pub mod hash;
pub mod ldg;
pub mod metrics;
pub mod partition;
pub mod partitioner;
pub mod pio;
pub mod stream;
mod streaming;
pub mod vcut;

pub use bpart::{BPart, BPartConfig};
pub use chunk::{ChunkE, ChunkV};
pub use fennel::{Fennel, FennelConfig};
pub use gd::{GdConfig, GdPartitioner};
pub use hash::HashPartitioner;
pub use ldg::{Ldg, LdgConfig};
pub use partition::{PartId, Partition};
pub use partitioner::Partitioner;
pub use stream::StreamOrder;
pub use streaming::pipeline::{
    ooc_cut_ratio, stream_assign_ooc, OocConfig, OocOutcome, OocScheme, PipelineStats, StageStats,
    DEFAULT_BATCH_VERTICES, DEFAULT_CHANNEL_CAPACITY,
};
pub use streaming::{BufferRecord, ParallelConfig, StreamError, StreamStats, DEFAULT_BUFFER_SIZE};

/// Convenient glob import for examples and the harness.
pub mod prelude {
    pub use crate::bpart::{BPart, BPartConfig};
    pub use crate::chunk::{ChunkE, ChunkV};
    pub use crate::fennel::{Fennel, FennelConfig};
    pub use crate::gd::{GdConfig, GdPartitioner};
    pub use crate::hash::HashPartitioner;
    pub use crate::ldg::{Ldg, LdgConfig};
    pub use crate::metrics;
    pub use crate::partition::{PartId, Partition};
    pub use crate::partitioner::Partitioner;
    pub use crate::stream::StreamOrder;
    pub use crate::streaming::{ParallelConfig, StreamStats};
}
