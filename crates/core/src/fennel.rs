//! The Fennel streaming partitioner (Tsourakakis et al., WSDM '14; §2.2 of
//! the BPart paper).
//!
//! Each streamed vertex is assigned to the part maximizing
//! `|V_i ∩ N(v)| − α·γ·|V_i|^(γ−1)`: the neighbor-affinity term minimizes
//! edge cuts, the penalty term balances the *vertex counts* — which is
//! exactly why Fennel leaves edge counts skewed on power-law graphs
//! (Limitation #1 in the paper).

use crate::partition::Partition;
use crate::partitioner::Partitioner;
use crate::stream::StreamOrder;
use crate::streaming::{fennel_alpha, stream_assign, ParallelConfig, StreamConfig, StreamStats};
use bpart_graph::CsrGraph;

/// Tunables for [`Fennel`].
#[derive(Clone, Copy, Debug)]
pub struct FennelConfig {
    /// Penalty exponent γ (paper default 1.5).
    pub gamma: f64,
    /// Override for α; `None` computes the classic `m·k^(γ−1)/n^γ`.
    pub alpha: Option<f64>,
    /// Hard per-part vertex budget as a multiple of `n/k` (default 1.1).
    pub load_factor: f64,
    /// Vertex visit order.
    pub order: StreamOrder,
    /// Number of streaming passes (ReFennel restreaming); passes after the
    /// first rescore every vertex against the complete assignment, which
    /// typically lowers the cut a few points at linear extra cost.
    pub passes: usize,
    /// Worker-pool shape: sequential by default, buffered-parallel when
    /// `threads > 1` (see [`ParallelConfig`]).
    pub parallel: ParallelConfig,
}

impl Default for FennelConfig {
    fn default() -> Self {
        FennelConfig {
            gamma: 1.5,
            alpha: None,
            load_factor: 1.1,
            order: StreamOrder::Natural,
            passes: 1,
            parallel: ParallelConfig::default(),
        }
    }
}

/// The Fennel streaming partitioner.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fennel {
    config: FennelConfig,
}

impl Fennel {
    /// Fennel with explicit tunables.
    pub fn new(config: FennelConfig) -> Self {
        Fennel { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FennelConfig {
        &self.config
    }
}

impl Partitioner for Fennel {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        self.partition_with_stats(graph, num_parts).0
    }

    fn partition_with_stats(&self, graph: &CsrGraph, num_parts: usize) -> (Partition, StreamStats) {
        assert!(num_parts > 0, "need at least one part");
        let n = graph.num_vertices();
        let m = graph.num_edges() as u64;
        let cfg = &self.config;
        assert!(cfg.passes >= 1, "need at least one streaming pass");
        if n == 0 {
            // Typed empty-stream guard: α is undefined over zero vertices
            // (fennel_alpha would report StreamError::EmptyStream), and the
            // empty partition is trivially correct.
            return (
                Partition::from_assignment(graph, num_parts, Vec::new()),
                StreamStats::default(),
            );
        }
        let alpha = match cfg.alpha {
            Some(a) => a,
            None => fennel_alpha(n, m, num_parts, cfg.gamma).expect("n > 0 checked above"),
        };
        let order = cfg.order.order(graph);
        let mut previous: Option<Vec<crate::partition::PartId>> = None;
        let mut stats = StreamStats::default();
        for _ in 0..cfg.passes {
            let outcome = stream_assign(
                graph,
                &StreamConfig {
                    num_parts,
                    gamma: cfg.gamma,
                    alpha,
                    capacity: cfg.load_factor * n as f64 / num_parts as f64,
                    order: &order,
                    previous: previous.as_deref(),
                    parallel: cfg.parallel,
                },
                |_| 1.0,
            );
            stats.merge(&outcome.stats);
            previous = Some(outcome.assignment);
        }
        (
            Partition::from_assignment(graph, num_parts, previous.expect("at least one pass")),
            stats,
        )
    }

    fn name(&self) -> &'static str {
        "Fennel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use bpart_graph::generate;

    #[test]
    fn balances_vertices_within_load_factor() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let k = 8;
        let p = Fennel::default().partition(&g, k);
        p.validate(&g).unwrap();
        let cap = (1.1 * g.num_vertices() as f64 / k as f64).ceil() as u64 + 1;
        for &c in p.vertex_counts() {
            assert!(c <= cap, "{c} > {cap}");
        }
        assert!(metrics::bias(p.vertex_counts()) < 0.15);
    }

    #[test]
    fn edges_stay_imbalanced_on_power_law_graphs() {
        // The limitation BPart fixes: Fennel's edge counts are skewed.
        let g = generate::twitter_like().generate_scaled(0.1);
        let p = Fennel::default().partition(&g, 8);
        assert!(
            metrics::bias(p.edge_counts()) > 0.5,
            "edge bias = {}",
            metrics::bias(p.edge_counts())
        );
    }

    #[test]
    fn cuts_fewer_edges_than_hash() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let fennel_cut = metrics::edge_cut_ratio(&g, &Fennel::default().partition(&g, 8));
        let hash_cut = metrics::edge_cut_ratio(
            &g,
            &crate::hash::HashPartitioner::default().partition(&g, 8),
        );
        assert!(
            fennel_cut < hash_cut * 0.8,
            "fennel {fennel_cut} should beat hash {hash_cut}"
        );
    }

    #[test]
    fn deterministic() {
        let g = generate::lj_like().generate_scaled(0.01);
        let a = Fennel::default().partition(&g, 4);
        let b = Fennel::default().partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn respects_custom_alpha_and_order() {
        let g = generate::lj_like().generate_scaled(0.01);
        let custom = Fennel::new(FennelConfig {
            alpha: Some(5.0),
            order: StreamOrder::Random(9),
            ..Default::default()
        });
        let p = custom.partition(&g, 4);
        p.validate(&g).unwrap();
        assert_ne!(p, Fennel::default().partition(&g, 4));
    }

    #[test]
    fn restreaming_does_not_hurt_the_cut() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let one = Fennel::default().partition(&g, 8);
        let three = Fennel::new(FennelConfig {
            passes: 3,
            ..Default::default()
        })
        .partition(&g, 8);
        three.validate(&g).unwrap();
        let cut1 = metrics::edge_cut_ratio(&g, &one);
        let cut3 = metrics::edge_cut_ratio(&g, &three);
        assert!(
            cut3 <= cut1 + 0.02,
            "restreamed cut {cut3} vs single-pass {cut1}"
        );
        // restreamed vertex balance still respects the cap
        let cap = (1.1_f64 * g.num_vertices() as f64 / 8.0).ceil() as u64 + 1;
        assert!(three.vertex_counts().iter().all(|&c| c <= cap));
    }

    #[test]
    fn empty_graph_short_circuits_the_undefined_alpha() {
        let g = bpart_graph::CsrGraph::from_edges(0, &[]);
        let p = Fennel::default().partition(&g, 4);
        assert_eq!(p.vertex_counts(), &[0, 0, 0, 0]);
        let (_, stats) = Fennel::default().partition_with_stats(&g, 4);
        assert_eq!(stats.vertices, 0);
    }

    #[test]
    fn parallel_mode_is_deterministic_and_balanced() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let k = 8;
        // Buffer ≈ 6% of the stream, matching the deployed buffer/graph
        // ratio (DEFAULT_BUFFER_SIZE vs benchmark-scale vertex counts); the
        // quality envelope is only meaningful at realistic ratios.
        let make = |threads| {
            Fennel::new(FennelConfig {
                parallel: crate::streaming::ParallelConfig {
                    threads,
                    buffer_size: 128,
                },
                ..Default::default()
            })
        };
        let a = make(4).partition(&g, k);
        let b = make(4).partition(&g, k);
        assert_eq!(a, b, "parallel run must be deterministic");
        a.validate(&g).unwrap();
        let cap = (1.1 * g.num_vertices() as f64 / k as f64).ceil() as u64 + 1;
        assert!(a.vertex_counts().iter().all(|&c| c <= cap));
        // Quality envelope versus the sequential baseline.
        let seq_cut = metrics::edge_cut_ratio(&g, &Fennel::default().partition(&g, k));
        let par_cut = metrics::edge_cut_ratio(&g, &a);
        assert!(
            par_cut <= seq_cut * 1.05 + 0.01,
            "parallel cut {par_cut} vs sequential {seq_cut}"
        );
    }

    #[test]
    fn parallel_stats_expose_buffer_telemetry() {
        let g = generate::lj_like().generate_scaled(0.01);
        let f = Fennel::new(FennelConfig {
            parallel: crate::streaming::ParallelConfig {
                threads: 2,
                buffer_size: 256,
            },
            ..Default::default()
        });
        let (p, stats) = f.partition_with_stats(&g, 4);
        p.validate(&g).unwrap();
        assert_eq!(stats.vertices, g.num_vertices());
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.buffers, g.num_vertices().div_ceil(256));
        assert!(stats.sync_secs <= stats.secs);
        assert!(stats.vertices_per_sec() > 0.0);
    }

    #[test]
    fn single_part_trivial() {
        let g = generate::ring(10);
        let p = Fennel::default().partition(&g, 1);
        assert_eq!(p.vertex_counts(), &[10]);
        assert_eq!(metrics::edge_cut_ratio(&g, &p), 0.0);
    }

    #[test]
    fn k_larger_than_n() {
        let g = generate::ring(3);
        let p = Fennel::default().partition(&g, 8);
        p.validate(&g).unwrap();
    }
}
