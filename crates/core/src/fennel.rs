//! The Fennel streaming partitioner (Tsourakakis et al., WSDM '14; §2.2 of
//! the BPart paper).
//!
//! Each streamed vertex is assigned to the part maximizing
//! `|V_i ∩ N(v)| − α·γ·|V_i|^(γ−1)`: the neighbor-affinity term minimizes
//! edge cuts, the penalty term balances the *vertex counts* — which is
//! exactly why Fennel leaves edge counts skewed on power-law graphs
//! (Limitation #1 in the paper).

use crate::partition::Partition;
use crate::partitioner::Partitioner;
use crate::stream::StreamOrder;
use crate::streaming::{fennel_alpha, stream_assign, StreamConfig};
use bpart_graph::CsrGraph;

/// Tunables for [`Fennel`].
#[derive(Clone, Copy, Debug)]
pub struct FennelConfig {
    /// Penalty exponent γ (paper default 1.5).
    pub gamma: f64,
    /// Override for α; `None` computes the classic `m·k^(γ−1)/n^γ`.
    pub alpha: Option<f64>,
    /// Hard per-part vertex budget as a multiple of `n/k` (default 1.1).
    pub load_factor: f64,
    /// Vertex visit order.
    pub order: StreamOrder,
    /// Number of streaming passes (ReFennel restreaming); passes after the
    /// first rescore every vertex against the complete assignment, which
    /// typically lowers the cut a few points at linear extra cost.
    pub passes: usize,
}

impl Default for FennelConfig {
    fn default() -> Self {
        FennelConfig {
            gamma: 1.5,
            alpha: None,
            load_factor: 1.1,
            order: StreamOrder::Natural,
            passes: 1,
        }
    }
}

/// The Fennel streaming partitioner.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fennel {
    config: FennelConfig,
}

impl Fennel {
    /// Fennel with explicit tunables.
    pub fn new(config: FennelConfig) -> Self {
        Fennel { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FennelConfig {
        &self.config
    }
}

impl Partitioner for Fennel {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        assert!(num_parts > 0, "need at least one part");
        let n = graph.num_vertices();
        let m = graph.num_edges() as u64;
        let cfg = &self.config;
        assert!(cfg.passes >= 1, "need at least one streaming pass");
        let alpha = cfg
            .alpha
            .unwrap_or_else(|| fennel_alpha(n, m, num_parts, cfg.gamma));
        let order = cfg.order.order(graph);
        let mut previous: Option<Vec<crate::partition::PartId>> = None;
        for _ in 0..cfg.passes {
            let outcome = stream_assign(
                graph,
                &StreamConfig {
                    num_parts,
                    gamma: cfg.gamma,
                    alpha,
                    capacity: cfg.load_factor * n as f64 / num_parts as f64,
                    order: &order,
                    previous: previous.as_deref(),
                },
                |_| 1.0,
            );
            previous = Some(outcome.assignment);
        }
        Partition::from_assignment(graph, num_parts, previous.expect("at least one pass"))
    }

    fn name(&self) -> &'static str {
        "Fennel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use bpart_graph::generate;

    #[test]
    fn balances_vertices_within_load_factor() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let k = 8;
        let p = Fennel::default().partition(&g, k);
        p.validate(&g).unwrap();
        let cap = (1.1 * g.num_vertices() as f64 / k as f64).ceil() as u64 + 1;
        for &c in p.vertex_counts() {
            assert!(c <= cap, "{c} > {cap}");
        }
        assert!(metrics::bias(p.vertex_counts()) < 0.15);
    }

    #[test]
    fn edges_stay_imbalanced_on_power_law_graphs() {
        // The limitation BPart fixes: Fennel's edge counts are skewed.
        let g = generate::twitter_like().generate_scaled(0.1);
        let p = Fennel::default().partition(&g, 8);
        assert!(
            metrics::bias(p.edge_counts()) > 0.5,
            "edge bias = {}",
            metrics::bias(p.edge_counts())
        );
    }

    #[test]
    fn cuts_fewer_edges_than_hash() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let fennel_cut = metrics::edge_cut_ratio(&g, &Fennel::default().partition(&g, 8));
        let hash_cut = metrics::edge_cut_ratio(
            &g,
            &crate::hash::HashPartitioner::default().partition(&g, 8),
        );
        assert!(
            fennel_cut < hash_cut * 0.8,
            "fennel {fennel_cut} should beat hash {hash_cut}"
        );
    }

    #[test]
    fn deterministic() {
        let g = generate::lj_like().generate_scaled(0.01);
        let a = Fennel::default().partition(&g, 4);
        let b = Fennel::default().partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn respects_custom_alpha_and_order() {
        let g = generate::lj_like().generate_scaled(0.01);
        let custom = Fennel::new(FennelConfig {
            alpha: Some(5.0),
            order: StreamOrder::Random(9),
            ..Default::default()
        });
        let p = custom.partition(&g, 4);
        p.validate(&g).unwrap();
        assert_ne!(p, Fennel::default().partition(&g, 4));
    }

    #[test]
    fn restreaming_does_not_hurt_the_cut() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let one = Fennel::default().partition(&g, 8);
        let three = Fennel::new(FennelConfig {
            passes: 3,
            ..Default::default()
        })
        .partition(&g, 8);
        three.validate(&g).unwrap();
        let cut1 = metrics::edge_cut_ratio(&g, &one);
        let cut3 = metrics::edge_cut_ratio(&g, &three);
        assert!(
            cut3 <= cut1 + 0.02,
            "restreamed cut {cut3} vs single-pass {cut1}"
        );
        // restreamed vertex balance still respects the cap
        let cap = (1.1_f64 * g.num_vertices() as f64 / 8.0).ceil() as u64 + 1;
        assert!(three.vertex_counts().iter().all(|&c| c <= cap));
    }

    #[test]
    fn single_part_trivial() {
        let g = generate::ring(10);
        let p = Fennel::default().partition(&g, 1);
        assert_eq!(p.vertex_counts(), &[10]);
        assert_eq!(metrics::edge_cut_ratio(&g, &p), 0.0);
    }

    #[test]
    fn k_larger_than_n() {
        let g = generate::ring(3);
        let p = Fennel::default().partition(&g, 8);
        p.validate(&g).unwrap();
    }
}
