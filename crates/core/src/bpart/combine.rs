//! Phase 2 of BPart: pairwise combination of pieces (§3.3, Fig. 9).
//!
//! After the weighted streaming phase the pieces' vertex and edge counts
//! are inversely proportional, so joining the piece with the fewest
//! vertices (most edges) to the piece with the most vertices (fewest
//! edges) averages both dimensions toward the mean simultaneously.

use bpart_graph::VertexId;

/// One piece (or combined subgraph): its vertices plus cached tallies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Group {
    /// Vertices owned by the group.
    pub vertices: Vec<VertexId>,
    /// `|V_i|` (cached; equals `vertices.len()`).
    pub vertex_count: u64,
    /// `|E_i|` — sum of the members' out-degrees.
    pub edge_count: u64,
}

impl Group {
    /// Creates a group from a member list and its out-degree sum.
    pub fn new(vertices: Vec<VertexId>, edge_count: u64) -> Self {
        let vertex_count = vertices.len() as u64;
        Group {
            vertices,
            vertex_count,
            edge_count,
        }
    }

    /// Absorbs another group.
    pub fn merge(&mut self, other: Group) {
        self.vertices.extend(other.vertices);
        self.vertex_count += other.vertex_count;
        self.edge_count += other.edge_count;
    }

    /// True when the vertex count is within `±epsilon` of `target`.
    pub fn balanced(&self, target: f64, epsilon: f64) -> bool {
        within(self.vertex_count as f64, target, epsilon)
    }

    /// True when the edge count is within `±epsilon` of `target`.
    pub fn edge_balanced(&self, target: f64, epsilon: f64) -> bool {
        within(self.edge_count as f64, target, epsilon)
    }
}

fn within(value: f64, target: f64, epsilon: f64) -> bool {
    if target == 0.0 {
        return value == 0.0;
    }
    (value - target).abs() <= epsilon * target
}

/// One combination round: sort by vertex count ascending and merge the
/// `i`-th lightest with the `i`-th heaviest, halving the group count.
///
/// # Panics
///
/// Panics if the group count is odd (the layer arithmetic in
/// [`BPart`](crate::BPart) always produces even counts).
pub fn combine_round(mut groups: Vec<Group>) -> Vec<Group> {
    assert!(
        groups.len() % 2 == 0,
        "combine_round needs an even group count"
    );
    // Deterministic ordering: vertices ascending, then edges descending
    // (inverse proportionality makes these mostly agree), then member id.
    groups.sort_by(|a, b| {
        a.vertex_count
            .cmp(&b.vertex_count)
            .then(b.edge_count.cmp(&a.edge_count))
            .then(a.vertices.first().cmp(&b.vertices.first()))
    });
    let half = groups.len() / 2;
    let mut heavy = groups.split_off(half);
    // `groups` now holds the lightest half ascending; pair groups[i] with
    // the heaviest remaining, i.e. heavy in reverse.
    let mut out = Vec::with_capacity(half);
    for light in groups {
        let mut merged = light;
        merged.merge(heavy.pop().expect("halves have equal length"));
        out.push(merged);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(id_base: u32, v: u64, e: u64) -> Group {
        Group::new((id_base..id_base + v as u32).collect(), e)
    }

    #[test]
    fn merge_accumulates() {
        let mut a = group(0, 2, 10);
        a.merge(group(100, 3, 5));
        assert_eq!(a.vertex_count, 5);
        assert_eq!(a.edge_count, 15);
        assert_eq!(a.vertices.len(), 5);
    }

    #[test]
    fn balanced_thresholds() {
        let g = group(0, 10, 100);
        assert!(g.balanced(10.0, 0.0));
        assert!(g.balanced(11.0, 0.1));
        assert!(!g.balanced(12.0, 0.1));
        assert!(g.edge_balanced(95.0, 0.06));
        assert!(!g.edge_balanced(80.0, 0.1));
    }

    #[test]
    fn zero_target_needs_zero_value() {
        let empty = Group::new(vec![], 0);
        assert!(empty.balanced(0.0, 0.1));
        let nonempty = group(0, 1, 0);
        assert!(!nonempty.balanced(0.0, 0.1));
    }

    #[test]
    fn combine_pairs_lightest_with_heaviest() {
        // vertex counts 1, 2, 3, 4 with inversely proportional edges
        let groups = vec![
            group(0, 1, 40),
            group(10, 2, 30),
            group(20, 3, 20),
            group(30, 4, 10),
        ];
        let combined = combine_round(groups);
        assert_eq!(combined.len(), 2);
        let mut tallies: Vec<(u64, u64)> = combined
            .iter()
            .map(|g| (g.vertex_count, g.edge_count))
            .collect();
        tallies.sort();
        assert_eq!(tallies, vec![(5, 50), (5, 50)]);
    }

    #[test]
    fn combination_is_deterministic_under_permutation() {
        let a = vec![
            group(0, 1, 4),
            group(10, 2, 3),
            group(20, 3, 2),
            group(30, 4, 1),
        ];
        let mut b = a.clone();
        b.reverse();
        let ca = combine_round(a);
        let cb = combine_round(b);
        let key = |gs: &[Group]| -> Vec<Vec<VertexId>> {
            let mut v: Vec<Vec<VertexId>> = gs
                .iter()
                .map(|g| {
                    let mut m = g.vertices.clone();
                    m.sort_unstable();
                    m
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(&ca), key(&cb));
    }

    #[test]
    fn two_rounds_reach_quarter_count() {
        let groups: Vec<Group> = (0..8)
            .map(|i| group(i * 10, (i + 1) as u64, (8 - i) as u64))
            .collect();
        let after = combine_round(combine_round(groups));
        assert_eq!(after.len(), 2);
        let total_v: u64 = after.iter().map(|g| g.vertex_count).sum();
        assert_eq!(total_v, (1..=8).sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "even group count")]
    fn odd_count_panics() {
        combine_round(vec![group(0, 1, 1)]);
    }
}
