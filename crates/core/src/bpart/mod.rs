//! **BPart** — the paper's two-phase, two-dimensional balanced partitioner
//! (§3).
//!
//! Phase 1 (*partitioning*, §3.2): stream the vertices Fennel-style into
//! *more* pieces than requested, scoring against the weighted balance
//! indicator `W_i = c·|V_i| + (1−c)·|E_i|/d̄` (Eq. 1). Driving all `W_i`
//! equal makes the per-piece vertex and edge distributions inversely
//! proportional: a piece with few vertices holds many edges.
//!
//! Phase 2 (*combining*, §3.3): sort the pieces by vertex count and join
//! the fewest-vertices piece with the most-vertices piece, halving the
//! piece count per round. Combined subgraphs that meet both balance
//! thresholds are frozen; the remainder is re-streamed at the next layer
//! with twice the over-split (Fig. 9) until every part is balanced or the
//! layer budget runs out.
//!
//! ```
//! use bpart_core::{BPart, Partitioner, metrics};
//! use bpart_graph::generate;
//!
//! let g = generate::twitter_like().generate_scaled(0.02);
//! let p = BPart::default().partition(&g, 8);
//! let q = metrics::quality(&g, &p);
//! assert!(q.vertex_bias < 0.15, "vertices balanced");
//! assert!(q.edge_bias < 0.15, "edges balanced too");
//! ```

mod combine;
mod weighted;

pub use combine::{combine_round, Group};
pub use weighted::WeightedStream;

use crate::partition::{PartId, Partition};
use crate::partitioner::Partitioner;
use crate::stream::StreamOrder;
use crate::streaming::{ParallelConfig, StreamStats, UNASSIGNED};
use bpart_graph::{CsrGraph, VertexId};

/// Tunables for [`BPart`].
#[derive(Clone, Copy, Debug)]
pub struct BPartConfig {
    /// Weight of the vertex dimension in the balance indicator (Eq. 1);
    /// `c = 0` balances edges only, `c = 1` vertices only. Paper default: ½.
    pub c: f64,
    /// Fennel penalty exponent γ.
    pub gamma: f64,
    /// Override for α; `None` computes `m·k^(γ−1)/n^γ` per layer.
    pub alpha: Option<f64>,
    /// Per-piece indicator capacity as a multiple of the layer mean.
    pub load_factor: f64,
    /// Relative tolerance for freezing a combined subgraph's vertex count.
    pub epsilon_vertex: f64,
    /// Relative tolerance for freezing a combined subgraph's edge count.
    pub epsilon_edge: f64,
    /// Maximum combination layers; layer `L` over-splits the remainder
    /// `2^L`-fold. The final layer freezes unconditionally.
    pub max_layers: u32,
    /// Vertex visit order for the streaming phase.
    pub order: StreamOrder,
    /// Worker-pool shape for the streaming phase: sequential by default,
    /// buffered-parallel when `threads > 1` (see [`ParallelConfig`]).
    pub parallel: ParallelConfig,
}

impl Default for BPartConfig {
    fn default() -> Self {
        BPartConfig {
            c: 0.5,
            gamma: 1.5,
            alpha: None,
            load_factor: 1.15,
            epsilon_vertex: 0.1,
            epsilon_edge: 0.1,
            max_layers: 4,
            order: StreamOrder::Natural,
            parallel: ParallelConfig::default(),
        }
    }
}

/// The BPart two-phase partitioner.
#[derive(Clone, Copy, Debug, Default)]
pub struct BPart {
    config: BPartConfig,
}

/// Per-layer trace of a BPart run, for ablation studies and debugging.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerTrace {
    /// 1-based layer number.
    pub layer: u32,
    /// Number of pieces the remainder was streamed into.
    pub pieces: usize,
    /// Number of combined subgraphs frozen at this layer.
    pub frozen: usize,
    /// Vertices still unassigned after this layer.
    pub remaining_vertices: usize,
    /// Throughput telemetry of this layer's streaming pass: vertices/sec,
    /// buffer count, and synchronization stalls (zero for layers that froze
    /// without streaming).
    pub stream: StreamStats,
}

impl BPart {
    /// BPart with explicit tunables.
    pub fn new(config: BPartConfig) -> Self {
        BPart { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &BPartConfig {
        &self.config
    }

    /// Like [`Partitioner::partition`] but also returns the per-layer trace.
    pub fn partition_with_trace(
        &self,
        graph: &CsrGraph,
        num_parts: usize,
    ) -> (Partition, Vec<LayerTrace>) {
        assert!(num_parts > 0, "need at least one part");
        let cfg = &self.config;
        assert!((0.0..=1.0).contains(&cfg.c), "c must lie in [0, 1]");
        assert!(cfg.max_layers >= 1, "need at least one layer");

        let n = graph.num_vertices();
        let target_v = n as f64 / num_parts as f64;
        let target_e = graph.num_edges() as f64 / num_parts as f64;

        let mut assignment = vec![UNASSIGNED; n];
        let mut next_part: PartId = 0;
        let mut parts_left = num_parts;
        let mut remaining: Vec<VertexId> = graph.vertices().collect();
        let mut trace = Vec::new();

        use std::sync::OnceLock;
        static ROUNDS: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
        static MISSES: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
        let rounds_counter =
            ROUNDS.get_or_init(|| bpart_obs::metrics::counter("combine.repartition_rounds"));
        let misses_counter =
            MISSES.get_or_init(|| bpart_obs::metrics::counter("combine.threshold_misses"));

        for layer in 1..=cfg.max_layers {
            if parts_left == 0 {
                break;
            }
            if parts_left == 1 {
                // A single remaining part holds everything left by
                // construction; no split can improve it.
                freeze(&mut assignment, &remaining, next_part);
                remaining.clear();
                trace.push(LayerTrace {
                    layer,
                    pieces: 1,
                    frozen: 1,
                    remaining_vertices: 0,
                    stream: StreamStats::default(),
                });
                break;
            }

            let mut layer_span = bpart_obs::span("combine.layer");
            let rounds = layer as usize;
            let pieces = parts_left << rounds;
            let (mut groups, stream_stats) =
                weighted::split_into_pieces(graph, &remaining, pieces, cfg);
            for _ in 0..rounds {
                groups = combine_round(groups);
            }
            rounds_counter.add(rounds as u64);
            debug_assert_eq!(groups.len(), parts_left);

            // Freeze the best-balanced groups first, and only while the
            // remainder can still average out to the global targets —
            // otherwise the forced final part would absorb all residual
            // imbalance.
            let deviation = |g: &Group| -> f64 {
                let dv = (g.vertex_count as f64 - target_v).abs() / target_v.max(1.0);
                let de = (g.edge_count as f64 - target_e).abs() / target_e.max(1.0);
                dv.max(de)
            };
            groups.sort_by(|a, b| deviation(a).total_cmp(&deviation(b)));
            let mut rem_v: f64 = groups.iter().map(|g| g.vertex_count as f64).sum();
            let mut rem_e: f64 = groups.iter().map(|g| g.edge_count as f64).sum();

            let last = layer == cfg.max_layers;
            let mut frozen_here = 0usize;
            let mut new_remaining: Vec<VertexId> = Vec::new();
            for group in groups {
                let within = |value: f64, target: f64, eps: f64| {
                    target == 0.0 || (value - target).abs() <= eps * target
                };
                let self_ok = group.balanced(target_v, cfg.epsilon_vertex)
                    && group.edge_balanced(target_e, cfg.epsilon_edge);
                let rest_ok = parts_left == 1 || {
                    let p = (parts_left - 1) as f64;
                    within(
                        (rem_v - group.vertex_count as f64) / p,
                        target_v,
                        cfg.epsilon_vertex,
                    ) && within(
                        (rem_e - group.edge_count as f64) / p,
                        target_e,
                        cfg.epsilon_edge,
                    )
                };
                if last || (self_ok && rest_ok) {
                    rem_v -= group.vertex_count as f64;
                    rem_e -= group.edge_count as f64;
                    freeze(&mut assignment, &group.vertices, next_part);
                    next_part += 1;
                    parts_left -= 1;
                    frozen_here += 1;
                } else {
                    misses_counter.inc();
                    new_remaining.extend_from_slice(&group.vertices);
                }
            }
            remaining = new_remaining;
            layer_span.attr("layer", layer);
            layer_span.attr("pieces", pieces);
            layer_span.attr("frozen", frozen_here);
            layer_span.attr("remaining", remaining.len());
            trace.push(LayerTrace {
                layer,
                pieces,
                frozen: frozen_here,
                remaining_vertices: remaining.len(),
                stream: stream_stats,
            });
        }

        debug_assert!(remaining.is_empty(), "final layer must freeze everything");
        // Unused part ids (k > n corner) stay empty; map any sentinel to the
        // last part defensively (cannot happen for non-empty layers).
        for a in &mut assignment {
            if *a == UNASSIGNED {
                *a = 0;
            }
        }
        (
            Partition::from_assignment(graph, num_parts, assignment),
            trace,
        )
    }
}

fn freeze(assignment: &mut [PartId], vertices: &[VertexId], part: PartId) {
    for &v in vertices {
        assignment[v as usize] = part;
    }
}

impl Partitioner for BPart {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        self.partition_with_trace(graph, num_parts).0
    }

    fn partition_with_stats(&self, graph: &CsrGraph, num_parts: usize) -> (Partition, StreamStats) {
        let (partition, trace) = self.partition_with_trace(graph, num_parts);
        let mut stats = StreamStats::default();
        for layer in &trace {
            stats.merge(&layer.stream);
        }
        (partition, stats)
    }

    fn name(&self) -> &'static str {
        "BPart"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use bpart_graph::generate;

    #[test]
    fn two_dimensional_balance_on_power_law_graph() {
        let g = generate::twitter_like().generate_scaled(0.02);
        for k in [4, 8, 16] {
            let p = BPart::default().partition(&g, k);
            p.validate(&g).unwrap();
            let q = metrics::quality(&g, &p);
            assert!(q.vertex_bias < 0.15, "k={k} vertex bias {}", q.vertex_bias);
            assert!(q.edge_bias < 0.15, "k={k} edge bias {}", q.edge_bias);
        }
    }

    #[test]
    fn beats_hash_on_edge_cuts() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let bpart_cut = metrics::edge_cut_ratio(&g, &BPart::default().partition(&g, 8));
        let hash_cut = metrics::edge_cut_ratio(
            &g,
            &crate::hash::HashPartitioner::default().partition(&g, 8),
        );
        assert!(bpart_cut < hash_cut, "bpart {bpart_cut} vs hash {hash_cut}");
    }

    #[test]
    fn deterministic() {
        let g = generate::lj_like().generate_scaled(0.01);
        assert_eq!(
            BPart::default().partition(&g, 8),
            BPart::default().partition(&g, 8)
        );
    }

    #[test]
    fn trace_shows_multi_layer_progress() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let (p, trace) = BPart::default().partition_with_trace(&g, 8);
        p.validate(&g).unwrap();
        assert!(!trace.is_empty());
        assert_eq!(trace.last().unwrap().remaining_vertices, 0);
        let frozen: usize = trace.iter().map(|t| t.frozen).sum();
        assert_eq!(frozen, 8);
        // layer 1 must over-split 2x
        assert_eq!(trace[0].pieces, 16);
    }

    #[test]
    fn trace_carries_layer_stream_telemetry() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let cfg = BPartConfig {
            parallel: crate::streaming::ParallelConfig {
                threads: 2,
                buffer_size: 256,
            },
            ..Default::default()
        };
        let (p, trace) = BPart::new(cfg).partition_with_trace(&g, 8);
        p.validate(&g).unwrap();
        let streamed: usize = trace.iter().map(|t| t.stream.vertices).sum();
        assert!(
            streamed >= g.num_vertices(),
            "every vertex is streamed at least once, got {streamed}"
        );
        assert!(trace.iter().any(|t| t.stream.buffers > 0));
        assert!(trace
            .iter()
            .filter(|t| t.stream.vertices > 0)
            .all(|t| t.stream.threads == 2));
    }

    #[test]
    fn parallel_bpart_preserves_two_dimensional_balance() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let cfg = BPartConfig {
            parallel: crate::streaming::ParallelConfig {
                threads: 4,
                buffer_size: 512,
            },
            ..Default::default()
        };
        let (p, stats) = BPart::new(cfg).partition_with_stats(&g, 8);
        p.validate(&g).unwrap();
        let q = metrics::quality(&g, &p);
        assert!(q.vertex_bias < 0.15, "vertex bias {}", q.vertex_bias);
        assert!(q.edge_bias < 0.15, "edge bias {}", q.edge_bias);
        assert_eq!(stats.threads, 4);
        assert!(stats.vertices >= g.num_vertices());
    }

    #[test]
    fn c_extremes_degenerate_to_one_dimensional_balance() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let vertex_only = BPart::new(BPartConfig {
            c: 1.0,
            max_layers: 1,
            ..Default::default()
        });
        let p = vertex_only.partition(&g, 8);
        assert!(metrics::bias(p.vertex_counts()) < 0.2);
        let edge_only = BPart::new(BPartConfig {
            c: 0.0,
            max_layers: 1,
            ..Default::default()
        });
        let p = edge_only.partition(&g, 8);
        assert!(metrics::bias(p.edge_counts()) < 0.35);
    }

    #[test]
    fn single_part() {
        let g = generate::ring(12);
        let p = BPart::default().partition(&g, 1);
        assert_eq!(p.vertex_counts(), &[12]);
    }

    #[test]
    fn k_larger_than_n_is_covered() {
        let g = generate::ring(5);
        let p = BPart::default().partition(&g, 9);
        p.validate(&g).unwrap();
    }

    #[test]
    fn works_on_all_presets_small_scale() {
        for preset in bpart_graph::generate::ALL_PRESETS {
            let g = preset().generate_scaled(0.01);
            let p = BPart::default().partition(&g, 8);
            p.validate(&g).unwrap();
            let q = metrics::quality(&g, &p);
            assert!(
                q.vertex_bias < 0.2 && q.edge_bias < 0.2,
                "{}: v={} e={}",
                preset().name,
                q.vertex_bias,
                q.edge_bias
            );
        }
    }

    #[test]
    #[should_panic(expected = "c must lie in")]
    fn invalid_c_panics() {
        let g = generate::ring(4);
        BPart::new(BPartConfig {
            c: 1.5,
            ..Default::default()
        })
        .partition(&g, 2);
    }
}
