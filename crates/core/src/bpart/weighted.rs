//! Phase 1 of BPart: weighted streaming over-split (§3.2).
//!
//! [`split_into_pieces`] streams a vertex subset into `pieces` pieces,
//! scoring against the weighted indicator of Eq. 1. [`WeightedStream`]
//! wraps the same pass as a standalone [`Partitioner`] — that is what
//! Fig. 8 plots (64 pieces, no combining) to show the inverse
//! proportionality the combining phase exploits.

use super::combine::Group;
use super::BPartConfig;
use crate::partition::Partition;
use crate::partitioner::Partitioner;
use crate::streaming::{fennel_alpha, stream_assign, StreamConfig, StreamStats, UNASSIGNED};
use bpart_graph::{CsrGraph, VertexId};

/// Streams `subset` into `pieces` pieces using the weighted balance
/// indicator, returning per-piece member lists with cached tallies plus the
/// pass's throughput telemetry. An empty subset short-circuits (α would be
/// undefined — see [`crate::StreamError::EmptyStream`]) into empty groups.
pub(super) fn split_into_pieces(
    graph: &CsrGraph,
    subset: &[VertexId],
    pieces: usize,
    cfg: &BPartConfig,
) -> (Vec<Group>, StreamStats) {
    let n_sub = subset.len();
    if n_sub == 0 {
        let groups = (0..pieces).map(|_| Group::new(Vec::new(), 0)).collect();
        return (groups, StreamStats::default());
    }
    let m_sub: u64 = graph.degree_sum(subset.iter().copied());
    // Average degree of the streamed remainder keeps the indicator's total
    // mass equal to n_sub, so the Fennel α calibration carries over.
    let d_bar = (m_sub as f64 / n_sub as f64).max(f64::MIN_POSITIVE);
    let alpha = match cfg.alpha {
        Some(a) => a,
        None => fennel_alpha(n_sub, m_sub, pieces, cfg.gamma).expect("subset is non-empty"),
    };
    let order = cfg.order.order_subset(graph, subset);
    let c = cfg.c;

    let outcome = stream_assign(
        graph,
        &StreamConfig {
            num_parts: pieces,
            gamma: cfg.gamma,
            alpha,
            capacity: cfg.load_factor * n_sub as f64 / pieces as f64,
            order: &order,
            previous: None,
            parallel: cfg.parallel,
        },
        |v| c + (1.0 - c) * graph.out_degree(v) as f64 / d_bar,
    );

    let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); pieces];
    for &v in subset {
        let p = outcome.assignment[v as usize];
        debug_assert_ne!(p, UNASSIGNED);
        members[p as usize].push(v);
    }
    let groups = members
        .into_iter()
        .enumerate()
        .map(|(p, vs)| {
            debug_assert_eq!(vs.len() as u64, outcome.vertex_counts[p]);
            Group::new(vs, outcome.edge_counts[p])
        })
        .collect();
    (groups, outcome.stats)
}

/// Phase 1 as a standalone partitioner (no combining): the weighted
/// streaming split of §3.2. Reported in harness tables as `BPart-P1`.
#[derive(Clone, Copy, Debug, Default)]
pub struct WeightedStream {
    config: BPartConfig,
}

impl WeightedStream {
    /// Weighted streaming with explicit tunables (`c`, γ, order, ...).
    pub fn new(config: BPartConfig) -> Self {
        WeightedStream { config }
    }
}

impl Partitioner for WeightedStream {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        self.partition_with_stats(graph, num_parts).0
    }

    fn partition_with_stats(&self, graph: &CsrGraph, num_parts: usize) -> (Partition, StreamStats) {
        assert!(num_parts > 0, "need at least one part");
        let all: Vec<VertexId> = graph.vertices().collect();
        let (groups, stats) = split_into_pieces(graph, &all, num_parts, &self.config);
        let mut assignment = vec![0; graph.num_vertices()];
        for (p, group) in groups.iter().enumerate() {
            for &v in &group.vertices {
                assignment[v as usize] = p as u32;
            }
        }
        (
            Partition::from_assignment(graph, num_parts, assignment),
            stats,
        )
    }

    fn name(&self) -> &'static str {
        "BPart-P1"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::ParallelConfig;
    use bpart_graph::generate;

    fn pieces_of(
        graph: &CsrGraph,
        subset: &[VertexId],
        pieces: usize,
        cfg: &BPartConfig,
    ) -> Vec<Group> {
        split_into_pieces(graph, subset, pieces, cfg).0
    }

    #[test]
    fn pieces_partition_the_subset() {
        let g = generate::twitter_like().generate_scaled(0.01);
        let subset: Vec<VertexId> = g.vertices().collect();
        let groups = pieces_of(&g, &subset, 16, &BPartConfig::default());
        assert_eq!(groups.len(), 16);
        let total_v: u64 = groups.iter().map(|g| g.vertex_count).sum();
        let total_e: u64 = groups.iter().map(|g| g.edge_count).sum();
        assert_eq!(total_v as usize, g.num_vertices());
        assert_eq!(total_e as usize, g.num_edges());
    }

    #[test]
    fn weighted_indicator_is_near_equal_across_pieces() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let subset: Vec<VertexId> = g.vertices().collect();
        let cfg = BPartConfig::default();
        let groups = pieces_of(&g, &subset, 16, &cfg);
        let d_bar = g.average_degree();
        let ws: Vec<f64> = groups
            .iter()
            .map(|gr| 0.5 * gr.vertex_count as f64 + 0.5 * gr.edge_count as f64 / d_bar)
            .collect();
        let mean = ws.iter().sum::<f64>() / ws.len() as f64;
        let max = ws.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (max - mean) / mean < 0.2,
            "indicator spread too wide: {ws:?}"
        );
    }

    #[test]
    fn inverse_proportionality_emerges_on_skewed_graphs() {
        // Pieces with fewer vertices should carry more edges: the
        // correlation between |V_i| and |E_i| must be strongly negative
        // (Fig. 8 of the paper). The effect needs pieces large enough for
        // hub mass to dominate piece-level noise, so the piece count is
        // kept proportional to the reduced test scale.
        let g = generate::twitter_like().generate_scaled(0.2);
        let subset: Vec<VertexId> = g.vertices().collect();
        let groups = pieces_of(&g, &subset, 16, &BPartConfig::default());
        let vs: Vec<f64> = groups.iter().map(|g| g.vertex_count as f64).collect();
        let es: Vec<f64> = groups.iter().map(|g| g.edge_count as f64).collect();
        let corr = pearson(&vs, &es);
        assert!(
            corr < -0.5,
            "expected inverse proportionality, corr = {corr}"
        );
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(&x, &y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|&x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|&y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt()).max(f64::MIN_POSITIVE)
    }

    #[test]
    fn standalone_partitioner_validates() {
        let g = generate::lj_like().generate_scaled(0.01);
        let p = WeightedStream::default().partition(&g, 8);
        p.validate(&g).unwrap();
        assert_eq!(WeightedStream::default().name(), "BPart-P1");
    }

    #[test]
    fn empty_subset_yields_empty_groups() {
        let g = generate::ring(8);
        let (groups, stats) = split_into_pieces(&g, &[], 4, &BPartConfig::default());
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().all(|g| g.vertex_count == 0));
        assert_eq!(stats.vertices, 0);
    }

    #[test]
    fn parallel_split_keeps_the_weighted_indicator_balanced() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let subset: Vec<VertexId> = g.vertices().collect();
        let cfg = BPartConfig {
            parallel: ParallelConfig {
                threads: 4,
                buffer_size: 512,
            },
            ..Default::default()
        };
        let (groups, stats) = split_into_pieces(&g, &subset, 16, &cfg);
        assert_eq!(stats.threads, 4);
        assert!(stats.buffers > 0);
        let d_bar = g.average_degree();
        let ws: Vec<f64> = groups
            .iter()
            .map(|gr| 0.5 * gr.vertex_count as f64 + 0.5 * gr.edge_count as f64 / d_bar)
            .collect();
        let mean = ws.iter().sum::<f64>() / ws.len() as f64;
        let max = ws.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (max - mean) / mean < 0.25,
            "parallel indicator spread too wide: {ws:?}"
        );
    }
}
