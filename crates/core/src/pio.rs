//! Partition and shard serialization.
//!
//! Text format (`.parts`): one part id per line, line number = vertex id,
//! `#` comments allowed — the format METIS-family tools exchange, so
//! partitions produced here drop into other toolchains.
//!
//! Binary format: `BPPT` magic, version, `k`, `n`, then `n` little-endian
//! `u32` part ids.
//!
//! ## Sharded ingestion format
//!
//! The out-of-core pipeline ([`crate::stream_assign_ooc`]) does not read a
//! graph file — it reads a *shard directory*: the stream pre-serialized as
//! per-vertex records in visit order, cut into bounded files so the
//! partitioning pass maps one shard at a time and stays `O(buffer)`
//! resident. Layout (all little-endian):
//!
//! ```text
//! manifest.bpsm:   magic "BPSM", version u32, n u64, m u64,
//!                  shard_count u32, then per shard {records u64, bytes u64}
//! shard-NNNNN.bpse: magic "BPSE", version u32, records u64, then per
//!                  record {out_deg u32, nbr_len u32, nbrs [u32; nbr_len]}
//! ```
//!
//! Vertex ids are implicit: records are consecutive in natural order,
//! shard `s` starting where `s − 1` ended. Each record stores the vertex's
//! full undirected neighborhood — out-neighbors first, then in-neighbors —
//! which is exactly the tally order of the sequential scorer, so replaying
//! records reproduces the in-memory pass bit for bit without ever holding
//! the graph. Errors are the typed [`PioError`]: a shard shorter than its
//! header (or the manifest) claims is [`PioError::Truncated`], never a
//! panic.

use crate::partition::{PartId, Partition};
use bpart_graph::io::MappedCsr;
use bpart_graph::{CsrGraph, GraphError, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: [u8; 4] = *b"BPPT";
const VERSION: u32 = 1;

/// Writes the assignment as text, one part id per line.
pub fn write_text<W: Write>(partition: &Partition, writer: W) -> Result<(), GraphError> {
    write_text_assignment(partition.num_parts(), partition.assignment(), writer)
}

/// Writes a raw assignment as text — the out-of-core path's writer, where
/// no [`Partition`] exists because the graph was never resident.
pub fn write_text_assignment<W: Write>(
    k: usize,
    assignment: &[PartId],
    writer: W,
) -> Result<(), GraphError> {
    let mut bw = BufWriter::new(writer);
    writeln!(
        bw,
        "# bpart partition: {} vertices, {} parts",
        assignment.len(),
        k
    )?;
    for &p in assignment {
        writeln!(bw, "{p}")?;
    }
    bw.flush()?;
    Ok(())
}

/// Reads a text assignment and re-tallies it against `graph`.
pub fn read_text<R: Read>(graph: &CsrGraph, reader: R) -> Result<Partition, GraphError> {
    let mut br = BufReader::new(reader);
    let mut assignment: Vec<PartId> = Vec::with_capacity(graph.num_vertices());
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if br.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let p: PartId = trimmed
            .parse()
            .map_err(|_| GraphError::Format(format!("line {lineno}: bad part id {trimmed:?}")))?;
        assignment.push(p);
    }
    finish(graph, assignment)
}

/// Writes the assignment in the binary format.
pub fn write_binary<W: Write>(partition: &Partition, writer: W) -> Result<(), GraphError> {
    write_binary_assignment(partition.num_parts(), partition.assignment(), writer)
}

/// Writes a raw assignment in the binary format (see
/// [`write_text_assignment`] for why the raw variant exists).
pub fn write_binary_assignment<W: Write>(
    k: usize,
    assignment: &[PartId],
    writer: W,
) -> Result<(), GraphError> {
    let mut bw = BufWriter::new(writer);
    bw.write_all(&MAGIC)?;
    bw.write_all(&VERSION.to_le_bytes())?;
    bw.write_all(&(k as u32).to_le_bytes())?;
    bw.write_all(&(assignment.len() as u64).to_le_bytes())?;
    for &p in assignment {
        bw.write_all(&p.to_le_bytes())?;
    }
    bw.flush()?;
    Ok(())
}

/// Reads a binary assignment and re-tallies it against `graph`.
pub fn read_binary<R: Read>(graph: &CsrGraph, reader: R) -> Result<Partition, GraphError> {
    let mut br = BufReader::new(reader);
    let mut magic = [0u8; 4];
    br.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(GraphError::Format(format!("bad partition magic {magic:?}")));
    }
    let mut b4 = [0u8; 4];
    br.read_exact(&mut b4)?;
    let version = u32::from_le_bytes(b4);
    if version != VERSION {
        return Err(GraphError::Format(format!(
            "unsupported partition version {version}"
        )));
    }
    br.read_exact(&mut b4)?;
    let k = u32::from_le_bytes(b4) as usize;
    let mut b8 = [0u8; 8];
    br.read_exact(&mut b8)?;
    let n = u64::from_le_bytes(b8) as usize;
    if n != graph.num_vertices() {
        return Err(GraphError::Format(format!(
            "partition covers {n} vertices, graph has {}",
            graph.num_vertices()
        )));
    }
    let mut assignment = Vec::with_capacity(n);
    for _ in 0..n {
        br.read_exact(&mut b4)?;
        let p = u32::from_le_bytes(b4);
        if p as usize >= k {
            return Err(GraphError::Format(format!(
                "part id {p} out of range (k = {k})"
            )));
        }
        assignment.push(p);
    }
    Ok(Partition::from_assignment(graph, k, assignment))
}

/// Shared text-path epilogue: validate the length and infer `k`.
fn finish(graph: &CsrGraph, assignment: Vec<PartId>) -> Result<Partition, GraphError> {
    if assignment.len() != graph.num_vertices() {
        return Err(GraphError::Format(format!(
            "partition covers {} vertices, graph has {}",
            assignment.len(),
            graph.num_vertices()
        )));
    }
    let k = assignment
        .iter()
        .copied()
        .max()
        .map_or(1, |m| m as usize + 1);
    Ok(Partition::from_assignment(graph, k, assignment))
}

// ---------------------------------------------------------------------------
// Sharded edge-list ingestion
// ---------------------------------------------------------------------------

const SHARD_MAGIC: [u8; 4] = *b"BPSE";
const MANIFEST_MAGIC: [u8; 4] = *b"BPSM";
const SHARD_VERSION: u32 = 1;

/// Fixed bytes before a shard's records: magic + version + record count.
const SHARD_HEADER_LEN: usize = 4 + 4 + 8;

/// The manifest's file name inside a shard directory.
pub const MANIFEST_NAME: &str = "manifest.bpsm";

/// Typed errors of the shard reader/writer.
#[derive(Debug)]
pub enum PioError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A shard file is shorter than its header (or the manifest) claims.
    Truncated {
        /// The file that came up short.
        path: PathBuf,
        /// Bytes the header/manifest declared.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// Structural decode failure with a human-readable reason.
    Format(String),
}

impl std::fmt::Display for PioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PioError::Io(e) => write!(f, "io error: {e}"),
            PioError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "{} truncated: header claims {expected} bytes, file has {actual}",
                path.display()
            ),
            PioError::Format(msg) => write!(f, "shard format error: {msg}"),
        }
    }
}

impl std::error::Error for PioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PioError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PioError {
    fn from(e: std::io::Error) -> Self {
        PioError::Io(e)
    }
}

impl From<PioError> for GraphError {
    fn from(e: PioError) -> Self {
        match e {
            PioError::Io(io) => GraphError::Io(io),
            other => GraphError::Format(other.to_string()),
        }
    }
}

/// Per-shard bookkeeping recorded in the manifest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMeta {
    /// Vertex records in this shard.
    pub records: u64,
    /// Total file size in bytes (header included) — validated against the
    /// real file size before mapping, so a truncated shard is caught
    /// up front with a typed error instead of a mid-parse surprise.
    pub bytes: u64,
}

/// The decoded `manifest.bpsm`: stream totals plus the shard table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardManifest {
    /// Total vertices across all shards.
    pub n: u64,
    /// Total out-edges across all shards.
    pub m: u64,
    /// Shard table in stream order.
    pub shards: Vec<ShardMeta>,
}

impl ShardManifest {
    fn write(&self, path: &Path) -> Result<(), PioError> {
        let mut bw = BufWriter::new(std::fs::File::create(path)?);
        bw.write_all(&MANIFEST_MAGIC)?;
        bw.write_all(&SHARD_VERSION.to_le_bytes())?;
        bw.write_all(&self.n.to_le_bytes())?;
        bw.write_all(&self.m.to_le_bytes())?;
        bw.write_all(&(self.shards.len() as u32).to_le_bytes())?;
        for s in &self.shards {
            bw.write_all(&s.records.to_le_bytes())?;
            bw.write_all(&s.bytes.to_le_bytes())?;
        }
        bw.flush()?;
        Ok(())
    }

    fn read(path: &Path) -> Result<ShardManifest, PioError> {
        let bytes = std::fs::read(path)?;
        let need_header = 4 + 4 + 8 + 8 + 4;
        if bytes.len() < need_header {
            return Err(PioError::Truncated {
                path: path.to_path_buf(),
                expected: need_header as u64,
                actual: bytes.len() as u64,
            });
        }
        if bytes[..4] != MANIFEST_MAGIC {
            return Err(PioError::Format(format!(
                "bad manifest magic {:?}",
                &bytes[..4]
            )));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != SHARD_VERSION {
            return Err(PioError::Format(format!(
                "unsupported shard version {version}"
            )));
        }
        let n = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let m = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let shard_count = u32::from_le_bytes(bytes[24..28].try_into().unwrap()) as usize;
        let need = need_header as u64 + shard_count as u64 * 16;
        if (bytes.len() as u64) < need {
            return Err(PioError::Truncated {
                path: path.to_path_buf(),
                expected: need,
                actual: bytes.len() as u64,
            });
        }
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let at = need_header + i * 16;
            shards.push(ShardMeta {
                records: u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()),
                bytes: u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap()),
            });
        }
        let total: u64 = shards.iter().map(|s| s.records).sum();
        if total != n {
            return Err(PioError::Format(format!(
                "shard record counts sum to {total}, manifest declares n = {n}"
            )));
        }
        Ok(ShardManifest { n, m, shards })
    }
}

/// Name of shard `index` inside its directory.
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:05}.bpse")
}

/// Serializes `graph` into a shard directory, cutting a new shard whenever
/// the current one would exceed `target_shard_bytes`. Returns the written
/// manifest.
///
/// Shard size is the out-of-core pipeline's *memory knob*: the partition
/// pass maps exactly one shard at a time, so `target_shard_bytes` bounds
/// the largest single resident buffer.
pub fn write_shards(
    graph: &CsrGraph,
    dir: &Path,
    target_shard_bytes: u64,
) -> Result<ShardManifest, PioError> {
    write_shards_inner(
        dir,
        target_shard_bytes,
        graph.num_vertices() as u64,
        graph.num_edges() as u64,
        |v, buf| {
            let out = graph.out_neighbors(v);
            let inn = graph.in_neighbors(v);
            append_record(buf, out.len() as u32, out, inn);
        },
    )
}

/// [`write_shards`] over an out-of-core [`MappedCsr`] view: the source
/// graph's edge data stays on disk; only the in-adjacency transpose
/// (`O(n + m)` of `u32`/`u64` index arrays, no neighbor copies of the
/// out-direction) is held during conversion. This is the preprocessing
/// step's memory floor — the *partitioning* pass that follows is
/// `O(buffer)`.
pub fn write_shards_from_mapped(
    csr: &MappedCsr,
    dir: &Path,
    target_shard_bytes: u64,
) -> Result<ShardManifest, PioError> {
    let n = csr.num_vertices();
    // Counting-sort transpose for the in-neighbors (same construction the
    // in-memory loader uses, without materializing the out-adjacency).
    let mut in_offsets = vec![0u64; n + 1];
    for v in 0..n as VertexId {
        for &t in csr.out_neighbors(v) {
            in_offsets[t as usize + 1] += 1;
        }
    }
    for i in 0..n {
        in_offsets[i + 1] += in_offsets[i];
    }
    let mut in_targets = vec![0 as VertexId; csr.num_edges() as usize];
    let mut cursor = in_offsets.clone();
    for v in 0..n as VertexId {
        for &t in csr.out_neighbors(v) {
            in_targets[cursor[t as usize] as usize] = v;
            cursor[t as usize] += 1;
        }
    }
    write_shards_inner(
        dir,
        target_shard_bytes,
        n as u64,
        csr.num_edges(),
        |v, buf| {
            let out = csr.out_neighbors(v);
            let lo = in_offsets[v as usize] as usize;
            let hi = in_offsets[v as usize + 1] as usize;
            append_record(buf, out.len() as u32, out, &in_targets[lo..hi]);
        },
    )
}

fn append_record(buf: &mut Vec<u8>, out_deg: u32, out: &[VertexId], inn: &[VertexId]) {
    buf.extend_from_slice(&out_deg.to_le_bytes());
    buf.extend_from_slice(&((out.len() + inn.len()) as u32).to_le_bytes());
    for &w in out.iter().chain(inn) {
        buf.extend_from_slice(&w.to_le_bytes());
    }
}

fn write_shards_inner(
    dir: &Path,
    target_shard_bytes: u64,
    n: u64,
    m: u64,
    mut record: impl FnMut(VertexId, &mut Vec<u8>),
) -> Result<ShardManifest, PioError> {
    std::fs::create_dir_all(dir)?;
    let target = target_shard_bytes.max(SHARD_HEADER_LEN as u64 + 16);
    let mut shards: Vec<ShardMeta> = Vec::new();
    let mut records: Vec<Vec<u8>> = Vec::new();
    let mut shard_bytes = SHARD_HEADER_LEN as u64;
    let mut buf = Vec::new();

    let flush = |records: &mut Vec<Vec<u8>>,
                 shards: &mut Vec<ShardMeta>,
                 shard_bytes: u64|
     -> Result<(), PioError> {
        let path = dir.join(shard_file_name(shards.len()));
        let mut bw = BufWriter::new(std::fs::File::create(&path)?);
        bw.write_all(&SHARD_MAGIC)?;
        bw.write_all(&SHARD_VERSION.to_le_bytes())?;
        bw.write_all(&(records.len() as u64).to_le_bytes())?;
        for r in records.iter() {
            bw.write_all(r)?;
        }
        bw.flush()?;
        shards.push(ShardMeta {
            records: records.len() as u64,
            bytes: shard_bytes,
        });
        records.clear();
        Ok(())
    };

    for v in 0..n as VertexId {
        buf.clear();
        record(v, &mut buf);
        if !records.is_empty() && shard_bytes + buf.len() as u64 > target {
            flush(&mut records, &mut shards, shard_bytes)?;
            shard_bytes = SHARD_HEADER_LEN as u64;
        }
        shard_bytes += buf.len() as u64;
        records.push(std::mem::take(&mut buf));
    }
    // The final (possibly empty) shard — an empty stream still writes one
    // shard so the directory is self-describing.
    flush(&mut records, &mut shards, shard_bytes)?;

    let manifest = ShardManifest { n, m, shards };
    manifest.write(&dir.join(MANIFEST_NAME))?;
    Ok(manifest)
}

/// Bytes behind a shard file: a mapping where available, an owned read
/// otherwise. Either way the parse below is identical.
#[derive(Debug)]
enum ShardBytes {
    #[cfg(unix)]
    Mapped(bpart_graph::io::mmap::Mmap),
    Owned(Vec<u8>),
}

impl ShardBytes {
    fn open(path: &Path) -> Result<ShardBytes, PioError> {
        #[cfg(unix)]
        {
            if let Ok(file) = std::fs::File::open(path) {
                if let Ok(map) = bpart_graph::io::mmap::Mmap::map(&file) {
                    return Ok(ShardBytes::Mapped(map));
                }
            }
        }
        Ok(ShardBytes::Owned(std::fs::read(path)?))
    }

    fn as_slice(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            ShardBytes::Mapped(m) => m.as_bytes(),
            ShardBytes::Owned(v) => v,
        }
    }
}

/// One decoded shard record: a vertex with its full undirected
/// neighborhood in tally order (out-neighbors first, then in-neighbors).
#[derive(Clone, Copy, Debug)]
pub struct ShardRecord<'a> {
    /// The vertex this record describes.
    pub vertex: VertexId,
    /// Its out-degree (the first `out_deg` entries of `nbrs` are the
    /// out-neighbors).
    pub out_deg: u32,
    /// Raw little-endian `u32` neighbor bytes (`4 × nbr_len`).
    nbr_bytes: &'a [u8],
}

impl ShardRecord<'_> {
    /// Number of neighbors (out + in).
    pub fn nbr_len(&self) -> usize {
        self.nbr_bytes.len() / 4
    }

    /// Decodes the neighbors in stored (tally) order.
    pub fn nbrs(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.nbr_bytes
            .chunks_exact(4)
            .map(|c| VertexId::from_le_bytes(c.try_into().unwrap()))
    }

    /// The undecoded little-endian neighbor bytes — what the pipeline's
    /// fetcher copies out of the mapping so decoding can happen on the
    /// mapper stage instead.
    pub fn raw_nbr_bytes(&self) -> &[u8] {
        self.nbr_bytes
    }
}

/// Streaming reader over one mapped shard file.
#[derive(Debug)]
pub struct ShardReader {
    bytes: ShardBytes,
    path: PathBuf,
    /// Records the header declared.
    records: u64,
    /// Records handed out so far.
    cursor: u64,
    /// Byte position of the next record.
    pos: usize,
    /// Vertex id of the next record.
    next_vertex: VertexId,
}

impl ShardReader {
    /// Opens a standalone shard file, validating magic, version, and that
    /// the header itself is present (a shorter file is
    /// [`PioError::Truncated`]). Record payloads are length-checked
    /// incrementally as [`next_record`](Self::next_record) walks the file.
    pub fn open(path: &Path) -> Result<ShardReader, PioError> {
        Self::open_at(path, 0)
    }

    /// [`open`](Self::open) with the first record's vertex id — the shard's
    /// position in the stream, taken from the manifest by
    /// [`ShardSet::open_shard`].
    pub fn open_at(path: &Path, first_vertex: VertexId) -> Result<ShardReader, PioError> {
        let bytes = ShardBytes::open(path)?;
        let b = bytes.as_slice();
        if b.len() < SHARD_HEADER_LEN {
            return Err(PioError::Truncated {
                path: path.to_path_buf(),
                expected: SHARD_HEADER_LEN as u64,
                actual: b.len() as u64,
            });
        }
        if b[..4] != SHARD_MAGIC {
            return Err(PioError::Format(format!("bad shard magic {:?}", &b[..4])));
        }
        let version = u32::from_le_bytes(b[4..8].try_into().unwrap());
        if version != SHARD_VERSION {
            return Err(PioError::Format(format!(
                "unsupported shard version {version}"
            )));
        }
        let records = u64::from_le_bytes(b[8..16].try_into().unwrap());
        Ok(ShardReader {
            bytes,
            path: path.to_path_buf(),
            records,
            cursor: 0,
            pos: SHARD_HEADER_LEN,
            next_vertex: first_vertex,
        })
    }

    /// Records the header declared.
    pub fn num_records(&self) -> u64 {
        self.records
    }

    /// The next record, `Ok(None)` at the end, or
    /// [`PioError::Truncated`] if the file ends before the header-declared
    /// record count is satisfied.
    pub fn next_record(&mut self) -> Result<Option<ShardRecord<'_>>, PioError> {
        if self.cursor == self.records {
            return Ok(None);
        }
        let b = self.bytes.as_slice();
        let truncated = |expected: usize, actual: usize| PioError::Truncated {
            path: self.path.clone(),
            expected: expected as u64,
            actual: actual as u64,
        };
        if self.pos + 8 > b.len() {
            return Err(truncated(self.pos + 8, b.len()));
        }
        let out_deg = u32::from_le_bytes(b[self.pos..self.pos + 4].try_into().unwrap());
        let nbr_len = u32::from_le_bytes(b[self.pos + 4..self.pos + 8].try_into().unwrap());
        if (out_deg as u64) > (nbr_len as u64) {
            return Err(PioError::Format(format!(
                "record for vertex {}: out_deg {out_deg} exceeds nbr_len {nbr_len}",
                self.next_vertex
            )));
        }
        let body = self.pos + 8;
        let end = body + nbr_len as usize * 4;
        if end > b.len() {
            return Err(truncated(end, b.len()));
        }
        let record = ShardRecord {
            vertex: self.next_vertex,
            out_deg,
            nbr_bytes: &b[body..end],
        };
        self.pos = end;
        self.cursor += 1;
        self.next_vertex += 1;
        Ok(Some(record))
    }
}

/// An opened shard directory: the validated manifest plus per-shard
/// first-vertex offsets. Individual shards are mapped lazily, one at a
/// time, by [`open_shard`](Self::open_shard).
#[derive(Debug)]
pub struct ShardSet {
    dir: PathBuf,
    manifest: ShardManifest,
    /// Vertex id where each shard starts (prefix sums of record counts).
    starts: Vec<u64>,
}

impl ShardSet {
    /// Opens `dir`, reading and validating the manifest. Shard files are
    /// *not* touched yet; size validation happens per shard on
    /// [`open_shard`](Self::open_shard) so only one shard is ever open.
    pub fn open(dir: &Path) -> Result<ShardSet, PioError> {
        let manifest = ShardManifest::read(&dir.join(MANIFEST_NAME))?;
        if manifest.n > VertexId::MAX as u64 {
            return Err(PioError::Format(format!(
                "vertex count {} exceeds the u32 id space",
                manifest.n
            )));
        }
        let mut starts = Vec::with_capacity(manifest.shards.len());
        let mut acc = 0u64;
        for s in &manifest.shards {
            starts.push(acc);
            acc += s.records;
        }
        Ok(ShardSet {
            dir: dir.to_path_buf(),
            manifest,
            starts,
        })
    }

    /// Total vertices in the stream.
    pub fn num_vertices(&self) -> usize {
        self.manifest.n as usize
    }

    /// Total out-edges in the stream.
    pub fn num_edges(&self) -> u64 {
        self.manifest.m
    }

    /// Number of shard files.
    pub fn num_shards(&self) -> usize {
        self.manifest.shards.len()
    }

    /// The decoded manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Largest single shard in bytes — the pipeline's peak per-shard
    /// mapping cost.
    pub fn max_shard_bytes(&self) -> u64 {
        self.manifest
            .shards
            .iter()
            .map(|s| s.bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total bytes across all shard files.
    pub fn total_bytes(&self) -> u64 {
        self.manifest.shards.iter().map(|s| s.bytes).sum()
    }

    /// Maps shard `index`, validating its real size against the manifest
    /// (short file → [`PioError::Truncated`]) and its header against the
    /// manifest's record count.
    pub fn open_shard(&self, index: usize) -> Result<ShardReader, PioError> {
        let meta = self.manifest.shards.get(index).ok_or_else(|| {
            PioError::Format(format!(
                "shard index {index} out of range ({} shards)",
                self.manifest.shards.len()
            ))
        })?;
        let path = self.dir.join(shard_file_name(index));
        let actual = std::fs::metadata(&path)?.len();
        if actual < meta.bytes {
            return Err(PioError::Truncated {
                path,
                expected: meta.bytes,
                actual,
            });
        }
        let reader = ShardReader::open_at(&path, self.starts[index] as VertexId)?;
        if reader.num_records() != meta.records {
            return Err(PioError::Format(format!(
                "{}: header declares {} records, manifest expects {}",
                path.display(),
                reader.num_records(),
                meta.records
            )));
        }
        Ok(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpart::BPart;
    use crate::partitioner::Partitioner;
    use bpart_graph::generate;

    fn sample() -> (CsrGraph, Partition) {
        let g = generate::erdos_renyi(200, 1_200, 3);
        let p = BPart::default().partition(&g, 4);
        (g, p)
    }

    #[test]
    fn text_round_trip() {
        let (g, p) = sample();
        let mut buf = Vec::new();
        write_text(&p, &mut buf).unwrap();
        let q = read_text(&g, buf.as_slice()).unwrap();
        assert_eq!(p.assignment(), q.assignment());
        assert_eq!(p.num_parts(), q.num_parts());
    }

    #[test]
    fn binary_round_trip() {
        let (g, p) = sample();
        let mut buf = Vec::new();
        write_binary(&p, &mut buf).unwrap();
        let q = read_binary(&g, buf.as_slice()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn binary_preserves_trailing_empty_parts() {
        // k is stored explicitly, so empty high parts survive; the text
        // format infers k from the max id and cannot.
        let g = generate::ring(4);
        let p = Partition::from_assignment(&g, 6, vec![0, 1, 0, 1]);
        let mut buf = Vec::new();
        write_binary(&p, &mut buf).unwrap();
        assert_eq!(read_binary(&g, buf.as_slice()).unwrap().num_parts(), 6);
        let mut tbuf = Vec::new();
        write_text(&p, &mut tbuf).unwrap();
        assert_eq!(read_text(&g, tbuf.as_slice()).unwrap().num_parts(), 2);
    }

    #[test]
    fn text_rejects_garbage_and_wrong_length() {
        let g = generate::ring(3);
        assert!(read_text(&g, "0\nx\n0\n".as_bytes()).is_err());
        assert!(read_text(&g, "0\n1\n".as_bytes()).is_err());
    }

    fn temp_shard_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bpart-pio-shards-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Reconstructs every record's neighbor list from a shard directory.
    fn collect_records(set: &ShardSet) -> Vec<(VertexId, u32, Vec<VertexId>)> {
        let mut out = Vec::new();
        for s in 0..set.num_shards() {
            let mut reader = set.open_shard(s).unwrap();
            while let Some(r) = reader.next_record().unwrap() {
                out.push((r.vertex, r.out_deg, r.nbrs().collect()));
            }
        }
        out
    }

    #[test]
    fn shard_round_trip_preserves_tally_order_neighborhoods() {
        let g = generate::erdos_renyi(300, 2_000, 11);
        let dir = temp_shard_dir("roundtrip");
        // Small target forces several shards.
        let manifest = write_shards(&g, &dir, 4 * 1024).unwrap();
        assert!(manifest.shards.len() > 1, "expected multiple shards");
        assert_eq!(manifest.n, 300);
        assert_eq!(manifest.m, 2_000);

        let set = ShardSet::open(&dir).unwrap();
        assert_eq!(set.num_vertices(), 300);
        assert_eq!(set.num_edges(), 2_000);
        let records = collect_records(&set);
        assert_eq!(records.len(), 300);
        for (v, out_deg, nbrs) in records {
            let expect: Vec<VertexId> = g
                .out_neighbors(v)
                .iter()
                .chain(g.in_neighbors(v))
                .copied()
                .collect();
            assert_eq!(out_deg as usize, g.out_degree(v), "vertex {v}");
            assert_eq!(nbrs, expect, "vertex {v} neighborhood order");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shards_from_mapped_match_shards_from_graph() {
        let g = generate::twitter_like().generate_scaled(0.005);
        let bpgr = std::env::temp_dir().join(format!(
            "bpart-pio-shards-{}-mapped.bpgr",
            std::process::id()
        ));
        bpart_graph::io::write_binary(&g, std::fs::File::create(&bpgr).unwrap()).unwrap();
        let csr = MappedCsr::open(&bpgr).unwrap();

        let dir_a = temp_shard_dir("from-graph");
        let dir_b = temp_shard_dir("from-mapped");
        write_shards(&g, &dir_a, 16 * 1024).unwrap();
        write_shards_from_mapped(&csr, &dir_b, 16 * 1024).unwrap();

        let set_a = ShardSet::open(&dir_a).unwrap();
        let set_b = ShardSet::open(&dir_b).unwrap();
        assert_eq!(set_a.manifest(), set_b.manifest());
        assert_eq!(collect_records(&set_a), collect_records(&set_b));

        std::fs::remove_file(&bpgr).unwrap();
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn empty_graph_writes_one_self_describing_shard() {
        let g = CsrGraph::from_edges(0, &[]);
        let dir = temp_shard_dir("empty");
        write_shards(&g, &dir, 1024).unwrap();
        let set = ShardSet::open(&dir).unwrap();
        assert_eq!(set.num_vertices(), 0);
        assert_eq!(set.num_shards(), 1);
        assert!(collect_records(&set).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_shard_is_a_typed_error_not_a_panic() {
        let g = generate::erdos_renyi(200, 1_500, 5);
        let dir = temp_shard_dir("truncated");
        write_shards(&g, &dir, u64::MAX).unwrap(); // one big shard
        let path = dir.join(shard_file_name(0));
        let bytes = std::fs::read(&path).unwrap();

        // Shorter than the manifest claims → Truncated at open_shard.
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let set = ShardSet::open(&dir).unwrap();
        match set.open_shard(0) {
            Err(PioError::Truncated {
                expected, actual, ..
            }) => {
                assert_eq!(expected, bytes.len() as u64);
                assert_eq!(actual, bytes.len() as u64 - 5);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }

        // Standalone reader (no manifest): header-declared records out-run
        // the payload mid-record → Truncated from next_record.
        let mut reader = ShardReader::open(&path).unwrap();
        let mut saw_truncated = false;
        loop {
            match reader.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(PioError::Truncated { .. }) => {
                    saw_truncated = true;
                    break;
                }
                Err(other) => panic!("expected Truncated, got {other}"),
            }
        }
        assert!(saw_truncated, "short payload must surface as Truncated");

        // Shorter than the shard header itself.
        std::fs::write(&path, &bytes[..7]).unwrap();
        assert!(matches!(
            ShardReader::open(&path),
            Err(PioError::Truncated { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_shard_headers_rejected() {
        let g = generate::ring(20);
        let dir = temp_shard_dir("corrupt");
        write_shards(&g, &dir, u64::MAX).unwrap();
        let path = dir.join(shard_file_name(0));
        let bytes = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        let err = ShardReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("bad shard magic"), "{err}");

        // Bad version.
        let mut bad = bytes.clone();
        bad[4..8].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let err = ShardReader::open(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        // Record with out_deg > nbr_len (internally inconsistent).
        let mut bad = bytes.clone();
        let rec = SHARD_HEADER_LEN;
        bad[rec..rec + 4].copy_from_slice(&1000u32.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let mut reader = ShardReader::open(&path).unwrap();
        let err = reader.next_record().unwrap_err();
        assert!(err.to_string().contains("out_deg"), "{err}");

        // Record-count mismatch between shard header and manifest.
        let mut bad = bytes.clone();
        bad[8..16].copy_from_slice(&7u64.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        let set = ShardSet::open(&dir).unwrap();
        let err = set.open_shard(0).unwrap_err();
        assert!(err.to_string().contains("manifest expects"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_rejected() {
        let g = generate::ring(10);
        let dir = temp_shard_dir("manifest");
        write_shards(&g, &dir, u64::MAX).unwrap();
        let mpath = dir.join(MANIFEST_NAME);
        let bytes = std::fs::read(&mpath).unwrap();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        std::fs::write(&mpath, &bad).unwrap();
        assert!(ShardSet::open(&dir).is_err());

        // Truncated shard table.
        std::fs::write(&mpath, &bytes[..bytes.len() - 4]).unwrap();
        assert!(matches!(
            ShardSet::open(&dir),
            Err(PioError::Truncated { .. })
        ));

        // Record counts that do not sum to n.
        let mut bad = bytes.clone();
        bad[8..16].copy_from_slice(&999u64.to_le_bytes());
        std::fs::write(&mpath, &bad).unwrap();
        let err = ShardSet::open(&dir).unwrap_err();
        assert!(err.to_string().contains("sum to"), "{err}");

        // Missing shard file.
        std::fs::write(&mpath, &bytes).unwrap();
        std::fs::remove_file(dir.join(shard_file_name(0))).unwrap();
        let set = ShardSet::open(&dir).unwrap();
        assert!(matches!(set.open_shard(0), Err(PioError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn raw_assignment_writers_match_partition_writers() {
        let (_, p) = sample();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_binary(&p, &mut a).unwrap();
        write_binary_assignment(p.num_parts(), p.assignment(), &mut b).unwrap();
        assert_eq!(a, b);
        let mut ta = Vec::new();
        let mut tb = Vec::new();
        write_text(&p, &mut ta).unwrap();
        write_text_assignment(p.num_parts(), p.assignment(), &mut tb).unwrap();
        assert_eq!(ta, tb);
    }

    #[test]
    fn binary_rejects_wrong_graph_and_corruption() {
        let (g, p) = sample();
        let mut buf = Vec::new();
        write_binary(&p, &mut buf).unwrap();
        let other = generate::ring(10);
        assert!(read_binary(&other, buf.as_slice()).is_err());
        let mut corrupt = buf.clone();
        corrupt[0] = b'X';
        assert!(read_binary(&g, corrupt.as_slice()).is_err());
        let len = buf.len();
        let mut bad_part = buf.clone();
        bad_part[len - 4..].copy_from_slice(&999u32.to_le_bytes());
        assert!(read_binary(&g, bad_part.as_slice()).is_err());
    }
}
