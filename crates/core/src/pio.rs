//! Partition serialization.
//!
//! Text format (`.parts`): one part id per line, line number = vertex id,
//! `#` comments allowed — the format METIS-family tools exchange, so
//! partitions produced here drop into other toolchains.
//!
//! Binary format: `BPPT` magic, version, `k`, `n`, then `n` little-endian
//! `u32` part ids.

use crate::partition::{PartId, Partition};
use bpart_graph::{CsrGraph, GraphError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

const MAGIC: [u8; 4] = *b"BPPT";
const VERSION: u32 = 1;

/// Writes the assignment as text, one part id per line.
pub fn write_text<W: Write>(partition: &Partition, writer: W) -> Result<(), GraphError> {
    let mut bw = BufWriter::new(writer);
    writeln!(
        bw,
        "# bpart partition: {} vertices, {} parts",
        partition.num_vertices(),
        partition.num_parts()
    )?;
    for &p in partition.assignment() {
        writeln!(bw, "{p}")?;
    }
    bw.flush()?;
    Ok(())
}

/// Reads a text assignment and re-tallies it against `graph`.
pub fn read_text<R: Read>(graph: &CsrGraph, reader: R) -> Result<Partition, GraphError> {
    let mut br = BufReader::new(reader);
    let mut assignment: Vec<PartId> = Vec::with_capacity(graph.num_vertices());
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if br.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let p: PartId = trimmed
            .parse()
            .map_err(|_| GraphError::Format(format!("line {lineno}: bad part id {trimmed:?}")))?;
        assignment.push(p);
    }
    finish(graph, assignment)
}

/// Writes the assignment in the binary format.
pub fn write_binary<W: Write>(partition: &Partition, writer: W) -> Result<(), GraphError> {
    let mut bw = BufWriter::new(writer);
    bw.write_all(&MAGIC)?;
    bw.write_all(&VERSION.to_le_bytes())?;
    bw.write_all(&(partition.num_parts() as u32).to_le_bytes())?;
    bw.write_all(&(partition.num_vertices() as u64).to_le_bytes())?;
    for &p in partition.assignment() {
        bw.write_all(&p.to_le_bytes())?;
    }
    bw.flush()?;
    Ok(())
}

/// Reads a binary assignment and re-tallies it against `graph`.
pub fn read_binary<R: Read>(graph: &CsrGraph, reader: R) -> Result<Partition, GraphError> {
    let mut br = BufReader::new(reader);
    let mut magic = [0u8; 4];
    br.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(GraphError::Format(format!("bad partition magic {magic:?}")));
    }
    let mut b4 = [0u8; 4];
    br.read_exact(&mut b4)?;
    let version = u32::from_le_bytes(b4);
    if version != VERSION {
        return Err(GraphError::Format(format!(
            "unsupported partition version {version}"
        )));
    }
    br.read_exact(&mut b4)?;
    let k = u32::from_le_bytes(b4) as usize;
    let mut b8 = [0u8; 8];
    br.read_exact(&mut b8)?;
    let n = u64::from_le_bytes(b8) as usize;
    if n != graph.num_vertices() {
        return Err(GraphError::Format(format!(
            "partition covers {n} vertices, graph has {}",
            graph.num_vertices()
        )));
    }
    let mut assignment = Vec::with_capacity(n);
    for _ in 0..n {
        br.read_exact(&mut b4)?;
        let p = u32::from_le_bytes(b4);
        if p as usize >= k {
            return Err(GraphError::Format(format!(
                "part id {p} out of range (k = {k})"
            )));
        }
        assignment.push(p);
    }
    Ok(Partition::from_assignment(graph, k, assignment))
}

/// Shared text-path epilogue: validate the length and infer `k`.
fn finish(graph: &CsrGraph, assignment: Vec<PartId>) -> Result<Partition, GraphError> {
    if assignment.len() != graph.num_vertices() {
        return Err(GraphError::Format(format!(
            "partition covers {} vertices, graph has {}",
            assignment.len(),
            graph.num_vertices()
        )));
    }
    let k = assignment
        .iter()
        .copied()
        .max()
        .map_or(1, |m| m as usize + 1);
    Ok(Partition::from_assignment(graph, k, assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpart::BPart;
    use crate::partitioner::Partitioner;
    use bpart_graph::generate;

    fn sample() -> (CsrGraph, Partition) {
        let g = generate::erdos_renyi(200, 1_200, 3);
        let p = BPart::default().partition(&g, 4);
        (g, p)
    }

    #[test]
    fn text_round_trip() {
        let (g, p) = sample();
        let mut buf = Vec::new();
        write_text(&p, &mut buf).unwrap();
        let q = read_text(&g, buf.as_slice()).unwrap();
        assert_eq!(p.assignment(), q.assignment());
        assert_eq!(p.num_parts(), q.num_parts());
    }

    #[test]
    fn binary_round_trip() {
        let (g, p) = sample();
        let mut buf = Vec::new();
        write_binary(&p, &mut buf).unwrap();
        let q = read_binary(&g, buf.as_slice()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn binary_preserves_trailing_empty_parts() {
        // k is stored explicitly, so empty high parts survive; the text
        // format infers k from the max id and cannot.
        let g = generate::ring(4);
        let p = Partition::from_assignment(&g, 6, vec![0, 1, 0, 1]);
        let mut buf = Vec::new();
        write_binary(&p, &mut buf).unwrap();
        assert_eq!(read_binary(&g, buf.as_slice()).unwrap().num_parts(), 6);
        let mut tbuf = Vec::new();
        write_text(&p, &mut tbuf).unwrap();
        assert_eq!(read_text(&g, tbuf.as_slice()).unwrap().num_parts(), 2);
    }

    #[test]
    fn text_rejects_garbage_and_wrong_length() {
        let g = generate::ring(3);
        assert!(read_text(&g, "0\nx\n0\n".as_bytes()).is_err());
        assert!(read_text(&g, "0\n1\n".as_bytes()).is_err());
    }

    #[test]
    fn binary_rejects_wrong_graph_and_corruption() {
        let (g, p) = sample();
        let mut buf = Vec::new();
        write_binary(&p, &mut buf).unwrap();
        let other = generate::ring(10);
        assert!(read_binary(&other, buf.as_slice()).is_err());
        let mut corrupt = buf.clone();
        corrupt[0] = b'X';
        assert!(read_binary(&g, corrupt.as_slice()).is_err());
        let len = buf.len();
        let mut bad_part = buf.clone();
        bad_part[len - 4..].copy_from_slice(&999u32.to_le_bytes());
        assert!(read_binary(&g, bad_part.as_slice()).is_err());
    }
}
