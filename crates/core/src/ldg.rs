//! LDG — Linear Deterministic Greedy streaming partitioning (Stanton &
//! Kliot, KDD '12), the earliest of the streaming heuristics the paper's
//! related work (§5) builds on.
//!
//! Each streamed vertex goes to the part maximizing
//! `|V_i ∩ N(v)| · (1 − |V_i|/C)`, where `C` is the per-part capacity —
//! a multiplicative penalty instead of Fennel's additive one. Like
//! Fennel, it balances only the vertex dimension; it is included as an
//! additional baseline for the ablation and comparison harnesses.

use crate::partition::{PartId, Partition};
use crate::partitioner::Partitioner;
use crate::stream::StreamOrder;
use bpart_graph::CsrGraph;

/// Tunables for [`Ldg`].
#[derive(Clone, Copy, Debug)]
pub struct LdgConfig {
    /// Per-part capacity as a multiple of `n/k` (default 1.1).
    pub load_factor: f64,
    /// Vertex visit order.
    pub order: StreamOrder,
}

impl Default for LdgConfig {
    fn default() -> Self {
        LdgConfig {
            load_factor: 1.1,
            order: StreamOrder::Natural,
        }
    }
}

/// The LDG streaming partitioner.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ldg {
    config: LdgConfig,
}

impl Ldg {
    /// LDG with explicit tunables.
    pub fn new(config: LdgConfig) -> Self {
        Ldg { config }
    }
}

impl Partitioner for Ldg {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        assert!(num_parts > 0, "need at least one part");
        let n = graph.num_vertices();
        let capacity = (self.config.load_factor * n as f64 / num_parts as f64).max(1.0);
        let order = self.config.order.order(graph);

        let mut assignment = vec![PartId::MAX; n];
        let mut sizes = vec![0u64; num_parts];
        let mut nbr_counts = vec![0u32; num_parts];
        let mut touched: Vec<PartId> = Vec::new();

        for v in order {
            for &w in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                let p = assignment[w as usize];
                if p != PartId::MAX {
                    if nbr_counts[p as usize] == 0 {
                        touched.push(p);
                    }
                    nbr_counts[p as usize] += 1;
                }
            }
            // Score every part: neighbor parts use the multiplicative
            // formula; parts with no neighbors score 0, so ties fall to
            // the emptiest part (LDG's stated tie-break).
            let mut best: Option<(f64, u64, PartId)> = None;
            for p in 0..num_parts as PartId {
                let size = sizes[p as usize];
                if (size as f64) >= capacity {
                    continue;
                }
                let slack = 1.0 - size as f64 / capacity;
                let score = nbr_counts[p as usize] as f64 * slack;
                let better = match best {
                    None => true,
                    Some((bs, bsize, bp)) => {
                        score > bs || (score == bs && (size < bsize || (size == bsize && p < bp)))
                    }
                };
                if better {
                    best = Some((score, size, p));
                }
            }
            // All parts at capacity (rounding corner): take the smallest.
            let part = best.map(|(_, _, p)| p).unwrap_or_else(|| {
                (0..num_parts as PartId)
                    .min_by_key(|&p| sizes[p as usize])
                    .unwrap()
            });
            assignment[v as usize] = part;
            sizes[part as usize] += 1;
            for &p in &touched {
                nbr_counts[p as usize] = 0;
            }
            touched.clear();
        }
        Partition::from_assignment(graph, num_parts, assignment)
    }

    fn name(&self) -> &'static str {
        "LDG"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use bpart_graph::generate;

    #[test]
    fn balances_vertices_within_capacity() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let k = 8;
        let p = Ldg::default().partition(&g, k);
        p.validate(&g).unwrap();
        let cap = (1.1_f64 * g.num_vertices() as f64 / k as f64).ceil() as u64 + 1;
        for &c in p.vertex_counts() {
            assert!(c <= cap, "{c} > {cap}");
        }
        assert!(metrics::bias(p.vertex_counts()) < 0.15);
    }

    #[test]
    fn cuts_fewer_edges_than_hash() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let ldg = metrics::edge_cut_ratio(&g, &Ldg::default().partition(&g, 8));
        let hash = metrics::edge_cut_ratio(
            &g,
            &crate::hash::HashPartitioner::default().partition(&g, 8),
        );
        assert!(ldg < hash * 0.9, "ldg {ldg} vs hash {hash}");
    }

    #[test]
    fn leaves_edges_imbalanced_like_other_vertex_balancers() {
        let g = generate::twitter_like().generate_scaled(0.1);
        let p = Ldg::default().partition(&g, 8);
        assert!(
            metrics::bias(p.edge_counts()) > 0.5,
            "edge bias {}",
            metrics::bias(p.edge_counts())
        );
    }

    #[test]
    fn deterministic_and_covers_corners() {
        let g = generate::lj_like().generate_scaled(0.01);
        assert_eq!(
            Ldg::default().partition(&g, 4),
            Ldg::default().partition(&g, 4)
        );
        let tiny = generate::ring(3);
        Ldg::default().partition(&tiny, 8).validate(&tiny).unwrap();
        let p = Ldg::default().partition(&tiny, 1);
        assert_eq!(p.vertex_counts(), &[3]);
    }
}
