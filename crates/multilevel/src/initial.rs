//! Initial partitioning of the coarsest graph: greedy graph growing
//! (KaHIP-style).
//!
//! Parts are grown one at a time: seed with the highest-degree unassigned
//! coarse vertex, then repeatedly absorb the unassigned neighbor with the
//! strongest connection to the growing part until the part reaches its
//! vertex-weight share; the last part takes the remainder. Growing regions
//! contiguously minimizes the cut, and — like the real Mt-KaHIP — it keeps
//! dense (hub) regions inside a single part: vertex weights end up tightly
//! balanced while edge counts stay skewed, the §4.2 behaviour BPart is
//! compared against.

use crate::wgraph::WeightedGraph;
use bpart_core::PartId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Produces an initial `k`-way label vector on the coarsest graph with all
/// part weights `<= max_part_weight` whenever feasible.
pub fn greedy_initial(
    graph: &WeightedGraph,
    num_parts: usize,
    max_part_weight: u64,
) -> Vec<PartId> {
    let n = graph.num_vertices();
    let mut labels = vec![PartId::MAX; n];
    let total: u64 = graph.total_vertex_weight();
    let mut assigned_weight = 0u64;

    // Degree-ordered seeds: densest regions are claimed first, as in
    // greedy graph growing.
    let weighted_degree = |v: usize| -> u64 { graph.neighbors(v).map(|(_, w)| w).sum() };

    for p in 0..num_parts.saturating_sub(1) {
        let remaining_parts = (num_parts - p) as u64;
        let target = (total - assigned_weight) / remaining_parts;
        let target = target.min(max_part_weight);

        // Seed: unassigned vertex with the largest weighted degree.
        let Some(seed) = (0..n)
            .filter(|&v| labels[v] == PartId::MAX)
            .max_by_key(|&v| (weighted_degree(v), Reverse(v)))
        else {
            break;
        };

        let mut part_weight = 0u64;
        // Max-heap of (connectivity to part, vertex) with low-id ties so
        // growth prefers the seed's dense surroundings; stale entries are
        // skipped by re-checking the label on pop.
        let mut frontier: BinaryHeap<(u64, Reverse<usize>)> = BinaryHeap::new();
        frontier.push((0, Reverse(seed)));
        let mut gain = vec![0u64; n];

        while part_weight < target {
            // Pop the best-connected unassigned vertex; refill from any
            // other unassigned vertex when the frontier runs dry
            // (disconnected coarse graphs).
            let fits = |v: usize, part_weight: u64| {
                // A lone oversized coarse vertex must go somewhere, so an
                // empty part accepts anything.
                part_weight == 0 || part_weight + graph.vertex_weight(v) <= max_part_weight
            };
            let v = loop {
                match frontier.pop() {
                    Some((g, Reverse(v))) => {
                        if labels[v] != PartId::MAX || g < gain[v] {
                            continue; // already taken or stale entry
                        }
                        if !fits(v, part_weight) {
                            continue; // too big for the remaining budget; later parts take it
                        }
                        break Some(v);
                    }
                    None => {
                        break (0..n)
                            .filter(|&v| labels[v] == PartId::MAX && fits(v, part_weight))
                            .max_by_key(|&v| (weighted_degree(v), Reverse(v)));
                    }
                }
            };
            let Some(v) = v else {
                break; // nothing placeable left
            };
            labels[v] = p as PartId;
            part_weight += graph.vertex_weight(v);
            for (t, w) in graph.neighbors(v) {
                let t = t as usize;
                if labels[t] == PartId::MAX {
                    gain[t] += w;
                    frontier.push((gain[t], Reverse(t)));
                }
            }
        }
        assigned_weight += part_weight;
    }

    // Remainder goes to the last part.
    let last = (num_parts - 1) as PartId;
    for l in labels.iter_mut() {
        if *l == PartId::MAX {
            *l = last;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::{generate, CsrGraph};

    #[test]
    fn all_vertices_labelled() {
        let g = generate::twitter_like().generate_scaled(0.01);
        let w = WeightedGraph::from_csr(&g);
        let cap = (w.total_vertex_weight() as f64 * 1.1 / 4.0).ceil() as u64;
        let labels = greedy_initial(&w, 4, cap);
        assert!(labels.iter().all(|&l| l < 4));
    }

    #[test]
    fn vertex_weights_are_roughly_balanced() {
        let g = generate::erdos_renyi(400, 2_400, 5);
        let w = WeightedGraph::from_csr(&g);
        let cap = (w.total_vertex_weight() as f64 * 1.1 / 4.0).ceil() as u64;
        let labels = greedy_initial(&w, 4, cap);
        let mut weights = [0u64; 4];
        for (v, &l) in labels.iter().enumerate() {
            weights[l as usize] += w.vertex_weight(v);
        }
        let max = *weights.iter().max().unwrap() as f64;
        let mean = weights.iter().sum::<u64>() as f64 / 4.0;
        assert!(max / mean < 1.15, "weights: {weights:?}");
    }

    #[test]
    fn growing_keeps_a_clique_together() {
        // 4-clique plus a long path: the clique should land inside one part.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        for v in 4..12u32 {
            edges.push((v - 1, v));
            edges.push((v, v - 1));
        }
        let g = CsrGraph::from_edges(12, &edges);
        let w = WeightedGraph::from_csr(&g);
        let labels = greedy_initial(&w, 2, 8);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[2], labels[3]);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 0), (4, 5), (5, 4)]);
        let w = WeightedGraph::from_csr(&g);
        let labels = greedy_initial(&w, 3, 3);
        assert!(labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn deterministic() {
        let g = generate::lj_like().generate_scaled(0.01);
        let w = WeightedGraph::from_csr(&g);
        assert_eq!(
            greedy_initial(&w, 4, u64::MAX),
            greedy_initial(&w, 4, u64::MAX)
        );
    }

    #[test]
    fn single_part_takes_everything() {
        let g = generate::ring(5);
        let w = WeightedGraph::from_csr(&g);
        assert_eq!(greedy_initial(&w, 1, u64::MAX), vec![0; 5]);
    }
}
