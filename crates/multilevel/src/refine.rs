//! Boundary FM-style local search.
//!
//! Each pass scans the current boundary vertices in id order and greedily
//! moves a vertex to the neighboring part with the highest positive cut
//! gain, provided the target part stays under the vertex-weight cap. Moves
//! are applied immediately (label-propagation-style FM, as in Mt-KaHIP's
//! parallel local search); passes repeat until no move improves the cut or
//! the pass budget is exhausted.

use crate::wgraph::WeightedGraph;
use bpart_core::PartId;
use std::collections::HashMap;

/// Refines `labels` in place; returns the total cut-weight improvement.
pub fn fm_refine(
    graph: &WeightedGraph,
    labels: &mut [PartId],
    num_parts: usize,
    max_part_weight: u64,
    passes: usize,
) -> u64 {
    let n = graph.num_vertices();
    assert_eq!(labels.len(), n);
    let mut part_weight = vec![0u64; num_parts];
    for v in 0..n {
        part_weight[labels[v] as usize] += graph.vertex_weight(v);
    }

    let mut total_gain = 0u64;
    let mut affinity: HashMap<PartId, u64> = HashMap::new();
    for _ in 0..passes {
        let mut pass_gain = 0u64;
        for v in 0..n {
            let own = labels[v];
            affinity.clear();
            let mut is_boundary = false;
            for (t, w) in graph.neighbors(v) {
                let l = labels[t as usize];
                if l != own {
                    is_boundary = true;
                }
                *affinity.entry(l).or_insert(0) += w;
            }
            if !is_boundary {
                continue;
            }
            let internal = affinity.get(&own).copied().unwrap_or(0);
            let vw = graph.vertex_weight(v);
            // Best strictly-positive-gain move that respects the cap.
            let mut best: Option<(u64, PartId)> = None;
            for (&l, &w) in &affinity {
                if l == own || w <= internal {
                    continue;
                }
                if part_weight[l as usize] + vw > max_part_weight {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bw, bl)) => w > bw || (w == bw && l < bl),
                };
                if better {
                    best = Some((w, l));
                }
            }
            if let Some((w, target)) = best {
                part_weight[own as usize] -= vw;
                part_weight[target as usize] += vw;
                labels[v] = target;
                pass_gain += w - internal;
            }
        }
        total_gain += pass_gain;
        if pass_gain == 0 {
            break;
        }
    }
    total_gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::{generate, CsrGraph};

    #[test]
    fn repairs_an_obviously_bad_split() {
        // Two 4-cliques bridged by one edge, labelled orthogonally to the
        // cliques: refinement should restore the clique split.
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for a in 0..4 {
                for b in 0..4 {
                    if a != b {
                        edges.push((base + a, base + b));
                    }
                }
            }
        }
        edges.push((0, 4));
        let g = CsrGraph::from_edges(8, &edges);
        let w = WeightedGraph::from_csr(&g);
        let mut labels = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let before = w.cut_weight(&labels);
        let gain = fm_refine(&w, &mut labels, 2, 5, 8);
        let after = w.cut_weight(&labels);
        assert_eq!(before - after, gain);
        assert!(after <= 2, "cut after refine = {after}");
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[4], labels[5]);
    }

    #[test]
    fn never_worsens_the_cut() {
        let g = generate::twitter_like().generate_scaled(0.01);
        let w = WeightedGraph::from_csr(&g);
        let n = w.num_vertices();
        let mut labels: Vec<PartId> = (0..n).map(|v| (v % 4) as PartId).collect();
        let before = w.cut_weight(&labels);
        let cap = (w.total_vertex_weight() as f64 * 1.1 / 4.0) as u64;
        fm_refine(&w, &mut labels, 4, cap, 3);
        let after = w.cut_weight(&labels);
        assert!(after <= before, "{after} > {before}");
    }

    #[test]
    fn respects_weight_cap() {
        let g = generate::twitter_like().generate_scaled(0.01);
        let w = WeightedGraph::from_csr(&g);
        let n = w.num_vertices();
        let mut labels: Vec<PartId> = (0..n).map(|v| (v % 4) as PartId).collect();
        let cap = (w.total_vertex_weight() as f64 * 1.05 / 4.0).ceil() as u64;
        fm_refine(&w, &mut labels, 4, cap, 3);
        let mut weights = [0u64; 4];
        for (v, &l) in labels.iter().enumerate() {
            weights[l as usize] += w.vertex_weight(v);
        }
        for &pw in &weights {
            assert!(pw <= cap, "{pw} > {cap}");
        }
    }

    #[test]
    fn balanced_optimum_is_a_fixed_point() {
        let g = generate::grid(1, 8); // path
        let w = WeightedGraph::from_csr(&g);
        let mut labels = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let gain = fm_refine(&w, &mut labels, 2, 4, 4);
        assert_eq!(gain, 0);
        assert_eq!(labels, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }
}
