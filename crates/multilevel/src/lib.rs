//! # bpart-multilevel — an offline multilevel graph partitioner
//!
//! A Mt-KaHIP-style baseline for §4.2 of the BPart paper, which compares
//! BPart against offline multilevel partitioning and reports that the
//! multilevel approach balances vertices tightly (bias ≈ 0.03) while
//! leaving edge counts heavily skewed (bias 0.70–2.59).
//!
//! The classic three stages (Akhremtsev, Sanders & Schulz, TPDS '20):
//!
//! 1. **Coarsening** ([`coarsen`]) — size-constrained label propagation
//!    clusters the graph, contracting each cluster into one weighted vertex,
//!    repeated until the graph is small,
//! 2. **Initial partitioning** ([`initial`]) — longest-processing-time bin
//!    packing by vertex weight followed by a refinement pass on the
//!    coarsest graph,
//! 3. **Uncoarsening + local search** ([`refine`]) — project labels back
//!    level by level, improving the cut with boundary Fiduccia–Mattheyses
//!    moves under a vertex-balance constraint.
//!
//! The result plugs into the same [`Partitioner`] trait as the streaming
//! schemes, so every harness table can include it.

pub mod coarsen;
pub mod initial;
pub mod refine;
pub mod wgraph;

use bpart_core::{PartId, Partition, Partitioner};
use bpart_graph::CsrGraph;
use wgraph::WeightedGraph;

/// Tunables for [`Multilevel`].
#[derive(Clone, Copy, Debug)]
pub struct MultilevelConfig {
    /// Stop coarsening when the graph has at most `coarse_factor * k`
    /// vertices (floored at 64).
    pub coarse_factor: usize,
    /// Label-propagation rounds per coarsening level.
    pub lp_rounds: usize,
    /// Allowed vertex imbalance: every part's vertex weight stays below
    /// `(1 + imbalance) * n / k`.
    pub imbalance: f64,
    /// FM refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// Seed for tie-breaking in label propagation.
    pub seed: u64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarse_factor: 30,
            // One LP round per level keeps dense (hub) communities coherent
            // through contraction; more rounds smear them across clusters
            // and accidentally balance edge counts, hiding the §4.2
            // behaviour this baseline exists to show.
            lp_rounds: 1,
            imbalance: 0.03,
            refine_passes: 3,
            seed: 0x4d4c_5056,
        }
    }
}

/// The multilevel partitioner.
#[derive(Clone, Copy, Debug, Default)]
pub struct Multilevel {
    config: MultilevelConfig,
}

impl Multilevel {
    /// Multilevel partitioner with explicit tunables.
    pub fn new(config: MultilevelConfig) -> Self {
        Multilevel { config }
    }
}

impl Partitioner for Multilevel {
    fn partition(&self, graph: &CsrGraph, num_parts: usize) -> Partition {
        assert!(num_parts > 0, "need at least one part");
        let cfg = &self.config;
        let base = WeightedGraph::from_csr(graph);
        let n0 = base.total_vertex_weight();
        let max_part_weight = ((1.0 + cfg.imbalance) * n0 as f64 / num_parts as f64).ceil() as u64;

        // Coarsening: remember each level's graph and the projection map.
        let coarse_limit = (cfg.coarse_factor * num_parts).max(64);
        let mut levels: Vec<(WeightedGraph, Vec<u32>)> = Vec::new();
        let mut current = base;
        let coarsen_rounds = bpart_obs::metrics::counter("multilevel.coarsen_rounds");
        while current.num_vertices() > coarse_limit {
            let mut level_span = bpart_obs::span("multilevel.coarsen");
            level_span.attr("level", levels.len());
            level_span.attr("vertices", current.num_vertices());
            let clusters = coarsen::label_propagation(
                &current,
                cfg.lp_rounds,
                // Cluster caps keep every coarse vertex placeable under the
                // part weight bound.
                (max_part_weight / 2).max(1),
                cfg.seed ^ levels.len() as u64,
            );
            let (coarser, map) = current.contract(&clusters);
            coarsen_rounds.inc();
            // A stalled shrink means no more structure to exploit.
            if coarser.num_vertices() as f64 > current.num_vertices() as f64 * 0.95 {
                break;
            }
            levels.push((std::mem::replace(&mut current, coarser), map));
        }

        // Initial partition on the coarsest graph.
        let mut labels = initial::greedy_initial(&current, num_parts, max_part_weight);
        refine::fm_refine(
            &current,
            &mut labels,
            num_parts,
            max_part_weight,
            cfg.refine_passes,
        );

        // Uncoarsen with per-level refinement.
        let refine_rounds = bpart_obs::metrics::counter("multilevel.refine_rounds");
        while let Some((finer, map)) = levels.pop() {
            let mut level_span = bpart_obs::span("multilevel.refine");
            level_span.attr("level", levels.len());
            level_span.attr("vertices", finer.num_vertices());
            let mut projected = vec![0 as PartId; finer.num_vertices()];
            for v in 0..finer.num_vertices() {
                projected[v] = labels[map[v] as usize];
            }
            labels = projected;
            refine::fm_refine(
                &finer,
                &mut labels,
                num_parts,
                max_part_weight,
                cfg.refine_passes,
            );
            refine_rounds.add(cfg.refine_passes as u64);
            current = finer;
        }
        let _ = current;

        Partition::from_assignment(graph, num_parts, labels)
    }

    fn name(&self) -> &'static str {
        "Mt-KaHIP-like"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_core::metrics;
    use bpart_graph::generate;

    #[test]
    fn valid_partition_on_power_law_graph() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let p = Multilevel::default().partition(&g, 8);
        p.validate(&g).unwrap();
    }

    #[test]
    fn vertices_tightly_balanced_edges_not() {
        // The defining behaviour §4.2 reports for Mt-KaHIP.
        let g = generate::twitter_like().generate_scaled(0.05);
        let p = Multilevel::default().partition(&g, 8);
        let v_bias = metrics::bias(p.vertex_counts());
        let e_bias = metrics::bias(p.edge_counts());
        assert!(v_bias < 0.05, "vertex bias {v_bias}");
        // At this reduced test scale the absolute edge skew is diluted;
        // the defining shape is edge bias far above vertex bias (the
        // harness `mtkahip` bin shows ~1.0 at larger scales).
        assert!(
            e_bias > 0.1 && e_bias > 3.0 * v_bias,
            "edge bias {e_bias} should stay skewed"
        );
    }

    #[test]
    fn cut_beats_hash() {
        let g = generate::lj_like().generate_scaled(0.03);
        let p = Multilevel::default().partition(&g, 4);
        let cut = metrics::edge_cut_ratio(&g, &p);
        let hash_cut =
            metrics::edge_cut_ratio(&g, &bpart_core::HashPartitioner::default().partition(&g, 4));
        assert!(cut < hash_cut, "multilevel {cut} vs hash {hash_cut}");
    }

    #[test]
    fn deterministic() {
        let g = generate::lj_like().generate_scaled(0.01);
        let a = Multilevel::default().partition(&g, 4);
        let b = Multilevel::default().partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_graph_smaller_than_coarse_limit() {
        let g = generate::ring(20);
        let p = Multilevel::default().partition(&g, 4);
        p.validate(&g).unwrap();
        assert!(metrics::bias(p.vertex_counts()) < 0.5);
    }

    #[test]
    fn single_part() {
        let g = generate::ring(10);
        let p = Multilevel::default().partition(&g, 1);
        assert_eq!(p.vertex_counts(), &[10]);
    }
}
