//! Weighted undirected graph used internally by the multilevel stages.
//!
//! Vertices carry weights (number of original vertices they represent) and
//! edges carry weights (number of original edges collapsed into them). The
//! input [`CsrGraph`] is symmetrized on entry: an
//! original edge in either direction contributes weight 1 to the undirected
//! edge, so cut weights on any level equal original (undirected) cut sizes.

use bpart_graph::CsrGraph;
use std::collections::HashMap;

/// Weighted undirected graph in CSR form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedGraph {
    offsets: Vec<u64>,
    targets: Vec<u32>,
    edge_weights: Vec<u64>,
    vertex_weights: Vec<u64>,
}

impl WeightedGraph {
    /// Builds the level-0 weighted graph from a directed CSR graph.
    pub fn from_csr(graph: &CsrGraph) -> Self {
        let n = graph.num_vertices();
        // Merge out- and in-adjacency into undirected weighted lists.
        let mut adjacency: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
        for (u, v) in graph.edges() {
            if u == v {
                continue;
            }
            *adjacency[u as usize].entry(v).or_insert(0) += 1;
            *adjacency[v as usize].entry(u).or_insert(0) += 1;
        }
        Self::from_adjacency(adjacency, vec![1u64; n])
    }

    /// Builds from per-vertex adjacency maps plus vertex weights.
    fn from_adjacency(adjacency: Vec<HashMap<u32, u64>>, vertex_weights: Vec<u64>) -> Self {
        let n = adjacency.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let total: usize = adjacency.iter().map(|a| a.len()).sum();
        let mut targets = Vec::with_capacity(total);
        let mut edge_weights = Vec::with_capacity(total);
        for adj in adjacency {
            let mut entries: Vec<(u32, u64)> = adj.into_iter().collect();
            entries.sort_unstable();
            for (t, w) in entries {
                targets.push(t);
                edge_weights.push(w);
            }
            offsets.push(targets.len() as u64);
        }
        WeightedGraph {
            offsets,
            targets,
            edge_weights,
            vertex_weights,
        }
    }

    /// Number of vertices at this level.
    pub fn num_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    /// Weight of vertex `v` (original vertices represented).
    #[inline]
    pub fn vertex_weight(&self, v: usize) -> u64 {
        self.vertex_weights[v]
    }

    /// Sum of all vertex weights (original vertex count).
    pub fn total_vertex_weight(&self) -> u64 {
        self.vertex_weights.iter().sum()
    }

    /// Weighted neighbors `(target, edge_weight)` of `v`, sorted by target.
    #[inline]
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, u64)> + '_ {
        let (lo, hi) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.edge_weights[lo..hi].iter().copied())
    }

    /// Contracts `clusters` (a vertex → cluster-id map with arbitrary ids)
    /// into a coarser graph. Returns the coarse graph and the dense map
    /// from fine vertex to coarse vertex.
    pub fn contract(&self, clusters: &[u32]) -> (WeightedGraph, Vec<u32>) {
        assert_eq!(clusters.len(), self.num_vertices());
        // Densify cluster ids in first-appearance order (deterministic).
        let mut dense: HashMap<u32, u32> = HashMap::new();
        let mut map = vec![0u32; clusters.len()];
        for (v, &c) in clusters.iter().enumerate() {
            let next = dense.len() as u32;
            let id = *dense.entry(c).or_insert(next);
            map[v] = id;
        }
        let coarse_n = dense.len();

        let mut vertex_weights = vec![0u64; coarse_n];
        for (v, &c) in map.iter().enumerate() {
            vertex_weights[c as usize] += self.vertex_weights[v];
        }
        let mut adjacency: Vec<HashMap<u32, u64>> = vec![HashMap::new(); coarse_n];
        for v in 0..self.num_vertices() {
            let cv = map[v];
            for (t, w) in self.neighbors(v) {
                let ct = map[t as usize];
                if cv != ct {
                    *adjacency[cv as usize].entry(ct).or_insert(0) += w;
                }
            }
        }
        (
            WeightedGraph::from_adjacency(adjacency, vertex_weights),
            map,
        )
    }

    /// Total weight of edges with endpoints in different parts, counting
    /// each undirected edge once.
    pub fn cut_weight(&self, labels: &[u32]) -> u64 {
        let mut cut = 0u64;
        for v in 0..self.num_vertices() {
            for (t, w) in self.neighbors(v) {
                if (t as usize) > v && labels[v] != labels[t as usize] {
                    cut += w;
                }
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::generate;

    #[test]
    fn symmetrization_merges_both_directions() {
        // 0->1 and 1->0 collapse into one undirected edge of weight 2.
        let g = CsrGraph::from_edges(2, &[(0, 1), (1, 0)]);
        let w = WeightedGraph::from_csr(&g);
        let nbrs: Vec<_> = w.neighbors(0).collect();
        assert_eq!(nbrs, vec![(1, 2)]);
        assert_eq!(w.total_vertex_weight(), 2);
    }

    #[test]
    fn contraction_accumulates_weights() {
        // path 0-1-2-3 (bidirected); contract {0,1} and {2,3}
        let g = generate::grid(1, 4);
        let w = WeightedGraph::from_csr(&g);
        let (coarse, map) = w.contract(&[7, 7, 9, 9]);
        assert_eq!(coarse.num_vertices(), 2);
        assert_eq!(map, vec![0, 0, 1, 1]);
        assert_eq!(coarse.vertex_weight(0), 2);
        // single coarse edge: the 1-2 link, weight 2 (both directions)
        let nbrs: Vec<_> = coarse.neighbors(0).collect();
        assert_eq!(nbrs, vec![(1, 2)]);
    }

    #[test]
    fn contraction_drops_internal_edges() {
        let g = generate::complete(4);
        let w = WeightedGraph::from_csr(&g);
        let (coarse, _) = w.contract(&[0, 0, 0, 0]);
        assert_eq!(coarse.num_vertices(), 1);
        assert_eq!(coarse.neighbors(0).count(), 0);
        assert_eq!(coarse.vertex_weight(0), 4);
    }

    #[test]
    fn cut_weight_counts_undirected_edges_once() {
        let g = generate::grid(1, 4); // 0-1-2-3
        let w = WeightedGraph::from_csr(&g);
        assert_eq!(w.cut_weight(&[0, 0, 1, 1]), 2); // edge 1-2 has weight 2
        assert_eq!(w.cut_weight(&[0, 0, 0, 0]), 0);
        assert_eq!(w.cut_weight(&[0, 1, 0, 1]), 6);
    }

    #[test]
    fn self_loops_are_ignored() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1)]);
        let w = WeightedGraph::from_csr(&g);
        assert_eq!(w.neighbors(0).count(), 1);
    }
}
