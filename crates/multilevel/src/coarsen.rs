//! Size-constrained label propagation coarsening.
//!
//! Each round, every vertex (in a seeded shuffled order) adopts the label
//! that maximizes the total edge weight to that label's cluster, subject to
//! the cluster staying under `max_cluster_weight`. This is the coarsening
//! Mt-KaHIP popularized for social networks, where matchings shrink too
//! slowly because of hubs.

use crate::wgraph::WeightedGraph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Runs `rounds` of size-constrained label propagation and returns a
/// cluster id per vertex (ids are arbitrary; contraction densifies them).
pub fn label_propagation(
    graph: &WeightedGraph,
    rounds: usize,
    max_cluster_weight: u64,
    seed: u64,
) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut cluster_weight: Vec<u64> = (0..n).map(|v| graph.vertex_weight(v)).collect();

    // Seeded shuffled visit order, fixed across rounds for determinism.
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }

    let mut gains: HashMap<u32, u64> = HashMap::new();
    for _ in 0..rounds {
        let mut moved = 0usize;
        for &v in &order {
            let v = v as usize;
            let own = labels[v];
            gains.clear();
            for (t, w) in graph.neighbors(v) {
                *gains.entry(labels[t as usize]).or_insert(0) += w;
            }
            // Deterministic argmax: highest gain, ties to the smaller label.
            let mut best: Option<(u64, u32)> = None;
            let vw = graph.vertex_weight(v);
            for (&label, &gain) in &gains {
                if label != own && cluster_weight[label as usize] + vw > max_cluster_weight {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bg, bl)) => gain > bg || (gain == bg && label < bl),
                };
                if better {
                    best = Some((gain, label));
                }
            }
            if let Some((gain, label)) = best {
                let own_gain = gains.get(&own).copied().unwrap_or(0);
                if label != own && gain > own_gain {
                    cluster_weight[own as usize] -= vw;
                    cluster_weight[label as usize] += vw;
                    labels[v] = label;
                    moved += 1;
                }
            }
        }
        if moved == 0 {
            break;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::{generate, CsrGraph};

    fn wg(g: &CsrGraph) -> WeightedGraph {
        WeightedGraph::from_csr(g)
    }

    #[test]
    fn two_cliques_collapse_to_two_clusters() {
        // Two 4-cliques joined by one edge.
        let mut edges = Vec::new();
        for base in [0u32, 4u32] {
            for a in 0..4 {
                for b in 0..4 {
                    if a != b {
                        edges.push((base + a, base + b));
                    }
                }
            }
        }
        edges.push((0, 4));
        let g = CsrGraph::from_edges(8, &edges);
        let labels = label_propagation(&wg(&g), 4, 6, 1);
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 2, "labels: {labels:?}");
        assert_eq!(labels[0], labels[3]);
        assert_eq!(labels[4], labels[7]);
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn cluster_weight_cap_is_respected() {
        let g = generate::complete(10);
        let labels = label_propagation(&wg(&g), 5, 3, 2);
        let mut weights: HashMap<u32, u64> = HashMap::new();
        for &l in &labels {
            *weights.entry(l).or_insert(0) += 1;
        }
        for (&l, &w) in &weights {
            assert!(w <= 3, "cluster {l} has weight {w}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generate::twitter_like().generate_scaled(0.01);
        let a = label_propagation(&wg(&g), 3, 100, 7);
        let b = label_propagation(&wg(&g), 3, 100, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_vertices_keep_their_own_label() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let labels = label_propagation(&wg(&g), 3, 10, 1);
        assert_eq!(labels[2], 2);
    }

    #[test]
    fn coarsening_shrinks_power_law_graphs_substantially() {
        let g = generate::twitter_like().generate_scaled(0.02);
        let w = wg(&g);
        let labels = label_propagation(&w, 4, w.total_vertex_weight() / 16, 3);
        let (coarse, _) = w.contract(&labels);
        assert!(
            coarse.num_vertices() < g.num_vertices() / 2,
            "coarse n = {}",
            coarse.num_vertices()
        );
    }
}
