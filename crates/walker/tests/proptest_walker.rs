//! Property-based tests for the walk engine: trajectory validity and
//! partition invariance hold for arbitrary graphs, seeds and part counts.

use bpart_core::{ChunkV, HashPartitioner, Partitioner};
use bpart_graph::generate;
use bpart_walker::{apps, WalkEngine, WalkStarts};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recorded_paths_follow_edges(seed in 0u64..500, steps in 1u32..8) {
        let graph = Arc::new(generate::erdos_renyi(80, 640, seed));
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let run = WalkEngine::default_for(graph.clone(), partition)
            .with_recording()
            .run(&apps::SimpleRandomWalk::new(steps), &WalkStarts::PerVertex(1), seed);
        let paths = run.paths.unwrap();
        prop_assert_eq!(paths.len(), 80);
        for (id, path) in paths.iter().enumerate() {
            prop_assert_eq!(path[0], id as u32, "walker starts at its source");
            prop_assert!(path.len() <= steps as usize + 1);
            for w in path.windows(2) {
                prop_assert!(graph.is_out_neighbor(w[0], w[1]), "non-edge {w:?}");
            }
        }
    }

    #[test]
    fn trajectories_are_partition_invariant(seed in 0u64..200, k in 1usize..8) {
        let graph = Arc::new(generate::erdos_renyi(60, 480, seed));
        let starts = WalkStarts::PerVertex(2);
        let a = WalkEngine::default_for(graph.clone(), Arc::new(ChunkV.partition(&graph, k)))
            .with_recording()
            .run(&apps::SimpleRandomWalk::new(5), &starts, seed);
        let b = WalkEngine::default_for(
            graph.clone(),
            Arc::new(HashPartitioner::new(seed).partition(&graph, k)),
        )
        .with_recording()
        .run(&apps::SimpleRandomWalk::new(5), &starts, seed);
        prop_assert_eq!(a.paths, b.paths);
        prop_assert_eq!(a.total_steps, b.total_steps);
    }

    #[test]
    fn step_accounting_bounds_hold_for_every_app(seed in 0u64..100) {
        let graph = Arc::new(generate::erdos_renyi(50, 500, seed));
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let engine = WalkEngine::default_for(graph.clone(), partition);
        for app in apps::paper_suite(5) {
            let run = engine.run(app.as_ref(), &WalkStarts::PerVertex(1), seed);
            // 50 walkers, at most 5 steps each (plus nothing more).
            prop_assert!(run.total_steps <= 50 * 5, "{}", app.name());
            prop_assert!(run.message_walks <= run.total_steps, "{}", app.name());
            prop_assert!(run.iterations <= 5, "{}", app.name());
        }
    }

    #[test]
    fn cached_alias_reuse_keeps_sample_streams_identical(
        seed in 0u64..500,
        walk_seed in 0u64..500,
        max_weight in 1u32..16,
        steps in 1u32..8,
    ) {
        // Alias-table reuse must be invisible: walks driven by the lazy
        // degree-bucketed cache and by fresh eager tables are bit-equal.
        use bpart_walker::{CachedTransitions, WeightedRandomWalk, WeightedTransitions};
        let graph = Arc::new(generate::erdos_renyi(60, 480, seed));
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let starts = WalkStarts::PerVertex(1);
        let eager = WeightedRandomWalk::new(
            steps,
            Arc::new(WeightedTransitions::synthetic(&graph, max_weight)),
        );
        let cached = WeightedRandomWalk::with_sampler(
            steps,
            Arc::new(CachedTransitions::synthetic(&graph, max_weight)),
        );
        let a = WalkEngine::default_for(graph.clone(), partition.clone())
            .with_recording()
            .run(&eager, &starts, walk_seed);
        let b = WalkEngine::default_for(graph.clone(), partition)
            .with_recording()
            .run(&cached, &starts, walk_seed);
        prop_assert_eq!(a.paths, b.paths);
        prop_assert_eq!(a.total_steps, b.total_steps);
        prop_assert_eq!(a.message_walks, b.message_walks);
    }

    #[test]
    fn walker_rng_streams_never_collide_across_ids(seed in 0u64..1000) {
        use bpart_walker::WalkerRng;
        let mut a = WalkerRng::new(seed, 1);
        let mut b = WalkerRng::new(seed, 2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        prop_assert_ne!(sa, sb);
    }

    #[test]
    fn crash_recovery_is_trajectory_invariant(
        seed in 0u64..100,
        crash_at in 0usize..6,
        machine in 0u32..4,
        every in 1usize..4,
    ) {
        use bpart_cluster::FaultPlan;
        let graph = Arc::new(generate::erdos_renyi(60, 480, seed));
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let app = apps::SimpleRandomWalk::new(6);
        let starts = WalkStarts::PerVertex(1);
        let clean = WalkEngine::default_for(graph.clone(), partition.clone())
            .with_recording()
            .run(&app, &starts, seed);
        let faulted = WalkEngine::default_for(graph.clone(), partition)
            .with_recording()
            .with_faults(FaultPlan::new().crash(crash_at, machine))
            .with_checkpoint_every(every)
            .run(&app, &starts, seed);
        prop_assert_eq!(clean.paths, faulted.paths);
        prop_assert_eq!(clean.total_steps, faulted.total_steps);
        prop_assert_eq!(clean.message_walks, faulted.message_walks);
        prop_assert_eq!(faulted.telemetry.total_faults(), 1);
        prop_assert!(faulted.telemetry.total_recovery_time() > 0.0);
    }
}
