//! Walker state and the walk-application trait.

use crate::rng::WalkerRng;
use bpart_graph::{CsrGraph, VertexId};

/// One random walker. Small and `Copy`: this is the message payload that
/// crosses machines when a walk leaves its partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Walker {
    /// Stable walker id (indexes the recorded path).
    pub id: u64,
    /// The walk's starting vertex.
    pub source: VertexId,
    /// Current position.
    pub current: VertexId,
    /// Previous position (`VertexId::MAX` before the first step) — needed
    /// by second-order walks (node2vec).
    pub previous: VertexId,
    /// Steps taken so far.
    pub step: u32,
    /// The walker-attached RNG (migrates with the walker).
    pub rng: WalkerRng,
}

impl Walker {
    /// A fresh walker at `source`.
    pub fn new(id: u64, source: VertexId, seed: u64) -> Self {
        Walker {
            id,
            source,
            current: source,
            previous: VertexId::MAX,
            step: 0,
            rng: WalkerRng::new(seed, id),
        }
    }

    /// Advances to `next`, updating second-order state and the step count.
    pub fn advance(&mut self, next: VertexId) {
        self.previous = self.current;
        self.current = next;
        self.step += 1;
    }
}

/// A random-walk application: decides each walker's next move.
pub trait WalkApp: Sync {
    /// Walks terminate after this many steps (a hard cap even for
    /// probabilistically-terminated walks like PPR).
    fn walk_length(&self) -> u32;

    /// Chooses the next vertex for `walker`, or `None` to terminate the
    /// walk now (before taking another step).
    fn next(&self, walker: &mut Walker, graph: &CsrGraph) -> Option<VertexId>;

    /// Application name for harness tables.
    fn name(&self) -> &'static str;
}

/// A source of weighted out-transitions: draws `v`'s successor from the
/// walker's own RNG, or `None` at dead ends. Implemented by the eager
/// [`WeightedTransitions`](crate::weighted::WeightedTransitions) (one table
/// per vertex, built up front) and the lazily-cached, degree-bucketed
/// [`CachedTransitions`](crate::weighted::CachedTransitions); both must
/// consume the RNG identically so walk traces do not depend on which
/// sampler backs an app.
pub trait TransitionSampler: Send + Sync {
    /// Samples a weighted out-transition from `v`; `None` at dead ends.
    fn sample(&self, walker: &mut Walker, graph: &CsrGraph, v: VertexId) -> Option<VertexId>;
}

/// Uniform choice among `v`'s out-neighbors; `None` at dead ends. The
/// shared primitive most walk apps build on.
#[inline]
pub fn uniform_neighbor(walker: &mut Walker, graph: &CsrGraph, v: VertexId) -> Option<VertexId> {
    let nbrs = graph.out_neighbors(v);
    if nbrs.is_empty() {
        None
    } else {
        Some(nbrs[walker.rng.next_bounded(nbrs.len() as u64) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::generate;

    #[test]
    fn advance_tracks_history() {
        let mut w = Walker::new(0, 5, 1);
        assert_eq!(w.previous, VertexId::MAX);
        w.advance(7);
        assert_eq!((w.previous, w.current, w.step), (5, 7, 1));
        w.advance(2);
        assert_eq!((w.previous, w.current, w.step), (7, 2, 2));
    }

    #[test]
    fn uniform_neighbor_is_deterministic_per_walker() {
        let g = generate::complete(10);
        let mut a = Walker::new(3, 0, 9);
        let mut b = Walker::new(3, 0, 9);
        for _ in 0..5 {
            let (ca, cb) = (a.current, b.current);
            let na = uniform_neighbor(&mut a, &g, ca).unwrap();
            let nb = uniform_neighbor(&mut b, &g, cb).unwrap();
            assert_eq!(na, nb);
            a.advance(na);
            b.advance(nb);
        }
    }

    #[test]
    fn dead_end_returns_none() {
        let g = generate::path(3); // vertex 2 has no out-edges
        let mut w = Walker::new(0, 2, 1);
        assert_eq!(uniform_neighbor(&mut w, &g, 2), None);
    }

    #[test]
    fn uniform_neighbor_covers_all_choices() {
        let g = generate::star(6); // hub 0 has 6 spokes
        let mut seen = std::collections::HashSet::new();
        let mut w = Walker::new(1, 0, 2);
        for _ in 0..200 {
            seen.insert(uniform_neighbor(&mut w, &g, 0).unwrap());
        }
        assert_eq!(seen.len(), 6);
    }
}
