//! The distributed walk driver.
//!
//! One superstep = one step of every active walker (KnightKing's
//! synchronous stepping). A walker whose new vertex belongs to another
//! machine is transmitted at the barrier — the "message walks" the paper
//! counts in Fig. 5b.

use crate::walker::{WalkApp, Walker};
use bpart_cluster::exec::{for_each_machine, ExecMode};
use bpart_cluster::{Cluster, CostModel, IterationRecord, Router, Telemetry, WorkUnits};
use bpart_core::Partition;
use bpart_graph::{CsrGraph, VertexId};
use std::sync::Arc;

/// Where walks start.
#[derive(Clone, Debug)]
pub enum WalkStarts {
    /// `c` walkers from every vertex (the paper starts `5|V|` walks for
    /// the load experiments and `|V|` for the applications).
    PerVertex(u32),
    /// Explicit start vertices, one walker each.
    Explicit(Vec<VertexId>),
}

/// Outcome of a walk run.
#[derive(Debug)]
pub struct WalkRun {
    /// Per-iteration, per-machine records (compute = steps executed).
    pub telemetry: Telemetry,
    /// Total walker steps executed across all machines.
    pub total_steps: u64,
    /// Total walkers transmitted between machines (the paper's "message
    /// walks").
    pub message_walks: u64,
    /// Number of supersteps executed.
    pub iterations: usize,
    /// Recorded walk paths (walker id -> visited vertices, including the
    /// start), present when the engine was built with recording on.
    pub paths: Option<Vec<Vec<VertexId>>>,
}

/// A KnightKing-like walk engine bound to one cluster.
pub struct WalkEngine {
    cluster: Cluster,
    cost: CostModel,
    mode: ExecMode,
    record_paths: bool,
}

/// Per-machine state: the local walker queue plus a local path log.
struct MachineState {
    queue: Vec<Walker>,
    /// `(walker id, step index, vertex)` triples, merged after the run.
    path_log: Vec<(u64, u32, VertexId)>,
}

impl WalkEngine {
    /// Engine with explicit cost model and execution mode.
    pub fn new(cluster: Cluster, cost: CostModel, mode: ExecMode) -> Self {
        WalkEngine {
            cluster,
            cost,
            mode,
            record_paths: false,
        }
    }

    /// Engine with default cost model, sequential execution, no recording.
    pub fn default_for(graph: Arc<CsrGraph>, partition: Arc<Partition>) -> Self {
        WalkEngine::new(
            Cluster::new(graph, partition),
            CostModel::default(),
            ExecMode::default(),
        )
    }

    /// Enables walk-path recording (DeepWalk / node2vec corpus output).
    pub fn with_recording(mut self) -> Self {
        self.record_paths = true;
        self
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs `app` from the given starts under `seed`.
    pub fn run<A: WalkApp + ?Sized>(&self, app: &A, starts: &WalkStarts, seed: u64) -> WalkRun {
        let graph = self.cluster.graph();
        let k = self.cluster.num_machines();

        // Seed walkers onto their owners' queues.
        let start_vertices: Vec<VertexId> = match starts {
            WalkStarts::PerVertex(c) => {
                let mut v = Vec::with_capacity(graph.num_vertices() * *c as usize);
                for copy in 0..*c {
                    let _ = copy;
                    v.extend(graph.vertices());
                }
                v
            }
            WalkStarts::Explicit(list) => list.clone(),
        };
        let num_walkers = start_vertices.len() as u64;
        let mut states: Vec<MachineState> = (0..k)
            .map(|_| MachineState {
                queue: Vec::new(),
                path_log: Vec::new(),
            })
            .collect();
        for (id, &v) in start_vertices.iter().enumerate() {
            let walker = Walker::new(id as u64, v, seed);
            let m = self.cluster.owner(v) as usize;
            if self.record_paths {
                states[m].path_log.push((walker.id, 0, v));
            }
            states[m].queue.push(walker);
        }

        let telemetry = Telemetry::new();
        let mut total_steps = 0u64;
        let mut message_walks = 0u64;
        let mut iterations = 0usize;

        loop {
            let active: usize = states.iter().map(|s| s.queue.len()).sum();
            if active == 0 {
                break;
            }
            let cluster = &self.cluster;
            let record = self.record_paths;
            let max_steps = app.walk_length();

            // ---- one step per active walker -----------------------------------
            let step_out: Vec<(Vec<Vec<Walker>>, WorkUnits)> =
                for_each_machine(self.mode, &mut states, |m, s| {
                    let mut work = WorkUnits::default();
                    let mut outbox: Vec<Vec<Walker>> =
                        (0..cluster.num_machines()).map(|_| Vec::new()).collect();
                    let mut kept: Vec<Walker> = Vec::new();
                    for mut walker in s.queue.drain(..) {
                        debug_assert_eq!(cluster.owner(walker.current), m);
                        let next = app.next(&mut walker, graph);
                        work.steps += 1;
                        let Some(next) = next else {
                            continue; // walk over (dead end / stop decision)
                        };
                        walker.advance(next);
                        if record {
                            s.path_log.push((walker.id, walker.step, next));
                        }
                        if walker.step >= max_steps {
                            continue; // reached full length
                        }
                        let dest = cluster.owner(next);
                        if dest == m {
                            kept.push(walker);
                        } else {
                            outbox[dest as usize].push(walker);
                        }
                    }
                    s.queue = kept;
                    (outbox, work)
                });

            let compute: Vec<f64> = step_out
                .iter()
                .map(|(_, w)| self.cost.compute_time(w))
                .collect();
            total_steps += step_out.iter().map(|(_, w)| w.steps).sum::<u64>();

            // ---- transmit migrating walkers ------------------------------------
            let mut router: Router<Walker> = Router::new(k);
            router.put_rows(step_out.into_iter().map(|(rows, _)| rows).collect());
            let ex = router.exchange();
            message_walks += ex.sent.iter().sum::<u64>();
            for (m, inbox) in ex.inboxes.into_iter().enumerate() {
                states[m].queue.extend(inbox);
            }

            let comm: Vec<f64> = (0..k)
                .map(|m| self.cost.comm_time(ex.sent[m], ex.received[m]))
                .collect();
            telemetry.record(IterationRecord {
                compute,
                comm,
                sent: ex.sent,
            });
            iterations += 1;
        }

        // ---- merge recorded paths ----------------------------------------------
        let paths = self.record_paths.then(|| {
            let mut log: Vec<(u64, u32, VertexId)> =
                states.into_iter().flat_map(|s| s.path_log).collect();
            log.sort_unstable();
            let mut paths: Vec<Vec<VertexId>> = vec![Vec::new(); num_walkers as usize];
            for (id, step, v) in log {
                debug_assert_eq!(paths[id as usize].len(), step as usize);
                paths[id as usize].push(v);
            }
            paths
        });

        WalkRun {
            telemetry,
            total_steps,
            message_walks,
            iterations,
            paths,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::SimpleRandomWalk;
    use bpart_core::{ChunkE, ChunkV, HashPartitioner, Partitioner};
    use bpart_graph::generate;

    fn engine(graph: &Arc<CsrGraph>, p: impl Partitioner, k: usize) -> WalkEngine {
        WalkEngine::default_for(graph.clone(), Arc::new(p.partition(graph, k)))
    }

    #[test]
    fn fixed_length_walks_take_exactly_len_iterations() {
        let graph = Arc::new(generate::complete(20));
        let run =
            engine(&graph, ChunkV, 4).run(&SimpleRandomWalk::new(4), &WalkStarts::PerVertex(2), 7);
        assert_eq!(run.iterations, 4);
        assert_eq!(run.total_steps, 20 * 2 * 4);
    }

    #[test]
    fn paths_are_partition_invariant() {
        let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
        let starts = WalkStarts::PerVertex(1);
        let a =
            engine(&graph, ChunkV, 4)
                .with_recording()
                .run(&SimpleRandomWalk::new(6), &starts, 11);
        let b = engine(&graph, HashPartitioner::default(), 4)
            .with_recording()
            .run(&SimpleRandomWalk::new(6), &starts, 11);
        assert_eq!(a.paths, b.paths);
        assert_eq!(a.total_steps, b.total_steps);
    }

    #[test]
    fn message_walks_count_cross_partition_moves() {
        // Ring split in two halves: a walker crosses the boundary exactly
        // when moving 3->4 or 7->0.
        let graph = Arc::new(generate::ring(8));
        let run = engine(&graph, ChunkV, 2).run(
            &SimpleRandomWalk::new(8),
            &WalkStarts::Explicit(vec![0]),
            3,
        );
        // the walk visits 8 consecutive vertices; it crosses machines at
        // 3->4 (transmitted) and at 7->0 — but the latter is its final
        // step, so the finished walker is never sent
        assert_eq!(run.message_walks, 1);
        assert_eq!(run.total_steps, 8);
    }

    #[test]
    fn single_machine_sends_nothing() {
        let graph = Arc::new(generate::complete(12));
        let run =
            engine(&graph, ChunkE, 1).run(&SimpleRandomWalk::new(5), &WalkStarts::PerVertex(3), 9);
        assert_eq!(run.message_walks, 0);
        assert_eq!(run.telemetry.total_messages(), 0);
    }

    #[test]
    fn recorded_paths_have_full_length() {
        let graph = Arc::new(generate::complete(10));
        let run = engine(&graph, ChunkV, 2).with_recording().run(
            &SimpleRandomWalk::new(5),
            &WalkStarts::PerVertex(1),
            1,
        );
        let paths = run.paths.unwrap();
        assert_eq!(paths.len(), 10);
        for (i, p) in paths.iter().enumerate() {
            assert_eq!(p.len(), 6, "walker {i}: start + 5 steps");
            assert_eq!(p[0], i as VertexId);
        }
    }

    #[test]
    fn dead_ends_terminate_early() {
        let graph = Arc::new(generate::path(3)); // 0->1->2, 2 is a sink
        let run = engine(&graph, ChunkV, 2).with_recording().run(
            &SimpleRandomWalk::new(10),
            &WalkStarts::Explicit(vec![0]),
            5,
        );
        let paths = run.paths.unwrap();
        assert_eq!(paths[0], vec![0, 1, 2]);
        // steps: 0->1, 1->2, and one final dead-end attempt at 2
        assert_eq!(run.total_steps, 3);
    }

    #[test]
    fn telemetry_load_matches_edge_mass_distribution() {
        // On a skewed graph with Chunk-V, the hub machine should execute
        // far more steps than the rest (the paper's Fig. 4).
        let graph = Arc::new(generate::twitter_like().generate_scaled(0.02));
        let run =
            engine(&graph, ChunkV, 8).run(&SimpleRandomWalk::new(4), &WalkStarts::PerVertex(5), 13);
        let records = run.telemetry.records();
        // Sum compute per machine over iterations 1.. (iteration 0 is
        // uniform because starts are per-vertex balanced).
        let k = 8;
        let mut load = vec![0.0; k];
        for r in &records[1..] {
            for (m, c) in r.compute.iter().enumerate() {
                load[m] += c;
            }
        }
        let max = load.iter().cloned().fold(0.0, f64::max);
        let min = load.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > min * 2.0, "expected skewed load: {load:?}");
    }
}
