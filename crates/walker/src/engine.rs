//! The distributed walk driver.
//!
//! One superstep = one step of every active walker (KnightKing's
//! synchronous stepping). A walker whose new vertex belongs to another
//! machine is transmitted at the barrier — the "message walks" the paper
//! counts in Fig. 5b.
//!
//! Fault tolerance mirrors the iteration engine: under a [`FaultPlan`],
//! machine crashes at the barrier roll all machines back to the last
//! checkpoint (in-flight walker queues, path logs, and step counters)
//! and replay. Each walker carries its own RNG, so replays reproduce the
//! exact trajectories — recorded paths are bitwise-identical to a
//! fault-free run, and only telemetry shows the recovery work.

use crate::walker::{WalkApp, Walker};
use bpart_cluster::exec::{collect_results, for_each_machine, ExecMode};
use bpart_cluster::MachineId;
use bpart_cluster::{
    Cluster, CostModel, Exchange, FaultPlan, FaultState, IterationRecord, MachineFailure,
    MessageArena, Router, Telemetry, UnrecoverableFailure, WorkUnits,
};
use bpart_core::Partition;
use bpart_graph::{CsrGraph, VertexId};
use std::collections::HashMap;
use std::sync::Arc;

/// Where walks start.
#[derive(Clone, Debug)]
pub enum WalkStarts {
    /// `c` walkers from every vertex (the paper starts `5|V|` walks for
    /// the load experiments and `|V|` for the applications).
    PerVertex(u32),
    /// Explicit start vertices, one walker each.
    Explicit(Vec<VertexId>),
}

/// Outcome of a walk run.
#[derive(Debug)]
pub struct WalkRun {
    /// Per-iteration, per-machine records (compute = steps executed).
    pub telemetry: Telemetry,
    /// Total walker steps executed across all machines (logical: wasted
    /// and replayed steps count once — see the telemetry for those).
    pub total_steps: u64,
    /// Total walkers transmitted between machines (the paper's "message
    /// walks").
    pub message_walks: u64,
    /// Number of (logical) supersteps executed.
    pub iterations: usize,
    /// Recorded walk paths (walker id -> visited vertices, including the
    /// start), present when the engine was built with recording on.
    pub paths: Option<Vec<Vec<VertexId>>>,
}

/// A KnightKing-like walk engine bound to one cluster.
pub struct WalkEngine {
    cluster: Cluster,
    cost: CostModel,
    mode: ExecMode,
    record_paths: bool,
    faults: FaultPlan,
    checkpoint_every: Option<usize>,
}

/// Per-machine state: the local walker queue, a local path log, and the
/// reusable messaging/scratch buffers that persist across supersteps.
struct MachineState {
    queue: Vec<Walker>,
    /// `(walker id, step index, vertex)` triples, merged after the run.
    path_log: Vec<(u64, u32, VertexId)>,
    /// Arena-staged migrating walkers (reset between supersteps).
    outbox: MessageArena<Walker>,
    /// Scratch for walkers staying local this superstep; swapped with
    /// `queue` at the end of the step so both keep their capacity.
    kept: Vec<Walker>,
}

/// One machine's checkpointed state: its walker queue plus its path log.
type MachineSnapshot = (Vec<Walker>, Vec<(u64, u32, VertexId)>);

/// A consistent snapshot of the whole walk computation at a superstep
/// boundary: per-machine queues/logs plus the global counters.
struct Checkpoint {
    superstep: usize,
    machines: Vec<MachineSnapshot>,
    total_steps: u64,
    message_walks: u64,
}

impl WalkEngine {
    /// Engine with explicit cost model and execution mode.
    pub fn new(cluster: Cluster, cost: CostModel, mode: ExecMode) -> Self {
        WalkEngine {
            cluster,
            cost,
            mode,
            record_paths: false,
            faults: FaultPlan::default(),
            checkpoint_every: None,
        }
    }

    /// Engine with default cost model, sequential execution, no recording.
    pub fn default_for(graph: Arc<CsrGraph>, partition: Arc<Partition>) -> Self {
        WalkEngine::new(
            Cluster::new(graph, partition),
            CostModel::default(),
            ExecMode::default(),
        )
    }

    /// Enables walk-path recording (DeepWalk / node2vec corpus output).
    pub fn with_recording(mut self) -> Self {
        self.record_paths = true;
        self
    }

    /// Injects faults from `plan` during the run (see [`FaultPlan`]).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Checkpoints in-flight walker state every `every` supersteps
    /// (`every` must be positive). Without this, recovery replays the
    /// whole walk from its starts.
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        self.checkpoint_every = Some(every);
        self
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Runs `app` from the given starts under `seed`; panics (re-raising
    /// the original payload) on an unrecoverable machine failure. See
    /// [`try_run`](WalkEngine::try_run) for the fallible form.
    pub fn run<A: WalkApp + ?Sized>(&self, app: &A, starts: &WalkStarts, seed: u64) -> WalkRun {
        match self.try_run(app, starts, seed) {
            Ok(run) => run,
            Err(UnrecoverableFailure {
                failure: MachineFailure::Panic(payload),
                ..
            }) => std::panic::resume_unwind(payload),
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs `app` from the given starts under `seed`, surviving injected
    /// faults via checkpoint rollback and replay.
    ///
    /// Returns `Err` only when recovery cannot make progress (a machine
    /// panics at the same superstep on the replay attempt too).
    pub fn try_run<A: WalkApp + ?Sized>(
        &self,
        app: &A,
        starts: &WalkStarts,
        seed: u64,
    ) -> Result<WalkRun, UnrecoverableFailure> {
        let graph = self.cluster.graph();
        let k = self.cluster.num_machines();

        // Seed walkers onto their owners' queues.
        let start_vertices: Vec<VertexId> = match starts {
            WalkStarts::PerVertex(c) => {
                let mut v = Vec::with_capacity(graph.num_vertices() * *c as usize);
                for copy in 0..*c {
                    let _ = copy;
                    v.extend(graph.vertices());
                }
                v
            }
            WalkStarts::Explicit(list) => list.clone(),
        };
        let num_walkers = start_vertices.len() as u64;
        let mut states: Vec<MachineState> = (0..k)
            .map(|_| MachineState {
                queue: Vec::new(),
                path_log: Vec::new(),
                outbox: MessageArena::new(k),
                kept: Vec::new(),
            })
            .collect();
        for (id, &v) in start_vertices.iter().enumerate() {
            let walker = Walker::new(id as u64, v, seed);
            let m = self.cluster.owner(v) as usize;
            if self.record_paths {
                states[m].path_log.push((walker.id, 0, v));
            }
            states[m].queue.push(walker);
        }

        let telemetry = Telemetry::new();
        let mut total_steps = 0u64;
        let mut message_walks = 0u64;
        let mut faults = FaultState::new(self.faults.clone());
        // The seeded start state is an implicit (free) checkpoint.
        let mut checkpoint = Checkpoint {
            superstep: 0,
            machines: snapshot(&states),
            total_steps: 0,
            message_walks: 0,
        };
        let mut superstep = 0usize;
        let mut high_water = 0usize;
        let mut failures_at: HashMap<usize, u32> = HashMap::new();

        use std::sync::OnceLock;
        static STEPS: OnceLock<&'static bpart_obs::metrics::Counter> = OnceLock::new();
        static STEPS_PER_BLOCK: OnceLock<&'static bpart_obs::metrics::Histogram> = OnceLock::new();
        let steps_counter = STEPS.get_or_init(|| bpart_obs::metrics::counter("walk.steps"));
        // Per-machine steps in one superstep block: the load-skew signal of
        // the paper's Fig. 4, bucketed in powers of ~4.
        let steps_hist = STEPS_PER_BLOCK.get_or_init(|| {
            bpart_obs::metrics::histogram(
                "walk.steps_per_block",
                &[16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0],
            )
        });
        static PROGRESS: OnceLock<&'static bpart_obs::metrics::Gauge> = OnceLock::new();
        static ACTIVE: OnceLock<&'static bpart_obs::metrics::Gauge> = OnceLock::new();
        // Live progress for the `/progress` monitoring endpoint: current
        // superstep and how many walkers are still in flight.
        let progress_gauge =
            PROGRESS.get_or_init(|| bpart_obs::metrics::gauge("walker.progress_superstep"));
        let active_gauge =
            ACTIVE.get_or_init(|| bpart_obs::metrics::gauge("walker.progress_active"));

        // The router and exchange persist across supersteps so their
        // message buffers (like the per-machine arenas) are reused rather
        // than reallocated at every barrier.
        let mut router: Router<Walker> = Router::new(k);
        let mut ex: Exchange<Walker> = Exchange::default();

        loop {
            let active: usize = states.iter().map(|s| s.queue.len()).sum();
            if active == 0 {
                break;
            }
            let replaying = superstep < high_water;
            progress_gauge.set(superstep as f64);
            active_gauge.set(active as f64);
            let mut step_span = bpart_obs::span("walker.superstep");
            step_span.attr("superstep", superstep);
            step_span.attr("active", active);
            if replaying {
                step_span.attr("replay", true);
                // Pin replayed supersteps past the tail sampler: they are
                // exactly the spans a post-mortem needs at full detail.
                step_span.keep();
            }
            let cluster = &self.cluster;
            let record = self.record_paths;
            let max_steps = app.walk_length();

            // ---- one step per active walker -----------------------------------
            // Migrating walkers go straight into the machine's persistent
            // arena; local survivors into its `kept` scratch. Both keep
            // their high-water capacity across supersteps.
            let step_results = for_each_machine(self.mode, &mut states, |m, s| {
                let mut work = WorkUnits::default();
                debug_assert_eq!(s.kept.len(), 0);
                debug_assert_eq!(s.outbox.staged(), 0);
                for mut walker in s.queue.drain(..) {
                    debug_assert_eq!(cluster.owner(walker.current), m);
                    let next = app.next(&mut walker, graph);
                    work.steps += 1;
                    let Some(next) = next else {
                        continue; // walk over (dead end / stop decision)
                    };
                    walker.advance(next);
                    if record {
                        s.path_log.push((walker.id, walker.step, next));
                    }
                    if walker.step >= max_steps {
                        continue; // reached full length
                    }
                    let dest = cluster.owner(next);
                    if dest == m {
                        s.kept.push(walker);
                    } else {
                        s.outbox.push(dest, walker);
                    }
                }
                std::mem::swap(&mut s.queue, &mut s.kept);
                work
            });
            let step_out: Vec<WorkUnits> = match collect_results(step_results) {
                Ok(out) => out,
                Err((machine, failure)) => {
                    // A panicked machine has drained (part of) its queue;
                    // the superstep cannot complete. Give up if the replay
                    // attempt failed too, otherwise roll back and retry.
                    let attempts = failures_at.entry(superstep).or_insert(0);
                    *attempts += 1;
                    if *attempts >= 2 {
                        return Err(UnrecoverableFailure {
                            superstep,
                            machine,
                            failure,
                        });
                    }
                    let recovery = restore_time(&self.cost, &checkpoint);
                    telemetry.record(IterationRecord {
                        compute: vec![0.0; k],
                        comm: vec![0.0; k],
                        sent: vec![0; k],
                        faults: 1,
                        replay: replaying,
                        recovery,
                    });
                    bpart_obs::metrics::counter("cluster.recoveries").inc();
                    restore(
                        &mut states,
                        &checkpoint,
                        &mut total_steps,
                        &mut message_walks,
                    );
                    superstep = checkpoint.superstep;
                    continue;
                }
            };

            let mut compute: Vec<f64> =
                step_out.iter().map(|w| self.cost.compute_time(w)).collect();
            let steps_this_round: u64 = step_out.iter().map(|w| w.steps).sum();
            step_span.attr("steps", steps_this_round);
            steps_counter.add(steps_this_round);
            for w in &step_out {
                steps_hist.observe(w.steps as f64);
            }

            // ---- the exchange barrier: injected crashes fire here --------------
            let crashed = faults.take_crashes(superstep);
            if !crashed.is_empty() {
                // The stepping work is wasted; in-flight walkers on the
                // crashed machine are lost, so everyone rolls back.
                for (m, c) in compute.iter_mut().enumerate() {
                    *c *= faults.compute_factor(superstep, m as MachineId);
                }
                // The wasted stepping work still counts toward waiting;
                // comm defaults to zeros in the analyzer, matching the
                // record below.
                step_span.attr("compute", bpart_obs::analysis::join_timings(&compute));
                let recovery = restore_time(&self.cost, &checkpoint);
                telemetry.record(IterationRecord {
                    compute,
                    comm: vec![0.0; k],
                    sent: vec![0; k],
                    faults: crashed.len() as u64,
                    replay: replaying,
                    recovery,
                });
                bpart_obs::metrics::counter("cluster.recoveries").inc();
                restore(
                    &mut states,
                    &checkpoint,
                    &mut total_steps,
                    &mut message_walks,
                );
                superstep = checkpoint.superstep;
                continue;
            }

            total_steps += steps_this_round;

            // ---- transmit migrating walkers ------------------------------------
            // A malformed hand-back is a deterministic structural bug, so
            // replay cannot fix it: fail the run, not the process.
            if let Err(e) =
                router.put_rows(states.iter_mut().map(|s| s.outbox.take_filled()).collect())
            {
                let machine = match e {
                    bpart_cluster::RouterError::DestArity { sender, .. } => sender,
                    bpart_cluster::RouterError::SenderArity { .. } => 0,
                };
                return Err(UnrecoverableFailure {
                    superstep,
                    machine,
                    failure: MachineFailure::Panic(Box::new(e.to_string())),
                });
            }

            // Link faults on walker transmissions: retransmitted drops and
            // deduplicated duplicates cost time, never trajectories.
            let mut drop_extra_sent = vec![0u64; k];
            let mut dup_extra_received = vec![0u64; k];
            let mut link_events = 0u64;
            if !self.faults.is_empty() {
                let staged = router.staged_matrix();
                for (from, row) in staged.iter().enumerate() {
                    for (to, &count) in row.iter().enumerate() {
                        if count == 0 {
                            continue;
                        }
                        let overhead = faults.link_overhead(
                            superstep,
                            from as MachineId,
                            to as MachineId,
                            count,
                        );
                        drop_extra_sent[from] += overhead.dropped;
                        dup_extra_received[to] += overhead.duplicated;
                        link_events += overhead.total();
                    }
                }
            }

            router.exchange_into(&mut ex);
            message_walks += ex.sent.iter().sum::<u64>();
            for (m, inbox) in ex.inboxes.iter_mut().enumerate() {
                states[m].queue.append(inbox);
            }
            // Hand the drained rows back to their arenas for reuse.
            for (s, row) in states.iter_mut().zip(router.take_rows()) {
                s.outbox.put_drained(row);
            }

            // ---- checkpoint -----------------------------------------------
            if let Some(every) = self.checkpoint_every {
                if (superstep + 1) % every == 0 {
                    let _ckpt_span = bpart_obs::span("cluster.checkpoint");
                    checkpoint = Checkpoint {
                        superstep: superstep + 1,
                        machines: snapshot(&states),
                        total_steps,
                        message_walks,
                    };
                    for (m, s) in states.iter().enumerate() {
                        compute[m] += self.cost.checkpoint_time(s.queue.len() as u64);
                    }
                    bpart_obs::metrics::counter("cluster.checkpoints").inc();
                }
            }

            // ---- telemetry ------------------------------------------------
            for (m, c) in compute.iter_mut().enumerate() {
                *c *= faults.compute_factor(superstep, m as MachineId);
            }
            let sent: Vec<u64> = (0..k).map(|m| ex.sent[m] + drop_extra_sent[m]).collect();
            let comm: Vec<f64> = (0..k)
                .map(|m| {
                    self.cost
                        .comm_time(sent[m], ex.received[m] + dup_extra_received[m])
                })
                .collect();
            // Per-machine timings on the span so the critical-path
            // analyzer matches `Telemetry::summary()` bit-exactly.
            step_span.attr("compute", bpart_obs::analysis::join_timings(&compute));
            step_span.attr("comm", bpart_obs::analysis::join_timings(&comm));
            telemetry.record(IterationRecord {
                compute,
                comm,
                sent,
                faults: link_events,
                replay: replaying,
                recovery: 0.0,
            });
            superstep += 1;
            high_water = high_water.max(superstep);
        }

        // ---- merge recorded paths ----------------------------------------------
        let paths = self.record_paths.then(|| {
            let mut log: Vec<(u64, u32, VertexId)> =
                states.into_iter().flat_map(|s| s.path_log).collect();
            log.sort_unstable();
            let mut paths: Vec<Vec<VertexId>> = vec![Vec::new(); num_walkers as usize];
            for (id, step, v) in log {
                debug_assert_eq!(paths[id as usize].len(), step as usize);
                paths[id as usize].push(v);
            }
            paths
        });

        Ok(WalkRun {
            telemetry,
            total_steps,
            message_walks,
            iterations: superstep,
            paths,
        })
    }
}

fn snapshot(states: &[MachineState]) -> Vec<MachineSnapshot> {
    states
        .iter()
        .map(|s| (s.queue.clone(), s.path_log.clone()))
        .collect()
}

/// Restores machine queues, path logs, and the run counters to
/// `checkpoint` — replayed supersteps then re-accumulate them, keeping
/// the logical totals identical to a fault-free run.
fn restore(
    states: &mut [MachineState],
    checkpoint: &Checkpoint,
    total_steps: &mut u64,
    message_walks: &mut u64,
) {
    for (s, (queue, path_log)) in states.iter_mut().zip(&checkpoint.machines) {
        s.queue.clone_from(queue);
        s.path_log.clone_from(path_log);
        // The abandoned superstep may have left staged walkers behind;
        // the replay restages everything from the restored queues.
        s.outbox.reset();
        s.kept.clear();
    }
    *total_steps = checkpoint.total_steps;
    *message_walks = checkpoint.message_walks;
}

/// Modelled time to restore every machine (in parallel) from `checkpoint`.
fn restore_time(cost: &CostModel, checkpoint: &Checkpoint) -> f64 {
    checkpoint
        .machines
        .iter()
        .map(|(queue, _)| cost.checkpoint_time(queue.len() as u64))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::SimpleRandomWalk;
    use bpart_core::{ChunkE, ChunkV, HashPartitioner, Partitioner};
    use bpart_graph::generate;

    fn engine(graph: &Arc<CsrGraph>, p: impl Partitioner, k: usize) -> WalkEngine {
        WalkEngine::default_for(graph.clone(), Arc::new(p.partition(graph, k)))
    }

    #[test]
    fn fixed_length_walks_take_exactly_len_iterations() {
        let graph = Arc::new(generate::complete(20));
        let run =
            engine(&graph, ChunkV, 4).run(&SimpleRandomWalk::new(4), &WalkStarts::PerVertex(2), 7);
        assert_eq!(run.iterations, 4);
        assert_eq!(run.total_steps, 20 * 2 * 4);
    }

    #[test]
    fn paths_are_partition_invariant() {
        let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
        let starts = WalkStarts::PerVertex(1);
        let a =
            engine(&graph, ChunkV, 4)
                .with_recording()
                .run(&SimpleRandomWalk::new(6), &starts, 11);
        let b = engine(&graph, HashPartitioner::default(), 4)
            .with_recording()
            .run(&SimpleRandomWalk::new(6), &starts, 11);
        assert_eq!(a.paths, b.paths);
        assert_eq!(a.total_steps, b.total_steps);
    }

    #[test]
    fn message_walks_count_cross_partition_moves() {
        // Ring split in two halves: a walker crosses the boundary exactly
        // when moving 3->4 or 7->0.
        let graph = Arc::new(generate::ring(8));
        let run = engine(&graph, ChunkV, 2).run(
            &SimpleRandomWalk::new(8),
            &WalkStarts::Explicit(vec![0]),
            3,
        );
        // the walk visits 8 consecutive vertices; it crosses machines at
        // 3->4 (transmitted) and at 7->0 — but the latter is its final
        // step, so the finished walker is never sent
        assert_eq!(run.message_walks, 1);
        assert_eq!(run.total_steps, 8);
    }

    #[test]
    fn single_machine_sends_nothing() {
        let graph = Arc::new(generate::complete(12));
        let run =
            engine(&graph, ChunkE, 1).run(&SimpleRandomWalk::new(5), &WalkStarts::PerVertex(3), 9);
        assert_eq!(run.message_walks, 0);
        assert_eq!(run.telemetry.total_messages(), 0);
    }

    #[test]
    fn recorded_paths_have_full_length() {
        let graph = Arc::new(generate::complete(10));
        let run = engine(&graph, ChunkV, 2).with_recording().run(
            &SimpleRandomWalk::new(5),
            &WalkStarts::PerVertex(1),
            1,
        );
        let paths = run.paths.unwrap();
        assert_eq!(paths.len(), 10);
        for (i, p) in paths.iter().enumerate() {
            assert_eq!(p.len(), 6, "walker {i}: start + 5 steps");
            assert_eq!(p[0], i as VertexId);
        }
    }

    #[test]
    fn dead_ends_terminate_early() {
        let graph = Arc::new(generate::path(3)); // 0->1->2, 2 is a sink
        let run = engine(&graph, ChunkV, 2).with_recording().run(
            &SimpleRandomWalk::new(10),
            &WalkStarts::Explicit(vec![0]),
            5,
        );
        let paths = run.paths.unwrap();
        assert_eq!(paths[0], vec![0, 1, 2]);
        // steps: 0->1, 1->2, and one final dead-end attempt at 2
        assert_eq!(run.total_steps, 3);
    }

    #[test]
    fn telemetry_load_matches_edge_mass_distribution() {
        // On a skewed graph with Chunk-V, the hub machine should execute
        // far more steps than the rest (the paper's Fig. 4).
        let graph = Arc::new(generate::twitter_like().generate_scaled(0.02));
        let run =
            engine(&graph, ChunkV, 8).run(&SimpleRandomWalk::new(4), &WalkStarts::PerVertex(5), 13);
        let records = run.telemetry.records();
        // Sum compute per machine over iterations 1.. (iteration 0 is
        // uniform because starts are per-vertex balanced).
        let k = 8;
        let mut load = vec![0.0; k];
        for r in &records[1..] {
            for (m, c) in r.compute.iter().enumerate() {
                load[m] += c;
            }
        }
        let max = load.iter().cloned().fold(0.0, f64::max);
        let min = load.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > min * 2.0, "expected skewed load: {load:?}");
    }

    #[test]
    fn crash_recovery_reproduces_fault_free_walks() {
        let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
        let starts = WalkStarts::PerVertex(1);
        let app = SimpleRandomWalk::new(8);
        let clean = engine(&graph, ChunkV, 4)
            .with_recording()
            .run(&app, &starts, 21);
        for checkpoint_every in [None, Some(2), Some(3)] {
            let mut faulted = engine(&graph, ChunkV, 4)
                .with_recording()
                .with_faults(FaultPlan::new().crash(5, 2));
            if let Some(every) = checkpoint_every {
                faulted = faulted.with_checkpoint_every(every);
            }
            let run = faulted.run(&app, &starts, 21);
            assert_eq!(clean.paths, run.paths, "ckpt {checkpoint_every:?}");
            assert_eq!(clean.total_steps, run.total_steps);
            assert_eq!(clean.message_walks, run.message_walks);
            assert_eq!(clean.iterations, run.iterations);
            assert_eq!(run.telemetry.total_faults(), 1);
            assert!(run.telemetry.replayed_supersteps() > 0);
            assert!(run.telemetry.total_recovery_time() > 0.0);
        }
    }

    #[test]
    fn faulted_exec_modes_agree() {
        let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let plan = FaultPlan::new()
            .crash(2, 1)
            .straggler(0, 9, 3, 4.0)
            .drop_link(0, 9, 0, 2, 0.5);
        let starts = WalkStarts::PerVertex(1);
        let app = SimpleRandomWalk::new(6);
        let seq = WalkEngine::new(
            Cluster::new(graph.clone(), partition.clone()),
            CostModel::default(),
            ExecMode::Sequential,
        )
        .with_recording()
        .with_faults(plan.clone())
        .with_checkpoint_every(2)
        .run(&app, &starts, 17);
        let thr = WalkEngine::new(
            Cluster::new(graph.clone(), partition),
            CostModel::default(),
            ExecMode::Threaded,
        )
        .with_recording()
        .with_faults(plan)
        .with_checkpoint_every(2)
        .run(&app, &starts, 17);
        assert_eq!(seq.paths, thr.paths);
        assert_eq!(seq.telemetry.total_faults(), thr.telemetry.total_faults());
        assert_eq!(
            seq.telemetry.replayed_supersteps(),
            thr.telemetry.replayed_supersteps()
        );
        assert_eq!(seq.telemetry.total_time(), thr.telemetry.total_time());
    }

    #[test]
    fn link_faults_leave_trajectories_alone() {
        let graph = Arc::new(generate::complete(16));
        let starts = WalkStarts::PerVertex(2);
        let app = SimpleRandomWalk::new(5);
        let clean = engine(&graph, ChunkV, 4)
            .with_recording()
            .run(&app, &starts, 3);
        let lossy = engine(&graph, ChunkV, 4)
            .with_recording()
            .with_faults(FaultPlan::new().with_seed(9).drop_link(0, 9, 1, 0, 0.6))
            .run(&app, &starts, 3);
        assert_eq!(clean.paths, lossy.paths);
        assert_eq!(clean.message_walks, lossy.message_walks);
        assert!(lossy.telemetry.total_faults() > 0);
        assert!(lossy.telemetry.total_messages() > clean.telemetry.total_messages());
    }
}
