//! Per-walker deterministic RNG.
//!
//! Each walker owns a tiny SplitMix64 state that migrates with it, so a
//! walk's trajectory is a pure function of `(seed, walker id)` — never of
//! which machine executes the step. That property is what lets the tests
//! assert that different partitioners produce byte-identical walks, and it
//! mirrors KnightKing's walker-attached sampler state.

/// SplitMix64-based walker RNG (8 bytes of state, `Copy`, migrates freely).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkerRng {
    state: u64,
}

impl WalkerRng {
    /// RNG for walker `id` under the engine-wide `seed`.
    pub fn new(seed: u64, id: u64) -> Self {
        // Decorrelate the stream from the raw id with one mix round.
        WalkerRng {
            state: mix(seed ^ mix(id.wrapping_add(0x0DDB_1A5E))),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // 128-bit multiply-shift; bias is negligible for graph-sized bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn next_bool(&mut self, probability: f64) -> bool {
        self.next_f64() < probability
    }

    /// The raw 8-byte state, for serializing a walker across a process
    /// boundary. [`from_bits`](WalkerRng::from_bits) restores the exact
    /// stream, so a migrated walker's trajectory is unchanged.
    #[inline]
    pub fn to_bits(self) -> u64 {
        self.state
    }

    /// Rebuilds the RNG from [`to_bits`](WalkerRng::to_bits) output.
    #[inline]
    pub fn from_bits(state: u64) -> Self {
        WalkerRng { state }
    }
}

#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_id() {
        let mut a = WalkerRng::new(1, 2);
        let mut b = WalkerRng::new(1, 2);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = WalkerRng::new(1, 3);
        assert_ne!(WalkerRng::new(1, 2).next_u64(), c.next_u64());
        let mut d = WalkerRng::new(2, 2);
        assert_ne!(WalkerRng::new(1, 2).next_u64(), d.next_u64());
    }

    #[test]
    fn bounded_values_stay_in_range_and_cover() {
        let mut rng = WalkerRng::new(9, 0);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = rng.next_bounded(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_uniformity_rough() {
        let mut rng = WalkerRng::new(5, 5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = WalkerRng::new(7, 7);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.next_bool(0.2)).count() as f64 / n as f64;
        assert!((hits - 0.2).abs() < 0.02, "rate = {hits}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        WalkerRng::new(0, 0).next_bounded(0);
    }

    #[test]
    fn bits_round_trip_preserves_the_stream() {
        let mut rng = WalkerRng::new(3, 14);
        rng.next_u64(); // advance past the initial state
        let mut copy = WalkerRng::from_bits(rng.to_bits());
        for _ in 0..8 {
            assert_eq!(rng.next_u64(), copy.next_u64());
        }
    }
}
