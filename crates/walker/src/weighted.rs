//! Weighted transitions via per-vertex alias tables — KnightKing's static
//! walk machinery.
//!
//! KnightKing pre-builds one alias table per vertex over its out-edge
//! weights, giving O(1) weighted transition sampling. The datasets here
//! are unweighted, so [`WeightedTransitions::synthetic`] derives
//! deterministic pseudo-weights from edge endpoints (the same construction
//! the SSSP app uses), which exercises the identical code path.
//!
//! The walker's own RNG drives the table, so weighted walks keep the
//! engine's partition-invariance property.

use crate::walker::{TransitionSampler, WalkApp, Walker};
use bpart_graph::alias::{sample_slices, AliasTable};
use bpart_graph::{CsrGraph, VertexId};
use std::sync::{Arc, OnceLock};

/// Pre-built per-vertex transition samplers.
#[derive(Clone, Debug)]
pub struct WeightedTransitions {
    /// One table per vertex with out-degree > 0.
    tables: Vec<Option<AliasTable>>,
}

impl WeightedTransitions {
    /// Builds tables from an arbitrary edge-weight function
    /// `weight(u, v) -> w > 0`.
    pub fn build(graph: &CsrGraph, weight: impl Fn(VertexId, VertexId) -> f64) -> Self {
        let tables = graph
            .vertices()
            .map(|u| {
                let nbrs = graph.out_neighbors(u);
                if nbrs.is_empty() {
                    None
                } else {
                    let weights: Vec<f64> = nbrs.iter().map(|&v| weight(u, v)).collect();
                    Some(AliasTable::new(&weights))
                }
            })
            .collect();
        WeightedTransitions { tables }
    }

    /// Deterministic synthetic weights in `1..=max_weight` (same generator
    /// as the SSSP app's [`edge_weight`](crate::apps) convention).
    pub fn synthetic(graph: &CsrGraph, max_weight: u32) -> Self {
        Self::build(graph, |u, v| synthetic_weight(u, v, max_weight) as f64)
    }

    /// Samples a weighted out-transition from `v` using the walker's RNG;
    /// `None` at dead ends.
    #[inline]
    pub fn sample(&self, walker: &mut Walker, graph: &CsrGraph, v: VertexId) -> Option<VertexId> {
        let table = self.tables[v as usize].as_ref()?;
        // Drive the alias table from the walker-attached RNG through a
        // tiny adapter so trajectories stay partition-invariant.
        let mut adapter = WalkerRngAdapter(&mut walker.rng);
        let idx = table.sample(&mut adapter);
        Some(graph.out_neighbors(v)[idx as usize])
    }
}

impl TransitionSampler for WeightedTransitions {
    #[inline]
    fn sample(&self, walker: &mut Walker, graph: &CsrGraph, v: VertexId) -> Option<VertexId> {
        WeightedTransitions::sample(self, walker, graph, v)
    }
}

/// One vertex's entry in the [`CachedTransitions`] cache.
#[derive(Debug)]
enum TableSlot {
    /// Vertex-specific table (non-uniform neighborhood weights).
    Own(AliasTable),
    /// The neighborhood weights are all equal, so the vertex shares the
    /// per-degree bucket table — for such a table every `prob` column is
    /// exactly 1.0, making its sample stream identical to a private one.
    Uniform,
}

/// Lazily-built, degree-bucketed per-vertex transition samplers.
///
/// [`WeightedTransitions`] pays O(n + m) up front to build one table per
/// vertex — including vertices no walker ever visits. This cache instead
/// builds each neighborhood's table on first sample and reuses it for
/// every later sample across supersteps (walks revisit hot vertices
/// constantly, so the build amortizes to nothing). Two reuse levels:
///
/// * **per vertex** — the first walker to leave `v` builds `v`'s table
///   (`OnceLock`, so concurrent machines race benignly to an identical
///   table);
/// * **per degree bucket** — neighborhoods whose weights are all equal
///   (unweighted graphs under any constant weight function) collapse to
///   one shared table per out-degree, shrinking cache storage from
///   O(n + m) to O(max_degree) on uniform inputs.
///
/// The sample stream is bit-identical to the eager tables at equal RNG
/// seeds: both paths draw through [`sample_slices`] in the same order, and
/// a lazily built table is constructed from exactly the weights the eager
/// build would have used (the uniform bucket's keep-probabilities are all
/// 1.0, which any equal-weight construction also yields).
pub struct CachedTransitions {
    weight: Box<dyn Fn(VertexId, VertexId) -> f64 + Send + Sync>,
    /// Per-vertex cache slot, built on first sample.
    tables: Vec<OnceLock<TableSlot>>,
    /// Degree buckets for uniform neighborhoods: `uniform[d]` is the one
    /// table shared by every degree-`d` vertex with equal weights.
    uniform: Vec<OnceLock<AliasTable>>,
}

impl CachedTransitions {
    /// A cache over an arbitrary edge-weight function `weight(u, v) -> w > 0`.
    pub fn new(
        graph: &CsrGraph,
        weight: impl Fn(VertexId, VertexId) -> f64 + Send + Sync + 'static,
    ) -> Self {
        let max_degree = graph
            .vertices()
            .map(|v| graph.out_degree(v))
            .max()
            .unwrap_or(0);
        CachedTransitions {
            weight: Box::new(weight),
            tables: (0..graph.num_vertices()).map(|_| OnceLock::new()).collect(),
            uniform: (0..max_degree + 1).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Deterministic synthetic weights in `1..=max_weight` (the cached
    /// counterpart of [`WeightedTransitions::synthetic`]).
    pub fn synthetic(graph: &CsrGraph, max_weight: u32) -> Self {
        Self::new(graph, move |u, v| synthetic_weight(u, v, max_weight) as f64)
    }

    /// Samples a weighted out-transition from `v`, building (and caching)
    /// `v`'s table on first use; `None` at dead ends.
    #[inline]
    pub fn sample(&self, walker: &mut Walker, graph: &CsrGraph, v: VertexId) -> Option<VertexId> {
        let nbrs = graph.out_neighbors(v);
        if nbrs.is_empty() {
            return None;
        }
        let slot = self.tables[v as usize].get_or_init(|| {
            let weights: Vec<f64> = nbrs.iter().map(|&w| (self.weight)(v, w)).collect();
            // Only a *valid* uniform row may share the bucket; degenerate
            // rows (zero/NaN) fall through so AliasTable::new rejects them
            // with the same panic the eager build would raise.
            let uniform = weights[0] > 0.0
                && weights[0].is_finite()
                && weights.iter().all(|&w| w == weights[0]);
            if uniform {
                TableSlot::Uniform
            } else {
                TableSlot::Own(AliasTable::new(&weights))
            }
        });
        let table = match slot {
            TableSlot::Own(table) => table,
            TableSlot::Uniform => self.uniform[nbrs.len()].get_or_init(|| {
                // Canonical bucket table: all keep-probabilities 1.0, as
                // any equal-weight construction produces.
                AliasTable::new(&vec![1.0; nbrs.len()])
            }),
        };
        let mut adapter = WalkerRngAdapter(&mut walker.rng);
        let idx = sample_slices(table.probs(), table.aliases(), &mut adapter);
        Some(nbrs[idx as usize])
    }

    /// Number of cache entries built so far (vertex slots plus degree
    /// buckets) — observability for tests and benches.
    pub fn built_tables(&self) -> usize {
        self.tables
            .iter()
            .filter(|slot| slot.get().is_some())
            .count()
            + self
                .uniform
                .iter()
                .filter(|slot| slot.get().is_some())
                .count()
    }
}

impl TransitionSampler for CachedTransitions {
    #[inline]
    fn sample(&self, walker: &mut Walker, graph: &CsrGraph, v: VertexId) -> Option<VertexId> {
        CachedTransitions::sample(self, walker, graph, v)
    }
}

/// Deterministic pseudo-weight for edge `(u, v)` in `1..=max_weight`.
#[inline]
pub fn synthetic_weight(u: VertexId, v: VertexId, max_weight: u32) -> u64 {
    let mut x = ((u as u64) << 32) | v as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (x ^ (x >> 31)) % max_weight as u64 + 1
}

/// Adapts [`WalkerRng`](crate::rng::WalkerRng) to the `rand` traits the
/// alias table expects (`rand_core` 0.10: implement infallible [`TryRng`]
/// and the blanket impl provides `Rng`).
///
/// [`TryRng`]: rand::rand_core::TryRng
struct WalkerRngAdapter<'a>(&'a mut crate::rng::WalkerRng);

impl rand::rand_core::TryRng for WalkerRngAdapter<'_> {
    type Error = std::convert::Infallible;

    fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
        Ok((self.0.next_u64() >> 32) as u32)
    }
    fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
        Ok(self.0.next_u64())
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error> {
        let mut chunk = [0u8; 8];
        for out in dest.chunks_mut(8) {
            chunk.copy_from_slice(&self.0.next_u64().to_le_bytes());
            out.copy_from_slice(&chunk[..out.len()]);
        }
        Ok(())
    }
}

/// Fixed-length weighted random walk (KnightKing's "static walk" with
/// non-uniform transition probabilities).
#[derive(Clone)]
pub struct WeightedRandomWalk {
    steps: u32,
    transitions: Arc<dyn TransitionSampler>,
}

impl WeightedRandomWalk {
    /// Weighted walk of `steps` steps over eagerly built transitions.
    pub fn new(steps: u32, transitions: Arc<WeightedTransitions>) -> Self {
        WeightedRandomWalk { steps, transitions }
    }

    /// Weighted walk over any [`TransitionSampler`] — in particular the
    /// lazily-cached [`CachedTransitions`], which produces bit-identical
    /// traces while amortizing table construction across supersteps.
    pub fn with_sampler(steps: u32, transitions: Arc<dyn TransitionSampler>) -> Self {
        WeightedRandomWalk { steps, transitions }
    }
}

impl WalkApp for WeightedRandomWalk {
    fn walk_length(&self) -> u32 {
        self.steps
    }

    fn next(&self, walker: &mut Walker, graph: &CsrGraph) -> Option<VertexId> {
        self.transitions.sample(walker, graph, walker.current)
    }

    fn name(&self) -> &'static str {
        "WeightedRW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{WalkEngine, WalkStarts};
    use bpart_core::{ChunkV, HashPartitioner, Partitioner};
    use bpart_graph::generate;
    use std::collections::HashMap;

    #[test]
    fn transition_frequencies_track_weights() {
        // Star hub with 4 spokes weighted 1, 2, 3, 4 (spoke-to-hub edges
        // get weight 1 so their one-entry tables stay valid).
        let g = generate::star(4);
        let t = WeightedTransitions::build(&g, |_, v| (v as f64).max(1.0));
        let mut counts: HashMap<VertexId, u64> = HashMap::new();
        let trials = 100_000u64;
        for id in 0..trials {
            let mut w = Walker::new(id, 0, 31);
            let v = t.sample(&mut w, &g, 0).unwrap();
            *counts.entry(v).or_insert(0) += 1;
        }
        let z = 1.0 + 2.0 + 3.0 + 4.0;
        for v in 1..=4u32 {
            let p = counts[&v] as f64 / trials as f64;
            let expect = v as f64 / z;
            assert!((p - expect).abs() < 0.01, "spoke {v}: {p} vs {expect}");
        }
    }

    #[test]
    fn dead_ends_return_none() {
        let g = generate::path(2);
        let t = WeightedTransitions::synthetic(&g, 8);
        let mut w = Walker::new(0, 1, 1);
        assert_eq!(t.sample(&mut w, &g, 1), None);
    }

    #[test]
    fn synthetic_weights_deterministic_and_bounded() {
        for (u, v) in [(0u32, 1u32), (7, 3), (1000, 2)] {
            let w = synthetic_weight(u, v, 8);
            assert_eq!(w, synthetic_weight(u, v, 8));
            assert!((1..=8).contains(&w));
        }
    }

    #[test]
    fn weighted_walks_are_partition_invariant() {
        let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
        let transitions = Arc::new(WeightedTransitions::synthetic(&graph, 8));
        let app = WeightedRandomWalk::new(6, transitions);
        let starts = WalkStarts::PerVertex(1);
        let a = WalkEngine::default_for(graph.clone(), Arc::new(ChunkV.partition(&graph, 4)))
            .with_recording()
            .run(&app, &starts, 21);
        let b = WalkEngine::default_for(
            graph.clone(),
            Arc::new(HashPartitioner::default().partition(&graph, 4)),
        )
        .with_recording()
        .run(&app, &starts, 21);
        assert_eq!(a.paths, b.paths);
    }

    #[test]
    fn cached_transitions_match_eager_sample_streams() {
        let g = generate::twitter_like().generate_scaled(0.01);
        let eager = WeightedTransitions::synthetic(&g, 8);
        let cached = CachedTransitions::synthetic(&g, 8);
        for id in 0..200u64 {
            let mut a = Walker::new(id, (id % g.num_vertices() as u64) as VertexId, 17);
            let mut b = a;
            for _ in 0..12 {
                let (va, vb) = (a.current, b.current);
                let na = eager.sample(&mut a, &g, va);
                let nb = cached.sample(&mut b, &g, vb);
                assert_eq!(na, nb, "walker {id} diverged");
                match na {
                    Some(v) => {
                        a.advance(v);
                        b.advance(v);
                    }
                    None => break,
                }
            }
        }
    }

    #[test]
    fn cached_tables_build_once_and_bucket_by_degree() {
        // Uniform weights on a complete graph: every vertex has the same
        // degree, so the whole cache collapses to vertex markers plus ONE
        // shared bucket table.
        let g = generate::complete(6);
        let t = CachedTransitions::new(&g, |_, _| 3.5);
        assert_eq!(t.built_tables(), 0);
        let mut w = Walker::new(0, 0, 5);
        t.sample(&mut w, &g, 0).unwrap();
        let after_first = t.built_tables();
        assert_eq!(after_first, 2, "vertex slot + one degree bucket");
        for _ in 0..50 {
            let v = w.current;
            if let Some(n) = t.sample(&mut w, &g, v) {
                w.advance(n);
            }
        }
        // Revisits reuse cached entries: at most one slot per vertex plus
        // the single shared degree bucket.
        assert!(t.built_tables() <= g.num_vertices() + 1);
    }

    #[test]
    fn cached_walks_match_eager_walks_end_to_end() {
        let graph = Arc::new(generate::twitter_like().generate_scaled(0.01));
        let eager = WeightedRandomWalk::new(6, Arc::new(WeightedTransitions::synthetic(&graph, 8)));
        let cached =
            WeightedRandomWalk::with_sampler(6, Arc::new(CachedTransitions::synthetic(&graph, 8)));
        let starts = WalkStarts::PerVertex(1);
        let part = Arc::new(ChunkV.partition(&graph, 4));
        let a = WalkEngine::default_for(graph.clone(), part.clone())
            .with_recording()
            .run(&eager, &starts, 21);
        let b = WalkEngine::default_for(graph.clone(), part)
            .with_recording()
            .run(&cached, &starts, 21);
        assert_eq!(a.paths, b.paths, "cached sampler changed walk traces");
        assert_eq!(a.total_steps, b.total_steps);
    }

    #[test]
    fn uniform_weights_match_uniform_distribution() {
        let g = generate::complete(5);
        let t = WeightedTransitions::build(&g, |_, _| 1.0);
        let mut counts = [0u64; 5];
        for id in 0..50_000u64 {
            let mut w = Walker::new(id, 0, 9);
            counts[t.sample(&mut w, &g, 0).unwrap() as usize] += 1;
        }
        for (v, &count) in counts.iter().enumerate().skip(1) {
            let p = count as f64 / 50_000.0;
            assert!((p - 0.25).abs() < 0.01, "vertex {v}: {p}");
        }
    }
}
