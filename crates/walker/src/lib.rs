//! # bpart-walker — a KnightKing-like distributed random-walk engine
//!
//! Re-implements the execution model of KnightKing (Yang et al., SOSP '19),
//! the random-walk system the paper integrates BPart into, on the
//! [`bpart_cluster`] BSP simulator:
//!
//! * every walker lives on the machine owning its current vertex,
//! * each iteration (superstep), every active walker takes **one step**;
//!   walkers whose new vertex lives on another machine are *transmitted* —
//!   the paper's "message walks" (Fig. 5b),
//! * per-machine computing load is the number of steps executed (the
//!   metric behind Figs. 4, 12 and 13),
//! * each walker carries its own deterministic RNG, so walk paths are
//!   identical under every partitioning scheme — partitioning changes only
//!   *where* steps execute and *how many* walkers migrate.
//!
//! The five applications the paper runs on KnightKing are provided in
//! [`apps`]: PPR, random walk with jump (RWJ), random walk with
//! domination (RWD), DeepWalk, and node2vec (with KnightKing's rejection
//! sampling), plus the plain fixed-length walk used by the paper's
//! load-balance experiments.
//!
//! ```
//! use bpart_core::{ChunkV, Partitioner};
//! use bpart_graph::generate;
//! use bpart_walker::{apps::SimpleRandomWalk, WalkEngine, WalkStarts};
//! use std::sync::Arc;
//!
//! let graph = Arc::new(generate::erdos_renyi(100, 800, 7));
//! let partition = Arc::new(ChunkV.partition(&graph, 4));
//! let engine = WalkEngine::default_for(graph, partition);
//! let run = engine.run(&SimpleRandomWalk::new(4), &WalkStarts::PerVertex(5), 42);
//! assert_eq!(run.iterations, 4); // one step per superstep
//! assert_eq!(run.total_steps, 100 * 5 * 4);
//! ```

pub mod apps;
pub mod engine;
pub mod rng;
pub mod walker;
pub mod weighted;

pub use engine::{WalkEngine, WalkRun, WalkStarts};
pub use rng::WalkerRng;
pub use walker::{TransitionSampler, WalkApp, Walker};
pub use weighted::{CachedTransitions, WeightedRandomWalk, WeightedTransitions};
