//! Random walk with domination (Li et al., ICDE '14): walks estimating
//! random-walk domination sets. Following the restart formulation, each
//! step the walker returns to its *source* vertex with probability
//! `p_return` and otherwise moves to a uniform out-neighbor; the set of
//! vertices visited within the step budget "dominates" the source's
//! neighborhood.

use crate::walker::{uniform_neighbor, WalkApp, Walker};
use bpart_graph::{CsrGraph, VertexId};

/// RWD decision walk (restart-to-source variant).
#[derive(Clone, Copy, Debug)]
pub struct Rwd {
    return_probability: f64,
    steps: u32,
}

impl Rwd {
    /// RWD with the given return probability and fixed walk length.
    pub fn new(return_probability: f64, steps: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&return_probability),
            "return probability must be in [0, 1]"
        );
        Rwd {
            return_probability,
            steps,
        }
    }
}

impl WalkApp for Rwd {
    fn walk_length(&self) -> u32 {
        self.steps
    }

    fn next(&self, walker: &mut Walker, graph: &CsrGraph) -> Option<VertexId> {
        if walker.rng.next_bool(self.return_probability) {
            return Some(walker.source);
        }
        match uniform_neighbor(walker, graph, walker.current) {
            Some(v) => Some(v),
            // Dead end: restart at the source (domination walks never
            // abandon their source's neighborhood early).
            None => Some(walker.source),
        }
    }

    fn name(&self) -> &'static str {
        "RWD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::generate;

    #[test]
    fn return_probability_one_pins_to_source() {
        let g = generate::complete(6);
        let app = Rwd::new(1.0, 8);
        let mut w = Walker::new(0, 3, 1);
        for _ in 0..8 {
            assert_eq!(app.next(&mut w, &g), Some(3));
        }
    }

    #[test]
    fn dead_end_restarts_at_source() {
        let g = generate::path(3);
        let app = Rwd::new(0.0, 5);
        let mut w = Walker::new(0, 0, 2);
        w.advance(1);
        w.advance(2); // sink
        assert_eq!(app.next(&mut w, &g), Some(0));
    }

    #[test]
    fn return_rate_matches_probability() {
        let g = generate::complete(50);
        let app = Rwd::new(0.2, 1);
        let mut returns = 0;
        let trials = 10_000;
        for id in 0..trials {
            let mut w = Walker::new(id, 7, 6);
            w.advance(20); // move away from source first
            if app.next(&mut w, &g) == Some(7) {
                returns += 1;
            }
        }
        let rate = returns as f64 / trials as f64;
        // uniform moves hit the source occasionally (1/49)
        assert!((rate - 0.2 - 0.8 / 49.0).abs() < 0.02, "rate = {rate}");
    }
}
