//! Personalized PageRank walks: terminate with fixed probability each step
//! (the paper uses 0.1), otherwise move to a uniform out-neighbor. The
//! endpoint distribution of many such walks estimates PPR scores of the
//! source vertex.

use crate::walker::{uniform_neighbor, WalkApp, Walker};
use bpart_graph::{CsrGraph, VertexId};

/// PPR decision walk.
#[derive(Clone, Copy, Debug)]
pub struct Ppr {
    stop_probability: f64,
    max_steps: u32,
}

impl Ppr {
    /// PPR with the given per-step stop probability and a hard step cap.
    pub fn new(stop_probability: f64, max_steps: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&stop_probability),
            "stop probability must be in [0, 1]"
        );
        Ppr {
            stop_probability,
            max_steps,
        }
    }
}

impl WalkApp for Ppr {
    fn walk_length(&self) -> u32 {
        self.max_steps
    }

    fn next(&self, walker: &mut Walker, graph: &CsrGraph) -> Option<VertexId> {
        if walker.rng.next_bool(self.stop_probability) {
            return None;
        }
        uniform_neighbor(walker, graph, walker.current)
    }

    fn name(&self) -> &'static str {
        "PPR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::generate;

    #[test]
    fn stop_probability_one_never_moves() {
        let g = generate::complete(5);
        let app = Ppr::new(1.0, 10);
        let mut w = Walker::new(0, 0, 1);
        assert_eq!(app.next(&mut w, &g), None);
    }

    #[test]
    fn stop_probability_zero_always_moves() {
        let g = generate::complete(5);
        let app = Ppr::new(0.0, 10);
        let mut w = Walker::new(0, 0, 1);
        for _ in 0..10 {
            assert!(app.next(&mut w, &g).is_some());
        }
    }

    #[test]
    fn average_walk_length_tracks_stop_probability() {
        // Expected steps before stop with p=0.1 is ~9 (geometric); verify
        // the empirical mean over many walkers is in that ballpark.
        let g = generate::complete(20);
        let app = Ppr::new(0.1, 1000);
        let mut total = 0u64;
        let walkers = 2_000;
        for id in 0..walkers {
            let mut w = Walker::new(id, 0, 77);
            while let Some(v) = app.next(&mut w, &g) {
                w.advance(v);
            }
            total += w.step as u64;
        }
        let mean = total as f64 / walkers as f64;
        assert!((mean - 9.0).abs() < 1.0, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "stop probability")]
    fn invalid_probability_panics() {
        Ppr::new(1.5, 10);
    }
}
