//! Plain fixed-length uniform random walk — the workload behind the
//! paper's load-balance experiments (Figs. 4, 12, 13: `5|V|` walks, 4
//! steps each).

use crate::walker::{uniform_neighbor, WalkApp, Walker};
use bpart_graph::{CsrGraph, VertexId};

/// Uniform out-neighbor walk of a fixed length.
#[derive(Clone, Copy, Debug)]
pub struct SimpleRandomWalk {
    steps: u32,
}

impl SimpleRandomWalk {
    /// Walk of exactly `steps` steps (dead ends end walks early).
    pub fn new(steps: u32) -> Self {
        SimpleRandomWalk { steps }
    }
}

impl WalkApp for SimpleRandomWalk {
    fn walk_length(&self) -> u32 {
        self.steps
    }

    fn next(&self, walker: &mut Walker, graph: &CsrGraph) -> Option<VertexId> {
        uniform_neighbor(walker, graph, walker.current)
    }

    fn name(&self) -> &'static str {
        "SimpleRW"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_follow_edges() {
        let g = bpart_graph::generate::ring(6);
        let mut w = Walker::new(0, 2, 1);
        let app = SimpleRandomWalk::new(3);
        for expect in [3u32, 4, 5] {
            let next = app.next(&mut w, &g).unwrap();
            assert_eq!(next, expect); // ring has one out-edge per vertex
            w.advance(next);
        }
        assert_eq!(app.walk_length(), 3);
    }
}
