//! Random walk with jump: with probability `p_jump` (the paper uses 0.2)
//! teleport to a uniformly random vertex of the whole graph, otherwise
//! move to a uniform out-neighbor. Jumps also rescue dead-end walkers,
//! which is the standard RWJ formulation for heterogeneous-graph
//! embeddings.

use crate::walker::{uniform_neighbor, WalkApp, Walker};
use bpart_graph::{CsrGraph, VertexId};

/// RWJ decision walk.
#[derive(Clone, Copy, Debug)]
pub struct Rwj {
    jump_probability: f64,
    steps: u32,
}

impl Rwj {
    /// RWJ with the given jump probability and fixed walk length.
    pub fn new(jump_probability: f64, steps: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&jump_probability),
            "jump probability must be in [0, 1]"
        );
        Rwj {
            jump_probability,
            steps,
        }
    }
}

impl WalkApp for Rwj {
    fn walk_length(&self) -> u32 {
        self.steps
    }

    fn next(&self, walker: &mut Walker, graph: &CsrGraph) -> Option<VertexId> {
        let n = graph.num_vertices() as u64;
        if walker.rng.next_bool(self.jump_probability) {
            return Some(walker.rng.next_bounded(n) as VertexId);
        }
        match uniform_neighbor(walker, graph, walker.current) {
            Some(v) => Some(v),
            // Dead end: forced jump keeps the fixed-length walk going.
            None => Some(walker.rng.next_bounded(n) as VertexId),
        }
    }

    fn name(&self) -> &'static str {
        "RWJ"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::generate;

    #[test]
    fn jump_probability_one_teleports_anywhere() {
        let g = generate::ring(100);
        let app = Rwj::new(1.0, 50);
        let mut w = Walker::new(0, 0, 3);
        let mut teleported_far = false;
        for _ in 0..50 {
            let v = app.next(&mut w, &g).unwrap();
            // a ring step would give exactly current+1
            if v != (w.current + 1) % 100 {
                teleported_far = true;
            }
            w.advance(v);
        }
        assert!(teleported_far);
    }

    #[test]
    fn dead_end_forces_a_jump_instead_of_stopping() {
        let g = generate::path(2); // 1 is a sink
        let app = Rwj::new(0.0, 5);
        let mut w = Walker::new(0, 1, 9);
        assert!(app.next(&mut w, &g).is_some());
    }

    #[test]
    fn jump_rate_is_close_to_p() {
        let g = generate::ring(1000);
        let app = Rwj::new(0.2, 1);
        let mut jumps = 0;
        let trials = 10_000;
        for id in 0..trials {
            let mut w = Walker::new(id, 500, 4);
            let v = app.next(&mut w, &g).unwrap();
            if v != 501 {
                jumps += 1;
            }
        }
        let rate = jumps as f64 / trials as f64;
        // teleports occasionally land on 501 too; tolerance covers that
        assert!((rate - 0.2).abs() < 0.02, "rate = {rate}");
    }
}
