//! DeepWalk (Perozzi et al., KDD '14): plain uniform random walks whose
//! recorded vertex sequences feed a skip-gram model. The walk itself is a
//! fixed-length first-order walk; run it with path recording enabled to
//! produce the training corpus (see the `random_walk_corpus` example).

use crate::walker::{uniform_neighbor, WalkApp, Walker};
use bpart_graph::{CsrGraph, VertexId};

/// DeepWalk corpus walk.
#[derive(Clone, Copy, Debug)]
pub struct DeepWalk {
    walk_length: u32,
}

impl DeepWalk {
    /// DeepWalk with the given walk length (the original paper uses 40-80).
    pub fn new(walk_length: u32) -> Self {
        DeepWalk { walk_length }
    }
}

impl WalkApp for DeepWalk {
    fn walk_length(&self) -> u32 {
        self.walk_length
    }

    fn next(&self, walker: &mut Walker, graph: &CsrGraph) -> Option<VertexId> {
        uniform_neighbor(walker, graph, walker.current)
    }

    fn name(&self) -> &'static str {
        "DeepWalk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{WalkEngine, WalkStarts};
    use bpart_core::{ChunkV, Partitioner};
    use bpart_graph::generate;
    use std::sync::Arc;

    #[test]
    fn corpus_walks_stay_on_edges() {
        let graph = Arc::new(generate::twitter_like().generate_scaled(0.005));
        let partition = Arc::new(ChunkV.partition(&graph, 4));
        let run = WalkEngine::default_for(graph.clone(), partition)
            .with_recording()
            .run(&DeepWalk::new(10), &WalkStarts::PerVertex(1), 3);
        let paths = run.paths.unwrap();
        assert_eq!(paths.len(), graph.num_vertices());
        for path in &paths {
            for w in path.windows(2) {
                assert!(graph.is_out_neighbor(w[0], w[1]), "non-edge {w:?}");
            }
        }
    }
}
