//! Metropolis–Hastings random walk with a *uniform* stationary
//! distribution.
//!
//! A plain random walk's stationary distribution is proportional to vertex
//! degree, which biases samples toward hubs. The Metropolis–Hastings
//! correction accepts a proposed move `v → x` with probability
//! `min(1, d(v)/d(x))`, staying put otherwise — the resulting chain's
//! stationary distribution is uniform over the (strongly connected) graph,
//! which is what unbiased vertex-sampling applications need. A common
//! KnightKing-style dynamic walk workload.

use crate::walker::{uniform_neighbor, WalkApp, Walker};
use bpart_graph::{CsrGraph, VertexId};

/// Metropolis–Hastings uniform-sampling walk.
#[derive(Clone, Copy, Debug)]
pub struct MetropolisHastings {
    steps: u32,
}

impl MetropolisHastings {
    /// MH walk of `steps` steps.
    pub fn new(steps: u32) -> Self {
        MetropolisHastings { steps }
    }
}

impl WalkApp for MetropolisHastings {
    fn walk_length(&self) -> u32 {
        self.steps
    }

    fn next(&self, walker: &mut Walker, graph: &CsrGraph) -> Option<VertexId> {
        let current = walker.current;
        let proposal = uniform_neighbor(walker, graph, current)?;
        let d_cur = graph.out_degree(current) as f64;
        let d_prop = graph.out_degree(proposal) as f64;
        // Dead-end proposals are never accepted (no return path), keeping
        // the chain on the strongly connected core.
        if d_prop == 0.0 {
            return Some(current);
        }
        let accept = (d_cur / d_prop).min(1.0);
        if walker.rng.next_bool(accept) {
            Some(proposal)
        } else {
            Some(current) // rejected: burn a step in place
        }
    }

    fn name(&self) -> &'static str {
        "MetropolisHastings"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::generate;

    /// Empirical occupancy of long MH walks vs plain walks on a graph with
    /// a strong hub: MH should flatten the hub bias.
    #[test]
    fn stationary_distribution_is_flatter_than_plain_walks() {
        // Lollipop-ish: a 6-clique attached to a 12-ring (bidirected).
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in 0..6u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        for i in 0..12u32 {
            let u = 5 + i; // 5..17 ring through the clique vertex 5
            let v = 5 + (i + 1) % 12;
            edges.push((u, v));
            edges.push((v, u));
        }
        let g = bpart_graph::CsrGraph::from_edges(17, &edges);

        let occupancy = |mh: bool| -> Vec<f64> {
            let mut counts = [0u64; 17];
            let steps = 40_000u32;
            let mut w = Walker::new(0, 0, 1234);
            let mh_app = MetropolisHastings::new(steps);
            let plain = crate::apps::SimpleRandomWalk::new(steps);
            for _ in 0..steps {
                let next = if mh {
                    mh_app.next(&mut w, &g)
                } else {
                    crate::walker::WalkApp::next(&plain, &mut w, &g)
                }
                .unwrap();
                w.advance(next);
                counts[next as usize] += 1;
            }
            counts.iter().map(|&c| c as f64 / steps as f64).collect()
        };

        let plain = occupancy(false);
        let mh = occupancy(true);
        // Clique vertices (degree 5-7) are over-visited by plain walks;
        // MH should pull their share down toward 1/17.
        let clique_plain: f64 = plain[..5].iter().sum();
        let clique_mh: f64 = mh[..5].iter().sum();
        assert!(
            clique_mh < clique_plain * 0.75,
            "MH should flatten hub occupancy: {clique_mh:.3} vs {clique_plain:.3}"
        );
        let uniform_share = 5.0 / 17.0;
        assert!(
            (clique_mh - uniform_share).abs() < 0.1,
            "MH clique share {clique_mh:.3} should approach uniform {uniform_share:.3}"
        );
    }

    #[test]
    fn moves_downhill_in_degree_are_always_accepted() {
        // Star: hub degree 8, spokes degree 1. Hub -> spoke has
        // d(hub)/d(spoke) = 8 >= 1, so every proposal from the hub is
        // accepted; spoke -> hub is accepted only with probability 1/8,
        // so most spoke steps stay in place.
        let g = generate::star(8);
        let app = MetropolisHastings::new(10);
        let mut w = Walker::new(0, 0, 7);
        let next = app.next(&mut w, &g).unwrap();
        assert_ne!(next, 0, "hub proposals are always accepted");

        let mut stays = 0;
        for id in 0..100 {
            let mut w = Walker::new(id, 1, 7);
            if app.next(&mut w, &g) == Some(1) {
                stays += 1;
            }
        }
        assert!(
            (75..100).contains(&stays),
            "spoke should mostly stay put: {stays}"
        );
    }

    #[test]
    fn dead_end_terminates() {
        let g = generate::path(2);
        let app = MetropolisHastings::new(5);
        let mut w = Walker::new(0, 1, 3);
        assert_eq!(app.next(&mut w, &g), None);
    }
}
