//! Walk applications.
//!
//! The paper's five KnightKing workloads — [`Ppr`], [`Rwj`], [`Rwd`],
//! [`DeepWalk`], [`Node2vec`] — plus [`SimpleRandomWalk`], the plain
//! fixed-length walk its load-balance experiments use (5|V| walks of 4
//! steps).

mod deepwalk;
mod metropolis;
mod node2vec;
mod ppr;
mod rwd;
mod rwj;
mod simple;

pub use deepwalk::DeepWalk;
pub use metropolis::MetropolisHastings;
pub use node2vec::Node2vec;
pub use ppr::Ppr;
pub use rwd::Rwd;
pub use rwj::Rwj;
pub use simple::SimpleRandomWalk;

use crate::walker::WalkApp;

/// The paper's seven-application suite labels (five walks + two iteration
/// apps run by `bpart-engine`). Helper for harness tables.
pub fn walk_app_names() -> Vec<&'static str> {
    vec!["PPR", "RWJ", "RWD", "DeepWalk", "node2vec"]
}

/// Builds the paper's five walk applications with its stated parameters:
/// PPR stop probability 0.1, RWJ jump probability 0.2, fixed-step walks
/// for the rest.
pub fn paper_suite(steps: u32) -> Vec<Box<dyn WalkApp>> {
    vec![
        Box::new(Ppr::new(0.1, steps)),
        Box::new(Rwj::new(0.2, steps)),
        Box::new(Rwd::new(0.2, steps)),
        Box::new(DeepWalk::new(steps)),
        Box::new(Node2vec::new(2.0, 0.5, steps)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_names() {
        let suite = paper_suite(4);
        let names: Vec<_> = suite.iter().map(|a| a.name()).collect();
        assert_eq!(names, walk_app_names());
        assert!(suite.iter().all(|a| a.walk_length() == 4));
    }
}
