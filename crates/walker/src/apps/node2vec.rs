//! node2vec (Grover & Leskovec, KDD '16): second-order biased walks with
//! KnightKing's rejection sampling.
//!
//! Given the previous vertex `t` and current vertex `v`, the unnormalized
//! probability of moving to `x ∈ N(v)` is
//!
//! ```text
//! w(x) = 1/p  if x == t        (return)
//!        1    if x ∈ N(t)      (stay close)
//!        1/q  otherwise        (explore)
//! ```
//!
//! Instead of materializing the distribution per (t, v) pair — quadratic
//! state — KnightKing samples a uniform candidate from `N(v)` and accepts
//! it with probability `w(x)/w_max`. Each trial costs one neighbor probe
//! (a binary search in `N(t)`), and the expected trial count is the
//! rejection-sampling constant `w_max / E[w]`, independent of degree.

use crate::walker::{WalkApp, Walker};
use bpart_graph::{CsrGraph, VertexId};

/// node2vec second-order walk.
#[derive(Clone, Copy, Debug)]
pub struct Node2vec {
    /// Return parameter `p`.
    pub p: f64,
    /// In-out parameter `q`.
    pub q: f64,
    walk_length: u32,
}

impl Node2vec {
    /// node2vec with parameters `p`, `q` and a fixed walk length.
    pub fn new(p: f64, q: f64, walk_length: u32) -> Self {
        assert!(p > 0.0 && q > 0.0, "p and q must be positive");
        Node2vec { p, q, walk_length }
    }

    /// Unnormalized transition weight for candidate `x` given previous
    /// vertex `prev`.
    #[inline]
    fn weight(&self, graph: &CsrGraph, prev: VertexId, x: VertexId) -> f64 {
        if x == prev {
            1.0 / self.p
        } else if graph.is_out_neighbor(prev, x) {
            1.0
        } else {
            1.0 / self.q
        }
    }
}

impl WalkApp for Node2vec {
    fn walk_length(&self) -> u32 {
        self.walk_length
    }

    fn next(&self, walker: &mut Walker, graph: &CsrGraph) -> Option<VertexId> {
        let nbrs = graph.out_neighbors(walker.current);
        if nbrs.is_empty() {
            return None;
        }
        // First step is first-order: uniform.
        if walker.previous == VertexId::MAX {
            return Some(nbrs[walker.rng.next_bounded(nbrs.len() as u64) as usize]);
        }
        let w_max = (1.0 / self.p).max(1.0).max(1.0 / self.q);
        // Rejection sampling with a safety cap; the acceptance rate is at
        // least min(1/p, 1, 1/q) / w_max, so 64 trials virtually never
        // trip. Falling back to the last candidate keeps walks total.
        let mut candidate = nbrs[0];
        for _ in 0..64 {
            candidate = nbrs[walker.rng.next_bounded(nbrs.len() as u64) as usize];
            let accept = self.weight(graph, walker.previous, candidate) / w_max;
            if walker.rng.next_bool(accept) {
                return Some(candidate);
            }
        }
        Some(candidate)
    }

    fn name(&self) -> &'static str {
        "node2vec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_graph::generate;
    use std::collections::HashMap;

    /// Empirical transition distribution from state (prev=0, current=1).
    fn empirical(graph: &CsrGraph, p: f64, q: f64, trials: u64) -> HashMap<VertexId, f64> {
        let app = Node2vec::new(p, q, 10);
        let mut counts: HashMap<VertexId, u64> = HashMap::new();
        for id in 0..trials {
            let mut w = Walker::new(id, 0, 99);
            w.advance(1); // prev = 0, current = 1
            let v = app.next(&mut w, graph).unwrap();
            *counts.entry(v).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .map(|(v, c)| (v, c as f64 / trials as f64))
            .collect()
    }

    #[test]
    fn transition_probabilities_match_the_biased_distribution() {
        // Square with a diagonal: N(1) = {0, 2, 3}; N(0) = {1, 2}.
        // From (prev=0, current=1): w(0)=1/p (return), w(2)=1 (in N(0)),
        // w(3)=1/q (explore).
        let g = CsrGraph::from_edges(
            4,
            &[
                (0, 1),
                (1, 0),
                (0, 2),
                (2, 0),
                (1, 2),
                (2, 1),
                (1, 3),
                (3, 1),
            ],
        );
        let (p, q) = (4.0, 0.25);
        let dist = empirical(&g, p, q, 60_000);
        let w = [1.0 / p, 1.0, 1.0 / q];
        let z: f64 = w.iter().sum();
        assert!((dist[&0] - w[0] / z).abs() < 0.02, "return: {}", dist[&0]);
        assert!((dist[&2] - w[1] / z).abs() < 0.02, "close: {}", dist[&2]);
        assert!((dist[&3] - w[2] / z).abs() < 0.02, "explore: {}", dist[&3]);
    }

    #[test]
    fn p_q_one_degenerates_to_uniform() {
        let g = generate::complete(6);
        let dist = empirical(&g, 1.0, 1.0, 60_000);
        for (&v, &prob) in &dist {
            assert!((prob - 0.2).abs() < 0.02, "vertex {v}: {prob}");
        }
    }

    #[test]
    fn first_step_is_uniform_first_order() {
        let g = generate::star(5);
        let app = Node2vec::new(0.25, 4.0, 3);
        let mut w = Walker::new(0, 0, 5);
        assert_eq!(w.previous, VertexId::MAX);
        let v = app.next(&mut w, &g).unwrap();
        assert!(g.is_out_neighbor(0, v));
    }

    #[test]
    fn dead_end_terminates() {
        let g = generate::path(2);
        let app = Node2vec::new(1.0, 1.0, 5);
        let mut w = Walker::new(0, 1, 1);
        assert_eq!(app.next(&mut w, &g), None);
    }

    use bpart_graph::CsrGraph;

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_params_panic() {
        Node2vec::new(0.0, 1.0, 5);
    }
}
