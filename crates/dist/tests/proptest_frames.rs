//! Property-based tests for the wire frame codec: arbitrary payloads
//! round-trip, and no truncation or length corruption is ever accepted.

use bpart_dist::error::ClusterError;
use bpart_dist::frame::{self, HEADER_LEN, MAX_PAYLOAD};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frames_round_trip(
        kind in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let bytes = frame::encode(kind, &payload);
        prop_assert_eq!(bytes.len(), HEADER_LEN + payload.len());

        // Buffer decode consumes exactly one frame.
        let (decoded, used) = frame::decode(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded.kind, kind);
        prop_assert_eq!(&decoded.payload, &payload);

        // Stream decode agrees byte for byte.
        let mut cursor = &bytes[..];
        let streamed = frame::read_frame(&mut cursor).unwrap();
        prop_assert_eq!(streamed.kind, kind);
        prop_assert_eq!(streamed.payload, payload);
        prop_assert!(cursor.is_empty());
    }

    #[test]
    fn truncated_frames_are_rejected(
        kind in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 0..256),
        cut in 0usize..1 << 16,
    ) {
        let bytes = frame::encode(kind, &payload);
        // Cut strictly before the end: every proper prefix must be
        // rejected, never silently decoded.
        let keep = cut % bytes.len();
        let err = frame::decode(&bytes[..keep]).unwrap_err();
        prop_assert!(
            matches!(err, ClusterError::FrameCorrupt { .. }),
            "prefix of {} bytes decoded or failed oddly: {}", keep, err
        );
        // The stream reader maps the same cut to corrupt-or-hangup.
        let mut cursor = &bytes[..keep];
        let err = frame::read_frame(&mut cursor).unwrap_err();
        prop_assert!(
            matches!(
                err,
                ClusterError::FrameCorrupt { .. } | ClusterError::ConnReset { .. }
            ),
            "stream prefix of {} bytes: {}", keep, err
        );
    }

    #[test]
    fn corrupt_lengths_are_rejected(
        kind in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 0..64),
        stated in 0u32..=u32::MAX,
    ) {
        let true_len = payload.len() as u32;
        prop_assume!(stated != true_len);
        let mut bytes = frame::encode(kind, &payload);
        bytes[4..8].copy_from_slice(&stated.to_le_bytes());
        let err = frame::decode(&bytes).unwrap_err();
        prop_assert!(matches!(err, ClusterError::FrameCorrupt { .. }), "{}", err);
        if stated > MAX_PAYLOAD {
            // Impossible lengths must die on header validation — before
            // any payload-sized allocation.
            prop_assert!(err.to_string().contains("MAX_PAYLOAD"), "{}", err);
        }
    }

    #[test]
    fn corrupt_payload_bytes_are_rejected(
        kind in 0u8..=255,
        payload in prop::collection::vec(0u8..=255, 1..256),
        at in 0usize..1 << 16,
        xor in 1u8..=255,
    ) {
        let mut bytes = frame::encode(kind, &payload);
        let at = HEADER_LEN + at % payload.len();
        bytes[at] ^= xor;
        let err = frame::decode(&bytes).unwrap_err();
        prop_assert!(matches!(err, ClusterError::FrameCorrupt { .. }), "{}", err);
    }
}
