//! End-to-end tests of the process backend against the thread-simulated
//! oracle: bit-identical results on fixed seeds, recovery from a real
//! `SIGKILL`, and fault-plan accounting parity on the real transport.

use bpart_cluster::FaultPlan;
use bpart_dist::{run_job, AppSpec, Backend, GraphSource, JobSpec, ProcessConfig, ThreadsConfig};
use std::time::Duration;

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_bpart-workerd").to_string()]
}

fn spec(app: AppSpec) -> JobSpec {
    JobSpec {
        graph: GraphSource::ErdosRenyi {
            n: 160,
            m: 640,
            seed: 11,
        },
        scheme: "chunk-v".to_string(),
        parts: 3,
        app,
        checkpoint_every: Some(2),
    }
}

fn threads(faults: FaultPlan) -> Backend {
    Backend::Threads(ThreadsConfig {
        faults,
        ..ThreadsConfig::default()
    })
}

fn process(faults: FaultPlan) -> Backend {
    let mut cfg = ProcessConfig::new(3, worker_cmd());
    cfg.heartbeat_interval = Duration::from_millis(50);
    cfg.heartbeat_timeout = Duration::from_millis(800);
    cfg.faults = faults;
    Backend::Process(cfg)
}

#[test]
fn pagerank_is_bit_identical_across_backends() {
    let spec = spec(AppSpec::PageRank { iters: 8 });
    let oracle = run_job(&spec, &threads(FaultPlan::new())).unwrap();
    let out = run_job(&spec, &process(FaultPlan::new())).unwrap();
    assert_eq!(out.digest, oracle.digest, "PageRank digests diverged");
    assert_eq!(out.supersteps, oracle.supersteps);
    assert_eq!(out.recovery.worker_deaths, 0);
    assert_eq!(out.recovery.recoveries, 0);
}

#[test]
fn connected_components_is_bit_identical_across_backends() {
    let spec = spec(AppSpec::ConnectedComponents);
    let oracle = run_job(&spec, &threads(FaultPlan::new())).unwrap();
    let out = run_job(&spec, &process(FaultPlan::new())).unwrap();
    assert_eq!(out.digest, oracle.digest, "CC digests diverged");
    assert_eq!(out.supersteps, oracle.supersteps);
}

#[test]
fn deepwalk_paths_are_bit_identical_across_backends() {
    let spec = spec(AppSpec::DeepWalk {
        walk_len: 6,
        seed: 42,
        per_vertex: 2,
    });
    let oracle = run_job(&spec, &threads(FaultPlan::new())).unwrap();
    let out = run_job(&spec, &process(FaultPlan::new())).unwrap();
    assert_eq!(out.digest, oracle.digest, "DeepWalk path digests diverged");
    assert_eq!(out.supersteps, oracle.supersteps);
}

/// The tentpole acceptance test: a worker process is `SIGKILL`ed
/// mid-superstep, its death is detected via heartbeat loss, state comes
/// back from the driver-held checkpoint, the superstep is replayed, and
/// the final result is still bit-identical to the fault-free oracle.
#[test]
fn sigkilled_worker_recovers_from_checkpoint_bit_identically() {
    let spec = spec(AppSpec::PageRank { iters: 8 });
    let oracle = run_job(&spec, &threads(FaultPlan::new())).unwrap();
    let out = run_job(&spec, &process(FaultPlan::new().crash(3, 1))).unwrap();
    assert_eq!(
        out.digest, oracle.digest,
        "recovered run diverged from the fault-free oracle"
    );
    assert_eq!(out.supersteps, oracle.supersteps);
    assert!(out.recovery.worker_deaths >= 1, "{:?}", out.recovery);
    assert!(out.recovery.recoveries >= 1, "{:?}", out.recovery);
    assert!(out.recovery.respawns >= 1, "{:?}", out.recovery);
    assert!(out.recovery.replayed_supersteps >= 1, "{:?}", out.recovery);
}

/// Same, for a walk app: the snapshot carries walker queues and path
/// logs (RNG state included), so replay reproduces the exact paths.
#[test]
fn sigkilled_walk_worker_recovers_bit_identically() {
    let spec = spec(AppSpec::SimpleWalk {
        walk_len: 8,
        seed: 7,
        per_vertex: 1,
    });
    let oracle = run_job(&spec, &threads(FaultPlan::new())).unwrap();
    let out = run_job(&spec, &process(FaultPlan::new().crash(3, 2))).unwrap();
    assert_eq!(out.digest, oracle.digest, "walk digests diverged");
    assert!(out.recovery.recoveries >= 1, "{:?}", out.recovery);
}

/// Satellite fixture: a drop/duplicate link plan running over the real
/// transport charges exactly the retry counters the threaded simulation
/// charges — the per-link staged counts and the stateless fault hash are
/// shared, so the numbers must agree, and the payloads still arrive
/// exactly once.
#[test]
fn drop_link_plan_matches_threaded_retry_counters() {
    let spec = spec(AppSpec::PageRank { iters: 6 });
    let plan = FaultPlan::new()
        .with_seed(9)
        .drop_link(1, 4, 0, 2, 0.5)
        .duplicate_link(2, 5, 2, 1, 0.25);
    let simulated = run_job(&spec, &threads(plan.clone())).unwrap();
    let real = run_job(&spec, &process(plan)).unwrap();
    assert!(
        simulated.recovery.link_retries > 0,
        "plan injected nothing: {:?}",
        simulated.recovery
    );
    assert_eq!(
        real.recovery.link_retries, simulated.recovery.link_retries,
        "transport-level retry accounting diverged from the simulation"
    );
    assert_eq!(real.digest, simulated.digest, "link faults corrupted data");
}
