//! End-to-end federation tests on the process backend: a `SIGKILL`ed
//! worker must leave its last telemetry snapshot behind in the driver's
//! federated store, and a run with observability off must ship no
//! telemetry at all.
//!
//! These live in their own test binary on purpose: the federation store
//! is process-global, and sharing a process with the bit-identity tests
//! would let their drivers write into the store mid-assertion.

use bpart_cluster::FaultPlan;
use bpart_dist::{run_job, AppSpec, Backend, GraphSource, JobSpec, ProcessConfig};
use bpart_obs::federation;
use std::sync::Mutex;
use std::time::Duration;

/// Both tests touch the global store; serialise them.
static SERIAL: Mutex<()> = Mutex::new(());

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_bpart-workerd").to_string()]
}

fn spec() -> JobSpec {
    JobSpec {
        graph: GraphSource::ErdosRenyi {
            n: 160,
            m: 640,
            seed: 11,
        },
        scheme: "chunk-v".to_string(),
        parts: 3,
        app: AppSpec::PageRank { iters: 8 },
        checkpoint_every: Some(2),
    }
}

fn process(faults: FaultPlan) -> Backend {
    let mut cfg = ProcessConfig::new(3, worker_cmd());
    cfg.heartbeat_interval = Duration::from_millis(50);
    cfg.heartbeat_timeout = Duration::from_millis(800);
    cfg.faults = faults;
    Backend::Process(cfg)
}

/// The satellite acceptance test: worker 1 is `SIGKILL`ed at superstep
/// 3, and after the run the federated store still carries (a) the dead
/// incarnation's last pre-death snapshot, (b) a death count on its
/// `/metrics` series, and (c) full per-worker step timings — the
/// snapshot a later-killed worker leaves behind is exactly what the
/// post-mortem reads.
#[test]
fn sigkilled_worker_leaves_its_last_snapshot_in_the_federated_store() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    federation::reset();
    federation::set_collection_enabled(true);
    let out = run_job(&spec(), &process(FaultPlan::new().crash(3, 1))).unwrap();
    federation::set_collection_enabled(false);
    assert!(out.recovery.worker_deaths >= 1, "{:?}", out.recovery);

    let store = federation::global().clone();
    assert_eq!(store.cluster_size, 3);
    assert_eq!(store.workers.len(), 3, "every worker must have reported");

    let dead = store.workers.get(&1).expect("killed worker tracked");
    assert!(dead.deaths >= 1, "death not recorded: {dead:?}");
    assert!(
        dead.last_pre_death.is_some(),
        "pre-death snapshot was not pinned"
    );
    // The respawned incarnation reports under a newer epoch, so by the
    // end of the run the worker is live again.
    assert!(!dead.stale, "respawned worker still marked stale");
    assert_eq!(store.dead_workers(), 0);
    assert!(!store.recovering, "recovery flag leaked past the run");

    let prom = store.prometheus_federated();
    for w in 0..3 {
        assert!(
            prom.contains(&format!("bpart_federation_seq{{worker=\"{w}\"}}")),
            "missing series for worker {w}:\n{prom}"
        );
    }
    assert!(
        prom.contains("bpart_federation_deaths{worker=\"1\"} 1"),
        "death count absent from /metrics:\n{prom}"
    );

    // Every superstep the job ran has a complete 3-machine timing row;
    // this is the measured Fig. 13 input.
    for superstep in 0..out.supersteps {
        let (compute, comm) = store
            .step_timings(superstep)
            .unwrap_or_else(|| panic!("superstep {superstep} timings incomplete"));
        assert_eq!(compute.len(), 3);
        assert_eq!(comm.len(), 3);
    }

    // Clock samples were taken over the live RPC path.
    assert!(
        store.workers.values().any(|w| w.min_rtt_ns != u64::MAX),
        "no clock sample recorded"
    );
}

/// With collection off (the default), a process-backend run must leave
/// the federated store untouched — the zero-overhead guarantee the CI
/// gate depends on.
#[test]
fn run_without_observability_ships_no_telemetry() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    federation::reset();
    federation::set_collection_enabled(false);
    let out = run_job(&spec(), &process(FaultPlan::new())).unwrap();
    assert_eq!(out.recovery.worker_deaths, 0);
    let store = federation::global();
    assert!(
        store.workers.is_empty(),
        "telemetry leaked into a no-obs run: {store:?}"
    );
}
