//! The job spec: everything a worker needs to rebuild its share of the
//! computation from scratch.
//!
//! The driver never ships the graph or the partition over the wire.
//! Instead the spec names a deterministic graph *source* and a
//! partitioning scheme; driver and every worker derive the identical
//! cluster independently (the generators and partitioners are seeded and
//! deterministic). This mirrors real deployments — machines load their
//! input from shared storage — and makes respawning a dead worker cheap:
//! send the spec again.

use crate::error::ClusterError;
use crate::wire::{put_f64, put_str, put_u32, put_u64, Reader};
use bpart_cluster::Cluster;
use bpart_core::prelude::*;
use bpart_graph::{generate, io, CsrGraph};
use bpart_multilevel::Multilevel;
use std::fs::File;
use std::sync::Arc;

/// Where the graph comes from. Every variant is deterministic, so all
/// processes materialize byte-identical CSR structures.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSource {
    /// Load from a file (text edge list, or `.bpgr` binary by
    /// extension) on storage every process can reach.
    File(String),
    /// Generate a named preset (`lj_like`, `twitter_like`, ...) at a
    /// scale, optionally overriding the recipe seed.
    Preset {
        /// Preset name from `bpart_graph::generate::ALL_PRESETS`.
        name: String,
        /// Size multiplier passed to `generate_scaled`.
        scale: f64,
        /// Recipe seed override (`None` keeps the preset default).
        seed: Option<u64>,
    },
    /// Uniform `G(n, m)` — cheap, deterministic, test-friendly.
    ErdosRenyi {
        /// Vertices.
        n: u32,
        /// Edges.
        m: u32,
        /// Generator seed.
        seed: u64,
    },
}

/// Which application to run. The process backend supports a fixed, named
/// app set: closures cannot cross a process boundary, so the protocol
/// names programs and each process instantiates its own copy.
#[derive(Clone, Debug, PartialEq)]
pub enum AppSpec {
    /// PageRank for a fixed number of iterations.
    PageRank {
        /// Iteration count.
        iters: usize,
    },
    /// Connected components (runs to quiescence).
    ConnectedComponents,
    /// DeepWalk: uniform first-order walks, `per_vertex` walkers from
    /// every vertex.
    DeepWalk {
        /// Walk length cap.
        walk_len: u32,
        /// Engine-wide RNG seed.
        seed: u64,
        /// Walkers started per vertex.
        per_vertex: u32,
    },
    /// Simple uniform random walk (same shape as DeepWalk; kept distinct
    /// because the CLI exposes both names).
    SimpleWalk {
        /// Walk length cap.
        walk_len: u32,
        /// Engine-wide RNG seed.
        seed: u64,
        /// Walkers started per vertex.
        per_vertex: u32,
    },
}

impl AppSpec {
    /// True for the walk-engine apps.
    pub fn is_walk(&self) -> bool {
        matches!(self, AppSpec::DeepWalk { .. } | AppSpec::SimpleWalk { .. })
    }

    /// Display name (matches the CLI `--app` vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            AppSpec::PageRank { .. } => "pagerank",
            AppSpec::ConnectedComponents => "cc",
            AppSpec::DeepWalk { .. } => "deepwalk",
            AppSpec::SimpleWalk { .. } => "walk",
        }
    }
}

/// A complete distributed job description.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Graph source (see [`GraphSource`]).
    pub graph: GraphSource,
    /// Partitioning scheme name (the CLI `--scheme` vocabulary).
    pub scheme: String,
    /// Number of parts = number of BSP machines = number of workers.
    pub parts: u32,
    /// The application to run.
    pub app: AppSpec,
    /// Checkpoint interval in supersteps (`None`: recovery replays from
    /// the initial state).
    pub checkpoint_every: Option<u32>,
}

impl JobSpec {
    /// Serializes the spec for the `Job` frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match &self.graph {
            GraphSource::File(path) => {
                out.push(0);
                put_str(&mut out, path);
            }
            GraphSource::Preset { name, scale, seed } => {
                out.push(1);
                put_str(&mut out, name);
                put_f64(&mut out, *scale);
                match seed {
                    Some(s) => {
                        out.push(1);
                        put_u64(&mut out, *s);
                    }
                    None => out.push(0),
                }
            }
            GraphSource::ErdosRenyi { n, m, seed } => {
                out.push(2);
                put_u32(&mut out, *n);
                put_u32(&mut out, *m);
                put_u64(&mut out, *seed);
            }
        }
        put_str(&mut out, &self.scheme);
        put_u32(&mut out, self.parts);
        match &self.app {
            AppSpec::PageRank { iters } => {
                out.push(0);
                put_u64(&mut out, *iters as u64);
            }
            AppSpec::ConnectedComponents => out.push(1),
            AppSpec::DeepWalk {
                walk_len,
                seed,
                per_vertex,
            } => {
                out.push(2);
                put_u32(&mut out, *walk_len);
                put_u64(&mut out, *seed);
                put_u32(&mut out, *per_vertex);
            }
            AppSpec::SimpleWalk {
                walk_len,
                seed,
                per_vertex,
            } => {
                out.push(3);
                put_u32(&mut out, *walk_len);
                put_u64(&mut out, *seed);
                put_u32(&mut out, *per_vertex);
            }
        }
        match self.checkpoint_every {
            Some(every) => {
                out.push(1);
                put_u32(&mut out, every);
            }
            None => out.push(0),
        }
        out
    }

    /// Deserializes a `Job` frame payload.
    pub fn decode(buf: &[u8]) -> Result<JobSpec, ClusterError> {
        let mut r = Reader::new(buf);
        let graph = match r.u8()? {
            0 => GraphSource::File(r.str()?),
            1 => {
                let name = r.str()?;
                let scale = r.f64()?;
                let seed = match r.u8()? {
                    0 => None,
                    _ => Some(r.u64()?),
                };
                GraphSource::Preset { name, scale, seed }
            }
            2 => GraphSource::ErdosRenyi {
                n: r.u32()?,
                m: r.u32()?,
                seed: r.u64()?,
            },
            t => return Err(ClusterError::corrupt(format!("unknown graph source {t}"))),
        };
        let scheme = r.str()?;
        let parts = r.u32()?;
        let app = match r.u8()? {
            0 => AppSpec::PageRank {
                iters: r.u64()? as usize,
            },
            1 => AppSpec::ConnectedComponents,
            2 => AppSpec::DeepWalk {
                walk_len: r.u32()?,
                seed: r.u64()?,
                per_vertex: r.u32()?,
            },
            3 => AppSpec::SimpleWalk {
                walk_len: r.u32()?,
                seed: r.u64()?,
                per_vertex: r.u32()?,
            },
            t => return Err(ClusterError::corrupt(format!("unknown app {t}"))),
        };
        let checkpoint_every = match r.u8()? {
            0 => None,
            _ => Some(r.u32()?),
        };
        if !r.is_empty() {
            return Err(ClusterError::corrupt("trailing bytes after job spec"));
        }
        Ok(JobSpec {
            graph,
            scheme,
            parts,
            app,
            checkpoint_every,
        })
    }

    /// Materializes the graph from its source.
    pub fn load_graph(&self) -> Result<CsrGraph, ClusterError> {
        match &self.graph {
            GraphSource::File(path) => {
                if path.ends_with(".bpgr") {
                    io::load_binary(path)
                        .map_err(|e| ClusterError::unrecoverable(format!("{path}: {e}")))
                } else {
                    let file = File::open(path).map_err(|e| {
                        ClusterError::unrecoverable(format!("cannot open {path}: {e}"))
                    })?;
                    Ok(io::read_edge_list(file)
                        .map_err(|e| ClusterError::unrecoverable(format!("{path}: {e}")))?
                        .into_csr())
                }
            }
            GraphSource::Preset { name, scale, seed } => {
                let mut recipe = generate::ALL_PRESETS
                    .iter()
                    .map(|p| p())
                    .find(|p| p.name == *name)
                    .ok_or_else(|| {
                        ClusterError::unrecoverable(format!("unknown preset {name:?}"))
                    })?;
                if let Some(s) = seed {
                    recipe.seed = *s;
                }
                Ok(recipe.generate_scaled(*scale))
            }
            GraphSource::ErdosRenyi { n, m, seed } => {
                Ok(generate::erdos_renyi(*n as usize, *m as usize, *seed))
            }
        }
    }

    /// Resolves the partitioning scheme. All supported schemes are
    /// deterministic (sequential worker pool), so every process derives
    /// the identical partition.
    pub fn scheme(&self) -> Result<Box<dyn Partitioner>, ClusterError> {
        Ok(match self.scheme.as_str() {
            "chunk-v" => Box::new(ChunkV),
            "chunk-e" => Box::new(ChunkE),
            "hash" => Box::new(HashPartitioner::default()),
            "fennel" => Box::new(Fennel::default()),
            "ldg" => Box::new(Ldg::default()),
            "bpart" => Box::new(BPart::default()),
            "bpart-p1" => Box::new(bpart_core::bpart::WeightedStream::new(
                BPartConfig::default(),
            )),
            "multilevel" => Box::new(Multilevel::default()),
            "gd" => Box::new(GdPartitioner::default()),
            other => {
                return Err(ClusterError::unrecoverable(format!(
                    "unknown scheme {other:?}"
                )))
            }
        })
    }

    /// Builds the full cluster (graph + partition) this spec describes.
    pub fn build_cluster(&self) -> Result<Cluster, ClusterError> {
        let graph = Arc::new(self.load_graph()?);
        let partition = Arc::new(self.scheme()?.partition(&graph, self.parts as usize));
        Ok(Cluster::new(graph, partition))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<JobSpec> {
        vec![
            JobSpec {
                graph: GraphSource::File("g.bpgr".into()),
                scheme: "hash".into(),
                parts: 4,
                app: AppSpec::PageRank { iters: 10 },
                checkpoint_every: Some(2),
            },
            JobSpec {
                graph: GraphSource::Preset {
                    name: "twitter_like".into(),
                    scale: 0.01,
                    seed: Some(7),
                },
                scheme: "bpart-p1".into(),
                parts: 8,
                app: AppSpec::ConnectedComponents,
                checkpoint_every: None,
            },
            JobSpec {
                graph: GraphSource::ErdosRenyi {
                    n: 100,
                    m: 500,
                    seed: 3,
                },
                scheme: "chunk-v".into(),
                parts: 3,
                app: AppSpec::DeepWalk {
                    walk_len: 5,
                    seed: 11,
                    per_vertex: 2,
                },
                checkpoint_every: Some(1),
            },
        ]
    }

    #[test]
    fn specs_round_trip() {
        for spec in specs() {
            let bytes = spec.encode();
            assert_eq!(JobSpec::decode(&bytes).unwrap(), spec);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(JobSpec::decode(&[]).is_err());
        assert!(JobSpec::decode(&[9, 0, 0]).is_err());
        let mut bytes = specs()[0].encode();
        bytes.push(0xff); // trailing junk
        assert!(JobSpec::decode(&bytes).is_err());
    }

    #[test]
    fn build_cluster_is_deterministic() {
        let spec = JobSpec {
            graph: GraphSource::ErdosRenyi {
                n: 60,
                m: 240,
                seed: 5,
            },
            scheme: "fennel".into(),
            parts: 3,
            app: AppSpec::ConnectedComponents,
            checkpoint_every: None,
        };
        let a = spec.build_cluster().unwrap();
        let b = spec.build_cluster().unwrap();
        assert_eq!(a.partition().assignment(), b.partition().assignment());
    }
}
