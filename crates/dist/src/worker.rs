//! The supervised worker loop: one OS process playing one BSP machine.
//!
//! A worker is a frame-driven state machine. It connects to the driver
//! (with backoff), rebuilds its share of the job from the spec, then
//! reacts to driver frames: `StepBegin` runs the local compute phase and
//! ships outgoing rows, `Inbox` completes the superstep, `Restore` rolls
//! state back (or re-initializes) under a new epoch, `Finish` ships the
//! local result, `Shutdown` exits. A dedicated thread heartbeats the
//! whole time, so the driver can tell "dead" from "busy".
//!
//! Frames whose epoch is older than the worker's current epoch are
//! silently discarded — they were sent before a recovery the worker has
//! already joined.

use crate::error::ClusterError;
use crate::proto::{DriverMsg, RowSeg, WorkerMsg};
use crate::spec::{AppSpec, JobSpec};
use crate::step::{IterWorker, WalkWorker};
use crate::transport::{
    connect_with_backoff, read_frame_blocking, Backoff, HeartbeatPump, SharedWriter,
};
use bpart_engine::apps::{ConnectedComponents, PageRank};
use bpart_walker::apps::{DeepWalk, SimpleRandomWalk};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Worker process configuration (parsed from the command line).
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Driver address (`host:port`).
    pub connect: String,
    /// Which BSP machine this process plays.
    pub worker_id: u32,
    /// Join key handed out by the driver.
    pub key: u64,
    /// Heartbeat interval.
    pub heartbeat: Duration,
}

/// The app-specific half of the worker, dispatched once at `Job` time.
enum WorkerApp {
    PageRank(IterWorker<PageRank>),
    Cc(IterWorker<ConnectedComponents>),
    Walk {
        worker: WalkWorker,
        /// Steps executed in the superstep currently in flight.
        steps: u64,
    },
}

impl WorkerApp {
    fn build(spec: &JobSpec, machine: usize) -> Result<WorkerApp, ClusterError> {
        let cluster = spec.build_cluster()?;
        Ok(match &spec.app {
            AppSpec::PageRank { iters } => {
                WorkerApp::PageRank(IterWorker::new(PageRank::new(*iters), cluster, machine))
            }
            AppSpec::ConnectedComponents => {
                WorkerApp::Cc(IterWorker::new(ConnectedComponents, cluster, machine))
            }
            AppSpec::DeepWalk {
                walk_len,
                seed,
                per_vertex,
            } => WorkerApp::Walk {
                worker: WalkWorker::new(
                    Box::new(DeepWalk::new(*walk_len)),
                    cluster,
                    machine,
                    *seed,
                    *per_vertex,
                ),
                steps: 0,
            },
            AppSpec::SimpleWalk {
                walk_len,
                seed,
                per_vertex,
            } => WorkerApp::Walk {
                worker: WalkWorker::new(
                    Box::new(SimpleRandomWalk::new(*walk_len)),
                    cluster,
                    machine,
                    *seed,
                    *per_vertex,
                ),
                steps: 0,
            },
        })
    }

    /// The `Ready` aggregate: iteration apps report their local
    /// aggregate sum, walk apps their queued-walker count.
    fn ready_agg(&self) -> f64 {
        match self {
            WorkerApp::PageRank(w) => w.local_aggregate(),
            WorkerApp::Cc(w) => w.local_aggregate(),
            WorkerApp::Walk { worker, .. } => worker.queue_len() as f64,
        }
    }

    /// Local compute phase: scatter (iteration) or one walker step each
    /// (walks). Returns the outgoing rows, self slot empty.
    fn begin(&mut self) -> Vec<RowSeg> {
        match self {
            WorkerApp::PageRank(w) => w.scatter(),
            WorkerApp::Cc(w) => w.scatter(),
            WorkerApp::Walk { worker, steps } => {
                let (n, rows) = worker.step();
                *steps = n;
                rows
            }
        }
    }

    /// Completes the superstep with the driver's inbox. Returns
    /// `(active, agg)` for `StepDone`: iteration apps report
    /// votes-to-continue and next-superstep aggregate; walk apps report
    /// their new queue length and the steps just executed.
    fn finish(
        &mut self,
        inbox: &[RowSeg],
        superstep: u64,
        aggregate: f64,
    ) -> Result<(u64, f64), ClusterError> {
        match self {
            WorkerApp::PageRank(w) => {
                let any = w.apply(inbox, superstep, aggregate)?;
                Ok((any as u64, w.local_aggregate()))
            }
            WorkerApp::Cc(w) => {
                let any = w.apply(inbox, superstep, aggregate)?;
                Ok((any as u64, w.local_aggregate()))
            }
            WorkerApp::Walk { worker, steps } => {
                worker.absorb(inbox)?;
                Ok((worker.queue_len() as u64, *steps as f64))
            }
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        match self {
            WorkerApp::PageRank(w) => w.snapshot(),
            WorkerApp::Cc(w) => w.snapshot(),
            WorkerApp::Walk { worker, .. } => worker.snapshot(),
        }
    }

    fn restore(&mut self, state: Option<&[u8]>) -> Result<(), ClusterError> {
        match self {
            WorkerApp::PageRank(w) => w.restore(state),
            WorkerApp::Cc(w) => w.restore(state),
            WorkerApp::Walk { worker, steps } => {
                *steps = 0;
                worker.restore(state)
            }
        }
    }

    fn final_result(&self) -> Vec<u8> {
        match self {
            WorkerApp::PageRank(w) => w.final_result(),
            WorkerApp::Cc(w) => w.final_result(),
            WorkerApp::Walk { worker, .. } => worker.final_result(),
        }
    }
}

/// Runs the worker protocol loop to completion (a clean `Shutdown`) or a
/// terminal error.
pub fn run_worker(cfg: WorkerConfig) -> Result<(), ClusterError> {
    let stream = connect_with_backoff(
        &cfg.connect,
        10,
        Backoff {
            base: Duration::from_millis(50),
            max: Duration::from_secs(2),
            seed: cfg.worker_id as u64 + 1,
        },
        |_| {},
    )?;
    let mut reader = stream
        .try_clone()
        .map_err(|e| ClusterError::from_io("clone stream", &e))?;
    let writer = SharedWriter::new(stream);

    let send = |msg: &WorkerMsg| {
        let (kind, payload) = msg.to_frame();
        writer.send(kind, &payload)
    };
    send(&WorkerMsg::Join {
        worker_id: cfg.worker_id,
        key: cfg.key,
    })?;

    let epoch = Arc::new(AtomicU32::new(0));
    let _pump = HeartbeatPump::start(writer.clone(), Arc::clone(&epoch), cfg.heartbeat);

    // The job spec arrives first; everything local is rebuilt from it.
    let frame = read_frame_blocking(&mut reader)?;
    let DriverMsg::Job { spec, machine } = DriverMsg::from_frame(&frame)? else {
        return Err(ClusterError::corrupt("expected Job as the first frame"));
    };
    let mut app = WorkerApp::build(&spec, machine as usize)?;
    send(&WorkerMsg::Ready {
        epoch: epoch.load(Ordering::Relaxed),
        agg: app.ready_agg(),
    })?;

    // `(superstep, aggregate, checkpoint)` of the phase in flight —
    // populated by StepBegin, consumed by the matching Inbox.
    let mut pending: Option<(u64, f64, bool)> = None;

    loop {
        let frame = read_frame_blocking(&mut reader)?;
        let current = epoch.load(Ordering::Relaxed);
        match DriverMsg::from_frame(&frame)? {
            DriverMsg::StepBegin {
                epoch: e,
                superstep,
                agg,
                checkpoint,
            } => {
                if e != current {
                    continue; // stale: sent before a recovery we joined
                }
                let rows = app.begin();
                pending = Some((superstep, agg, checkpoint));
                send(&WorkerMsg::StepData {
                    epoch: e,
                    superstep,
                    rows,
                })?;
            }
            DriverMsg::Inbox {
                epoch: e,
                superstep,
                rows,
            } => {
                if e != current {
                    continue;
                }
                let Some((s, agg, checkpoint)) = pending.take() else {
                    return Err(ClusterError::corrupt("Inbox without StepBegin"));
                };
                if s != superstep {
                    return Err(ClusterError::corrupt(format!(
                        "Inbox superstep {superstep} does not match StepBegin {s}"
                    )));
                }
                let (active, agg_out) = app.finish(&rows, superstep, agg)?;
                let snapshot = checkpoint.then(|| app.snapshot());
                send(&WorkerMsg::StepDone {
                    epoch: e,
                    superstep,
                    active,
                    agg: agg_out,
                    snapshot,
                })?;
            }
            DriverMsg::Restore {
                epoch: e,
                superstep: _,
                state,
            } => {
                // Recovery: adopt the new epoch unconditionally and
                // discard any half-finished superstep.
                pending = None;
                app.restore(state.as_deref())?;
                epoch.store(e, Ordering::Relaxed);
                send(&WorkerMsg::Ready {
                    epoch: e,
                    agg: app.ready_agg(),
                })?;
            }
            DriverMsg::Finish { epoch: e } => {
                if e != current {
                    continue;
                }
                send(&WorkerMsg::Final {
                    epoch: e,
                    result: app.final_result(),
                })?;
            }
            DriverMsg::Shutdown => return Ok(()),
            DriverMsg::Job { .. } => {
                return Err(ClusterError::corrupt("unexpected second Job frame"));
            }
        }
    }
}
