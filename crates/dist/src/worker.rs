//! The supervised worker loop: one OS process playing one BSP machine.
//!
//! A worker is a frame-driven state machine. It connects to the driver
//! (with backoff), rebuilds its share of the job from the spec, then
//! reacts to driver frames: `StepBegin` runs the local compute phase and
//! ships outgoing rows, `Inbox` completes the superstep, `Restore` rolls
//! state back (or re-initializes) under a new epoch, `Finish` ships the
//! local result, `Shutdown` exits. A dedicated thread heartbeats the
//! whole time, so the driver can tell "dead" from "busy".
//!
//! Frames whose epoch is older than the worker's current epoch are
//! silently discarded — they were sent before a recovery the worker has
//! already joined.

use crate::error::ClusterError;
use crate::proto::{DriverMsg, RowSeg, WorkerMsg};
use crate::spec::{AppSpec, JobSpec};
use crate::step::{IterWorker, WalkWorker};
use crate::transport::{
    connect_with_backoff, read_frame_blocking, Backoff, HeartbeatPump, SharedWriter,
};
use bpart_engine::apps::{ConnectedComponents, PageRank};
use bpart_obs::{federation, tracer};
use bpart_walker::apps::{DeepWalk, SimpleRandomWalk};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How often the background flush ships an `ObsReport` outside the
/// superstep cadence. Low-rate by design: its job is to leave a final
/// snapshot behind if the worker is SIGKILLed mid-superstep, not to
/// stream metrics.
const OBS_FLUSH_INTERVAL: Duration = Duration::from_millis(200);

/// Worker process configuration (parsed from the command line).
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Driver address (`host:port`).
    pub connect: String,
    /// Which BSP machine this process plays.
    pub worker_id: u32,
    /// Join key handed out by the driver.
    pub key: u64,
    /// Heartbeat interval.
    pub heartbeat: Duration,
}

/// The app-specific half of the worker, dispatched once at `Job` time.
enum WorkerApp {
    PageRank(IterWorker<PageRank>),
    Cc(IterWorker<ConnectedComponents>),
    Walk {
        worker: WalkWorker,
        /// Steps executed in the superstep currently in flight.
        steps: u64,
    },
}

impl WorkerApp {
    fn build(spec: &JobSpec, machine: usize) -> Result<WorkerApp, ClusterError> {
        let cluster = spec.build_cluster()?;
        Ok(match &spec.app {
            AppSpec::PageRank { iters } => {
                WorkerApp::PageRank(IterWorker::new(PageRank::new(*iters), cluster, machine))
            }
            AppSpec::ConnectedComponents => {
                WorkerApp::Cc(IterWorker::new(ConnectedComponents, cluster, machine))
            }
            AppSpec::DeepWalk {
                walk_len,
                seed,
                per_vertex,
            } => WorkerApp::Walk {
                worker: WalkWorker::new(
                    Box::new(DeepWalk::new(*walk_len)),
                    cluster,
                    machine,
                    *seed,
                    *per_vertex,
                ),
                steps: 0,
            },
            AppSpec::SimpleWalk {
                walk_len,
                seed,
                per_vertex,
            } => WorkerApp::Walk {
                worker: WalkWorker::new(
                    Box::new(SimpleRandomWalk::new(*walk_len)),
                    cluster,
                    machine,
                    *seed,
                    *per_vertex,
                ),
                steps: 0,
            },
        })
    }

    /// The `Ready` aggregate: iteration apps report their local
    /// aggregate sum, walk apps their queued-walker count.
    fn ready_agg(&self) -> f64 {
        match self {
            WorkerApp::PageRank(w) => w.local_aggregate(),
            WorkerApp::Cc(w) => w.local_aggregate(),
            WorkerApp::Walk { worker, .. } => worker.queue_len() as f64,
        }
    }

    /// Local compute phase: scatter (iteration) or one walker step each
    /// (walks). Returns the outgoing rows, self slot empty.
    fn begin(&mut self) -> Vec<RowSeg> {
        match self {
            WorkerApp::PageRank(w) => w.scatter(),
            WorkerApp::Cc(w) => w.scatter(),
            WorkerApp::Walk { worker, steps } => {
                let (n, rows) = worker.step();
                *steps = n;
                rows
            }
        }
    }

    /// Completes the superstep with the driver's inbox. Returns
    /// `(active, agg)` for `StepDone`: iteration apps report
    /// votes-to-continue and next-superstep aggregate; walk apps report
    /// their new queue length and the steps just executed.
    fn finish(
        &mut self,
        inbox: &[RowSeg],
        superstep: u64,
        aggregate: f64,
    ) -> Result<(u64, f64), ClusterError> {
        match self {
            WorkerApp::PageRank(w) => {
                let any = w.apply(inbox, superstep, aggregate)?;
                Ok((any as u64, w.local_aggregate()))
            }
            WorkerApp::Cc(w) => {
                let any = w.apply(inbox, superstep, aggregate)?;
                Ok((any as u64, w.local_aggregate()))
            }
            WorkerApp::Walk { worker, steps } => {
                worker.absorb(inbox)?;
                Ok((worker.queue_len() as u64, *steps as f64))
            }
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        match self {
            WorkerApp::PageRank(w) => w.snapshot(),
            WorkerApp::Cc(w) => w.snapshot(),
            WorkerApp::Walk { worker, .. } => worker.snapshot(),
        }
    }

    fn restore(&mut self, state: Option<&[u8]>) -> Result<(), ClusterError> {
        match self {
            WorkerApp::PageRank(w) => w.restore(state),
            WorkerApp::Cc(w) => w.restore(state),
            WorkerApp::Walk { worker, steps } => {
                *steps = 0;
                worker.restore(state)
            }
        }
    }

    fn final_result(&self) -> Vec<u8> {
        match self {
            WorkerApp::PageRank(w) => w.final_result(),
            WorkerApp::Cc(w) => w.final_result(),
            WorkerApp::Walk { worker, .. } => worker.final_result(),
        }
    }
}

/// Report position shared between the protocol loop and the flush
/// thread: the next sequence number and the span-ring watermark (spans
/// already shipped).
#[derive(Debug, Default)]
struct ObsPosition {
    seq: u64,
    span_watermark: u64,
}

/// Builds one `ObsReport` from the current registry/ring state,
/// advancing the shared position. `step` is
/// `(superstep, compute_ns, comm_ns)`; `echo` is
/// `(driver sent_ns, worker recv_ns)` from the last observed
/// `StepBegin` (zeros = no clock sample).
fn build_obs_report(
    position: &Mutex<ObsPosition>,
    epoch: u32,
    step: Option<(u64, u64, u64)>,
    echo: (u64, u64),
) -> WorkerMsg {
    let mut pos = position.lock().unwrap_or_else(|e| e.into_inner());
    pos.seq += 1;
    let metrics = federation::MetricsSnapshot::capture().to_bytes();
    let spans = federation::encode_span_delta(&mut pos.span_watermark);
    let profile = bpart_obs::profile::render_folded().into_bytes();
    let (superstep, compute_ns, comm_ns) = step.unwrap_or((0, 0, 0));
    WorkerMsg::ObsReport {
        epoch,
        seq: pos.seq,
        superstep,
        has_step: step.is_some(),
        compute_ns,
        comm_ns,
        echo_ns: echo.0,
        recv_ns: echo.1,
        send_ns: tracer::now_ns(),
        metrics,
        spans,
        profile,
    }
}

/// Background obs flush: ships a timer-driven `ObsReport` while
/// collection is enabled, so a worker that later gets SIGKILLed still
/// left its last snapshot on the driver. Modeled on [`HeartbeatPump`];
/// stops (and joins) on drop.
struct ObsFlushPump {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl ObsFlushPump {
    fn start(
        writer: SharedWriter,
        epoch: Arc<AtomicU32>,
        enabled: Arc<AtomicBool>,
        position: Arc<Mutex<ObsPosition>>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("obs-flush".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    thread::sleep(OBS_FLUSH_INTERVAL);
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    if !enabled.load(Ordering::Relaxed) {
                        continue;
                    }
                    let msg =
                        build_obs_report(&position, epoch.load(Ordering::Relaxed), None, (0, 0));
                    let (kind, payload) = msg.to_frame();
                    if writer.send(kind, &payload).is_err() {
                        break; // driver gone; protocol loop will see it too
                    }
                }
            })
            .expect("spawn obs-flush thread");
        ObsFlushPump {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for ObsFlushPump {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

/// A superstep in flight on the worker: protocol state from `StepBegin`
/// plus the obs measurements the matching `Inbox` completes.
struct PendingStep {
    superstep: u64,
    agg: f64,
    checkpoint: bool,
    /// Compute-phase nanoseconds spent in `begin()` (the rest is added
    /// by `finish()` at Inbox time).
    compute_ns: u64,
    /// When the `StepData` send completed — the exchange wait starts
    /// here and ends when the `Inbox` arrives.
    sent_at: Instant,
    /// `(driver sent_ns, worker recv_ns)` clock echo for this step.
    echo: (u64, u64),
}

/// Runs the worker protocol loop to completion (a clean `Shutdown`) or a
/// terminal error.
pub fn run_worker(cfg: WorkerConfig) -> Result<(), ClusterError> {
    let stream = connect_with_backoff(
        &cfg.connect,
        10,
        Backoff {
            base: Duration::from_millis(50),
            max: Duration::from_secs(2),
            seed: cfg.worker_id as u64 + 1,
        },
        |_| {},
    )?;
    let mut reader = stream
        .try_clone()
        .map_err(|e| ClusterError::from_io("clone stream", &e))?;
    let writer = SharedWriter::new(stream);

    let send = |msg: &WorkerMsg| {
        let (kind, payload) = msg.to_frame();
        writer.send(kind, &payload)
    };
    send(&WorkerMsg::Join {
        worker_id: cfg.worker_id,
        key: cfg.key,
    })?;

    let epoch = Arc::new(AtomicU32::new(0));
    let _pump = HeartbeatPump::start(writer.clone(), Arc::clone(&epoch), cfg.heartbeat);

    // Obs federation state: armed by the first `StepBegin` carrying
    // `obs: true` (the driver's collection flag propagates here), off
    // otherwise so no-obs runs ship nothing.
    let obs_enabled = Arc::new(AtomicBool::new(false));
    let obs_position = Arc::new(Mutex::new(ObsPosition::default()));
    let _obs_pump = ObsFlushPump::start(
        writer.clone(),
        Arc::clone(&epoch),
        Arc::clone(&obs_enabled),
        Arc::clone(&obs_position),
    );

    // The job spec arrives first; everything local is rebuilt from it.
    let frame = read_frame_blocking(&mut reader)?;
    let DriverMsg::Job { spec, machine } = DriverMsg::from_frame(&frame)? else {
        return Err(ClusterError::corrupt("expected Job as the first frame"));
    };
    let mut app = WorkerApp::build(&spec, machine as usize)?;
    send(&WorkerMsg::Ready {
        epoch: epoch.load(Ordering::Relaxed),
        agg: app.ready_agg(),
    })?;

    // The superstep phase in flight — populated by StepBegin, consumed
    // by the matching Inbox (protocol state plus obs timings).
    let mut pending: Option<PendingStep> = None;
    // The `worker.superstep` span open for the pending step. Held
    // separately so dropping it (closing the span) is explicit before
    // the span delta is encoded.
    let mut step_span: Option<tracer::SpanGuard> = None;

    loop {
        let frame = read_frame_blocking(&mut reader)?;
        let current = epoch.load(Ordering::Relaxed);
        match DriverMsg::from_frame(&frame)? {
            DriverMsg::StepBegin {
                epoch: e,
                superstep,
                agg,
                checkpoint,
                sent_ns,
                obs,
            } => {
                if e != current {
                    continue; // stale: sent before a recovery we joined
                }
                let recv_ns = tracer::now_ns();
                if obs && !obs_enabled.load(Ordering::Relaxed) {
                    // Driver runs with obs on: arm local collection so
                    // snapshots and span deltas have content to ship.
                    bpart_obs::set_trace_enabled(true);
                    bpart_obs::profile::set_profile_enabled(true);
                    bpart_obs::profile::start_sampler(bpart_obs::profile::DEFAULT_SAMPLE_INTERVAL);
                    if std::env::var("BPART_TAIL_SAMPLE").as_deref() == Ok("1") {
                        bpart_obs::sampling::set_tail_sampling_enabled(true);
                    }
                    obs_enabled.store(true, Ordering::Relaxed);
                }
                let mut span = obs.then(|| {
                    let mut g = tracer::span("worker.superstep");
                    g.attr("superstep", superstep.to_string());
                    g.attr("epoch", e.to_string());
                    g
                });
                let compute_started = Instant::now();
                let rows = app.begin();
                let compute_ns = compute_started.elapsed().as_nanos() as u64;
                send(&WorkerMsg::StepData {
                    epoch: e,
                    superstep,
                    rows,
                })?;
                if let Some(g) = &mut span {
                    g.attr("compute_ns", compute_ns.to_string());
                }
                step_span = span;
                pending = Some(PendingStep {
                    superstep,
                    agg,
                    checkpoint,
                    compute_ns,
                    sent_at: Instant::now(),
                    echo: (sent_ns, recv_ns),
                });
            }
            DriverMsg::Inbox {
                epoch: e,
                superstep,
                rows,
            } => {
                if e != current {
                    continue;
                }
                let Some(step) = pending.take() else {
                    return Err(ClusterError::corrupt("Inbox without StepBegin"));
                };
                if step.superstep != superstep {
                    return Err(ClusterError::corrupt(format!(
                        "Inbox superstep {superstep} does not match StepBegin {}",
                        step.superstep
                    )));
                }
                // Exchange wait: from StepData leaving to the inbox
                // arriving (driver-side shuffle + peer stragglers).
                let comm_ns = step.sent_at.elapsed().as_nanos() as u64;
                let finish_started = Instant::now();
                let (active, agg_out) = app.finish(&rows, superstep, step.agg)?;
                let compute_ns = step.compute_ns + finish_started.elapsed().as_nanos() as u64;
                let snapshot = step.checkpoint.then(|| app.snapshot());
                if obs_enabled.load(Ordering::Relaxed) {
                    if let Some(g) = &mut step_span {
                        g.attr("comm_ns", comm_ns.to_string());
                    }
                    // Close the span first so this step's own span is
                    // inside the delta shipped with its report.
                    step_span = None;
                    let report = build_obs_report(
                        &obs_position,
                        e,
                        Some((superstep, compute_ns, comm_ns)),
                        step.echo,
                    );
                    // Before StepDone on the same connection, so the
                    // driver absorbs the timings before the barrier
                    // completes and can stamp the superstep span.
                    send(&report)?;
                }
                send(&WorkerMsg::StepDone {
                    epoch: e,
                    superstep,
                    active,
                    agg: agg_out,
                    snapshot,
                })?;
            }
            DriverMsg::Restore {
                epoch: e,
                superstep: _,
                state,
            } => {
                // Recovery: adopt the new epoch unconditionally and
                // discard any half-finished superstep.
                pending = None;
                step_span = None;
                app.restore(state.as_deref())?;
                epoch.store(e, Ordering::Relaxed);
                send(&WorkerMsg::Ready {
                    epoch: e,
                    agg: app.ready_agg(),
                })?;
            }
            DriverMsg::Finish { epoch: e } => {
                if e != current {
                    continue;
                }
                send(&WorkerMsg::Final {
                    epoch: e,
                    result: app.final_result(),
                })?;
            }
            DriverMsg::Shutdown => return Ok(()),
            DriverMsg::Job { .. } => {
                return Err(ClusterError::corrupt("unexpected second Job frame"));
            }
        }
    }
}
