//! Worker-local BSP step logic.
//!
//! These state machines replicate the in-process engines' combine order
//! *exactly* — same dense accumulator, same `touched.sort_unstable()`
//! before draining, same sender-order inbox concatenation, same apply
//! order — which is what makes the process backend bit-identical to the
//! threaded oracle. Any deviation in floating-point evaluation order
//! here shows up as a digest mismatch in the cross-backend tests.

use crate::error::ClusterError;
use crate::proto::RowSeg;
use crate::wire::{decode_all, encode_all, put_u32, put_u64, Reader, Wire};
use bpart_cluster::Cluster;
use bpart_engine::{ProgramContext, VertexProgram};
use bpart_graph::VertexId;
use bpart_walker::{WalkApp, Walker};

/// One machine's share of an iteration-engine computation
/// (PageRank-style vertex programs).
pub struct IterWorker<P: VertexProgram> {
    program: P,
    cluster: Cluster,
    machine: usize,
    /// Global -> owner-local index (valid for this machine's vertices).
    local_of: Vec<u32>,
    values: Vec<P::Value>,
    active: Vec<bool>,
    /// Dense per-target accumulator, indexed by global id (scratch).
    acc: Vec<Option<P::Accum>>,
    touched: Vec<VertexId>,
    /// Self-addressed messages from the last scatter, applied after the
    /// exchanged inbox (mirroring the engine's local-row append).
    local_row: Vec<(VertexId, P::Accum)>,
}

impl<P: VertexProgram> IterWorker<P>
where
    P::Value: Wire,
    P::Accum: Wire,
{
    /// Fresh worker for `machine`, initialized from the program's
    /// deterministic initial state.
    pub fn new(program: P, cluster: Cluster, machine: usize) -> Self {
        let n = cluster.graph().num_vertices();
        let mut local_of = vec![0u32; n];
        for (li, &v) in cluster.local_vertices(machine as u32).iter().enumerate() {
            local_of[v as usize] = li as u32;
        }
        let mut worker = IterWorker {
            program,
            cluster,
            machine,
            local_of,
            values: Vec::new(),
            active: Vec::new(),
            acc: vec![None; n],
            touched: Vec::new(),
            local_row: Vec::new(),
        };
        worker.reinit();
        worker
    }

    fn reinit(&mut self) {
        let graph = self.cluster.graph();
        let members = self.cluster.local_vertices(self.machine as u32);
        self.values = members
            .iter()
            .map(|&v| self.program.init(v, graph))
            .collect();
        self.active = members
            .iter()
            .map(|&v| self.program.initially_active(v, graph))
            .collect();
    }

    /// Clears scatter scratch a partially executed superstep may have
    /// left behind (engine `rollback` semantics).
    fn clear_scratch(&mut self) {
        for &v in &self.touched {
            self.acc[v as usize] = None;
        }
        self.touched.clear();
        self.local_row.clear();
    }

    /// This machine's contribution to the global aggregate, summed in
    /// member order (engine order).
    pub fn local_aggregate(&self) -> f64 {
        let graph = self.cluster.graph();
        self.cluster
            .local_vertices(self.machine as u32)
            .iter()
            .zip(&self.values)
            .map(|(&v, val)| self.program.aggregate(v, val, graph))
            .sum::<f64>()
    }

    /// Scatter phase: produces one encoded row per destination machine.
    /// The self row is retained internally (it never crosses the wire)
    /// and its slot in the result is an empty segment.
    pub fn scatter(&mut self) -> Vec<RowSeg> {
        let graph = self.cluster.graph();
        let k = self.cluster.num_machines();
        let m = self.machine as u32;
        let members = self.cluster.local_vertices(m);
        for (li, &u) in members.iter().enumerate() {
            if !self.active[li] {
                continue;
            }
            let Some(signal) = self.program.scatter(u, &self.values[li], graph) else {
                continue;
            };
            for &v in graph.out_neighbors(u) {
                accumulate(
                    &self.program,
                    &mut self.acc,
                    &mut self.touched,
                    v,
                    signal.clone(),
                );
            }
            if self.program.use_in_edges() {
                for &v in graph.in_neighbors(u) {
                    accumulate(
                        &self.program,
                        &mut self.acc,
                        &mut self.touched,
                        v,
                        signal.clone(),
                    );
                }
            }
        }
        // Drain in sorted-target order — the engine's arena staging order.
        self.touched.sort_unstable();
        let mut rows: Vec<Vec<(VertexId, P::Accum)>> = (0..k).map(|_| Vec::new()).collect();
        for &v in &self.touched {
            let acc = self.acc[v as usize]
                .take()
                .expect("touched implies accumulated");
            rows[self.cluster.owner(v) as usize].push((v, acc));
        }
        self.touched.clear();
        self.local_row = std::mem::take(&mut rows[self.machine]);
        rows.into_iter().map(|row| encode_row(&row)).collect()
    }

    /// Exchange + apply: folds the driver's inbox (sender-order segments,
    /// own slot empty) plus the retained self row, then applies. Returns
    /// whether any local vertex stays active.
    pub fn apply(
        &mut self,
        inbox: &[RowSeg],
        superstep: u64,
        aggregate: f64,
    ) -> Result<bool, ClusterError> {
        for seg in inbox {
            for (v, a) in decode_row::<P::Accum>(seg)? {
                accumulate(&self.program, &mut self.acc, &mut self.touched, v, a);
            }
        }
        for (v, a) in std::mem::take(&mut self.local_row) {
            accumulate(&self.program, &mut self.acc, &mut self.touched, v, a);
        }
        let graph = self.cluster.graph();
        let ctx = ProgramContext {
            iteration: superstep as usize,
            num_vertices: graph.num_vertices(),
            aggregate,
        };
        let members = self.cluster.local_vertices(self.machine as u32);
        let mut any = false;
        if self.program.apply_to_all() {
            for (li, &v) in members.iter().enumerate() {
                let incoming = self.acc[v as usize].take();
                let active = self
                    .program
                    .apply(v, &mut self.values[li], incoming, &ctx, graph);
                self.active[li] = active;
                any |= active;
            }
            self.touched.clear();
        } else {
            self.active.iter_mut().for_each(|a| *a = false);
            self.touched.sort_unstable();
            for ti in 0..self.touched.len() {
                let v = self.touched[ti];
                let li = self.local_of[v as usize] as usize;
                let incoming = self.acc[v as usize].take();
                let active = self
                    .program
                    .apply(v, &mut self.values[li], incoming, &ctx, graph);
                self.active[li] = active;
                any |= active;
            }
            self.touched.clear();
        }
        Ok(any)
    }

    /// Serializes `(values, active)` for a driver-held checkpoint.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.values.len() as u32);
        encode_all(&self.values, &mut out);
        for &a in &self.active {
            out.push(a as u8);
        }
        out
    }

    /// Restores from a snapshot (`None`: the deterministic initial
    /// state), dropping any partial-superstep scratch.
    pub fn restore(&mut self, state: Option<&[u8]>) -> Result<(), ClusterError> {
        self.clear_scratch();
        match state {
            None => self.reinit(),
            Some(bytes) => {
                let mut r = Reader::new(bytes);
                let len = r.u32()? as usize;
                if len != self.cluster.local_vertices(self.machine as u32).len() {
                    return Err(ClusterError::corrupt("snapshot length mismatch"));
                }
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(P::Value::decode(&mut r)?);
                }
                let mut active = Vec::with_capacity(len);
                for _ in 0..len {
                    active.push(r.u8()? != 0);
                }
                if !r.is_empty() {
                    return Err(ClusterError::corrupt("trailing bytes in snapshot"));
                }
                self.values = values;
                self.active = active;
            }
        }
        Ok(())
    }

    /// Final local values (owner-local order) for the `Final` frame.
    pub fn final_result(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_all(&self.values, &mut out);
        out
    }
}

/// Engine `accumulate`: fold into the dense slot, recording first touch.
#[inline]
fn accumulate<P: VertexProgram>(
    program: &P,
    acc: &mut [Option<P::Accum>],
    touched: &mut Vec<VertexId>,
    v: VertexId,
    a: P::Accum,
) {
    match &mut acc[v as usize] {
        Some(existing) => program.combine(existing, a),
        slot @ None => {
            *slot = Some(a);
            touched.push(v);
        }
    }
}

fn encode_row<T: Wire>(row: &[(VertexId, T)]) -> RowSeg
where
    (VertexId, T): Wire,
{
    let mut data = Vec::new();
    encode_all(row, &mut data);
    RowSeg {
        count: row.len() as u32,
        data,
    }
}

fn decode_row<T: Wire>(seg: &RowSeg) -> Result<Vec<(VertexId, T)>, ClusterError>
where
    (VertexId, T): Wire,
{
    let items: Vec<(VertexId, T)> = decode_all(&seg.data)?;
    if items.len() != seg.count as usize {
        return Err(ClusterError::corrupt(format!(
            "row segment count {} does not match payload ({})",
            seg.count,
            items.len()
        )));
    }
    Ok(items)
}

/// One machine's share of a walk-engine computation.
pub struct WalkWorker {
    app: Box<dyn WalkApp>,
    cluster: Cluster,
    machine: usize,
    queue: Vec<Walker>,
    path_log: Vec<(u64, u32, VertexId)>,
    kept: Vec<Walker>,
    seed: u64,
    per_vertex: u32,
}

impl WalkWorker {
    /// Fresh worker: seeds the walkers this machine owns, in global
    /// walker-id order (engine seeding order).
    pub fn new(
        app: Box<dyn WalkApp>,
        cluster: Cluster,
        machine: usize,
        seed: u64,
        per_vertex: u32,
    ) -> Self {
        let mut worker = WalkWorker {
            app,
            cluster,
            machine,
            queue: Vec::new(),
            path_log: Vec::new(),
            kept: Vec::new(),
            seed,
            per_vertex,
        };
        worker.reinit();
        worker
    }

    fn reinit(&mut self) {
        self.queue.clear();
        self.path_log.clear();
        let graph = self.cluster.graph();
        let n = graph.num_vertices() as u64;
        for copy in 0..self.per_vertex as u64 {
            for v in graph.vertices() {
                if self.cluster.owner(v) as usize != self.machine {
                    continue;
                }
                let id = copy * n + v as u64;
                let walker = Walker::new(id, v, self.seed);
                self.path_log.push((id, 0, v));
                self.queue.push(walker);
            }
        }
    }

    /// Walkers waiting locally (the worker's `active` signal).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// One synchronous step of every queued walker. Returns the number of
    /// steps executed plus the encoded migration rows (self slot empty —
    /// surviving local walkers go straight back on the queue).
    pub fn step(&mut self) -> (u64, Vec<RowSeg>) {
        let k = self.cluster.num_machines();
        let m = self.machine as u32;
        let max_steps = self.app.walk_length();
        let mut rows: Vec<Vec<Walker>> = (0..k).map(|_| Vec::new()).collect();
        let mut steps = 0u64;
        let graph = self.cluster.graph();
        for mut walker in self.queue.drain(..) {
            let next = self.app.next(&mut walker, graph);
            steps += 1;
            let Some(next) = next else {
                continue;
            };
            walker.advance(next);
            self.path_log.push((walker.id, walker.step, next));
            if walker.step >= max_steps {
                continue;
            }
            let dest = self.cluster.owner(next);
            if dest == m {
                self.kept.push(walker);
            } else {
                rows[dest as usize].push(walker);
            }
        }
        std::mem::swap(&mut self.queue, &mut self.kept);
        let rows = rows
            .into_iter()
            .map(|row| {
                let mut data = Vec::new();
                encode_all(&row, &mut data);
                RowSeg {
                    count: row.len() as u32,
                    data,
                }
            })
            .collect();
        (steps, rows)
    }

    /// Appends exchanged walkers (sender-order segments) to the queue.
    pub fn absorb(&mut self, inbox: &[RowSeg]) -> Result<(), ClusterError> {
        for seg in inbox {
            let walkers: Vec<Walker> = decode_all(&seg.data)?;
            if walkers.len() != seg.count as usize {
                return Err(ClusterError::corrupt("walker segment count mismatch"));
            }
            self.queue.extend(walkers);
        }
        Ok(())
    }

    /// Serializes `(queue, path_log)` for a driver-held checkpoint.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.queue.len() as u32);
        encode_all(&self.queue, &mut out);
        put_u64(&mut out, self.path_log.len() as u64);
        encode_all(&self.path_log, &mut out);
        out
    }

    /// Restores from a snapshot (`None`: re-seed from the starts),
    /// dropping any partial-superstep scratch.
    pub fn restore(&mut self, state: Option<&[u8]>) -> Result<(), ClusterError> {
        self.kept.clear();
        match state {
            None => self.reinit(),
            Some(bytes) => {
                let mut r = Reader::new(bytes);
                let qlen = r.u32()? as usize;
                let mut queue = Vec::with_capacity(qlen);
                for _ in 0..qlen {
                    queue.push(Walker::decode(&mut r)?);
                }
                let plen = r.u64()? as usize;
                let mut path_log = Vec::with_capacity(plen);
                for _ in 0..plen {
                    path_log.push(<(u64, u32, VertexId)>::decode(&mut r)?);
                }
                if !r.is_empty() {
                    return Err(ClusterError::corrupt("trailing bytes in walk snapshot"));
                }
                self.queue = queue;
                self.path_log = path_log;
            }
        }
        Ok(())
    }

    /// Final local path log for the `Final` frame.
    pub fn final_result(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_all(&self.path_log, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpart_core::{ChunkV, Partitioner};
    use bpart_engine::apps::PageRank;
    use bpart_graph::generate;
    use std::sync::Arc;

    fn cluster(k: usize) -> Cluster {
        let graph = Arc::new(generate::erdos_renyi(40, 160, 7));
        let partition = Arc::new(ChunkV.partition(&graph, k));
        Cluster::new(graph, partition)
    }

    #[test]
    fn iter_snapshot_round_trips() {
        let c = cluster(3);
        let mut w = IterWorker::new(PageRank::new(5), c, 1);
        let rows = w.scatter();
        assert_eq!(rows.len(), 3);
        // Self slot must be empty on the wire.
        assert_eq!(rows[1].count, 0);
        let snap = w.snapshot();
        let before = w.final_result();
        w.restore(Some(&snap)).unwrap();
        assert_eq!(w.final_result(), before);
        // Restoring the initial state resets values.
        let mut w2 = IterWorker::new(PageRank::new(5), cluster(3), 1);
        w2.restore(None).unwrap();
        assert_eq!(w2.final_result(), before);
    }

    #[test]
    fn iter_snapshot_rejects_wrong_length() {
        let mut w = IterWorker::new(PageRank::new(5), cluster(3), 0);
        let mut bad = Vec::new();
        put_u32(&mut bad, 3);
        assert!(w.restore(Some(&bad)).is_err());
    }

    #[test]
    fn walk_worker_seeds_in_global_id_order() {
        let c = cluster(2);
        let app = bpart_walker::apps::SimpleRandomWalk::new(4);
        let w = WalkWorker::new(Box::new(app), c, 0, 11, 2);
        let mut prev = None;
        for walker in &w.queue {
            if let Some(p) = prev {
                assert!(walker.id > p, "ids must be strictly increasing");
            }
            prev = Some(walker.id);
        }
        assert!(w.queue_len() > 0);
        let snap = w.snapshot();
        let mut w2 = WalkWorker::new(
            Box::new(bpart_walker::apps::SimpleRandomWalk::new(4)),
            cluster(2),
            0,
            11,
            2,
        );
        w2.restore(Some(&snap)).unwrap();
        assert_eq!(w2.final_result(), w.final_result());
        assert_eq!(w2.queue_len(), w.queue_len());
    }
}
