//! Driver ↔ worker protocol messages.
//!
//! Star topology: workers never talk to each other, all superstep data
//! routes through the driver. Every message carries the recovery *epoch*
//! — incremented each time the driver restores from a checkpoint — so
//! frames from before a recovery (a `StepDone` that raced the death
//! verdict, say) are recognized as stale and dropped instead of being
//! mistaken for progress in the replayed superstep.
//!
//! ```text
//! kind  direction        message
//! 1     worker -> driver Join      { worker_id, key }
//! 2     driver -> worker Job       { spec, machine }
//! 3     worker -> driver Ready     { epoch, agg }
//! 4     driver -> worker StepBegin { epoch, superstep, agg, checkpoint }
//! 5     worker -> driver StepData  { epoch, superstep, rows[k] }
//! 6     driver -> worker Inbox     { epoch, superstep, rows[k] }
//! 7     worker -> driver StepDone  { epoch, superstep, active, agg, snapshot? }
//! 8     driver -> worker Restore   { epoch, superstep, state? }
//! 9     driver -> worker Finish    { epoch }
//! 10    worker -> driver Final     { epoch, result }
//! 11    worker -> driver Heartbeat { epoch }
//! 12    driver -> worker Shutdown  { }
//! 13    worker -> driver ObsReport { epoch, seq, step?, clock echoes, metrics, spans, profile }
//! ```
//!
//! `StepBegin` additionally carries the driver's send timestamp and an
//! obs-collection flag; `ObsReport` echoes the timestamp back along with
//! the worker's receive/send clocks, which is what lets the driver run
//! its NTP-style clock-offset estimate. The metrics/span payloads inside
//! `ObsReport` are opaque byte blobs owned by `bpart_obs::federation` —
//! the dist proto only ferries them.

use crate::error::ClusterError;
use crate::frame::Frame;
use crate::spec::JobSpec;
use crate::wire::{put_bytes, put_f64, put_u32, put_u64, Reader};

/// Frame kinds (the `kind` byte of every frame).
pub mod kind {
    /// Worker announces itself after connecting.
    pub const JOIN: u8 = 1;
    /// Driver ships the job spec and machine assignment.
    pub const JOB: u8 = 2;
    /// Worker finished (re)building local state.
    pub const READY: u8 = 3;
    /// Driver starts a superstep.
    pub const STEP_BEGIN: u8 = 4;
    /// Worker's outgoing rows for the superstep.
    pub const STEP_DATA: u8 = 5;
    /// Driver's concatenated inbox for the worker.
    pub const INBOX: u8 = 6;
    /// Worker applied the superstep.
    pub const STEP_DONE: u8 = 7;
    /// Driver rolls the worker back to a checkpoint.
    pub const RESTORE: u8 = 8;
    /// Driver asks for the final local result.
    pub const FINISH: u8 = 9;
    /// Worker's final local result.
    pub const FINAL: u8 = 10;
    /// Worker liveness signal.
    pub const HEARTBEAT: u8 = 11;
    /// Driver tells the worker to exit cleanly.
    pub const SHUTDOWN: u8 = 12;
    /// Worker ships an observability snapshot (metrics + span delta +
    /// superstep timings) to the driver's federation store.
    pub const OBS_REPORT: u8 = 13;
}

/// One destination's worth of outgoing messages: the element count plus
/// their back-to-back wire encoding. The count travels separately so the
/// driver can do link-fault accounting without decoding app payloads.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RowSeg {
    /// Number of messages encoded in `data`.
    pub count: u32,
    /// Back-to-back `Wire` encodings.
    pub data: Vec<u8>,
}

fn put_rows(out: &mut Vec<u8>, rows: &[RowSeg]) {
    put_u32(out, rows.len() as u32);
    for seg in rows {
        put_u32(out, seg.count);
        put_bytes(out, &seg.data);
    }
}

fn read_rows(r: &mut Reader<'_>) -> Result<Vec<RowSeg>, ClusterError> {
    let n = r.u32()? as usize;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(RowSeg {
            count: r.u32()?,
            data: r.bytes()?,
        });
    }
    Ok(rows)
}

fn put_opt_bytes(out: &mut Vec<u8>, v: &Option<Vec<u8>>) {
    match v {
        Some(b) => {
            out.push(1);
            put_bytes(out, b);
        }
        None => out.push(0),
    }
}

fn read_opt_bytes(r: &mut Reader<'_>) -> Result<Option<Vec<u8>>, ClusterError> {
    Ok(match r.u8()? {
        0 => None,
        _ => Some(r.bytes()?),
    })
}

/// Messages the driver sends to a worker.
#[derive(Clone, Debug, PartialEq)]
pub enum DriverMsg {
    /// Job spec plus the worker's machine assignment.
    Job {
        /// The job to rebuild locally.
        spec: JobSpec,
        /// Which BSP machine this worker plays.
        machine: u32,
    },
    /// Begin a superstep: aggregate from the previous barrier, plus
    /// whether the worker must attach a snapshot to its `StepDone`.
    StepBegin {
        /// Recovery epoch.
        epoch: u32,
        /// Superstep index.
        superstep: u64,
        /// Global aggregate entering this superstep.
        agg: f64,
        /// Attach a state snapshot to `StepDone`.
        checkpoint: bool,
        /// Driver clock (`tracer::now_ns`) at send; the worker echoes it
        /// in `ObsReport` for clock-offset estimation.
        sent_ns: u64,
        /// Whether obs federation collection is on: workers only enable
        /// tracing and ship `ObsReport`s when asked, so a no-obs run
        /// pays no federation overhead.
        obs: bool,
    },
    /// The worker's concatenated inbox for the superstep.
    Inbox {
        /// Recovery epoch.
        epoch: u32,
        /// Superstep index.
        superstep: u64,
        /// One segment per sender, in machine order; the worker's own
        /// row arrives empty (it kept it locally).
        rows: Vec<RowSeg>,
    },
    /// Roll back to `superstep` with the given state (`None`: re-init
    /// from the deterministic initial state).
    Restore {
        /// New (incremented) recovery epoch.
        epoch: u32,
        /// Superstep to resume from.
        superstep: u64,
        /// Snapshot bytes, or `None` for the initial state.
        state: Option<Vec<u8>>,
    },
    /// The run is complete; send `Final`.
    Finish {
        /// Recovery epoch.
        epoch: u32,
    },
    /// Exit cleanly.
    Shutdown,
}

/// Messages a worker sends to the driver.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkerMsg {
    /// First frame after connecting: who am I, and the shared secret.
    Join {
        /// Worker id (machine id) assigned on the command line.
        worker_id: u32,
        /// Join key; rejects strays connecting to the wrong driver.
        key: u64,
    },
    /// Local state (re)built; carries the worker's initial aggregate
    /// contribution.
    Ready {
        /// Recovery epoch the worker is now in.
        epoch: u32,
        /// Local aggregate of the (restored) state.
        agg: f64,
    },
    /// Outgoing rows, one segment per destination machine; the worker's
    /// own segment is empty (kept locally to preserve combine order).
    StepData {
        /// Recovery epoch.
        epoch: u32,
        /// Superstep index.
        superstep: u64,
        /// One segment per destination, in machine order.
        rows: Vec<RowSeg>,
    },
    /// Superstep applied.
    StepDone {
        /// Recovery epoch.
        epoch: u32,
        /// Superstep index.
        superstep: u64,
        /// Local activity signal (votes-to-halt when the sum over
        /// workers is zero).
        active: u64,
        /// Local aggregate contribution for the next superstep.
        agg: f64,
        /// State snapshot, present when `StepBegin` asked for one.
        snapshot: Option<Vec<u8>>,
    },
    /// Final local result bytes.
    Final {
        /// Recovery epoch.
        epoch: u32,
        /// App-specific encoding of the local result.
        result: Vec<u8>,
    },
    /// Liveness signal, sent on an interval by a dedicated thread.
    Heartbeat {
        /// Recovery epoch.
        epoch: u32,
    },
    /// Observability snapshot: metrics registry + span-ring delta +
    /// (optionally) one superstep's compute/exchange timings, plus the
    /// clock echoes for offset estimation. Sent after each applied
    /// superstep (before `StepDone`, so the driver absorbs the timings
    /// ahead of the barrier) and on a low-rate timer so a SIGKILLed
    /// worker still leaves its last snapshot behind.
    ObsReport {
        /// Recovery epoch.
        epoch: u32,
        /// Per-worker report sequence number (restarts on respawn; the
        /// bumped epoch keeps `(epoch, seq)` monotonic).
        seq: u64,
        /// Superstep the timing sample belongs to (when `has_step`).
        superstep: u64,
        /// Whether this report carries a superstep timing sample.
        has_step: bool,
        /// Computation-phase nanoseconds for `superstep`.
        compute_ns: u64,
        /// Exchange-phase (StepData send → Inbox arrival) nanoseconds.
        comm_ns: u64,
        /// Echo of the driver's `StepBegin.sent_ns` (0 = no sample).
        echo_ns: u64,
        /// Worker clock at `StepBegin` receipt.
        recv_ns: u64,
        /// Worker clock at report send.
        send_ns: u64,
        /// `bpart_obs::federation::MetricsSnapshot` bytes (opaque here).
        metrics: Vec<u8>,
        /// `bpart_obs::federation::encode_spans` bytes (opaque here).
        spans: Vec<u8>,
        /// Folded-stack profile text from the worker's continuous
        /// profiler (UTF-8; empty when profiling is off). Opaque here —
        /// validated and joined by `bpart_obs::federation`.
        profile: Vec<u8>,
    },
}

impl DriverMsg {
    /// `(kind, payload)` for framing.
    pub fn to_frame(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        let kind = match self {
            DriverMsg::Job { spec, machine } => {
                put_u32(&mut out, *machine);
                put_bytes(&mut out, &spec.encode());
                kind::JOB
            }
            DriverMsg::StepBegin {
                epoch,
                superstep,
                agg,
                checkpoint,
                sent_ns,
                obs,
            } => {
                put_u32(&mut out, *epoch);
                put_u64(&mut out, *superstep);
                put_f64(&mut out, *agg);
                out.push(*checkpoint as u8);
                put_u64(&mut out, *sent_ns);
                out.push(*obs as u8);
                kind::STEP_BEGIN
            }
            DriverMsg::Inbox {
                epoch,
                superstep,
                rows,
            } => {
                put_u32(&mut out, *epoch);
                put_u64(&mut out, *superstep);
                put_rows(&mut out, rows);
                kind::INBOX
            }
            DriverMsg::Restore {
                epoch,
                superstep,
                state,
            } => {
                put_u32(&mut out, *epoch);
                put_u64(&mut out, *superstep);
                put_opt_bytes(&mut out, state);
                kind::RESTORE
            }
            DriverMsg::Finish { epoch } => {
                put_u32(&mut out, *epoch);
                kind::FINISH
            }
            DriverMsg::Shutdown => kind::SHUTDOWN,
        };
        (kind, out)
    }

    /// Decodes a driver frame.
    pub fn from_frame(frame: &Frame) -> Result<DriverMsg, ClusterError> {
        let mut r = Reader::new(&frame.payload);
        let msg = match frame.kind {
            kind::JOB => {
                let machine = r.u32()?;
                let spec = JobSpec::decode(&r.bytes()?)?;
                DriverMsg::Job { spec, machine }
            }
            kind::STEP_BEGIN => DriverMsg::StepBegin {
                epoch: r.u32()?,
                superstep: r.u64()?,
                agg: r.f64()?,
                checkpoint: r.u8()? != 0,
                sent_ns: r.u64()?,
                obs: r.u8()? != 0,
            },
            kind::INBOX => DriverMsg::Inbox {
                epoch: r.u32()?,
                superstep: r.u64()?,
                rows: read_rows(&mut r)?,
            },
            kind::RESTORE => DriverMsg::Restore {
                epoch: r.u32()?,
                superstep: r.u64()?,
                state: read_opt_bytes(&mut r)?,
            },
            kind::FINISH => DriverMsg::Finish { epoch: r.u32()? },
            kind::SHUTDOWN => DriverMsg::Shutdown,
            k => {
                return Err(ClusterError::corrupt(format!(
                    "unexpected driver frame kind {k}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(ClusterError::corrupt("trailing bytes in driver frame"));
        }
        Ok(msg)
    }
}

impl WorkerMsg {
    /// `(kind, payload)` for framing.
    pub fn to_frame(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        let kind = match self {
            WorkerMsg::Join { worker_id, key } => {
                put_u32(&mut out, *worker_id);
                put_u64(&mut out, *key);
                kind::JOIN
            }
            WorkerMsg::Ready { epoch, agg } => {
                put_u32(&mut out, *epoch);
                put_f64(&mut out, *agg);
                kind::READY
            }
            WorkerMsg::StepData {
                epoch,
                superstep,
                rows,
            } => {
                put_u32(&mut out, *epoch);
                put_u64(&mut out, *superstep);
                put_rows(&mut out, rows);
                kind::STEP_DATA
            }
            WorkerMsg::StepDone {
                epoch,
                superstep,
                active,
                agg,
                snapshot,
            } => {
                put_u32(&mut out, *epoch);
                put_u64(&mut out, *superstep);
                put_u64(&mut out, *active);
                put_f64(&mut out, *agg);
                put_opt_bytes(&mut out, snapshot);
                kind::STEP_DONE
            }
            WorkerMsg::Final { epoch, result } => {
                put_u32(&mut out, *epoch);
                put_bytes(&mut out, result);
                kind::FINAL
            }
            WorkerMsg::Heartbeat { epoch } => {
                put_u32(&mut out, *epoch);
                kind::HEARTBEAT
            }
            WorkerMsg::ObsReport {
                epoch,
                seq,
                superstep,
                has_step,
                compute_ns,
                comm_ns,
                echo_ns,
                recv_ns,
                send_ns,
                metrics,
                spans,
                profile,
            } => {
                put_u32(&mut out, *epoch);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *superstep);
                out.push(*has_step as u8);
                put_u64(&mut out, *compute_ns);
                put_u64(&mut out, *comm_ns);
                put_u64(&mut out, *echo_ns);
                put_u64(&mut out, *recv_ns);
                put_u64(&mut out, *send_ns);
                put_bytes(&mut out, metrics);
                put_bytes(&mut out, spans);
                put_bytes(&mut out, profile);
                kind::OBS_REPORT
            }
        };
        (kind, out)
    }

    /// Decodes a worker frame.
    pub fn from_frame(frame: &Frame) -> Result<WorkerMsg, ClusterError> {
        let mut r = Reader::new(&frame.payload);
        let msg = match frame.kind {
            kind::JOIN => WorkerMsg::Join {
                worker_id: r.u32()?,
                key: r.u64()?,
            },
            kind::READY => WorkerMsg::Ready {
                epoch: r.u32()?,
                agg: r.f64()?,
            },
            kind::STEP_DATA => WorkerMsg::StepData {
                epoch: r.u32()?,
                superstep: r.u64()?,
                rows: read_rows(&mut r)?,
            },
            kind::STEP_DONE => WorkerMsg::StepDone {
                epoch: r.u32()?,
                superstep: r.u64()?,
                active: r.u64()?,
                agg: r.f64()?,
                snapshot: read_opt_bytes(&mut r)?,
            },
            kind::FINAL => WorkerMsg::Final {
                epoch: r.u32()?,
                result: r.bytes()?,
            },
            kind::HEARTBEAT => WorkerMsg::Heartbeat { epoch: r.u32()? },
            kind::OBS_REPORT => WorkerMsg::ObsReport {
                epoch: r.u32()?,
                seq: r.u64()?,
                superstep: r.u64()?,
                has_step: r.u8()? != 0,
                compute_ns: r.u64()?,
                comm_ns: r.u64()?,
                echo_ns: r.u64()?,
                recv_ns: r.u64()?,
                send_ns: r.u64()?,
                metrics: r.bytes()?,
                spans: r.bytes()?,
                profile: r.bytes()?,
            },
            k => {
                return Err(ClusterError::corrupt(format!(
                    "unexpected worker frame kind {k}"
                )))
            }
        };
        if !r.is_empty() {
            return Err(ClusterError::corrupt("trailing bytes in worker frame"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AppSpec, GraphSource};

    fn round_trip_driver(msg: DriverMsg) {
        let (kind, payload) = msg.to_frame();
        let frame = Frame { kind, payload };
        assert_eq!(DriverMsg::from_frame(&frame).unwrap(), msg);
    }

    fn round_trip_worker(msg: WorkerMsg) {
        let (kind, payload) = msg.to_frame();
        let frame = Frame { kind, payload };
        assert_eq!(WorkerMsg::from_frame(&frame).unwrap(), msg);
    }

    #[test]
    fn driver_messages_round_trip() {
        round_trip_driver(DriverMsg::Job {
            spec: JobSpec {
                graph: GraphSource::ErdosRenyi {
                    n: 10,
                    m: 20,
                    seed: 1,
                },
                scheme: "hash".into(),
                parts: 2,
                app: AppSpec::PageRank { iters: 3 },
                checkpoint_every: Some(2),
            },
            machine: 1,
        });
        round_trip_driver(DriverMsg::StepBegin {
            epoch: 1,
            superstep: 42,
            agg: 0.125,
            checkpoint: true,
            sent_ns: 123_456_789,
            obs: true,
        });
        round_trip_driver(DriverMsg::StepBegin {
            epoch: 0,
            superstep: 0,
            agg: 0.0,
            checkpoint: false,
            sent_ns: 0,
            obs: false,
        });
        round_trip_driver(DriverMsg::Inbox {
            epoch: 0,
            superstep: 7,
            rows: vec![
                RowSeg::default(),
                RowSeg {
                    count: 2,
                    data: vec![1, 2, 3, 4],
                },
            ],
        });
        round_trip_driver(DriverMsg::Restore {
            epoch: 2,
            superstep: 4,
            state: Some(vec![9, 9]),
        });
        round_trip_driver(DriverMsg::Restore {
            epoch: 3,
            superstep: 0,
            state: None,
        });
        round_trip_driver(DriverMsg::Finish { epoch: 2 });
        round_trip_driver(DriverMsg::Shutdown);
    }

    #[test]
    fn worker_messages_round_trip() {
        round_trip_worker(WorkerMsg::Join {
            worker_id: 3,
            key: 0xdead_beef,
        });
        round_trip_worker(WorkerMsg::Ready {
            epoch: 0,
            agg: -1.5,
        });
        round_trip_worker(WorkerMsg::StepData {
            epoch: 1,
            superstep: 9,
            rows: vec![RowSeg {
                count: 1,
                data: vec![0xff; 12],
            }],
        });
        round_trip_worker(WorkerMsg::StepDone {
            epoch: 1,
            superstep: 9,
            active: 1,
            agg: 0.25,
            snapshot: Some(vec![1, 2, 3]),
        });
        round_trip_worker(WorkerMsg::Final {
            epoch: 1,
            result: vec![4, 5],
        });
        round_trip_worker(WorkerMsg::Heartbeat { epoch: 2 });
        round_trip_worker(WorkerMsg::ObsReport {
            epoch: 1,
            seq: 12,
            superstep: 6,
            has_step: true,
            compute_ns: 42_000_000,
            comm_ns: 9_000_000,
            echo_ns: 111,
            recv_ns: 222,
            send_ns: 333,
            metrics: vec![1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
            spans: vec![1, 0, 0, 0, 0],
            profile: b"dist.superstep;dist.compute 7\n".to_vec(),
        });
        round_trip_worker(WorkerMsg::ObsReport {
            epoch: 0,
            seq: 1,
            superstep: 0,
            has_step: false,
            compute_ns: 0,
            comm_ns: 0,
            echo_ns: 0,
            recv_ns: 0,
            send_ns: 0,
            metrics: Vec::new(),
            spans: Vec::new(),
            profile: Vec::new(),
        });
    }

    #[test]
    fn wrong_direction_is_rejected() {
        let (kind, payload) = WorkerMsg::Heartbeat { epoch: 0 }.to_frame();
        let frame = Frame { kind, payload };
        assert!(DriverMsg::from_frame(&frame).is_err());
        let (kind, payload) = DriverMsg::Shutdown.to_frame();
        let frame = Frame { kind, payload };
        assert!(WorkerMsg::from_frame(&frame).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (kind, mut payload) = WorkerMsg::Heartbeat { epoch: 0 }.to_frame();
        payload.push(0);
        assert!(WorkerMsg::from_frame(&Frame { kind, payload }).is_err());
    }
}
