//! Socket plumbing: deadline reads, atomic frame writes, bounded
//! exponential backoff with deterministic jitter, and the worker-side
//! heartbeat thread.

use crate::error::ClusterError;
use crate::frame::{self, Frame};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// Frame-size distribution (bytes on the wire, header included),
/// observed on every [`SharedWriter::send`] in both driver and worker
/// processes. Feeds `/metrics` and the federation view; the handle is
/// cached so the hot send path never takes the registry lock.
fn frame_bytes_histogram() -> &'static bpart_obs::metrics::Histogram {
    static H: OnceLock<&'static bpart_obs::metrics::Histogram> = OnceLock::new();
    H.get_or_init(|| {
        bpart_obs::metrics::histogram(
            "dist.frame_bytes",
            &[
                64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
            ],
        )
    })
}

/// RPC round-trip-time distribution in nanoseconds, observed by the
/// driver from `ObsReport` clock echoes. Lives here with the other
/// transport metrics; also the input to the clock-offset estimator.
pub fn rpc_rtt_histogram() -> &'static bpart_obs::metrics::Histogram {
    static H: OnceLock<&'static bpart_obs::metrics::Histogram> = OnceLock::new();
    H.get_or_init(|| {
        bpart_obs::metrics::histogram(
            "dist.rpc_rtt_ns",
            &[
                50_000.0,
                200_000.0,
                1_000_000.0,
                5_000_000.0,
                25_000_000.0,
                100_000_000.0,
                1_000_000_000.0,
            ],
        )
    })
}

/// Bounded exponential backoff: `base * 2^attempt` capped at `max`, with
/// a deterministic ±25% jitter derived from `seed` so retry storms from
/// several workers never synchronize (and tests replay exactly).
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    /// First delay.
    pub base: Duration,
    /// Cap on any single delay.
    pub max: Duration,
    /// Jitter seed (vary per worker).
    pub seed: u64,
}

impl Backoff {
    /// Delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.max);
        // splitmix64 of (seed, attempt) -> jitter factor in [0.75, 1.25).
        let mut z = self
            .seed
            .wrapping_add(attempt as u64)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let jitter = 0.75 + (z >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        capped.mul_f64(jitter)
    }
}

/// Connects with retries. `on_retry` fires before each sleep (for the
/// `dist.connect_retries` counter). Gives up after `attempts` tries.
pub fn connect_with_backoff(
    addr: &str,
    attempts: u32,
    backoff: Backoff,
    mut on_retry: impl FnMut(u32),
) -> Result<TcpStream, ClusterError> {
    let mut last_err = None;
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return Ok(stream);
            }
            Err(e) => {
                last_err = Some(e);
                if attempt + 1 < attempts.max(1) {
                    on_retry(attempt);
                    thread::sleep(backoff.delay(attempt));
                }
            }
        }
    }
    Err(ClusterError::ConnReset {
        detail: format!(
            "connect {addr} failed after {attempts} attempts: {}",
            last_err.map(|e| e.to_string()).unwrap_or_default()
        ),
    })
}

/// Reads one frame with an absolute deadline. The socket read timeout is
/// re-armed from the time remaining before every blocking read, so a
/// peer dribbling bytes cannot stretch the deadline.
pub fn read_frame_deadline(
    stream: &mut TcpStream,
    deadline: Instant,
    what: &str,
) -> Result<Frame, ClusterError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(ClusterError::Timeout {
            what: what.to_string(),
        });
    }
    stream
        .set_read_timeout(Some(remaining))
        .map_err(|e| ClusterError::from_io(what, &e))?;
    match frame::read_frame(stream) {
        Err(ClusterError::Timeout { .. }) => Err(ClusterError::Timeout {
            what: what.to_string(),
        }),
        other => other,
    }
}

/// Reads one frame with no deadline (blocks until the peer sends or
/// hangs up).
pub fn read_frame_blocking(stream: &mut TcpStream) -> Result<Frame, ClusterError> {
    stream.set_read_timeout(None).ok();
    frame::read_frame(stream)
}

/// A write handle shareable between a protocol loop and the heartbeat
/// thread. Each frame goes out as one locked `write_all`, so frames from
/// the two threads never interleave.
#[derive(Clone)]
pub struct SharedWriter {
    inner: Arc<Mutex<TcpStream>>,
}

impl SharedWriter {
    /// Wraps a stream (clone the handle to share it).
    pub fn new(stream: TcpStream) -> Self {
        SharedWriter {
            inner: Arc::new(Mutex::new(stream)),
        }
    }

    /// Sends one frame atomically.
    pub fn send(&self, kind: u8, payload: &[u8]) -> Result<(), ClusterError> {
        let bytes = frame::encode(kind, payload);
        frame_bytes_histogram().observe(bytes.len() as f64);
        let mut stream = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        stream
            .write_all(&bytes)
            .and_then(|()| stream.flush())
            .map_err(|e| ClusterError::from_io("send frame", &e))
    }
}

/// Worker-side heartbeat pump: a thread that sends `Heartbeat` frames on
/// `interval` until stopped. The epoch cell is shared with the protocol
/// loop so beats always carry the worker's current epoch.
pub struct HeartbeatPump {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl HeartbeatPump {
    /// Starts beating on `writer` every `interval`.
    pub fn start(writer: SharedWriter, epoch: Arc<AtomicU32>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("heartbeat".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    thread::sleep(interval);
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    let msg = crate::proto::WorkerMsg::Heartbeat {
                        epoch: epoch.load(Ordering::Relaxed),
                    };
                    let (kind, payload) = msg.to_frame();
                    if writer.send(kind, &payload).is_err() {
                        // The driver is gone; the protocol loop will see
                        // the same failure and exit. Stop beating.
                        break;
                    }
                }
            })
            .expect("spawn heartbeat thread");
        HeartbeatPump {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the pump and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

impl Drop for HeartbeatPump {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn backoff_grows_is_capped_and_jittered() {
        let b = Backoff {
            base: Duration::from_millis(10),
            max: Duration::from_millis(80),
            seed: 42,
        };
        let d0 = b.delay(0);
        let d3 = b.delay(3);
        assert!(d0 >= Duration::from_micros(7_500) && d0 < Duration::from_micros(12_500));
        assert!(d3 > d0);
        // Far past the cap: jitter keeps it within [0.75, 1.25) * max.
        let d9 = b.delay(9);
        assert!(d9 <= Duration::from_millis(100));
        // Deterministic.
        assert_eq!(b.delay(5), b.delay(5));
        // Different seeds de-synchronize.
        let c = Backoff { seed: 43, ..b };
        assert_ne!(b.delay(5), c.delay(5));
    }

    #[test]
    fn connect_retries_then_gives_up() {
        // Bind then drop: the port is (very likely) refused afterwards.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut retries = 0;
        let err = connect_with_backoff(
            &addr,
            3,
            Backoff {
                base: Duration::from_millis(1),
                max: Duration::from_millis(2),
                seed: 1,
            },
            |_| retries += 1,
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::ConnReset { .. }));
        assert_eq!(retries, 2);
    }

    #[test]
    fn shared_writer_observes_frame_size_distribution() {
        // Satellite: every sent frame lands in the dist.frame_bytes
        // histogram so the size distribution shows up on /metrics.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = thread::spawn(move || listener.accept().map(|(s, _)| s));
        let stream = TcpStream::connect(addr).unwrap();
        let _held = peer.join().unwrap().unwrap();
        let writer = SharedWriter::new(stream);
        let before = frame_bytes_histogram().count();
        writer.send(1, &[0u8; 32]).expect("send");
        writer.send(1, &vec![0u8; 2048]).expect("send");
        assert_eq!(frame_bytes_histogram().count(), before + 2);
        // The RTT histogram registers under its documented name.
        assert_eq!(rpc_rtt_histogram().bounds().len(), 7);
        let text = bpart_obs::metrics::prometheus_snapshot();
        assert!(text.contains("dist_frame_bytes_bucket"), "{text}");
        assert!(text.contains("dist_rpc_rtt_ns_count"), "{text}");
    }

    #[test]
    fn deadline_read_times_out_against_a_silent_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _peer = thread::spawn(move || listener.accept().map(|(s, _)| s));
        let mut stream = TcpStream::connect(addr).unwrap();
        let started = Instant::now();
        let err = read_frame_deadline(
            &mut stream,
            Instant::now() + Duration::from_millis(80),
            "test frame",
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::Timeout { .. }), "{err}");
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
