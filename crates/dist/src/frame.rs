//! The wire frame: the unit every driver/worker byte stream is made of.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic    0x42_50_44_46 ("BPDF")
//! 4       4     payload length `n` (<= MAX_PAYLOAD)
//! 8       1     kind (message discriminant, see proto)
//! 9       4     FNV-1a checksum over kind byte + payload
//! 13      n     payload
//! ```
//!
//! The length prefix makes framing self-describing; the checksum catches
//! garbled bytes before they are interpreted as protocol messages. A
//! frame that fails any validation surfaces as
//! [`ClusterError::FrameCorrupt`] — the connection is then unusable
//! (stream framing is lost) and supervision tears it down.

use crate::error::ClusterError;
use std::io::{self, Read, Write};

/// `"BPDF"` — bpart dist frame.
pub const MAGIC: u32 = 0x4250_4446;

/// Upper bound on one frame's payload (1 GiB). Real payloads are per-
/// superstep message rows; anything near this bound is a corrupt length.
pub const MAX_PAYLOAD: u32 = 1 << 30;

/// Bytes before the payload: magic + length + kind + checksum.
pub const HEADER_LEN: usize = 13;

/// One decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Message discriminant (see `proto`).
    pub kind: u8,
    /// Message payload bytes.
    pub payload: Vec<u8>,
}

/// FNV-1a over the kind byte followed by the payload.
fn checksum(kind: u8, payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    let mut step = |b: u8| {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    };
    step(kind);
    for &b in payload {
        step(b);
    }
    h
}

/// Encodes one frame into a fresh byte vector.
pub fn encode(kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD as usize,
        "payload exceeds MAX_PAYLOAD"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&checksum(kind, payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes the frame at the front of `buf`, returning it plus the number
/// of bytes consumed. Rejects bad magic, impossible lengths, truncated
/// buffers, and checksum mismatches.
pub fn decode(buf: &[u8]) -> Result<(Frame, usize), ClusterError> {
    if buf.len() < HEADER_LEN {
        return Err(ClusterError::corrupt(format!(
            "truncated header: {} of {HEADER_LEN} bytes",
            buf.len()
        )));
    }
    let magic = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(ClusterError::corrupt(format!("bad magic {magic:#010x}")));
    }
    let len = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(ClusterError::corrupt(format!(
            "length {len} exceeds MAX_PAYLOAD"
        )));
    }
    let kind = buf[8];
    let want = u32::from_le_bytes(buf[9..13].try_into().unwrap());
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Err(ClusterError::corrupt(format!(
            "truncated payload: {} of {total} bytes",
            buf.len()
        )));
    }
    let payload = &buf[HEADER_LEN..total];
    let got = checksum(kind, payload);
    if got != want {
        return Err(ClusterError::corrupt(format!(
            "checksum mismatch: stated {want:#010x}, computed {got:#010x}"
        )));
    }
    Ok((
        Frame {
            kind,
            payload: payload.to_vec(),
        },
        total,
    ))
}

/// Writes one frame to a stream (single buffered write).
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode(kind, payload))?;
    w.flush()
}

/// Reads one frame from a stream. Header validation happens before the
/// payload is read, so a corrupt length never triggers a giant
/// allocation. I/O errors are mapped via [`ClusterError::from_io`]; a
/// clean EOF at a frame boundary surfaces as `ConnReset` (the peer hung
/// up).
pub fn read_frame(r: &mut impl Read) -> Result<Frame, ClusterError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact(r, &mut header, "frame header")?;
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(ClusterError::corrupt(format!("bad magic {magic:#010x}")));
    }
    let len = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(ClusterError::corrupt(format!(
            "length {len} exceeds MAX_PAYLOAD"
        )));
    }
    let kind = header[8];
    let want = u32::from_le_bytes(header[9..13].try_into().unwrap());
    let mut payload = vec![0u8; len as usize];
    read_exact(r, &mut payload, "frame payload")?;
    let got = checksum(kind, &payload);
    if got != want {
        return Err(ClusterError::corrupt(format!(
            "checksum mismatch: stated {want:#010x}, computed {got:#010x}"
        )));
    }
    Ok(Frame { kind, payload })
}

fn read_exact(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), ClusterError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ClusterError::ConnReset {
                detail: format!("{what}: peer closed the connection"),
            }
        } else {
            ClusterError::from_io(what, &e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for (kind, payload) in [(1u8, vec![]), (7, vec![0xab; 3]), (255, (0..100).collect())] {
            let bytes = encode(kind, &payload);
            let (frame, used) = decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(frame, Frame { kind, payload });
        }
    }

    #[test]
    fn decode_consumes_only_one_frame() {
        let mut bytes = encode(1, b"first");
        let second = encode(2, b"second");
        bytes.extend_from_slice(&second);
        let (frame, used) = decode(&bytes).unwrap();
        assert_eq!(frame.payload, b"first");
        let (frame2, _) = decode(&bytes[used..]).unwrap();
        assert_eq!(frame2.kind, 2);
    }

    #[test]
    fn rejects_bad_magic_and_checksum() {
        let mut bytes = encode(3, b"payload");
        bytes[0] ^= 0xff;
        assert!(matches!(
            decode(&bytes),
            Err(ClusterError::FrameCorrupt { .. })
        ));
        let mut bytes = encode(3, b"payload");
        *bytes.last_mut().unwrap() ^= 0x01;
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn rejects_impossible_length_without_allocating() {
        let mut bytes = encode(3, b"x");
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("MAX_PAYLOAD"), "{err}");
        // The stream reader must reject it from the header alone.
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert!(err.to_string().contains("MAX_PAYLOAD"), "{err}");
    }

    #[test]
    fn stream_round_trip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 9, b"hello").unwrap();
        write_frame(&mut buf, 10, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().payload, b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().kind, 10);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ClusterError::ConnReset { .. })
        ));
    }
}
