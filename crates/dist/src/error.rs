//! The typed error surface of the distributed backend.
//!
//! Everything that can go wrong between driver and workers collapses into
//! [`ClusterError`]; supervision code matches on the variant to decide
//! between retry (Timeout, ConnReset), recovery (WorkerDead), and giving
//! up (FrameCorrupt on a live link, Unrecoverable).

use bpart_cluster::MachineId;
use std::fmt;
use std::io;

/// Why a distributed operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// A per-RPC deadline expired before the expected frames arrived.
    Timeout {
        /// What the caller was waiting for.
        what: String,
    },
    /// The peer's connection closed or reset mid-conversation.
    ConnReset {
        /// Best-effort detail from the underlying I/O error.
        detail: String,
    },
    /// A frame failed validation (bad magic, impossible length, checksum
    /// mismatch, or a truncated/garbled payload).
    FrameCorrupt {
        /// What was wrong with the frame.
        reason: String,
    },
    /// A worker was declared dead (heartbeat loss) and could not be
    /// brought back within the respawn budget.
    WorkerDead {
        /// The dead worker's machine id.
        worker: MachineId,
        /// Superstep during which death was detected.
        superstep: u64,
    },
    /// A failure recovery cannot fix (bad job spec, repeated death at the
    /// same superstep, protocol violation).
    Unrecoverable {
        /// Human-readable description.
        reason: String,
    },
}

impl ClusterError {
    /// Shorthand constructor for [`ClusterError::FrameCorrupt`].
    pub fn corrupt(reason: impl Into<String>) -> Self {
        ClusterError::FrameCorrupt {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`ClusterError::Unrecoverable`].
    pub fn unrecoverable(reason: impl Into<String>) -> Self {
        ClusterError::Unrecoverable {
            reason: reason.into(),
        }
    }

    /// Maps an I/O error from a socket operation: timeouts stay timeouts,
    /// everything else is a connection-level failure.
    pub fn from_io(what: &str, e: &io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => ClusterError::Timeout {
                what: what.to_string(),
            },
            _ => ClusterError::ConnReset {
                detail: format!("{what}: {e}"),
            },
        }
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Timeout { what } => write!(f, "timed out waiting for {what}"),
            ClusterError::ConnReset { detail } => write!(f, "connection reset: {detail}"),
            ClusterError::FrameCorrupt { reason } => write!(f, "corrupt frame: {reason}"),
            ClusterError::WorkerDead { worker, superstep } => {
                write!(f, "worker {worker} dead at superstep {superstep}")
            }
            ClusterError::Unrecoverable { reason } => write!(f, "unrecoverable: {reason}"),
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_timeouts_map_to_timeout() {
        let e = io::Error::new(io::ErrorKind::TimedOut, "slow");
        assert!(matches!(
            ClusterError::from_io("join", &e),
            ClusterError::Timeout { .. }
        ));
        let e = io::Error::new(io::ErrorKind::ConnectionReset, "gone");
        assert!(matches!(
            ClusterError::from_io("join", &e),
            ClusterError::ConnReset { .. }
        ));
    }

    #[test]
    fn displays_are_descriptive() {
        let e = ClusterError::WorkerDead {
            worker: 2,
            superstep: 7,
        };
        assert_eq!(e.to_string(), "worker 2 dead at superstep 7");
        assert!(ClusterError::corrupt("bad magic")
            .to_string()
            .contains("bad magic"));
    }
}
