//! Byte-level payload codec (little-endian, hand-rolled).
//!
//! No serde in the dependency tree, so payload encoding is explicit: a
//! [`Reader`] cursor with checked accessors, `put_*` helpers for the
//! write side, and a [`Wire`] trait for the few value types that cross
//! the process boundary. `f64`s travel as IEEE-754 bit patterns, so a
//! value decoded on the far side is the *same bits* — the foundation of
//! the cross-backend bit-identity guarantee.

use crate::error::ClusterError;
use bpart_walker::{Walker, WalkerRng};

/// Checked read cursor over a payload slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ClusterError> {
        if self.remaining() < n {
            return Err(ClusterError::corrupt(format!(
                "payload underrun: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, ClusterError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, ClusterError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, ClusterError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` as its exact bit pattern.
    pub fn f64(&mut self) -> Result<f64, ClusterError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, ClusterError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, ClusterError> {
        String::from_utf8(self.bytes()?).map_err(|_| ClusterError::corrupt("invalid utf-8"))
    }
}

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its exact bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

/// A value type that crosses the process boundary byte-exactly.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value at the cursor.
    fn decode(r: &mut Reader<'_>) -> Result<Self, ClusterError>;
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, *self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ClusterError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, *self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ClusterError> {
        r.u64()
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, *self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ClusterError> {
        r.f64()
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ClusterError> {
        Ok(r.u8()? != 0)
    }
}

/// `(target vertex, accumulator)` pairs — the iteration engines' message
/// payload.
impl<A: Wire> Wire for (u32, A) {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.0);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ClusterError> {
        Ok((r.u32()?, A::decode(r)?))
    }
}

/// A migrating walker: 32 bytes, including its RNG state, so the far
/// side continues the exact trajectory.
impl Wire for Walker {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.id);
        put_u32(out, self.source);
        put_u32(out, self.current);
        put_u32(out, self.previous);
        put_u32(out, self.step);
        put_u64(out, self.rng.to_bits());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ClusterError> {
        Ok(Walker {
            id: r.u64()?,
            source: r.u32()?,
            current: r.u32()?,
            previous: r.u32()?,
            step: r.u32()?,
            rng: WalkerRng::from_bits(r.u64()?),
        })
    }
}

/// `(walker id, step, vertex)` path-log triples.
impl Wire for (u64, u32, u32) {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
        put_u32(out, self.1);
        put_u32(out, self.2);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, ClusterError> {
        Ok((r.u64()?, r.u32()?, r.u32()?))
    }
}

/// Encodes a slice of wire values back-to-back (no length prefix; the
/// container framing supplies the boundary).
pub fn encode_all<T: Wire>(items: &[T], out: &mut Vec<u8>) {
    for item in items {
        item.encode(out);
    }
}

/// Decodes wire values until the buffer is exhausted.
pub fn decode_all<T: Wire>(buf: &[u8]) -> Result<Vec<T>, ClusterError> {
    let mut r = Reader::new(buf);
    let mut items = Vec::new();
    while !r.is_empty() {
        items.push(T::decode(&mut r)?);
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut out = Vec::new();
        put_u32(&mut out, 7);
        put_u64(&mut out, u64::MAX);
        put_f64(&mut out, -0.0);
        put_f64(&mut out, f64::NAN);
        put_str(&mut out, "héllo");
        let mut r = Reader::new(&out);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn underrun_is_a_typed_error() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(r.u64(), Err(ClusterError::FrameCorrupt { .. })));
    }

    #[test]
    fn walker_round_trip_preserves_trajectory() {
        let mut w = Walker::new(42, 7, 1234);
        w.advance(9);
        w.rng.next_u64();
        let mut out = Vec::new();
        w.encode(&mut out);
        assert_eq!(out.len(), 32);
        let got: Vec<Walker> = decode_all(&out).unwrap();
        assert_eq!(got, vec![w]);
        // The decoded RNG continues the identical stream.
        let (mut a, mut b) = (w, got[0]);
        for _ in 0..4 {
            assert_eq!(a.rng.next_u64(), b.rng.next_u64());
        }
    }

    #[test]
    fn pair_lists_round_trip() {
        let pairs: Vec<(u32, f64)> = vec![(1, 0.5), (9, f64::MIN_POSITIVE)];
        let mut out = Vec::new();
        encode_all(&pairs, &mut out);
        assert_eq!(decode_all::<(u32, f64)>(&out).unwrap(), pairs);
    }
}
