//! The driver: owns placement, superstep broadcast, barrier collection,
//! and worker supervision.
//!
//! ## Supervision model
//!
//! Every worker connection gets a dedicated reader thread that stamps a
//! shared `last_seen` instant on *every* frame (heartbeats included) and
//! forwards protocol messages over one mpsc channel. The supervisor
//! (this module's single control thread) declares a worker dead only
//! when its `last_seen` is older than the heartbeat timeout — a closed
//! socket alone is not a verdict, so death detection is genuinely
//! heartbeat-based, not EOF-based. A worker that heartbeats but never
//! produces the awaited frame is declared dead when the per-RPC deadline
//! expires (it is wedged, which supervision treats the same way).
//!
//! ## Recovery
//!
//! On death the driver bumps the recovery *epoch*, respawns the dead
//! process (within `max_respawns`), replays the job spec to it, and
//! sends `Restore` to every worker: either the snapshot bytes from the
//! last driver-held checkpoint or `None` (re-initialize from the
//! deterministic initial state). Workers answer `Ready` under the new
//! epoch; frames stamped with an older epoch are discarded wherever they
//! surface. The superstep counter rolls back to the checkpoint and the
//! run replays forward — bit-identically, because every worker's state,
//! RNG included, travels in the snapshot.

use crate::error::ClusterError;
use crate::frame;
use crate::proto::{DriverMsg, RowSeg, WorkerMsg};
use crate::spec::{AppSpec, JobSpec};
use crate::transport::{read_frame_blocking, rpc_rtt_histogram};
use crate::wire::decode_all;
use crate::{digest_wire, paths_from_log};
use bpart_cluster::{Cluster, FaultPlan, FaultState, MachineId};
use bpart_graph::VertexId;
use bpart_obs::{federation, tracer};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Process-backend configuration.
#[derive(Clone, Debug)]
pub struct ProcessConfig {
    /// Worker process count; must equal the job's partition count.
    pub workers: usize,
    /// Command prefix that starts one worker (the driver appends
    /// `--connect/--worker-id/--key/--heartbeat-ms`).
    pub worker_cmd: Vec<String>,
    /// How often workers send heartbeats.
    pub heartbeat_interval: Duration,
    /// Silence longer than this declares a worker dead.
    pub heartbeat_timeout: Duration,
    /// Per-barrier deadline: a worker that heartbeats but produces no
    /// frame within this window is wedged and treated as dead.
    pub rpc_deadline: Duration,
    /// Deadline for joins, job rebuilds, and restores (graph generation
    /// happens under this one, so it is the generous deadline).
    pub setup_deadline: Duration,
    /// Total respawn budget across the run.
    pub max_respawns: u32,
    /// Fault plan: `crash@S:mM` clauses become real `SIGKILL`s of worker
    /// processes; link clauses drive retry accounting on the transport.
    pub faults: FaultPlan,
}

impl ProcessConfig {
    /// Config with test-friendly defaults for `workers` processes
    /// started by `worker_cmd`.
    pub fn new(workers: usize, worker_cmd: Vec<String>) -> Self {
        ProcessConfig {
            workers,
            worker_cmd,
            heartbeat_interval: Duration::from_millis(100),
            heartbeat_timeout: Duration::from_millis(1500),
            rpc_deadline: Duration::from_secs(30),
            setup_deadline: Duration::from_secs(60),
            max_respawns: 3,
            faults: FaultPlan::default(),
        }
    }
}

/// What supervision had to do during a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Workers declared dead (heartbeat loss or RPC deadline).
    pub worker_deaths: u64,
    /// Recovery rounds (epoch bumps).
    pub recoveries: u64,
    /// Supersteps re-executed after rollbacks.
    pub replayed_supersteps: u64,
    /// Link-level retransmissions/dedups charged by the fault plan.
    pub link_retries: u64,
    /// Worker processes respawned.
    pub respawns: u64,
}

/// Outcome of a distributed run.
#[derive(Clone, Debug)]
pub struct AppOutput {
    /// FNV-1a digest over the canonical result encoding (global-order
    /// values for iteration apps, merged paths for walks) — the
    /// cross-backend bit-identity token.
    pub digest: u64,
    /// Logical supersteps executed (replays not double-counted).
    pub supersteps: u64,
    /// Supervision counters.
    pub recovery: RecoveryStats,
}

/// Driver-held checkpoint: per-worker snapshot bytes plus the driver's
/// own counters at the same barrier. `states: None` is the implicit
/// initial checkpoint (workers re-initialize deterministically).
struct CheckpointStore {
    superstep: u64,
    states: Option<Vec<Vec<u8>>>,
    total_steps: u64,
    message_walks: u64,
}

struct Event {
    machine: usize,
    msg: Result<WorkerMsg, ClusterError>,
}

/// One worker process slot.
struct Slot {
    child: Option<Child>,
    writer: Option<TcpStream>,
    last_seen: Arc<Mutex<Instant>>,
}

enum Collected<T> {
    Done(Vec<T>),
    /// Machines declared dead while waiting.
    Dead(Vec<usize>),
}

struct Driver {
    spec: JobSpec,
    cfg: ProcessConfig,
    cluster: Cluster,
    addr: String,
    key: u64,
    listener: Arc<TcpListener>,
    acceptor_stop: Arc<AtomicBool>,
    slots: Vec<Slot>,
    events: Receiver<Event>,
    _events_tx: Sender<Event>,
    joins: Receiver<(u32, TcpStream)>,
    epoch: u32,
    stats: RecoveryStats,
    faults: FaultState,
    crash_fired: Vec<bool>,
}

/// Runs `spec` on the process backend.
pub fn run_process(spec: &JobSpec, cfg: &ProcessConfig) -> Result<AppOutput, ClusterError> {
    if cfg.workers != spec.parts as usize {
        return Err(ClusterError::unrecoverable(format!(
            "worker count {} must equal partition count {}",
            cfg.workers, spec.parts
        )));
    }
    if cfg.worker_cmd.is_empty() {
        return Err(ClusterError::unrecoverable("empty worker command"));
    }
    let mut driver = Driver::start(spec.clone(), cfg.clone())?;
    let out = driver.run();
    driver.shutdown();
    out
}

impl Driver {
    fn start(spec: JobSpec, cfg: ProcessConfig) -> Result<Driver, ClusterError> {
        let cluster = spec.build_cluster()?;
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| ClusterError::from_io("bind driver socket", &e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ClusterError::from_io("driver address", &e))?
            .to_string();
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .subsec_nanos() as u64;
        let key = (nanos << 32) | std::process::id() as u64;

        let (events_tx, events) = channel::<Event>();
        let (join_tx, joins) = channel::<(u32, TcpStream)>();
        let listener = Arc::new(listener);
        let acceptor_stop = Arc::new(AtomicBool::new(false));
        spawn_acceptor(
            Arc::clone(&listener),
            Arc::clone(&acceptor_stop),
            key,
            join_tx,
        );

        let k = cfg.workers;
        let crash_fired = vec![false; cfg.faults.crash_schedule().len()];
        let mut driver = Driver {
            faults: FaultState::new(cfg.faults.clone()),
            spec,
            cfg,
            cluster,
            addr,
            key,
            listener,
            acceptor_stop,
            slots: (0..k)
                .map(|_| Slot {
                    child: None,
                    writer: None,
                    last_seen: Arc::new(Mutex::new(Instant::now())),
                })
                .collect(),
            events,
            _events_tx: events_tx,
            joins,
            epoch: 0,
            stats: RecoveryStats::default(),
            crash_fired,
        };

        if federation::collection_enabled() {
            // Prime the federated view: the cluster size gates
            // step_timings completeness, and the structured /healthz
            // body only replaces the plain "ok" on obs runs.
            let mut store = federation::global();
            store.cluster_size = k;
            store.health_enabled = true;
        }

        for m in 0..k {
            driver.spawn_worker(m)?;
        }
        driver.wait_joins((0..k).collect())?;
        for m in 0..k {
            driver.send_to(
                m,
                &DriverMsg::Job {
                    spec: driver.spec.clone(),
                    machine: m as u32,
                },
            );
        }
        Ok(driver)
    }

    fn spawn_worker(&mut self, m: usize) -> Result<(), ClusterError> {
        let cmd = &self.cfg.worker_cmd;
        let child = Command::new(&cmd[0])
            .args(&cmd[1..])
            .arg("--connect")
            .arg(&self.addr)
            .arg("--worker-id")
            .arg(m.to_string())
            .arg("--key")
            .arg(self.key.to_string())
            .arg("--heartbeat-ms")
            .arg(self.cfg.heartbeat_interval.as_millis().to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| ClusterError::unrecoverable(format!("spawn worker {m}: {e}")))?;
        self.slots[m].child = Some(child);
        Ok(())
    }

    /// Waits until every machine in `expect` has joined, registering
    /// connections (and reader threads) as they arrive.
    fn wait_joins(&mut self, mut expect: Vec<usize>) -> Result<(), ClusterError> {
        let deadline = Instant::now() + self.cfg.setup_deadline;
        while !expect.is_empty() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ClusterError::Timeout {
                    what: format!("join from workers {expect:?}"),
                });
            }
            match self
                .joins
                .recv_timeout(remaining.min(Duration::from_millis(100)))
            {
                Ok((worker_id, stream)) => {
                    let m = worker_id as usize;
                    if let Some(pos) = expect.iter().position(|&e| e == m) {
                        expect.swap_remove(pos);
                        self.register_conn(m, stream);
                    }
                    // A join for a machine we are not waiting on is a
                    // zombie from a previous incarnation; drop it.
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ClusterError::unrecoverable("acceptor thread exited"));
                }
            }
        }
        Ok(())
    }

    fn register_conn(&mut self, m: usize, stream: TcpStream) {
        *self.slots[m]
            .last_seen
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Instant::now();
        let reader = stream.try_clone().ok();
        self.slots[m].writer = Some(stream);
        if let Some(reader) = reader {
            spawn_reader(
                m,
                reader,
                self._events_tx.clone(),
                Arc::clone(&self.slots[m].last_seen),
            );
        }
    }

    /// Best-effort frame send; a broken pipe is not a verdict (the
    /// heartbeat supervisor will reach one).
    fn send_to(&mut self, m: usize, msg: &DriverMsg) {
        let (kind, payload) = msg.to_frame();
        if let Some(w) = &mut self.slots[m].writer {
            let _ = frame::write_frame(w, kind, &payload);
        }
    }

    fn broadcast(&mut self, msg: &DriverMsg) {
        for m in 0..self.cfg.workers {
            self.send_to(m, msg);
        }
    }

    fn elapsed_since_seen(&self, m: usize) -> Duration {
        self.slots[m]
            .last_seen
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .elapsed()
    }

    /// Waits until `matcher` has produced a value for every machine.
    /// Heartbeats refresh liveness as a side effect of the reader
    /// threads; stale-epoch frames are discarded here.
    fn collect<T>(
        &mut self,
        what: &str,
        deadline: Duration,
        mut matcher: impl FnMut(WorkerMsg) -> Option<T>,
    ) -> Result<Collected<T>, ClusterError> {
        let k = self.cfg.workers;
        let deadline_at = Instant::now() + deadline;
        let mut out: Vec<Option<T>> = (0..k).map(|_| None).collect();
        let mut got = 0usize;
        loop {
            if got == k {
                return Ok(Collected::Done(
                    out.into_iter().map(|t| t.expect("collected")).collect(),
                ));
            }
            match self.events.recv_timeout(Duration::from_millis(25)) {
                Ok(Event {
                    machine,
                    msg: Ok(msg),
                }) => {
                    if matches!(msg, WorkerMsg::Heartbeat { .. }) {
                        continue;
                    }
                    if matches!(msg, WorkerMsg::ObsReport { .. }) {
                        // Out-of-band telemetry: absorbed before the
                        // stale-epoch drop (a pre-death report is still
                        // the freshest view of that worker) and never
                        // counted toward any barrier.
                        self.absorb_obs_report(machine, msg);
                        continue;
                    }
                    if msg_epoch(&msg).is_some_and(|e| e != self.epoch) {
                        continue; // pre-recovery leftover
                    }
                    if machine < k && out[machine].is_none() {
                        if let Some(t) = matcher(msg) {
                            out[machine] = Some(t);
                            got += 1;
                        }
                    }
                }
                // A connection error is noted but not sentenced: the
                // heartbeat check below is the only judge of death.
                Ok(Event { msg: Err(_), .. }) => {}
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ClusterError::unrecoverable("event channel closed"));
                }
            }
            let dead: Vec<usize> = (0..k)
                .filter(|&m| {
                    out[m].is_none() && self.elapsed_since_seen(m) > self.cfg.heartbeat_timeout
                })
                .collect();
            if !dead.is_empty() {
                return Ok(Collected::Dead(dead));
            }
            if Instant::now() > deadline_at {
                // Still heartbeating but wedged: the per-RPC deadline
                // converts "no progress" into the same verdict.
                let dead: Vec<usize> = (0..k).filter(|&m| out[m].is_none()).collect();
                if dead.is_empty() {
                    return Err(ClusterError::Timeout {
                        what: what.to_string(),
                    });
                }
                return Ok(Collected::Dead(dead));
            }
        }
    }

    /// Folds one worker `ObsReport` into the global federation store:
    /// NTP-style clock sample from the `StepBegin` echo, then the
    /// snapshot/span/step-timing merge. Decode failures are logged and
    /// dropped — telemetry must never fail a run.
    fn absorb_obs_report(&mut self, machine: usize, msg: WorkerMsg) {
        let WorkerMsg::ObsReport {
            epoch,
            seq,
            superstep,
            has_step,
            compute_ns,
            comm_ns,
            echo_ns,
            recv_ns,
            send_ns,
            metrics,
            spans,
            profile,
        } = msg
        else {
            return;
        };
        if !federation::collection_enabled() {
            return;
        }
        let t3 = tracer::now_ns();
        let mut store = federation::global();
        if echo_ns != 0 {
            // t0=echo_ns (driver send), t1=recv_ns (worker recv),
            // t2=send_ns (worker send), t3 (driver recv):
            // rtt = (t3-t0) - (t2-t1), offset = ((t1-t0)+(t2-t3))/2
            // with offset = worker clock - driver clock.
            let rtt = t3
                .saturating_sub(echo_ns)
                .saturating_sub(send_ns.saturating_sub(recv_ns));
            let offset = ((recv_ns as i128 - echo_ns as i128) + (send_ns as i128 - t3 as i128)) / 2;
            rpc_rtt_histogram().observe(rtt as f64);
            store.record_clock_sample(
                machine as u32,
                rtt,
                offset.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
            );
        }
        let step = has_step.then_some((
            superstep,
            federation::StepSample {
                epoch,
                compute_ns,
                comm_ns,
            },
        ));
        if let Err(e) = store.absorb_report(machine as u32, epoch, seq, step, &metrics, &spans) {
            eprintln!("bpart: dropped obs report from worker {machine}: {e}");
        }
        if let Err(e) = store.absorb_profile(machine as u32, epoch, seq, &profile) {
            eprintln!("bpart: dropped obs profile from worker {machine}: {e}");
        }
    }

    /// Kills, respawns, and restores after `dead` workers were declared
    /// dead at `superstep`. Returns the post-restore `Ready` aggregates
    /// (machine order). Loops if more workers die mid-recovery.
    fn recover(
        &mut self,
        mut dead: Vec<usize>,
        superstep: u64,
        ckpt: &CheckpointStore,
    ) -> Result<Vec<f64>, ClusterError> {
        self.stats.replayed_supersteps += superstep.saturating_sub(ckpt.superstep);
        bpart_obs::metrics::counter("dist.replayed_supersteps")
            .add(superstep.saturating_sub(ckpt.superstep));
        let obs = federation::collection_enabled();
        if obs {
            let mut store = federation::global();
            store.recovering = true;
            for &m in &dead {
                store.mark_dead(m as u32);
            }
        }
        loop {
            self.epoch += 1;
            self.stats.recoveries += 1;
            self.stats.worker_deaths += dead.len() as u64;
            bpart_obs::metrics::counter("dist.recoveries").inc();
            bpart_obs::metrics::counter("dist.worker_deaths").add(dead.len() as u64);
            for &m in &dead {
                if self.stats.respawns >= self.cfg.max_respawns as u64 {
                    return Err(ClusterError::WorkerDead {
                        worker: m as MachineId,
                        superstep,
                    });
                }
                self.stats.respawns += 1;
                bpart_obs::metrics::counter("dist.respawns").inc();
                if let Some(mut child) = self.slots[m].child.take() {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                self.slots[m].writer = None;
                self.spawn_worker(m)?;
                self.wait_joins(vec![m])?;
                self.send_to(
                    m,
                    &DriverMsg::Job {
                        spec: self.spec.clone(),
                        machine: m as u32,
                    },
                );
            }
            // Everyone — survivors included — rolls back to the same
            // barrier, so the replay is globally consistent.
            for m in 0..self.cfg.workers {
                let state = ckpt.states.as_ref().map(|s| s[m].clone());
                self.send_to(
                    m,
                    &DriverMsg::Restore {
                        epoch: self.epoch,
                        superstep: ckpt.superstep,
                        state,
                    },
                );
            }
            match self.collect(
                "Ready after restore",
                self.cfg.setup_deadline,
                |msg| match msg {
                    WorkerMsg::Ready { agg, .. } => Some(agg),
                    _ => None,
                },
            )? {
                Collected::Done(aggs) => {
                    if obs {
                        federation::global().recovering = false;
                    }
                    return Ok(aggs);
                }
                Collected::Dead(more) => {
                    if obs {
                        let mut store = federation::global();
                        for &m in &more {
                            store.mark_dead(m as u32);
                        }
                    }
                    dead = more;
                    continue;
                }
            }
        }
    }

    /// Fires scheduled chaos kills for `superstep`: a real `SIGKILL` to
    /// the worker process, delivered right after `StepBegin` went out —
    /// mid-superstep, like the threaded engine's barrier crashes.
    fn fire_chaos_kills(&mut self, superstep: u64) {
        let schedule = self.cfg.faults.crash_schedule();
        for (i, &(s, m)) in schedule.iter().enumerate() {
            if self.crash_fired[i] || s as u64 != superstep {
                continue;
            }
            self.crash_fired[i] = true;
            if let Some(child) = &mut self.slots[m as usize].child {
                let _ = child.kill();
            }
        }
    }

    fn run(&mut self) -> Result<AppOutput, ClusterError> {
        let k = self.cfg.workers;
        let is_walk = self.spec.app.is_walk();
        let max_supersteps: Option<u64> = match &self.spec.app {
            AppSpec::PageRank { iters } => Some(*iters as u64),
            _ => None,
        };

        // Initial `Ready`: aggregate parts (iteration) or queue lengths
        // (walks), computed from the deterministic initial state.
        let ready =
            match self.collect("initial Ready", self.cfg.setup_deadline, |msg| match msg {
                WorkerMsg::Ready { agg, .. } => Some(agg),
                _ => None,
            })? {
                Collected::Done(aggs) => aggs,
                Collected::Dead(dead) => {
                    return Err(ClusterError::WorkerDead {
                        worker: dead[0] as MachineId,
                        superstep: 0,
                    })
                }
            };
        let mut agg: f64 = ready.iter().sum();
        let mut walk_active: u64 = ready.iter().map(|&a| a as u64).sum();

        let mut ckpt = CheckpointStore {
            superstep: 0,
            states: None,
            total_steps: 0,
            message_walks: 0,
        };
        let mut total_steps = 0u64;
        let mut message_walks = 0u64;
        let mut superstep = 0u64;
        // Highest superstep completed so far — a step at or below it is
        // a post-rollback replay (stamped on its span for `analyze`).
        let mut high_water: Option<u64> = None;
        let progress = bpart_obs::metrics::gauge("dist.progress_superstep");

        'run: loop {
            if let Some(max) = max_supersteps {
                if superstep >= max {
                    break;
                }
            }
            if is_walk && walk_active == 0 {
                break;
            }
            progress.set(superstep as f64);

            let checkpoint_due = self
                .spec
                .checkpoint_every
                .is_some_and(|every| every > 0 && (superstep + 1) % every as u64 == 0);
            let obs = federation::collection_enabled();
            // One driver-side span per superstep; worker spans nest
            // under it via the span id noted in the federation store.
            let mut step_span = obs.then(|| {
                let mut g = tracer::span("cluster.superstep");
                g.attr("superstep", superstep.to_string());
                g.attr("epoch", self.epoch.to_string());
                if let Some(id) = g.id() {
                    federation::global().note_superstep_span(self.epoch, superstep, id);
                }
                g
            });
            self.broadcast(&DriverMsg::StepBegin {
                epoch: self.epoch,
                superstep,
                agg,
                checkpoint: checkpoint_due,
                sent_ns: tracer::now_ns(),
                obs,
            });
            self.fire_chaos_kills(superstep);

            // ---- barrier 1: everyone's outgoing rows ----------------------
            let step_superstep = superstep;
            let rows_matrix =
                match self.collect("StepData", self.cfg.rpc_deadline, move |msg| match msg {
                    WorkerMsg::StepData {
                        superstep: s, rows, ..
                    } if s == step_superstep => Some(rows),
                    _ => None,
                })? {
                    Collected::Done(rows) => rows,
                    Collected::Dead(dead) => {
                        let aggs = self.recover(dead, superstep, &ckpt)?;
                        agg = aggs.iter().sum();
                        walk_active = aggs.iter().map(|&a| a as u64).sum();
                        superstep = ckpt.superstep;
                        total_steps = ckpt.total_steps;
                        message_walks = ckpt.message_walks;
                        continue 'run;
                    }
                };
            let mut rows_matrix: Vec<Vec<RowSeg>> = rows_matrix;
            for (from, row) in rows_matrix.iter().enumerate() {
                if row.len() != k {
                    return Err(ClusterError::corrupt(format!(
                        "worker {from} sent {} row segments, expected {k}",
                        row.len()
                    )));
                }
            }

            // Link-fault accounting on the real transport: same per-link
            // staged counts as the threaded engine sees, same stateless
            // hash, so the retry counters agree bit-for-bit.
            if self.cfg.faults.has_link_faults() {
                let mut retries = 0u64;
                for (from, row) in rows_matrix.iter().enumerate() {
                    for (to, seg) in row.iter().enumerate() {
                        if seg.count == 0 {
                            continue;
                        }
                        let overhead = self.faults.link_overhead(
                            superstep as usize,
                            from as MachineId,
                            to as MachineId,
                            seg.count as u64,
                        );
                        retries += overhead.total();
                    }
                }
                self.stats.link_retries += retries;
                bpart_obs::metrics::counter("dist.link_retries").add(retries);
            }
            if is_walk {
                message_walks += rows_matrix
                    .iter()
                    .enumerate()
                    .flat_map(|(from, row)| {
                        row.iter()
                            .enumerate()
                            .filter(move |(to, _)| *to != from)
                            .map(|(_, seg)| seg.count as u64)
                    })
                    .sum::<u64>();
            }

            // ---- exchange: inbox[to] = segments in sender order -----------
            for to in 0..k {
                let rows: Vec<RowSeg> = rows_matrix
                    .iter_mut()
                    .map(|row| std::mem::take(&mut row[to]))
                    .collect();
                self.send_to(
                    to,
                    &DriverMsg::Inbox {
                        epoch: self.epoch,
                        superstep,
                        rows,
                    },
                );
            }

            // ---- barrier 2: superstep applied everywhere ------------------
            let done =
                match self.collect("StepDone", self.cfg.rpc_deadline, move |msg| match msg {
                    WorkerMsg::StepDone {
                        superstep: s,
                        active,
                        agg,
                        snapshot,
                        ..
                    } if s == step_superstep => Some((active, agg, snapshot)),
                    _ => None,
                })? {
                    Collected::Done(done) => done,
                    Collected::Dead(dead) => {
                        let aggs = self.recover(dead, superstep, &ckpt)?;
                        agg = aggs.iter().sum();
                        walk_active = aggs.iter().map(|&a| a as u64).sum();
                        superstep = ckpt.superstep;
                        total_steps = ckpt.total_steps;
                        message_walks = ckpt.message_walks;
                        continue 'run;
                    }
                };

            // Stamp the superstep span with the federated per-worker
            // timings (every worker's ObsReport arrived before its
            // StepDone, so the barrier completing means they are here).
            if let Some(g) = &mut step_span {
                let store = federation::global();
                if let Some((compute, comm)) = store.step_timings(superstep) {
                    // The straggler factor the `straggler` alert rule
                    // watches: slowest worker's compute vs the mean.
                    let mean = compute.iter().sum::<f64>() / compute.len() as f64;
                    let max = compute.iter().fold(0.0f64, |a, &b| a.max(b));
                    if mean > 0.0 {
                        bpart_obs::metrics::gauge("dist.straggler_factor").set(max / mean);
                    }
                    g.attr("compute", bpart_obs::analysis::join_timings(&compute));
                    g.attr("comm", bpart_obs::analysis::join_timings(&comm));
                }
                drop(store);
                if high_water.is_some_and(|h| superstep <= h) {
                    g.attr("replay", "true");
                    // Replayed supersteps are post-mortem gold: pin them
                    // past the tail sampler so the ring keeps full detail.
                    g.keep();
                }
            }
            drop(step_span);
            high_water = Some(high_water.map_or(superstep, |h| h.max(superstep)));

            let active_total: u64 = done.iter().map(|(a, _, _)| a).sum();
            let agg_parts: f64 = done.iter().map(|(_, a, _)| a).sum();
            if is_walk {
                total_steps += agg_parts as u64;
                walk_active = active_total;
            } else {
                agg = agg_parts;
            }

            if checkpoint_due {
                let mut states = Vec::with_capacity(k);
                for (m, (_, _, snap)) in done.into_iter().enumerate() {
                    states.push(snap.ok_or_else(|| {
                        ClusterError::corrupt(format!("worker {m} omitted requested snapshot"))
                    })?);
                }
                ckpt = CheckpointStore {
                    superstep: superstep + 1,
                    states: Some(states),
                    total_steps,
                    message_walks,
                };
                bpart_obs::metrics::counter("dist.checkpoints").inc();
            }

            superstep += 1;
            if !is_walk && active_total == 0 {
                break;
            }
        }
        progress.set(superstep as f64);

        // ---- gather final results -----------------------------------------
        self.broadcast(&DriverMsg::Finish { epoch: self.epoch });
        let finals = match self.collect("Final", self.cfg.rpc_deadline, |msg| match msg {
            WorkerMsg::Final { result, .. } => Some(result),
            _ => None,
        })? {
            Collected::Done(finals) => finals,
            Collected::Dead(dead) => {
                // The run is already past its last barrier; a death here
                // cannot be replayed into the gather, so it is terminal.
                return Err(ClusterError::WorkerDead {
                    worker: dead[0] as MachineId,
                    superstep,
                });
            }
        };

        let digest = self.assemble_digest(finals)?;
        let _ = (total_steps, message_walks); // driver-side walk counters (parity with engine run stats)
        Ok(AppOutput {
            digest,
            supersteps: superstep,
            recovery: self.stats.clone(),
        })
    }

    /// Reassembles per-worker final payloads into the canonical global
    /// result and digests it.
    fn assemble_digest(&self, finals: Vec<Vec<u8>>) -> Result<u64, ClusterError> {
        let n = self.cluster.graph().num_vertices();
        match &self.spec.app {
            AppSpec::PageRank { .. } => {
                let values = self.gather_global::<f64>(finals, n)?;
                Ok(digest_wire(&values))
            }
            AppSpec::ConnectedComponents => {
                let values = self.gather_global::<VertexId>(finals, n)?;
                Ok(digest_wire(&values))
            }
            AppSpec::DeepWalk { per_vertex, .. } | AppSpec::SimpleWalk { per_vertex, .. } => {
                let mut log: Vec<(u64, u32, VertexId)> = Vec::new();
                for bytes in &finals {
                    log.extend(decode_all::<(u64, u32, VertexId)>(bytes)?);
                }
                let paths = paths_from_log(log, n * *per_vertex as usize);
                Ok(crate::digest_paths(&paths))
            }
        }
    }

    fn gather_global<T: crate::wire::Wire + Clone + Default>(
        &self,
        finals: Vec<Vec<u8>>,
        n: usize,
    ) -> Result<Vec<T>, ClusterError> {
        let mut values: Vec<T> = vec![T::default(); n];
        for (m, bytes) in finals.iter().enumerate() {
            let local: Vec<T> = decode_all(bytes)?;
            let members = self.cluster.local_vertices(m as u32);
            if local.len() != members.len() {
                return Err(ClusterError::corrupt(format!(
                    "worker {m} final length {} != {} members",
                    local.len(),
                    members.len()
                )));
            }
            for (li, &v) in members.iter().enumerate() {
                values[v as usize] = local[li].clone();
            }
        }
        Ok(values)
    }

    /// Clean teardown: ask workers to exit, then make sure they did.
    fn shutdown(&mut self) {
        self.broadcast(&DriverMsg::Shutdown);
        for slot in &mut self.slots {
            if let Some(mut child) = slot.child.take() {
                let mut exited = false;
                for _ in 0..20 {
                    if matches!(child.try_wait(), Ok(Some(_))) {
                        exited = true;
                        break;
                    }
                    thread::sleep(Duration::from_millis(25));
                }
                if !exited {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
        }
        // Wake the acceptor so its thread exits with the run.
        self.acceptor_stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(&self.addr);
        let _ = self.listener.local_addr();
    }
}

impl Drop for Driver {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if let Some(mut child) = slot.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        self.acceptor_stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(&self.addr);
    }
}

fn msg_epoch(msg: &WorkerMsg) -> Option<u32> {
    match msg {
        WorkerMsg::Join { .. } => None,
        WorkerMsg::Ready { epoch, .. }
        | WorkerMsg::StepData { epoch, .. }
        | WorkerMsg::StepDone { epoch, .. }
        | WorkerMsg::Final { epoch, .. }
        | WorkerMsg::Heartbeat { epoch }
        | WorkerMsg::ObsReport { epoch, .. } => Some(*epoch),
    }
}

/// Accepts connections for the whole session; each one gets a short
/// helper thread that reads the `Join` frame (so a slow client cannot
/// stall the accept loop) and hands the authenticated stream over.
fn spawn_acceptor(
    listener: Arc<TcpListener>,
    stop: Arc<AtomicBool>,
    key: u64,
    join_tx: Sender<(u32, TcpStream)>,
) {
    thread::Builder::new()
        .name("dist-acceptor".into())
        .spawn(move || loop {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let tx = join_tx.clone();
            thread::spawn(move || {
                stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
                if let Ok(f) = frame::read_frame(&mut stream) {
                    if let Ok(WorkerMsg::Join {
                        worker_id,
                        key: got,
                    }) = WorkerMsg::from_frame(&f)
                    {
                        if got == key {
                            stream.set_read_timeout(None).ok();
                            stream.set_nodelay(true).ok();
                            let _ = tx.send((worker_id, stream));
                        }
                    }
                }
            });
        })
        .expect("spawn acceptor thread");
}

/// Per-connection reader: stamps liveness on every frame and forwards
/// decoded messages. Exits on the first read or decode error — the
/// frozen `last_seen` then lets the heartbeat supervisor reach the
/// death verdict.
fn spawn_reader(
    machine: usize,
    mut stream: TcpStream,
    tx: Sender<Event>,
    last_seen: Arc<Mutex<Instant>>,
) {
    thread::Builder::new()
        .name(format!("dist-reader-{machine}"))
        .spawn(move || loop {
            match read_frame_blocking(&mut stream) {
                Ok(frame) => {
                    *last_seen.lock().unwrap_or_else(|e| e.into_inner()) = Instant::now();
                    match WorkerMsg::from_frame(&frame) {
                        Ok(msg) => {
                            if tx
                                .send(Event {
                                    machine,
                                    msg: Ok(msg),
                                })
                                .is_err()
                            {
                                return;
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Event {
                                machine,
                                msg: Err(e),
                            });
                            return;
                        }
                    }
                }
                Err(e) => {
                    let _ = tx.send(Event {
                        machine,
                        msg: Err(e),
                    });
                    return;
                }
            }
        })
        .expect("spawn reader thread");
}
