//! `bpart-workerd`: one supervised BSP worker process.
//!
//! Started by the driver with `--connect ADDR --worker-id N --key K
//! --heartbeat-ms MS`; not meant to be launched by hand.

use bpart_dist::{run_worker, WorkerConfig};
use std::process::ExitCode;
use std::time::Duration;

fn parse_args() -> Result<WorkerConfig, String> {
    let mut connect = None;
    let mut worker_id = None;
    let mut key = None;
    let mut heartbeat_ms = 100u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--worker-id" => {
                worker_id = Some(
                    value("--worker-id")?
                        .parse::<u32>()
                        .map_err(|e| format!("--worker-id: {e}"))?,
                )
            }
            "--key" => {
                key = Some(
                    value("--key")?
                        .parse::<u64>()
                        .map_err(|e| format!("--key: {e}"))?,
                )
            }
            "--heartbeat-ms" => {
                heartbeat_ms = value("--heartbeat-ms")?
                    .parse::<u64>()
                    .map_err(|e| format!("--heartbeat-ms: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(WorkerConfig {
        connect: connect.ok_or("missing --connect")?,
        worker_id: worker_id.ok_or("missing --worker-id")?,
        key: key.ok_or("missing --key")?,
        heartbeat: Duration::from_millis(heartbeat_ms.max(1)),
    })
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("bpart-workerd: {e}");
            eprintln!(
                "usage: bpart-workerd --connect ADDR --worker-id N --key K [--heartbeat-ms MS]"
            );
            return ExitCode::from(2);
        }
    };
    let id = cfg.worker_id;
    match run_worker(cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bpart-workerd[{id}]: {e}");
            ExitCode::FAILURE
        }
    }
}
