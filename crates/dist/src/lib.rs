//! Distributed BSP execution: real OS processes behind a [`Backend`]
//! switch.
//!
//! The thread-simulated engines in `bpart-engine` / `bpart-walker` are
//! the semantic oracle; this crate runs the *same* superstep order over
//! a length-prefixed TCP frame protocol in a star topology (driver in
//! the middle, one worker process per BSP machine). The contract is
//! bit-identity: on a fixed [`JobSpec`], PageRank, connected components,
//! and random walks produce byte-for-byte the same results on both
//! backends — even when worker processes are `SIGKILL`ed mid-superstep
//! and recovered from checkpoints.
//!
//! Layer map:
//!
//! * [`frame`] — length-prefixed, checksummed wire frames;
//! * [`wire`] — payload primitive encoding (no serde);
//! * [`proto`] — typed driver/worker messages over frames;
//! * [`spec`] — a self-contained job description every process can
//!   deterministically rebuild the cluster from;
//! * [`transport`] — deadlines, backoff, heartbeats;
//! * [`step`] — the superstep state machines that mirror the engines;
//! * [`worker`] / [`driver`] — the two process roles.

pub mod driver;
pub mod error;
pub mod frame;
pub mod proto;
pub mod spec;
pub mod step;
pub mod transport;
pub mod wire;
pub mod worker;

pub use driver::{run_process, AppOutput, ProcessConfig, RecoveryStats};
pub use error::ClusterError;
pub use spec::{AppSpec, GraphSource, JobSpec};
pub use worker::{run_worker, WorkerConfig};

use bpart_cluster::exec::ExecMode;
use bpart_cluster::{CostModel, FaultPlan};
use bpart_graph::VertexId;
use wire::{encode_all, Wire};

/// Configuration for the in-process (thread-simulated) backend — the
/// oracle the process backend is checked against.
#[derive(Clone, Debug, Default)]
pub struct ThreadsConfig {
    /// Sequential or one-thread-per-machine execution.
    pub mode: ExecMode,
    /// Simulated fault plan (crashes, link faults).
    pub faults: FaultPlan,
    /// Checkpoint interval override; defaults to the job spec's.
    pub checkpoint_every: Option<u32>,
}

/// Where a job runs: simulated machines in this process, or real
/// supervised worker processes.
#[derive(Debug)]
pub enum Backend {
    /// In-process simulation (`bpart-engine` / `bpart-walker`).
    Threads(ThreadsConfig),
    /// One OS process per machine, driven over TCP.
    Process(ProcessConfig),
}

/// Runs a job on the chosen backend and reports the result digest plus
/// recovery telemetry. The digest is computed the same way on both
/// backends, so equal digests mean bit-identical results.
pub fn run_job(spec: &JobSpec, backend: &Backend) -> Result<AppOutput, ClusterError> {
    match backend {
        Backend::Process(cfg) => driver::run_process(spec, cfg),
        Backend::Threads(cfg) => run_threads(spec, cfg),
    }
}

fn run_threads(spec: &JobSpec, cfg: &ThreadsConfig) -> Result<AppOutput, ClusterError> {
    let cluster = spec.build_cluster()?;
    let checkpoint_every = cfg.checkpoint_every.or(spec.checkpoint_every);
    let fail = |e: bpart_cluster::UnrecoverableFailure| ClusterError::unrecoverable(e.to_string());
    match &spec.app {
        AppSpec::PageRank { iters } => {
            let mut engine =
                bpart_engine::IterationEngine::new(cluster, CostModel::default(), cfg.mode)
                    .with_faults(cfg.faults.clone());
            if let Some(every) = checkpoint_every.filter(|&e| e > 0) {
                engine = engine.with_checkpoint_every(every as usize);
            }
            let run = engine
                .try_run(&bpart_engine::apps::PageRank::new(*iters))
                .map_err(fail)?;
            Ok(AppOutput {
                digest: digest_wire(&run.values),
                supersteps: run.iterations as u64,
                recovery: threads_stats(&run.telemetry),
            })
        }
        AppSpec::ConnectedComponents => {
            let mut engine =
                bpart_engine::IterationEngine::new(cluster, CostModel::default(), cfg.mode)
                    .with_faults(cfg.faults.clone());
            if let Some(every) = checkpoint_every.filter(|&e| e > 0) {
                engine = engine.with_checkpoint_every(every as usize);
            }
            let run = engine
                .try_run(&bpart_engine::apps::ConnectedComponents)
                .map_err(fail)?;
            Ok(AppOutput {
                digest: digest_wire(&run.values),
                supersteps: run.iterations as u64,
                recovery: threads_stats(&run.telemetry),
            })
        }
        AppSpec::DeepWalk {
            walk_len,
            seed,
            per_vertex,
        } => run_threads_walk(
            cluster,
            cfg,
            checkpoint_every,
            &bpart_walker::apps::DeepWalk::new(*walk_len),
            *seed,
            *per_vertex,
        ),
        AppSpec::SimpleWalk {
            walk_len,
            seed,
            per_vertex,
        } => run_threads_walk(
            cluster,
            cfg,
            checkpoint_every,
            &bpart_walker::apps::SimpleRandomWalk::new(*walk_len),
            *seed,
            *per_vertex,
        ),
    }
}

fn run_threads_walk<A: bpart_walker::WalkApp>(
    cluster: bpart_cluster::Cluster,
    cfg: &ThreadsConfig,
    checkpoint_every: Option<u32>,
    app: &A,
    seed: u64,
    per_vertex: u32,
) -> Result<AppOutput, ClusterError> {
    let mut engine = bpart_walker::WalkEngine::new(cluster, CostModel::default(), cfg.mode)
        .with_faults(cfg.faults.clone())
        .with_recording();
    if let Some(every) = checkpoint_every.filter(|&e| e > 0) {
        engine = engine.with_checkpoint_every(every as usize);
    }
    let run = engine
        .try_run(app, &bpart_walker::WalkStarts::PerVertex(per_vertex), seed)
        .map_err(|e| ClusterError::unrecoverable(e.to_string()))?;
    let paths = run
        .paths
        .ok_or_else(|| ClusterError::unrecoverable("walk engine did not record paths"))?;
    Ok(AppOutput {
        digest: digest_paths(&paths),
        supersteps: run.iterations as u64,
        recovery: threads_stats(&run.telemetry),
    })
}

/// Maps the simulated engines' telemetry onto the process backend's
/// recovery counters: link retries (fault-plan dropped + duplicated) and
/// replayed supersteps are defined identically on both sides, which is
/// what the drop-link parity fixture checks.
fn threads_stats(telemetry: &bpart_cluster::Telemetry) -> RecoveryStats {
    RecoveryStats {
        link_retries: telemetry.total_faults(),
        replayed_supersteps: telemetry.replayed_supersteps() as u64,
        ..RecoveryStats::default()
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1_0000_0000_01b3;

/// FNV-1a over raw bytes.
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digest of a value sequence via its canonical wire encoding.
pub fn digest_wire<T: Wire>(items: &[T]) -> u64 {
    let mut buf = Vec::new();
    encode_all(items, &mut buf);
    digest_bytes(&buf)
}

/// Digest of recorded walk paths (length-prefixed per path, so path
/// boundaries are part of the identity).
pub fn digest_paths(paths: &[Vec<VertexId>]) -> u64 {
    let mut buf = Vec::with_capacity(paths.iter().map(|p| 4 + p.len() * 4).sum());
    for p in paths {
        buf.extend_from_slice(&(p.len() as u32).to_le_bytes());
        for &v in p {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    digest_bytes(&buf)
}

/// Rebuilds per-walker paths from a merged `(walker, step, vertex)` log —
/// the exact merge the walk engine performs across machine-local logs.
pub fn paths_from_log(
    mut log: Vec<(u64, u32, VertexId)>,
    num_walkers: usize,
) -> Vec<Vec<VertexId>> {
    log.sort_unstable();
    let mut paths = vec![Vec::new(); num_walkers];
    for (id, _step, v) in log {
        if let Some(p) = paths.get_mut(id as usize) {
            p.push(v);
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_and_boundary_sensitive() {
        let a = digest_wire(&[1u32, 2, 3]);
        let b = digest_wire(&[3u32, 2, 1]);
        assert_ne!(a, b);
        let p1 = digest_paths(&[vec![1, 2], vec![3]]);
        let p2 = digest_paths(&[vec![1], vec![2, 3]]);
        assert_ne!(p1, p2);
    }

    #[test]
    fn paths_from_log_sorts_by_walker_then_step() {
        let log = vec![(1u64, 1u32, 7u32), (0, 0, 2), (1, 0, 5), (0, 1, 4)];
        let paths = paths_from_log(log, 2);
        assert_eq!(paths, vec![vec![2, 4], vec![5, 7]]);
    }
}
