//! # bpart-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index); this library holds what they share: the scheme roster, dataset
//! loading, wall-clock timing and plain-text table rendering.
//!
//! Every binary honours the `BPART_SCALE` environment variable (default
//! `0.2`): datasets are generated at `scale ×` their preset size, so
//! `BPART_SCALE=1.0 cargo run --release -p bpart-bench --bin table3`
//! reproduces the full-size run while the default stays fast.

use bpart_core::prelude::*;
use bpart_engine::{apps as eapps, IterationEngine};
use bpart_graph::generate::{self, DatasetPreset};
use bpart_graph::CsrGraph;
use bpart_walker::{apps as wapps, WalkEngine, WalkStarts};
use std::sync::Arc;
use std::time::Instant;

/// The scheme roster of the paper's §4 comparisons, in its ordering.
pub fn schemes() -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(ChunkV),
        Box::new(ChunkE),
        Box::new(Fennel::default()),
        Box::new(HashPartitioner::default()),
        Box::new(BPart::default()),
    ]
}

/// Scheme roster plus the offline multilevel baseline (§4.2).
pub fn schemes_with_multilevel() -> Vec<Box<dyn Partitioner>> {
    let mut all = schemes();
    all.push(Box::new(bpart_multilevel::Multilevel::default()));
    all
}

/// Experiment scale factor from `BPART_SCALE` (default 0.2).
pub fn scale() -> f64 {
    std::env::var("BPART_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(0.2)
}

/// All three dataset presets generated at the harness scale.
pub fn datasets() -> Vec<(String, CsrGraph)> {
    let s = scale();
    generate::ALL_PRESETS
        .iter()
        .map(|p| {
            let preset: DatasetPreset = p();
            (preset.name.to_string(), preset.generate_scaled(s))
        })
        .collect()
}

/// One named dataset at the harness scale.
pub fn dataset(name: &str) -> CsrGraph {
    let preset = generate::ALL_PRESETS
        .iter()
        .map(|p| p())
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("unknown dataset {name}"));
    preset.generate_scaled(scale())
}

/// Times a closure, returning its result and elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Renders an aligned plain-text table: a header row plus data rows.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Prints a banner naming the experiment and its configuration.
pub fn banner(experiment: &str, detail: &str) {
    println!("== {experiment} ==");
    println!("   {detail}");
    println!("   scale = {} (set BPART_SCALE to change)", scale());
    println!();
}

/// Formats a float with three decimals (the tables' standard precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Minimal JSON emission for the `BENCH_*.json` CI artifacts. The workspace
/// deliberately carries no serde; the harness output is flat enough that
/// string assembly is all that is needed.
pub mod json {
    /// Quotes and escapes a string value.
    pub fn string(v: &str) -> String {
        let mut out = String::with_capacity(v.len() + 2);
        out.push('"');
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Renders a float; non-finite values (which JSON cannot carry) become
    /// `null`.
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// `{"k": v, ...}` from already-rendered values.
    pub fn object(fields: &[(&str, String)]) -> String {
        let body: Vec<String> = fields
            .iter()
            .map(|(k, v)| format!("{}: {v}", string(k)))
            .collect();
        format!("{{{}}}", body.join(", "))
    }

    /// `[v, ...]` from already-rendered values.
    pub fn array(items: &[String]) -> String {
        format!("[{}]", items.join(", "))
    }
}

/// Writes a `BENCH_*.json` artifact into the current directory and echoes
/// the path, so CI can pick it up with a glob.
pub fn write_bench_json(name: &str, payload: &str) {
    std::fs::write(name, payload).unwrap_or_else(|e| panic!("cannot write {name}: {e}"));
    println!("wrote {name}");
}

/// Lowercases a scheme/app label into a history-metric slug
/// (`BPart-P1` → `bpart_p1`).
pub fn metric_slug(label: &str) -> String {
    label
        .chars()
        .map(|c| match c {
            '-' | ' ' | '.' => '_',
            c => c.to_ascii_lowercase(),
        })
        .collect()
}

/// Writes a run-history record to `results/history/<bench>.json` so CI
/// can regression-diff headline bench metrics across commits with
/// `bpart obs diff` (see DESIGN.md §11). The record carries the harness
/// scale so mismatched baselines are visible in the diff header.
pub fn write_history_record(
    bench: &str,
    graph: &str,
    config: &[(&str, String)],
    metrics: &[(String, f64)],
) {
    let mut rec = bpart_obs::history::RunRecord::new(bench, graph);
    rec.set_config("scale", scale());
    for (k, v) in config {
        rec.set_config(k, v);
    }
    for (k, v) in metrics {
        rec.set_metric(k, *v);
    }
    let path = format!("results/history/{bench}.json");
    rec.write(std::path::Path::new(&path))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}

/// The paper's seven-application names in Fig. 14's order: five
/// KnightKing walk apps then the two Gemini iteration apps.
pub fn app_names() -> Vec<&'static str> {
    vec!["PPR", "RWJ", "RWD", "DeepWalk", "node2vec", "PR", "CC"]
}

/// Runs the paper's seven applications (§4.1 parameters: |V| walks, PPR
/// stop 0.1, RWJ jump 0.2, 80-step corpus walks, PR 10 iterations, CC to
/// convergence) on one partitioned cluster and returns each app's total
/// modelled running time, in [`app_names`] order.
pub fn run_paper_apps(graph: &Arc<CsrGraph>, partition: &Arc<Partition>, seed: u64) -> Vec<f64> {
    let starts = WalkStarts::PerVertex(1);
    let mut times = Vec::with_capacity(7);
    let walk_apps: Vec<Box<dyn bpart_walker::WalkApp>> = vec![
        Box::new(wapps::Ppr::new(0.1, 80)),
        Box::new(wapps::Rwj::new(0.2, 10)),
        Box::new(wapps::Rwd::new(0.2, 10)),
        Box::new(wapps::DeepWalk::new(80)),
        Box::new(wapps::Node2vec::new(2.0, 0.5, 80)),
    ];
    for app in &walk_apps {
        let engine = WalkEngine::default_for(graph.clone(), partition.clone());
        let run = engine.run(app.as_ref(), &starts, seed);
        times.push(run.telemetry.total_time());
    }
    let engine = IterationEngine::default_for(graph.clone(), partition.clone());
    times.push(engine.run(&eapps::PageRank::new(10)).telemetry.total_time());
    times.push(
        engine
            .run(&eapps::ConnectedComponents)
            .telemetry
            .total_time(),
    );
    times
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_roster_matches_paper_order() {
        let names: Vec<_> = schemes().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["Chunk-V", "Chunk-E", "Fennel", "Hash", "BPart"]);
        assert_eq!(
            schemes_with_multilevel().last().unwrap().name(),
            "Mt-KaHIP-like"
        );
    }

    #[test]
    fn datasets_come_in_paper_order() {
        std::env::set_var("BPART_SCALE", "0.01");
        let names: Vec<_> = datasets().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["lj_like", "twitter_like", "friendster_like"]);
        std::env::remove_var("BPART_SCALE");
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["name".into(), "v".into()],
            &[
                vec!["a".into(), "1".into()],
                vec!["long".into(), "22".into()],
            ],
        );
        let lines: Vec<_> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn timed_measures_something() {
        let (value, secs) = timed(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        dataset("nope");
    }

    #[test]
    fn json_helpers_render_valid_documents() {
        assert_eq!(json::string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json::number(1.5), "1.5");
        assert_eq!(json::number(f64::INFINITY), "null");
        let doc = json::object(&[
            ("name", json::string("x")),
            ("vals", json::array(&[json::number(1.0), json::number(2.0)])),
        ]);
        assert_eq!(doc, r#"{"name": "x", "vals": [1, 2]}"#);
    }
}
