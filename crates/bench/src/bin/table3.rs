//! Table 3 — edge-cut ratio (cut edges / total edges) of the five schemes
//! on the three datasets, k = 8.

use bpart_bench::{
    banner, datasets, f3, json, metric_slug, render_table, schemes, write_bench_json,
    write_history_record,
};
use bpart_core::metrics;

fn main() {
    banner("Table 3", "edge-cut ratio, k = 8");
    let data = datasets();
    let mut header = vec!["scheme".to_string()];
    header.extend(data.iter().map(|(n, _)| n.clone()));
    let mut rows = Vec::new();
    let mut records = Vec::new();
    let mut hist: Vec<(String, f64)> = Vec::new();
    for scheme in schemes() {
        let mut row = vec![scheme.name().to_string()];
        for (name, g) in &data {
            let p = scheme.partition(g, 8);
            let cut = metrics::edge_cut_ratio(g, &p);
            row.push(f3(cut));
            records.push(json::object(&[
                ("scheme", json::string(scheme.name())),
                ("dataset", json::string(name)),
                ("cut_ratio", json::number(cut)),
            ]));
            hist.push((
                format!("{}_{}_cut", metric_slug(scheme.name()), metric_slug(name)),
                cut,
            ));
        }
        rows.push(row);
    }
    println!("{}", render_table(&header, &rows));
    write_bench_json(
        "BENCH_table3.json",
        &json::object(&[
            ("bench", json::string("table3")),
            ("k", "8".to_string()),
            ("cuts", json::array(&records)),
        ]),
    );
    write_history_record("table3", "all", &[("k", "8".to_string())], &hist);
    println!(
        "paper (full-scale) for comparison:\n\
         Chunk-V  0.576  0.748  0.659\n\
         Chunk-E  0.903  0.903  0.765\n\
         Fennel   0.649  0.334  0.357\n\
         Hash     0.875  0.875  0.875\n\
         BPart    0.733  0.623  0.530\n\
         expected shape: Hash/Chunk-E highest, Fennel lowest, BPart in between\n\
         (it over-splits, trading some cut for two-dimensional balance)."
    );
}
