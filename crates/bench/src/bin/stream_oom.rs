//! Out-of-core memory-ceiling bench — partition a graph many times larger
//! than the allowed buffer memory and *prove* the residency claim.
//!
//! The pipeline (DESIGN.md §14) promises `O(n + buffer)` resident memory.
//! This bench makes that promise falsifiable:
//!
//! 1. The **parent** generates the friendster_like preset at the harness
//!    scale, writes it into a shard directory whose shard size is derived
//!    from a buffer budget of 1/16 of the on-disk stream (so the data is
//!    ≥ 10× the budget by construction), and runs the in-memory oracle
//!    partitioners for the bit-identity and cut comparison.
//! 2. For each streaming scheme it re-executes **itself as a child
//!    process** (`BPART_OOM_CHILD=1`) that applies a hard `RLIMIT_AS`
//!    ceiling, streams the shards through the staged pipeline, and
//!    reports its own `VmHWM` peak RSS plus an FNV-1a hash of the
//!    assignment on stdout as `key=value` lines. A fresh process means
//!    the high-water mark covers *only* the out-of-core pass — graph
//!    generation and sharding (the unconstrained prep phase) never touch
//!    the measured process.
//! 3. Results land in `BENCH_oom.json` (peak-RSS and per-stage occupancy
//!    columns) and `results/history/oom.json` for `bpart obs diff`
//!    against the checked-in `baseline-oom.json`.
//!
//! With `BPART_GATE=1` the binary exits non-zero if any child's peak RSS
//! exceeds the configured ceiling, if the stream/budget ratio fell below
//! 10×, if an assignment is not bit-identical to its in-memory oracle, or
//! if the cut degrades more than 5% (plus a 0.01 floor) — the `oom-gate`
//! CI job.

use bpart_bench::{banner, dataset, json, render_table, write_bench_json, write_history_record};
use bpart_core::bpart::WeightedStream;
use bpart_core::pio::{self, ShardSet};
use bpart_core::prelude::*;
use bpart_core::{metrics, ooc_cut_ratio, stream_assign_ooc, OocConfig, OocScheme};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const K: usize = 8;

/// FNV-1a over the little-endian assignment — cheap, dependency-free, and
/// identical in parent and child by construction.
fn fnv1a(assignment: &[PartId]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &p in assignment {
        for b in p.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn env_u64(key: &str) -> u64 {
    std::env::var(key)
        .unwrap_or_else(|_| panic!("{key} not set"))
        .parse()
        .unwrap_or_else(|_| panic!("bad {key}"))
}

fn scheme_of(name: &str) -> OocScheme {
    match name {
        "fennel" => OocScheme::Fennel,
        _ => OocScheme::BPartP1 { c: 0.5 },
    }
}

/// The measured process: cap the address space, stream the shards, report
/// everything the parent gates on as `key=value` stdout lines.
fn child_main() {
    let shards_dir = std::env::var("BPART_OOM_SHARDS").expect("BPART_OOM_SHARDS not set");
    let scheme_name = std::env::var("BPART_OOM_SCHEME").expect("BPART_OOM_SCHEME not set");
    let limit = env_u64("BPART_OOM_LIMIT_BYTES");
    if limit > 0 {
        bpart_obs::rss::set_address_space_limit(limit)
            .unwrap_or_else(|e| panic!("setrlimit failed: {e}"));
    }
    let shards = ShardSet::open(Path::new(&shards_dir)).expect("cannot open shards");
    let config = OocConfig::new(K, scheme_of(&scheme_name));
    let outcome = stream_assign_ooc(&shards, &config).expect("out-of-core pass failed");
    let cut = ooc_cut_ratio(&shards, &outcome.assignment).expect("cut re-stream failed");

    println!("assignment_hash={:#018x}", fnv1a(&outcome.assignment));
    println!("cut_ratio={cut}");
    println!("secs={}", outcome.stats.secs);
    println!("vertices_per_sec={}", outcome.stats.vertices_per_sec());
    println!(
        "peak_rss_bytes={}",
        bpart_obs::rss::peak_rss_bytes().unwrap_or(0)
    );
    println!(
        "current_rss_bytes={}",
        bpart_obs::rss::current_rss_bytes().unwrap_or(0)
    );
    for s in &outcome.pipeline.stages {
        let p = format!("stage_{}", s.name);
        println!("{p}_batches={}", s.batches);
        println!("{p}_busy_secs={}", s.busy_secs);
        println!("{p}_send_stalls={}", s.send_stalls);
        println!("{p}_recv_stalls={}", s.recv_stalls);
        println!("{p}_max_occupancy={}", s.max_occupancy);
        println!("{p}_channel_capacity={}", s.channel_capacity);
    }
}

/// One scheme's full comparison: oracle vs. RLIMIT-capped child.
struct SchemeRun {
    name: &'static str,
    oracle_hash: u64,
    oracle_cut: f64,
    child: BTreeMap<String, String>,
}

impl SchemeRun {
    fn child_f64(&self, key: &str) -> f64 {
        self.child
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0)
    }

    fn child_u64(&self, key: &str) -> u64 {
        self.child
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }

    fn identical(&self) -> bool {
        self.child.get("assignment_hash").map(String::as_str)
            == Some(format!("{:#018x}", self.oracle_hash).as_str())
    }
}

fn spawn_child(shards_dir: &Path, scheme: &str, limit_bytes: u64) -> BTreeMap<String, String> {
    let exe = std::env::current_exe().expect("cannot locate own executable");
    let output = std::process::Command::new(exe)
        .env("BPART_OOM_CHILD", "1")
        .env("BPART_OOM_SHARDS", shards_dir)
        .env("BPART_OOM_SCHEME", scheme)
        .env("BPART_OOM_LIMIT_BYTES", limit_bytes.to_string())
        .output()
        .expect("cannot spawn child");
    if !output.status.success() {
        panic!(
            "child ({scheme}, limit {limit_bytes}B) failed with {}:\n{}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        );
    }
    String::from_utf8_lossy(&output.stdout)
        .lines()
        .filter_map(|l| {
            l.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

fn main() {
    if std::env::var("BPART_OOM_CHILD").is_ok_and(|v| v == "1") {
        child_main();
        return;
    }

    // ---- prep phase (unconstrained: generation + sharding + oracles) ----
    let g = dataset("friendster_like");
    let n = g.num_vertices();
    let m = g.num_edges();

    // The buffer budget is 1/16 of the on-disk stream (floored so tiny
    // `BPART_SCALE` runs stay functional), making data ≥ 10× budget by
    // construction; shards are a quarter of the budget so several batches
    // and one mapped shard together stay inside it.
    let est_stream_bytes = 8 * n as u64 + 8 * m as u64;
    let buffer_budget = (est_stream_bytes / 16).max(64 * 1024);
    let shard_target = (buffer_budget / 4).max(4 * 1024);

    let shards_dir: PathBuf =
        std::env::temp_dir().join(format!("bpart-oom-shards-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&shards_dir);
    let manifest = pio::write_shards(&g, &shards_dir, shard_target).expect("cannot write shards");
    let shard_set = ShardSet::open(&shards_dir).expect("cannot reopen shards");
    let data_bytes = shard_set.total_bytes();
    let ratio = data_bytes as f64 / buffer_budget as f64;

    // RSS ceiling: process baseline + the dense O(n) state + a generous
    // multiple of the buffer budget. Deliberately far below the stream
    // size once the data outgrows the fixed base, so an O(m) regression
    // in the pipeline trips the gate on real CI scales.
    let rss_ceiling = 24 * 1024 * 1024 + 8 * n as u64 + 16 * buffer_budget;
    // The RLIMIT_AS ceiling adds slack for what address space counts and
    // RSS does not (thread stack reservations, allocator arenas, the
    // binary's own mappings). It is the hard backstop; the precise gate
    // is the self-measured VmHWM against `rss_ceiling`.
    let as_limit = rss_ceiling + 512 * 1024 * 1024;

    banner(
        "Out-of-core memory ceiling",
        &format!(
            "friendster_like, k = {K}, stream {data_bytes}B ({} shards), \
             budget {buffer_budget}B ({ratio:.1}x), rss ceiling {rss_ceiling}B",
            manifest.shards.len()
        ),
    );

    let mut runs: Vec<SchemeRun> = Vec::new();
    for (name, oracle) in [
        ("fennel", Fennel::default().partition(&g, K)),
        ("bpart-p1", WeightedStream::default().partition(&g, K)),
    ] {
        let child = spawn_child(&shards_dir, name, as_limit);
        runs.push(SchemeRun {
            name,
            oracle_hash: fnv1a(oracle.assignment()),
            oracle_cut: metrics::edge_cut_ratio(&g, &oracle),
            child,
        });
    }
    let _ = std::fs::remove_dir_all(&shards_dir);

    let header: Vec<String> = [
        "scheme",
        "secs",
        "v/s",
        "cut",
        "oracle",
        "identical",
        "peak rss",
        "ceiling",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.3}", r.child_f64("secs")),
                format!("{:.0}", r.child_f64("vertices_per_sec")),
                format!("{:.4}", r.child_f64("cut_ratio")),
                format!("{:.4}", r.oracle_cut),
                if r.identical() { "yes" } else { "NO" }.to_string(),
                format!("{}K", r.child_u64("peak_rss_bytes") / 1024),
                format!("{}K", rss_ceiling / 1024),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &rows));
    for r in &runs {
        println!(
            "{} stage occupancy: fetch {}/{} map {}/{} commit {}/{} \
             (stalls send/recv: fetch {}/{}, map {}/{}, commit {}/{})",
            r.name,
            r.child_u64("stage_fetch_max_occupancy"),
            r.child_u64("stage_fetch_channel_capacity"),
            r.child_u64("stage_map_max_occupancy"),
            r.child_u64("stage_map_channel_capacity"),
            r.child_u64("stage_commit_max_occupancy"),
            r.child_u64("stage_commit_channel_capacity"),
            r.child_u64("stage_fetch_send_stalls"),
            r.child_u64("stage_fetch_recv_stalls"),
            r.child_u64("stage_map_send_stalls"),
            r.child_u64("stage_map_recv_stalls"),
            r.child_u64("stage_commit_send_stalls"),
            r.child_u64("stage_commit_recv_stalls"),
        );
    }

    let items: Vec<String> = runs
        .iter()
        .map(|r| {
            let stages: Vec<String> = ["fetch", "map", "commit", "track"]
                .iter()
                .map(|stage| {
                    let key = |suffix: &str| format!("stage_{stage}_{suffix}");
                    json::object(&[
                        ("stage", json::string(stage)),
                        ("batches", r.child_u64(&key("batches")).to_string()),
                        ("busy_secs", json::number(r.child_f64(&key("busy_secs")))),
                        ("send_stalls", r.child_u64(&key("send_stalls")).to_string()),
                        ("recv_stalls", r.child_u64(&key("recv_stalls")).to_string()),
                        (
                            "max_occupancy",
                            r.child_u64(&key("max_occupancy")).to_string(),
                        ),
                        (
                            "channel_capacity",
                            r.child_u64(&key("channel_capacity")).to_string(),
                        ),
                    ])
                })
                .collect();
            json::object(&[
                ("scheme", json::string(r.name)),
                ("secs", json::number(r.child_f64("secs"))),
                (
                    "vertices_per_sec",
                    json::number(r.child_f64("vertices_per_sec")),
                ),
                ("cut_ratio", json::number(r.child_f64("cut_ratio"))),
                ("oracle_cut_ratio", json::number(r.oracle_cut)),
                (
                    "bit_identical",
                    if r.identical() { "true" } else { "false" }.to_string(),
                ),
                ("peak_rss_bytes", r.child_u64("peak_rss_bytes").to_string()),
                ("stages", json::array(&stages)),
            ])
        })
        .collect();
    let doc = json::object(&[
        ("bench", json::string("stream_oom")),
        ("dataset", json::string("friendster_like")),
        ("vertices", n.to_string()),
        ("edges", m.to_string()),
        ("k", K.to_string()),
        ("stream_bytes", data_bytes.to_string()),
        ("buffer_budget_bytes", buffer_budget.to_string()),
        ("shard_count", manifest.shards.len().to_string()),
        ("stream_to_budget_ratio", json::number(ratio)),
        ("rss_ceiling_bytes", rss_ceiling.to_string()),
        ("address_space_limit_bytes", as_limit.to_string()),
        ("runs", json::array(&items)),
    ]);
    write_bench_json("BENCH_oom.json", &doc);

    // History record for `bpart obs diff` against baseline-oom.json. The
    // deterministic cut ratios are the watched metrics; peak RSS and the
    // ratio ride along for humans (RSS varies across hosts and is gated
    // absolutely above, not relatively here).
    let mut hist: Vec<(String, f64)> = Vec::new();
    for r in &runs {
        let slug = r.name.replace('-', "_");
        hist.push((format!("{slug}_ooc_cut"), r.child_f64("cut_ratio")));
        hist.push((format!("{slug}_oracle_cut"), r.oracle_cut));
        hist.push((
            format!("{slug}_peak_rss_bytes"),
            r.child_u64("peak_rss_bytes") as f64,
        ));
    }
    hist.push(("stream_to_budget_ratio".to_string(), ratio));
    write_history_record(
        "oom",
        "friendster_like",
        &[
            ("k", K.to_string()),
            ("buffer_budget_bytes", buffer_budget.to_string()),
        ],
        &hist,
    );

    if std::env::var("BPART_GATE").is_ok_and(|v| v == "1") {
        let mut failed = false;
        if ratio < 10.0 {
            eprintln!("OOM GATE: stream is only {ratio:.1}x the buffer budget (need >= 10x)");
            failed = true;
        }
        for r in &runs {
            let peak = r.child_u64("peak_rss_bytes");
            if peak == 0 {
                eprintln!(
                    "OOM GATE: {} child reported no peak RSS (non-linux host?); \
                     skipping the residency check",
                    r.name
                );
            } else if peak > rss_ceiling {
                eprintln!(
                    "OOM GATE: {} peak RSS {peak}B exceeds ceiling {rss_ceiling}B",
                    r.name
                );
                failed = true;
            }
            if !r.identical() {
                eprintln!(
                    "OOM GATE: {} out-of-core assignment diverged from the in-memory \
                     oracle (hash {} vs {:#018x})",
                    r.name,
                    r.child
                        .get("assignment_hash")
                        .map(String::as_str)
                        .unwrap_or("<missing>"),
                    r.oracle_hash
                );
                failed = true;
            }
            let cut = r.child_f64("cut_ratio");
            if cut > r.oracle_cut * 1.05 + 0.01 {
                eprintln!(
                    "OOM GATE: {} out-of-core cut {cut:.4} degrades >5% over oracle {:.4}",
                    r.name, r.oracle_cut
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("oom gate: stream {ratio:.1}x buffer budget, peak RSS within ceiling");
        println!("oom gate: out-of-core assignments bit-identical to in-memory oracles");
    }
}
