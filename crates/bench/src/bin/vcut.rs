//! §5 (related work) — vertex-cut partitioning comparison: the
//! PowerGraph-family alternative splits edges and replicates vertices;
//! its quality measure is the replication factor. HDRF (cited by the
//! paper) replicates high-degree vertices first, cutting replication far
//! below random edge assignment at equal edge balance.

use bpart_bench::{banner, datasets, f3, render_table};
use bpart_core::metrics;
use bpart_core::vcut::{EdgePartitioner, Hdrf, RandomEdge};

fn main() {
    banner(
        "Vertex-cut comparison (§5)",
        "replication factor and edge balance at k = 8 (edge-partitioning model)",
    );
    let header: Vec<String> = ["dataset", "scheme", "replication", "edge bias"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for (name, g) in datasets() {
        for scheme in [
            &RandomEdge::default() as &dyn EdgePartitioner,
            &Hdrf::default(),
        ] {
            let ep = scheme.partition_edges(&g, 8);
            rows.push(vec![
                name.clone(),
                scheme.name().to_string(),
                f3(ep.replication_factor()),
                f3(metrics::bias(ep.edge_counts())),
            ]);
        }
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "expected shape: HDRF's replication factor is far below RandomEdge's (which\n\
         approaches k on dense graphs) at comparable edge balance — the reason the\n\
         vertex-cut literature the paper cites prefers degree-aware assignment."
    );
}
