//! Parallel streaming scaling — throughput and quality of the
//! buffered-parallel engine versus the exact sequential pass, on the
//! lj_like dataset at the harness scale.
//!
//! For Fennel and BPart-P1 (the two schemes built on the shared streaming
//! engine), each thread count runs the same partition and reports
//! throughput (vertices/s and edges/s), speedup over the sequential run,
//! edge-cut ratio, and the commit-barrier synchronization stall. A
//! hot-path probe then times the sequential phase-1 pass and a walker
//! run on the twitter_like preset (best of N) and records edges/s and
//! steps/s plus their inverse unit costs into `BENCH_stream.json` and
//! `results/history/hotpath.json`, which CI diffs against the checked-in
//! `baseline-hotpath.json`.
//!
//! The buffer is sized to ~1/16 of the vertex stream (capped at the
//! engine default), keeping the buffer/stream ratio — which is what the
//! quality envelope depends on — stable across `BPART_SCALE` values.
//!
//! Output lands in `BENCH_stream.json`, together with the run's metrics
//! registry snapshot (`stream.sync_ns` etc., see DESIGN.md §10) so CI can
//! compare sync-stall behaviour across commits, and a span-tracing
//! overhead measurement (the same sequential pass with the tracer off vs
//! on, min of N repetitions each).
//!
//! With `BPART_GATE=1` the binary exits non-zero if any 2-thread run
//! degrades the edge cut by more than 5% (plus an absolute 0.01 floor)
//! over the sequential run, or if span tracing costs more than 3% (plus
//! a 10ms floor against timer noise on tiny scales) — the CI perf gate.

use bpart_bench::{
    banner, dataset, json, metric_slug, render_table, timed, write_bench_json, write_history_record,
};
use bpart_core::bpart::WeightedStream;
use bpart_core::metrics;
use bpart_core::prelude::*;
use bpart_core::DEFAULT_BUFFER_SIZE;
use bpart_walker::{apps as wapps, WalkEngine, WalkStarts};
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const K: usize = 8;

struct Run {
    scheme: &'static str,
    threads: usize,
    secs: f64,
    throughput: f64,
    eps: f64,
    speedup: f64,
    cut: f64,
    stall: f64,
    buffers: usize,
}

fn scheme_at(name: &'static str, parallel: ParallelConfig) -> Box<dyn Partitioner> {
    match name {
        "Fennel" => Box::new(Fennel::new(FennelConfig {
            parallel,
            ..Default::default()
        })),
        _ => Box::new(WeightedStream::new(BPartConfig {
            parallel,
            ..Default::default()
        })),
    }
}

fn main() {
    let g = dataset("lj_like");
    let n = g.num_vertices();
    let buffer_size = (n / 16).clamp(1, DEFAULT_BUFFER_SIZE);
    banner(
        "Stream scaling",
        &format!("lj_like, k = {K}, buffer = {buffer_size}, threads = {THREAD_COUNTS:?}"),
    );

    let mut runs: Vec<Run> = Vec::new();
    for scheme_name in ["Fennel", "BPart-P1"] {
        let mut base_secs = 0.0;
        for &threads in &THREAD_COUNTS {
            let scheme = scheme_at(
                scheme_name,
                ParallelConfig {
                    threads,
                    buffer_size,
                },
            );
            let (partition, stats) = scheme.partition_with_stats(&g, K);
            if threads == 1 {
                base_secs = stats.secs;
            }
            runs.push(Run {
                scheme: scheme_name,
                threads,
                secs: stats.secs,
                throughput: stats.vertices_per_sec(),
                eps: stats.edges_per_sec(),
                speedup: if stats.secs > 0.0 {
                    base_secs / stats.secs
                } else {
                    0.0
                },
                cut: metrics::edge_cut_ratio(&g, &partition),
                stall: stats.sync_stall_ratio(),
                buffers: stats.buffers,
            });
        }
    }

    let header: Vec<String> = [
        "scheme", "threads", "secs", "v/s", "e/s", "speedup", "cut", "stall",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                r.threads.to_string(),
                format!("{:.3}", r.secs),
                format!("{:.0}", r.throughput),
                format!("{:.0}", r.eps),
                format!("{:.2}x", r.speedup),
                format!("{:.3}", r.cut),
                format!("{:.1}%", r.stall * 100.0),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &rows));
    println!(
        "note: speedup needs real cores; single-core hosts still verify\n\
         determinism and the quality envelope."
    );

    // Observability overhead: the identical sequential pass with the tracer
    // off (the release default) vs on *with the continuous profiler
    // sampling* — the always-on diagnostics configuration, so the gate
    // covers both the span hot path and the 2ms stack sampler. Min-of-N
    // per side filters scheduler noise; the gate below adds an absolute
    // floor for tiny scales.
    const OBS_REPS: usize = 3;
    let measure = |reps: usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let scheme = scheme_at(
                "BPart-P1",
                ParallelConfig {
                    threads: 1,
                    buffer_size,
                },
            );
            let (_, secs) = timed(|| scheme.partition(&g, K));
            best = best.min(secs);
        }
        best
    };
    bpart_obs::set_trace_enabled(false);
    let secs_traced_off = measure(OBS_REPS);
    bpart_obs::set_trace_enabled(true);
    bpart_obs::clear_trace();
    bpart_obs::profile::reset_profile();
    bpart_obs::profile::set_profile_enabled(true);
    bpart_obs::profile::start_sampler(bpart_obs::profile::DEFAULT_SAMPLE_INTERVAL);
    let secs_traced_on = measure(OBS_REPS);
    bpart_obs::profile::stop_sampler();
    bpart_obs::profile::set_profile_enabled(false);
    bpart_obs::set_trace_enabled(false);
    let overhead = if secs_traced_off > 0.0 {
        secs_traced_on / secs_traced_off - 1.0
    } else {
        0.0
    };
    println!(
        "tracing overhead: off {secs_traced_off:.4}s, on {secs_traced_on:.4}s ({:+.1}%) \
         [{} profile samples]\n",
        overhead * 100.0,
        bpart_obs::profile::sample_count()
    );

    // Hot-path throughput probe (ROADMAP item 5): the sequential phase-1
    // pass and a walker run on the twitter_like preset, best of N so
    // scheduler noise does not leak into the recorded numbers. Alongside
    // each throughput we record its *inverse* unit cost (ns/edge,
    // ns/step): `obs diff` treats growth as regression, and throughput
    // regresses by shrinking, so the unit costs are what CI watches
    // against `results/history/baseline-hotpath.json`.
    const HOT_REPS: usize = 3;
    let tg = dataset("twitter_like");
    let hot_buffer = (tg.num_vertices() / 16).clamp(1, DEFAULT_BUFFER_SIZE);
    let mut p1_eps = 0.0f64;
    let mut p1_partition = None;
    for _ in 0..HOT_REPS {
        let scheme = scheme_at(
            "BPart-P1",
            ParallelConfig {
                threads: 1,
                buffer_size: hot_buffer,
            },
        );
        let (partition, stats) = scheme.partition_with_stats(&tg, K);
        p1_eps = p1_eps.max(stats.edges_per_sec());
        p1_partition = Some(partition);
    }
    let graph = Arc::new(tg);
    let partition = Arc::new(p1_partition.expect("HOT_REPS > 0"));
    let walk_app = wapps::DeepWalk::new(20);
    let mut walk_steps = 0u64;
    let mut walk_sps = 0.0f64;
    for _ in 0..HOT_REPS {
        let engine = WalkEngine::default_for(graph.clone(), partition.clone());
        let (run, secs) = timed(|| engine.run(&walk_app, &WalkStarts::PerVertex(1), 42));
        walk_steps = run.total_steps;
        if secs > 0.0 {
            walk_sps = walk_sps.max(run.total_steps as f64 / secs);
        }
    }
    let inverse_ns = |per_sec: f64| if per_sec > 0.0 { 1e9 / per_sec } else { 0.0 };
    println!(
        "hotpath (twitter_like): phase-1 {p1_eps:.0} edges/s ({:.1} ns/edge), \
         walker {walk_sps:.0} steps/s ({:.1} ns/step)\n",
        inverse_ns(p1_eps),
        inverse_ns(walk_sps)
    );
    let hotpath = json::object(&[
        ("dataset", json::string("twitter_like")),
        ("edges", graph.num_edges().to_string()),
        ("p1_edges_per_sec", json::number(p1_eps)),
        ("p1_ns_per_edge", json::number(inverse_ns(p1_eps))),
        ("walk_steps", walk_steps.to_string()),
        ("walk_steps_per_sec", json::number(walk_sps)),
        ("walk_ns_per_step", json::number(inverse_ns(walk_sps))),
    ]);

    let items: Vec<String> = runs
        .iter()
        .map(|r| {
            json::object(&[
                ("scheme", json::string(r.scheme)),
                ("threads", r.threads.to_string()),
                ("secs", json::number(r.secs)),
                ("vertices_per_sec", json::number(r.throughput)),
                ("edges_per_sec", json::number(r.eps)),
                ("speedup", json::number(r.speedup)),
                ("cut_ratio", json::number(r.cut)),
                ("sync_stall_ratio", json::number(r.stall)),
                ("buffers", r.buffers.to_string()),
            ])
        })
        .collect();
    // Attach the metrics registry accumulated over all runs above: the
    // per-layer counters let CI diff sync-stall time across commits
    // without re-parsing the table, and the full exposition rides along
    // for ad-hoc inspection.
    let obs_metrics = json::object(&[
        (
            "stream_vertices",
            bpart_obs::metrics::counter("stream.vertices")
                .get()
                .to_string(),
        ),
        (
            "stream_edges",
            bpart_obs::metrics::counter("stream.edges")
                .get()
                .to_string(),
        ),
        (
            "stream_pass_ns",
            bpart_obs::metrics::counter("stream.pass_ns")
                .get()
                .to_string(),
        ),
        (
            "stream_sync_ns",
            bpart_obs::metrics::counter("stream.sync_ns")
                .get()
                .to_string(),
        ),
        (
            "stream_score_ns",
            bpart_obs::metrics::counter("stream.score_ns")
                .get()
                .to_string(),
        ),
        (
            "stream_commit_ns",
            bpart_obs::metrics::counter("stream.commit_ns")
                .get()
                .to_string(),
        ),
        (
            "exposition",
            json::string(&bpart_obs::metrics::prometheus_snapshot()),
        ),
    ]);
    let obs_overhead = json::object(&[
        ("secs_traced_off", json::number(secs_traced_off)),
        ("secs_traced_on", json::number(secs_traced_on)),
        ("overhead", json::number(overhead)),
    ]);
    let doc = json::object(&[
        ("bench", json::string("stream_scale")),
        ("dataset", json::string("lj_like")),
        ("vertices", n.to_string()),
        ("k", K.to_string()),
        ("buffer_size", buffer_size.to_string()),
        ("runs", json::array(&items)),
        ("hotpath", hotpath),
        ("metrics", obs_metrics),
        ("tracing", obs_overhead),
    ]);
    write_bench_json("BENCH_stream.json", &doc);

    // Hot-path history record, diffed by CI against the checked-in
    // baseline (watched: the inverse unit costs; throughputs ride along
    // for human reading).
    write_history_record(
        "hotpath",
        "twitter_like",
        &[("k", K.to_string()), ("walk_len", "20".to_string())],
        &[
            ("p1_edges_per_sec".to_string(), p1_eps),
            ("p1_ns_per_edge".to_string(), inverse_ns(p1_eps)),
            ("walk_steps_per_sec".to_string(), walk_sps),
            ("walk_ns_per_step".to_string(), inverse_ns(walk_sps)),
        ],
    );

    // History record for run-to-run regression diffing: the deterministic
    // cut ratios are the watched metrics (timings vary across hosts and
    // ride along unwatched).
    let mut hist: Vec<(String, f64)> = Vec::new();
    for r in &runs {
        let slug = format!("{}_t{}", metric_slug(r.scheme), r.threads);
        hist.push((format!("{slug}_cut"), r.cut));
        hist.push((format!("{slug}_secs"), r.secs));
        hist.push((format!("{slug}_eps"), r.eps));
        hist.push((format!("{slug}_stall"), r.stall));
    }
    hist.push(("tracing_overhead".to_string(), overhead));
    write_history_record(
        "stream_scale",
        "lj_like",
        &[
            ("k", K.to_string()),
            ("buffer_size", buffer_size.to_string()),
        ],
        &hist,
    );

    if std::env::var("BPART_GATE").is_ok_and(|v| v == "1") {
        let mut failed = false;
        for scheme_name in ["Fennel", "BPart-P1"] {
            let seq = runs
                .iter()
                .find(|r| r.scheme == scheme_name && r.threads == 1)
                .expect("sequential run present");
            for r in runs.iter().filter(|r| r.scheme == scheme_name) {
                if r.threads == 2 && r.cut > seq.cut * 1.05 + 0.01 {
                    eprintln!(
                        "PERF GATE: {} cut {:.4} at {} threads degrades >5% \
                         over sequential {:.4}",
                        r.scheme, r.cut, r.threads, seq.cut
                    );
                    failed = true;
                }
            }
        }
        // Instrumentation must be cheap enough to leave on in release
        // builds: tracing + continuous profiling on may not cost more
        // than 3% over everything off (10ms absolute floor so timer
        // noise at tiny BPART_SCALE values cannot flake the gate).
        if secs_traced_on > secs_traced_off * 1.03 + 0.01 {
            eprintln!(
                "PERF GATE: tracing+profiling overhead {:.1}% exceeds 3% \
                 (off {secs_traced_off:.4}s, on {secs_traced_on:.4}s)",
                overhead * 100.0
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("perf gate: 2-thread edge cut within 5% of sequential");
        println!("perf gate: span-tracing overhead within 3% of untraced");
    }
}
