//! Validates the observability artifacts produced by `--trace-out` and
//! `--metrics-out` using the shared [`bpart_obs::validate`] checks: the
//! trace must be parseable, non-empty JSONL (the same parser `bpart
//! report` uses) and the metrics file must be a well-formed Prometheus
//! text exposition with cumulative, `le`-ordered, `+Inf`-terminated
//! histograms. CI runs this after the CLI smoke so a malformed exporter
//! fails the build rather than silently producing unreadable artifacts.
//!
//! ```text
//! obs_check TRACE.jsonl METRICS.prom [REQUIRED_SPAN_NAME ...]
//! ```
//!
//! Any trailing arguments are span names that must appear in the trace
//! (e.g. `stream.pass cluster.superstep`), so the smoke also proves the
//! hot layers are actually instrumented.

use std::process::exit;

fn die(msg: String) -> ! {
    eprintln!("obs_check: {msg}");
    exit(1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [trace_path, metrics_path, required @ ..] = args.as_slice() else {
        die("usage: obs_check TRACE.jsonl METRICS.prom [REQUIRED_SPAN ...]".into());
    };

    let trace_text = std::fs::read_to_string(trace_path)
        .unwrap_or_else(|e| die(format!("cannot read {trace_path}: {e}")));
    let spans = bpart_obs::validate::check_trace(&trace_text)
        .unwrap_or_else(|e| die(format!("{trace_path}: {e}")));
    for name in required {
        if !spans.iter().any(|s| s.name == *name) {
            let mut seen: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
            seen.sort_unstable();
            seen.dedup();
            die(format!(
                "{trace_path}: required span {name:?} missing (saw: {})",
                seen.join(", ")
            ));
        }
    }

    let metrics_text = std::fs::read_to_string(metrics_path)
        .unwrap_or_else(|e| die(format!("cannot read {metrics_path}: {e}")));
    let samples = bpart_obs::validate::check_exposition(&metrics_text)
        .unwrap_or_else(|e| die(format!("{metrics_path}: {e}")));

    println!(
        "obs_check: OK — {} spans in {trace_path}, {samples} samples in {metrics_path}",
        spans.len()
    );
}
