//! Validates the observability artifacts produced by `--trace-out` and
//! `--metrics-out`: the trace must be parseable JSONL (using the same
//! parser `bpart report` uses) and the metrics file must be a well-formed
//! Prometheus-style text exposition. CI runs this after the CLI smoke so
//! a malformed exporter fails the build rather than silently producing
//! unreadable artifacts.
//!
//! ```text
//! obs_check TRACE.jsonl METRICS.prom [REQUIRED_SPAN_NAME ...]
//! ```
//!
//! Any trailing arguments are span names that must appear in the trace
//! (e.g. `stream.pass cluster.superstep`), so the smoke also proves the
//! hot layers are actually instrumented.

use std::process::exit;

fn die(msg: String) -> ! {
    eprintln!("obs_check: {msg}");
    exit(1)
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Checks one Prometheus text exposition, returning the sample count.
fn check_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
            let kind = it
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a kind"))?;
            if !valid_metric_name(name) {
                return Err(format!("line {lineno}: bad metric name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {lineno}: unknown metric kind {kind:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments (HELP etc.) are fine
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: sample without a value: {line:?}"))?;
        let name = series.split('{').next().unwrap_or(series);
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: bad sample name {name:?}"));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!("line {lineno}: unterminated label set: {series:?}"));
        }
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {lineno}: bad sample value {value:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("exposition holds no metric samples".into());
    }
    Ok(samples)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [trace_path, metrics_path, required @ ..] = args.as_slice() else {
        die("usage: obs_check TRACE.jsonl METRICS.prom [REQUIRED_SPAN ...]".into());
    };

    let trace_text = std::fs::read_to_string(trace_path)
        .unwrap_or_else(|e| die(format!("cannot read {trace_path}: {e}")));
    let spans = bpart_obs::report::parse_trace_jsonl(&trace_text)
        .unwrap_or_else(|e| die(format!("{trace_path}: {e}")));
    if spans.is_empty() {
        die(format!("{trace_path}: trace holds no spans"));
    }
    for name in required {
        if !spans.iter().any(|s| s.name == *name) {
            let mut seen: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
            seen.sort_unstable();
            seen.dedup();
            die(format!(
                "{trace_path}: required span {name:?} missing (saw: {})",
                seen.join(", ")
            ));
        }
    }

    let metrics_text = std::fs::read_to_string(metrics_path)
        .unwrap_or_else(|e| die(format!("cannot read {metrics_path}: {e}")));
    let samples =
        check_exposition(&metrics_text).unwrap_or_else(|e| die(format!("{metrics_path}: {e}")));

    println!(
        "obs_check: OK — {} spans in {trace_path}, {samples} samples in {metrics_path}",
        spans.len()
    );
}
