//! Ablations over BPart's design knobs (not in the paper; DESIGN.md §5):
//! the indicator weight `c`, the layer budget, the freeze tolerance ε and
//! the stream order, all on the Twitter-like graph at k = 8.

use bpart_bench::{banner, dataset, f3, render_table, timed};
use bpart_core::prelude::*;

fn report(g: &bpart_graph::CsrGraph, label: String, cfg: BPartConfig) -> Vec<String> {
    let ((p, trace), secs) = timed(|| BPart::new(cfg).partition_with_trace(g, 8));
    let q = metrics::quality(g, &p);
    vec![
        label,
        f3(q.vertex_bias),
        f3(q.edge_bias),
        f3(q.cut_ratio),
        trace.len().to_string(),
        format!("{secs:.3}"),
    ]
}

fn main() {
    banner("Ablation", "BPart knobs on twitter_like, k = 8");
    let g = dataset("twitter_like");
    let header: Vec<String> = [
        "config",
        "vertex bias",
        "edge bias",
        "edge-cut",
        "layers",
        "time (s)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut rows = Vec::new();
    for c in [0.0, 0.25, 0.5, 0.75, 1.0] {
        rows.push(report(
            &g,
            format!("c = {c}"),
            BPartConfig {
                c,
                ..Default::default()
            },
        ));
    }
    for layers in [1u32, 2, 4, 6] {
        rows.push(report(
            &g,
            format!("max_layers = {layers}"),
            BPartConfig {
                max_layers: layers,
                ..Default::default()
            },
        ));
    }
    for eps in [0.02, 0.05, 0.1, 0.2] {
        rows.push(report(
            &g,
            format!("epsilon = {eps}"),
            BPartConfig {
                epsilon_vertex: eps,
                epsilon_edge: eps,
                ..Default::default()
            },
        ));
    }
    for (label, order) in [
        ("order = natural", StreamOrder::Natural),
        ("order = random", StreamOrder::Random(7)),
        ("order = bfs", StreamOrder::Bfs),
        ("order = degree desc", StreamOrder::DegreeDescending),
    ] {
        rows.push(report(
            &g,
            label.to_string(),
            BPartConfig {
                order,
                ..Default::default()
            },
        ));
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "expected shape: c = 1/2 balances both dimensions (extremes balance only one);\n\
         one layer is usually not enough, 2-4 converge (matching §3.3); looser epsilon\n\
         freezes earlier but with higher residual bias; stream order mostly moves the\n\
         edge-cut, not the balance."
    );
}
