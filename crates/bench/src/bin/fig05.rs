//! Figure 5 — (a) edge-cut ratio and (b) total message walks of Chunk-V,
//! Chunk-E, Fennel and Hash at k = 8 (5|V| random walks of 4 steps).

use bpart_bench::{banner, dataset, f3, render_table};
use bpart_core::prelude::*;
use bpart_walker::{apps::SimpleRandomWalk, WalkEngine, WalkStarts};
use std::sync::Arc;

fn main() {
    banner(
        "Figure 5",
        "edge cuts and message walks, k = 8, 5|V| walks x 4 steps",
    );
    let schemes: Vec<Box<dyn Partitioner>> = vec![
        Box::new(ChunkV),
        Box::new(ChunkE),
        Box::new(Fennel::default()),
        Box::new(HashPartitioner::default()),
    ];
    let header: Vec<String> = ["dataset", "scheme", "edge-cut", "message walks", "msg/step"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for name in ["twitter_like", "friendster_like"] {
        let g = Arc::new(dataset(name));
        for scheme in &schemes {
            let p = Arc::new(scheme.partition(&g, 8));
            let cut = metrics::edge_cut_ratio(&g, &p);
            let run = WalkEngine::default_for(g.clone(), p).run(
                &SimpleRandomWalk::new(4),
                &WalkStarts::PerVertex(5),
                0xF165,
            );
            rows.push(vec![
                name.to_string(),
                scheme.name().to_string(),
                f3(cut),
                run.message_walks.to_string(),
                f3(run.message_walks as f64 / run.total_steps as f64),
            ]);
        }
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "expected shape: Chunk-E and Hash cut ~90% of edges and transmit >2x the\n\
         walks of Fennel; Fennel cuts the least."
    );
}
