//! Figure 15 — normalized computation time of the seven applications
//! under Hash vs BPart (k = 8, Hash = 1.0): both are two-dimensionally
//! balanced, so the gap isolates the edge-cut (communication) effect.

use bpart_bench::{app_names, banner, dataset, f3, render_table, run_paper_apps};
use bpart_core::prelude::*;
use std::sync::Arc;

fn main() {
    banner("Figure 15", "normalized running time, Hash = 1.0, k = 8");
    for name in ["twitter_like", "friendster_like"] {
        let g = Arc::new(dataset(name));
        let hash = Arc::new(HashPartitioner::default().partition(&g, 8));
        let bpart = Arc::new(BPart::default().partition(&g, 8));
        let t_hash = run_paper_apps(&g, &hash, 0xF1615);
        let t_bpart = run_paper_apps(&g, &bpart, 0xF1615);

        let mut header = vec!["scheme".to_string()];
        header.extend(app_names().iter().map(|s| s.to_string()));
        let rows = vec![
            {
                let mut r = vec!["Hash".to_string()];
                r.extend(t_hash.iter().map(|_| f3(1.0)));
                r
            },
            {
                let mut r = vec!["BPart".to_string()];
                r.extend(t_bpart.iter().zip(&t_hash).map(|(b, h)| f3(b / h)));
                r
            },
        ];
        println!("--- {name} ---");
        println!("{}", render_table(&header, &rows));
    }
    println!(
        "expected shape: BPart < 1.0 everywhere — paper reports 5-20% faster on the\n\
         walk apps and 20-35% faster on PR/CC, all from the lower edge-cut ratio."
    );
}
