//! §3.3 (text) — connectivity of the combined subgraphs: even when the
//! Friendster-like graph is over-split into 64 small pieces, every pair of
//! pieces shares many edge connections (paper: at least 50K, typically
//! 500K at full scale), so pairwise combination cannot strand a piece.

use bpart_bench::{banner, dataset, render_table};
use bpart_core::bpart::WeightedStream;
use bpart_core::prelude::*;

fn main() {
    banner(
        "Connectivity check (§3.3)",
        "edge connections between 64 weighted pieces, friendster_like",
    );
    let g = dataset("friendster_like");
    let p = WeightedStream::default().partition(&g, 64);
    let matrix = metrics::connectivity_matrix(&g, &p);

    // Pairwise (undirected) connection counts.
    let mut pairs: Vec<u64> = Vec::new();
    for (i, row) in matrix.iter().enumerate() {
        for (j, &forward) in row.iter().enumerate().skip(i + 1) {
            pairs.push(forward + matrix[j][i]);
        }
    }
    pairs.sort_unstable();
    let min = pairs[0];
    let median = pairs[pairs.len() / 2];
    let max = *pairs.last().unwrap();
    let mean = pairs.iter().sum::<u64>() as f64 / pairs.len() as f64;

    let header: Vec<String> = ["metric", "value"].iter().map(|s| s.to_string()).collect();
    let rows = vec![
        vec!["pairs".into(), pairs.len().to_string()],
        vec!["min connections".into(), min.to_string()],
        vec!["median connections".into(), median.to_string()],
        vec!["mean connections".into(), format!("{mean:.0}")],
        vec!["max connections".into(), max.to_string()],
        vec![
            "pairs with zero connections".into(),
            pairs.iter().filter(|&&p| p == 0).count().to_string(),
        ],
    ];
    println!("{}", render_table(&header, &rows));
    println!(
        "expected shape: zero disconnected pairs; the minimum scales with the graph\n\
         (the paper's full-scale Friendster shows >= 50K, typically 500K)."
    );
}
