//! Figure 6 — distribution of |V_i| and |E_i| over 64 subgraphs under
//! Chunk-V and Chunk-E on the Twitter-like graph: balancing one dimension
//! leaves the other highly skewed.

use bpart_bench::{banner, dataset, f3};
use bpart_core::prelude::*;

fn main() {
    banner(
        "Figure 6",
        "|V_i|/|V| and |E_i|/|E| across 64 subgraphs, twitter_like",
    );
    let g = dataset("twitter_like");
    let pieces = ((64.0 * bpart_bench::scale()).round() as usize).clamp(8, 64);
    for scheme in [&ChunkV as &dyn Partitioner, &ChunkE as &dyn Partitioner] {
        let p = scheme.partition(&g, pieces);
        let n = g.num_vertices() as f64;
        let m = g.num_edges() as f64;
        let vr: Vec<f64> = p.vertex_counts().iter().map(|&v| v as f64 / n).collect();
        let er: Vec<f64> = p.edge_counts().iter().map(|&e| e as f64 / m).collect();
        println!("--- {} ---", scheme.name());
        println!(
            "subgraph ({pieces} pieces, scaled with BPART_SCALE):   ratio V_i/V   ratio E_i/E"
        );
        for i in 0..pieces {
            println!("   G{i:<3}      {:>8}      {:>8}", f3(vr[i]), f3(er[i]));
        }
        let spread = |xs: &[f64]| {
            let max = xs.iter().cloned().fold(f64::MIN, f64::max);
            let min = xs.iter().cloned().fold(f64::MAX, f64::min).max(1e-12);
            max / min
        };
        println!(
            "summary: vertex max/min = {:.1}x, edge max/min = {:.1}x, vertex bias = {}, edge bias = {}\n",
            spread(&vr),
            spread(&er),
            f3(metrics::bias(p.vertex_counts())),
            f3(metrics::bias(p.edge_counts())),
        );
    }
    println!(
        "expected shape: Chunk-V's vertex ratios are flat (~1/64 each) while its edge\n\
         ratios span an order of magnitude; Chunk-E is the mirror image."
    );
}
