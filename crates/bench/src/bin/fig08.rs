//! Figure 8 — the weighted policy (Eq. 1, c = 1/2) over 64 pieces on the
//! Twitter-like graph: neither dimension is balanced alone, but skew drops
//! versus Fig. 6 and the two distributions become inversely proportional
//! (pieces are reordered by |V_i| as in the paper's plot).

use bpart_bench::{banner, dataset, f3};
use bpart_core::bpart::WeightedStream;
use bpart_core::prelude::*;

fn main() {
    banner(
        "Figure 8",
        "weighted-policy piece ratios, twitter_like, 64 pieces, c = 1/2",
    );
    let g = dataset("twitter_like");
    let pieces = ((64.0 * bpart_bench::scale()).round() as usize).clamp(8, 64);
    let p = WeightedStream::default().partition(&g, pieces);
    let n = g.num_vertices() as f64;
    let m = g.num_edges() as f64;
    let d_bar = g.average_degree();

    let mut pieces: Vec<(f64, f64)> = p
        .vertex_counts()
        .iter()
        .zip(p.edge_counts())
        .map(|(&v, &e)| (v as f64, e as f64))
        .collect();
    pieces.sort_by(|a, b| a.0.total_cmp(&b.0));

    println!("piece (sorted by |V_i|):   V_i/V     E_i/E     W_i");
    for (i, (v, e)) in pieces.iter().enumerate() {
        let w = 0.5 * v + 0.5 * e / d_bar;
        println!(
            "   {i:>3}                  {:>7}   {:>7}   {w:>8.1}",
            f3(v / n),
            f3(e / m)
        );
    }

    let vs: Vec<f64> = pieces.iter().map(|&(v, _)| v).collect();
    let es: Vec<f64> = pieces.iter().map(|&(_, e)| e).collect();
    println!(
        "\nsummary: vertex bias = {}, edge bias = {}, corr(|V_i|, |E_i|) = {}",
        f3(metrics::bias(p.vertex_counts())),
        f3(metrics::bias(p.edge_counts())),
        f3(pearson(&vs, &es)),
    );
    println!(
        "expected shape: both biases well below the imbalanced dimension of Fig. 6,\n\
         correlation strongly negative (inverse proportionality), W_i near-constant."
    );
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(&x, &y)| (x - ma) * (y - mb)).sum();
    let va: f64 = a.iter().map(|&x| (x - ma) * (x - ma)).sum();
    let vb: f64 = b.iter().map(|&y| (y - mb) * (y - mb)).sum();
    cov / (va.sqrt() * vb.sqrt()).max(f64::MIN_POSITIVE)
}
