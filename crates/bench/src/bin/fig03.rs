//! Figure 3 — per-subgraph vertex/edge ratios of Chunk-V, Chunk-E and
//! Fennel on the Twitter-like graph, k = 4: one-dimensional balance leaves
//! the other dimension skewed.

use bpart_bench::{banner, dataset, f3, render_table};
use bpart_core::prelude::*;

fn main() {
    banner(
        "Figure 3",
        "ratios of |V_i| and |E_i| per subgraph, twitter_like, k = 4",
    );
    let g = dataset("twitter_like");
    let schemes: Vec<Box<dyn Partitioner>> = vec![
        Box::new(ChunkV),
        Box::new(ChunkE),
        Box::new(Fennel::default()),
    ];

    let header: Vec<String> = ["scheme", "dim", "G0", "G1", "G2", "G3"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for scheme in &schemes {
        let p = scheme.partition(&g, 4);
        let n = g.num_vertices() as f64;
        let m = g.num_edges() as f64;
        let vr: Vec<String> = p
            .vertex_counts()
            .iter()
            .map(|&v| f3(v as f64 / n))
            .collect();
        let er: Vec<String> = p.edge_counts().iter().map(|&e| f3(e as f64 / m)).collect();
        rows.push([vec![scheme.name().into(), "V_i/V".into()], vr].concat());
        rows.push([vec![scheme.name().into(), "E_i/E".into()], er].concat());
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "expected shape: Chunk-V/Fennel have flat vertex rows but skewed edge rows;\n\
         Chunk-E has a flat edge row but a skewed vertex row (paper reports gaps up to 8-13x)."
    );
}
