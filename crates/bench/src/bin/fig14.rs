//! Figure 14 — normalized total running time of the seven applications
//! under each partitioning scheme (k = 8), normalized to Chunk-V = 1.

use bpart_bench::{app_names, banner, datasets, f3, render_table, run_paper_apps, schemes};
use std::sync::Arc;

fn main() {
    banner(
        "Figure 14",
        "normalized running time of 7 apps, k = 8, Chunk-V = 1.0",
    );
    for (name, g) in datasets() {
        let g = Arc::new(g);
        let mut header = vec!["scheme".to_string()];
        header.extend(app_names().iter().map(|s| s.to_string()));
        let mut rows = Vec::new();
        let mut baseline: Option<Vec<f64>> = None;
        for scheme in schemes() {
            let p = Arc::new(scheme.partition(&g, 8));
            let times = run_paper_apps(&g, &p, 0xF1614);
            let base = baseline.get_or_insert_with(|| times.clone());
            let mut row = vec![scheme.name().to_string()];
            row.extend(times.iter().zip(base.iter()).map(|(t, b)| f3(t / b)));
            rows.push(row);
        }
        println!("--- {name} ---");
        println!("{}", render_table(&header, &rows));
    }
    println!(
        "expected shape: BPart has the lowest normalized time for every app\n\
         (paper: 5-70% faster than Fennel/Chunk-V, 10-60% faster than Chunk-E)."
    );
}
