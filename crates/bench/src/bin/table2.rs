//! Table 2 — wall-clock partition overhead (seconds) of the five schemes
//! on the three datasets, k = 8.
//!
//! Absolute numbers depend on the machine and the harness scale; the
//! *ordering* is the reproduced result: Chunk-V/Chunk-E nearly free,
//! Hash cheap, Fennel costly, BPart costliest (it re-streams across
//! combination layers).

use bpart_bench::{banner, datasets, render_table, schemes, timed};

fn main() {
    banner("Table 2", "partition wall-clock overhead (s), k = 8");
    let data = datasets();
    let mut header = vec!["scheme".to_string()];
    header.extend(data.iter().map(|(n, _)| n.clone()));
    let mut rows = Vec::new();
    for scheme in schemes() {
        let mut row = vec![scheme.name().to_string()];
        for (_, g) in &data {
            let (partition, secs) = timed(|| scheme.partition(g, 8));
            partition.validate(g).expect("partition must be valid");
            row.push(format!("{secs:.4}"));
        }
        rows.push(row);
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "expected shape (paper, full-scale): Chunk-V = Chunk-E << Hash << Fennel < BPart,\n\
         with BPart within ~2-4x of Fennel."
    );
}
