//! Figure 11 — Jain's fairness index of per-part vertex counts (a) and
//! edge counts (b) when partitioning the Twitter-like graph into 8 to 128
//! subgraphs.

use bpart_bench::{banner, dataset, f3, render_table};
use bpart_core::prelude::*;

fn main() {
    banner(
        "Figure 11",
        "Jain fairness vs number of subgraphs, twitter_like",
    );
    let g = dataset("twitter_like");
    let schemes: Vec<Box<dyn Partitioner>> = vec![
        Box::new(ChunkV),
        Box::new(ChunkE),
        Box::new(Fennel::default()),
        Box::new(BPart::default()),
    ];
    let ks = [8usize, 16, 32, 64, 128];

    for (dim, pick) in [("vertices", true), ("edges", false)] {
        let mut header = vec!["scheme".to_string()];
        header.extend(ks.iter().map(|k| format!("k={k}")));
        let mut rows = Vec::new();
        for scheme in &schemes {
            let mut row = vec![scheme.name().to_string()];
            for &k in &ks {
                let p = scheme.partition(&g, k);
                let fairness = if pick {
                    metrics::jain_fairness(p.vertex_counts())
                } else {
                    metrics::jain_fairness(p.edge_counts())
                };
                row.push(f3(fairness));
            }
            rows.push(row);
        }
        println!("({}) fairness of {dim}", if pick { "a" } else { "b" });
        println!("{}", render_table(&header, &rows));
    }
    println!(
        "expected shape: BPart stays ~1.0 in both panels at every k; the one-dimensional\n\
         schemes degrade in their weak dimension as k grows."
    );
}
