//! Figure 12 — per-machine computation time in each of the four
//! iterations: 5|V| walks of 4 steps on the Friendster-like graph, 8
//! machines, comparing Fennel, Chunk-V, Chunk-E and BPart.

use bpart_bench::{banner, dataset, render_table};
use bpart_core::prelude::*;
use bpart_walker::{apps::SimpleRandomWalk, WalkEngine, WalkStarts};
use std::sync::Arc;

fn main() {
    banner(
        "Figure 12",
        "per-machine compute time per iteration, friendster_like, 8 machines",
    );
    let g = Arc::new(dataset("friendster_like"));
    let schemes: Vec<Box<dyn Partitioner>> = vec![
        Box::new(Fennel::default()),
        Box::new(ChunkV),
        Box::new(ChunkE),
        Box::new(BPart::default()),
    ];
    let mut header = vec!["scheme".to_string(), "iter".to_string()];
    header.extend((0..8).map(|m| format!("M{m}")));
    header.push("max/min".to_string());
    let mut rows = Vec::new();
    for scheme in &schemes {
        let p = Arc::new(scheme.partition(&g, 8));
        let run = WalkEngine::default_for(g.clone(), p).run(
            &SimpleRandomWalk::new(4),
            &WalkStarts::PerVertex(5),
            0xF1612,
        );
        for (i, rec) in run.telemetry.records().iter().enumerate() {
            let mut row = vec![scheme.name().to_string(), format!("Iter{i}")];
            row.extend(rec.compute.iter().map(|c| format!("{c:.0}")));
            let max = rec.compute.iter().cloned().fold(f64::MIN, f64::max);
            let min = rec
                .compute
                .iter()
                .cloned()
                .fold(f64::MAX, f64::min)
                .max(1.0);
            row.push(format!("{:.2}", max / min));
            rows.push(row);
        }
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "expected shape: Fennel/Chunk-V/Chunk-E show strongly unequal compute per\n\
         iteration (machines wait for the slowest); BPart's columns are near-equal\n\
         in every iteration."
    );
}
